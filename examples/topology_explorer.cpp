// Topology workbench: generate an Internet-like AS graph, inspect its
// business-relationship mix, round-trip it through the CAIDA as-rel
// exchange format, and study valley-free routing and P-graph structure
// from a chosen vantage AS — the offline half of the library, no simulator
// involved.
#include <iostream>
#include <sstream>

#include "eval/static_eval.hpp"
#include "policy/valley_free.hpp"
#include "topology/generator.hpp"
#include "topology/parser.hpp"
#include "topology/stats.hpp"
#include "util/table.hpp"

using namespace centaur;

int main() {
  // 1. Generate a CAIDA-shaped topology.
  util::Rng rng(1234);
  const topo::AsGraph g =
      topo::tiered_internet(topo::caida_like_params(400), rng);
  std::cout << topo::compute_stats(g, "generated") << "\n\n";

  // 2. Round-trip through the CAIDA as-rel exchange format.
  const std::string serialized = topo::write_as_rel_text(g);
  const topo::ParsedTopology reparsed = topo::parse_as_rel_text(serialized);
  std::cout << "as-rel round trip: " << reparsed.graph.num_nodes()
            << " nodes / " << reparsed.graph.num_links()
            << " links re-parsed ("
            << serialized.size() / 1024 << " KiB serialized)\n\n";

  // 3. Valley-free routing from a stub AS.
  const topo::NodeId vantage = 399;  // generated last => a stub
  util::Accumulator lengths;
  std::size_t customer_routes = 0, peer_routes = 0, provider_routes = 0;
  for (topo::NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    if (dest == vantage) continue;
    const auto routes = policy::ValleyFreeRoutes::compute(g, dest);
    const auto& entry = routes.at(vantage);
    if (!entry.reachable()) continue;
    lengths.add(entry.length);
    switch (policy::preference_class(entry.source)) {
      case 1:
        ++customer_routes;
        break;
      case 2:
        ++peer_routes;
        break;
      default:
        ++provider_routes;
        break;
    }
  }
  util::TextTable table("AS " + std::to_string(vantage) + "'s routing table");
  table.header({"route class", "count"});
  table.row({"via customer/sibling", util::fmt_count(customer_routes)});
  table.row({"via peer", util::fmt_count(peer_routes)});
  table.row({"via provider", util::fmt_count(provider_routes)});
  table.print(std::cout);
  std::cout << "Average AS-path length: " << util::fmt_double(lengths.mean(), 2)
            << " hops (max " << lengths.max() << ")\n\n";

  // 4. The vantage AS's local P-graph.
  const core::PGraph pg = eval::build_node_pgraph(g, vantage);
  std::cout << "Local P-graph of AS " << vantage << ": " << pg.num_links()
            << " downstream links for " << pg.destinations().size()
            << " destinations, " << pg.active_plist_count()
            << " Permission Lists\n";

  // 5. What its provider would hear (export filtering).
  std::size_t exportable = 0;
  for (topo::NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    const auto path = pg.derive_path(dest);
    if (!path) continue;
    if (policy::may_export(policy::classify_path(g, *path),
                           topo::Relationship::kProvider)) {
      ++exportable;
    }
  }
  std::cout << "Routes exportable to a provider (self/customer cone only): "
            << exportable << " of " << pg.destinations().size() << "\n";
  return 0;
}
