// Link hiding without routing loops — the paper's motivating scenario
// (S2.1, Figures 1-3).
//
// On the square topology A-B, A-C, B-D, C-D, node C wants to keep its
// link C-D private from A.  In a traditional link-state protocol B's
// flooding would reveal the link anyway and A could pick <A,C,D> while C
// routes differently — a forwarding loop (Figure 2).  Centaur's downstream
// link announcements plus export filters hide the link cleanly: A routes
// via B, C still uses its private link, and hop-by-hop forwarding stays
// loop-free.
#include <iostream>

#include "centaur/centaur_node.hpp"
#include "example_check.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

using namespace centaur;

namespace {

constexpr topo::NodeId A = 0, B = 1, C = 2, D = 3;
const char* kNames[] = {"A", "B", "C", "D"};

void print_routes_to_d(sim::Network& net) {
  for (const topo::NodeId v : {A, B, C}) {
    const auto& node = dynamic_cast<core::CentaurNode&>(net.node(v));
    const auto path = node.selected_path(D);
    std::cout << "  " << kNames[v] << " -> D : ";
    if (!path) {
      std::cout << "(no route)\n";
      continue;
    }
    std::cout << "<";
    for (std::size_t i = 0; i < path->size(); ++i) {
      std::cout << (i ? ", " : "") << kNames[(*path)[i]];
    }
    std::cout << ">\n";
  }
}

}  // namespace

int main() {
  topo::AsGraph g(4);
  // Sibling links exchange all routes — the closest match to the paper's
  // policy-free illustration topology.
  g.add_link(A, B, topo::Relationship::kSibling);
  g.add_link(A, C, topo::Relationship::kSibling);
  g.add_link(B, D, topo::Relationship::kSibling);
  g.add_link(C, D, topo::Relationship::kSibling);

  util::Rng rng(7);
  sim::Network net(g, rng);
  examples::ScopedAnalysis analysis(net);  // invariant checks (Debug builds)
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    core::CentaurNode::Config cfg;
    if (v == C) {
      // C's export policy: never announce the directed link C->D to A.
      cfg.export_link_filter = [](topo::NodeId neighbor, topo::NodeId from,
                                  topo::NodeId to) {
        return !(neighbor == A && from == C && to == D);
      };
    }
    net.attach(v, std::make_unique<core::CentaurNode>(g, cfg));
  }
  net.mark();
  net.start_all_and_converge();
  analysis.assert_clean();

  std::cout << "Routes to D with C hiding its private link C-D from A:\n";
  print_routes_to_d(net);

  const auto& a = dynamic_cast<core::CentaurNode&>(net.node(A));
  const core::PGraph* from_c = a.neighbor_pgraph(C);
  std::cout << "\nA's P-graph learned from C "
            << (from_c != nullptr && !from_c->has_link(C, D)
                    ? "does NOT contain"
                    : "contains")
            << " the hidden link C->D.\n";

  // Hop-by-hop forwarding check: walk next hops from A toward D.
  std::cout << "\nForwarding a packet A -> D hop by hop:";
  topo::NodeId cur = A;
  std::size_t hops = 0;
  while (cur != D && hops++ < 8) {
    const auto& node = dynamic_cast<core::CentaurNode&>(net.node(cur));
    const auto path = node.selected_path(D);
    cur = (*path)[1];
    std::cout << " -> " << kNames[cur];
  }
  std::cout << (cur == D ? "   (delivered, no loop)\n"
                         : "   (LOOP! this must not happen)\n");

  // The punchline from S2.1: in naive policy-annotated link state, A would
  // have derived <A, C, D> from B's flooded copy of the hidden link and C
  // would bounce the packet straight back.
  std::cout << "\nIn flooding link state A would have picked <A, C, D> and\n"
               "C (whose own tables avoid C-D only for A's traffic in this\n"
               "policy) could loop packets between A and C — the failure\n"
               "Centaur's downstream-link announcements prevent.\n";
  return 0;
}
