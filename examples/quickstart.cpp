// Quickstart: build a five-AS topology, run Centaur to convergence on the
// event simulator, and inspect routes and the P-graph data model.
//
//        T1a(0) ===peer=== T1b(1)
//         /   |              |
//     Acme(2) Beta(3)       Core(4)     (2,3 customers of 0; 4 customer of 1)
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <iostream>

#include "centaur/centaur_node.hpp"
#include "example_check.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

using namespace centaur;

int main() {
  // 1. The topology: relationships are given as "what the second node is
  //    to the first" — kProvider below means node 0 is the provider.
  topo::AsGraph g(5);
  g.add_link(0, 1, topo::Relationship::kPeer);
  g.add_link(2, 0, topo::Relationship::kProvider);  // 0 provides for 2
  g.add_link(3, 0, topo::Relationship::kProvider);
  g.add_link(4, 1, topo::Relationship::kProvider);
  const char* names[] = {"T1a", "T1b", "Acme", "Beta", "Core"};

  // 2. A network with one Centaur node per AS and random 0-5 ms link
  //    delays, run to convergence (the initialization phase, S4.3.1).
  util::Rng rng(42);
  sim::Network net(g, rng);
  examples::ScopedAnalysis analysis(net);  // invariant checks (Debug builds)
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.attach(v, std::make_unique<core::CentaurNode>(g));
  }
  net.mark();
  net.start_all_and_converge();
  analysis.assert_clean();
  std::cout << "Converged after " << net.window().messages_sent
            << " link-state update messages ("
            << net.window().bytes_sent << " bytes), "
            << net.window_convergence_time() * 1e3 << " ms simulated.\n\n";

  // 3. Routing tables: every AS selected a Gao-Rexford-compliant path.
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& node = dynamic_cast<core::CentaurNode&>(net.node(v));
    std::cout << names[v] << " routes:\n";
    for (const auto& [dest, path] : node.selected_paths()) {
      if (dest == v) continue;
      std::cout << "  -> " << names[dest] << "  via " << topo::to_string(path)
                << "\n";
    }
  }

  // 4. The P-graph data model: Acme's local policy graph encodes all its
  //    selected paths as downstream links (S3.2.2).
  auto& acme = dynamic_cast<core::CentaurNode&>(net.node(2));
  const core::PGraph& pg = acme.local_pgraph();
  std::cout << "\nAcme's local P-graph: " << pg.num_links()
            << " downstream links, " << pg.destinations().size()
            << " destinations, " << pg.active_plist_count()
            << " Permission Lists\n";
  for (const auto& [link, data] : pg.links()) {
    std::cout << "  " << names[link.from] << " -> " << names[link.to]
              << "  (on " << data.counter << " selected path"
              << (data.counter == 1 ? "" : "s") << ")\n";
  }

  // 5. Policies at work: Core reaches Beta by climbing to its provider,
  //    crossing the single Tier-1 peering hop, and descending — the only
  //    valley-free shape these relationships allow.
  auto& core_as = dynamic_cast<core::CentaurNode&>(net.node(4));
  const auto path = core_as.selected_path(3);
  std::cout << "\nCore -> Beta uses " << topo::to_string(*path)
            << " (up to T1b, one peer hop, down to Beta — valley-free).\n";
  return 0;
}
