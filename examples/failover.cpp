// Failure recovery: Centaur's root-cause link withdrawals vs BGP's
// per-destination path exploration, on the same Internet-like topology.
//
// Demonstrates the paper's headline reliability claim (Figs 5/6): after a
// link failure Centaur re-stabilises with a handful of link-level updates,
// while BGP explores and withdraws per destination.
#include <iostream>

#include "eval/experiments.hpp"
#include "topology/generator.hpp"
#include "util/table.hpp"

using namespace centaur;

int main() {
  util::Rng topo_rng(2026);
  const topo::AsGraph g = topo::brite_like(80, 2, 5, topo_rng);
  std::cout << "Topology: " << g.num_nodes() << " ASes, " << g.num_links()
            << " links (BRITE-like with degree-inferred relationships)\n\n";

  util::Rng rng_a(3), rng_b(3);
  eval::ProtocolRun centaur(g, eval::Protocol::kCentaur, rng_a);
  eval::ProtocolRun bgp(g, eval::Protocol::kBgp, rng_b);
  std::cout << "Cold start:  Centaur " << centaur.cold_start().messages_sent
            << " msgs, BGP " << bgp.cold_start().messages_sent << " msgs\n\n";

  // Fail a well-used link (attached to the highest-degree node), watch both
  // protocols reconverge, then restore it.
  topo::NodeId hub = 0;
  for (topo::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  const topo::LinkId victim = g.neighbors(hub).front().link;
  std::cout << "Flipping link " << g.link(victim).a << " <-> "
            << g.link(victim).b << " (touches the busiest AS " << hub
            << ", degree " << g.degree(hub) << ")\n\n";

  util::TextTable table("Reconvergence after the flip");
  table.header({"event", "protocol", "messages", "bytes", "time (ms)"});
  for (const bool up : {false, true}) {
    const auto tc = centaur.flip(victim, up);
    const auto tb = bgp.flip(victim, up);
    const char* event = up ? "link restored" : "link failed";
    table.row({event, "Centaur", util::fmt_count(tc.messages),
               util::fmt_count(tc.bytes),
               util::fmt_double(tc.convergence_time * 1e3, 2)});
    table.row({event, "BGP", util::fmt_count(tb.messages),
               util::fmt_count(tb.bytes),
               util::fmt_double(tb.convergence_time * 1e3, 2)});
  }
  table.print(std::cout);

  std::cout << "Centaur withdraws the failed link once per neighbor (root\n"
               "cause); BGP withdraws/explores per destination, so its\n"
               "counts grow with the number of prefixes behind the link.\n";
  return 0;
}
