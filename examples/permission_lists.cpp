// Permission Lists in action — the paper's Figure 4 walked end to end.
//
// Topology: C-A, A-B, B-D, C-D, D-D'.  C's local policy prefers the long
// path <C,A,B,D> for destination D, but uses <C,D,D'> for D'.  The link
// C->D therefore becomes a downstream link and D turns multi-homed in C's
// local P-graph, so BuildGraph attaches Permission Lists; A can then derive
// C's real D'-path but NOT the policy-violating <C,D>.
#include <iostream>

#include "centaur/centaur_node.hpp"
#include "example_check.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

using namespace centaur;

namespace {

constexpr topo::NodeId A = 0, B = 1, C = 2, D = 3, Dp = 4;
const char* kNames[] = {"A", "B", "C", "D", "D'"};

std::string pretty(const topo::Path& p) {
  std::string s = "<";
  for (std::size_t i = 0; i < p.size(); ++i) {
    s += (i ? ", " : "");
    s += kNames[p[i]];
  }
  return s + ">";
}

}  // namespace

int main() {
  topo::AsGraph g(5);
  g.add_link(C, A, topo::Relationship::kSibling);
  g.add_link(A, B, topo::Relationship::kSibling);
  g.add_link(B, D, topo::Relationship::kSibling);
  g.add_link(C, D, topo::Relationship::kSibling);
  g.add_link(D, Dp, topo::Relationship::kSibling);

  util::Rng rng(11);
  sim::Network net(g, rng);
  examples::ScopedAnalysis analysis(net);  // invariant checks (Debug builds)
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    core::CentaurNode::Config cfg;
    if (v == C) {
      // C's ranking override: strictly prefer <C,A,B,D> for destination D.
      cfg.ranking = [](const policy::Candidate&, const topo::Path& pa,
                       const policy::Candidate&, const topo::Path& pb) {
        if (pa.back() == D && pb.back() == D) {
          return pa == topo::Path{C, A, B, D} && pb != topo::Path{C, A, B, D};
        }
        return false;
      };
    }
    net.attach(v, std::make_unique<core::CentaurNode>(g, cfg));
  }
  net.start_all_and_converge();
  analysis.assert_clean();

  const auto& c = dynamic_cast<core::CentaurNode&>(net.node(C));
  std::cout << "C's selected paths (local preference at work):\n"
            << "  C -> D  : " << pretty(*c.selected_path(D)) << "\n"
            << "  C -> D' : " << pretty(*c.selected_path(Dp)) << "\n\n";

  // C's local P-graph is exactly the paper's Figure 4(c).
  const core::PGraph& pg = c.local_pgraph();
  std::cout << "C's local P-graph (" << pg.num_links() << " links):\n";
  for (const auto& [link, data] : pg.links()) {
    std::cout << "  " << kNames[link.from] << " -> " << kNames[link.to];
    if (pg.plist_active(link.from, link.to)) {
      std::cout << "   Permission List:";
      for (const auto& entry : data.plist.entries()) {
        std::cout << " {dests: [";
        for (std::size_t i = 0; i < entry.dests.size(); ++i) {
          std::cout << (i ? ", " : "") << kNames[entry.dests[i]];
        }
        std::cout << "], next hop of " << kNames[link.to] << ": "
                  << (entry.next_hop == core::kNoNextHop
                          ? "(is destination)"
                          : kNames[entry.next_hop])
                  << "}";
      }
    }
    std::cout << "\n";
  }

  // What A can reconstruct from C's announcement (Observation 1):
  const auto& a = dynamic_cast<core::CentaurNode&>(net.node(A));
  const core::PGraph* from_c = a.neighbor_pgraph(C);
  std::cout << "\nA reassembling C's downstream paths:\n";
  const auto dp_path = from_c->derive_path(Dp);
  std::cout << "  DerivePath(D') = "
            << (dp_path ? pretty(*dp_path) : std::string("(none)")) << "\n";
  const auto d_path = from_c->derive_path(D);
  std::cout << "  DerivePath(D)  = "
            << (d_path ? pretty(*d_path) : std::string("(none)"))
            << "   <- the policy-violating <C, D> is NOT derivable\n";

  std::cout << "\nHence A routes to D via B: "
            << pretty(*a.selected_path(D)) << "\n";
  return 0;
}
