// Debug-build invariant checking for the examples.
//
// In CENTAUR_CHECK (Debug) builds a ScopedAnalysis attaches the invariant
// analyzer (src/check) to the example's network: every event re-validates
// the touched Centaur node, and assert_clean() sweeps all nodes at a
// quiescence point, aborting the example with the violation report if any
// protocol invariant is breached.  In other builds it compiles to nothing.
#pragma once

#include "sim/network.hpp"

#ifdef CENTAUR_CHECK
#include <memory>

#include "check/analyzer.hpp"
#endif

namespace centaur::examples {

#ifdef CENTAUR_CHECK
class ScopedAnalysis {
 public:
  explicit ScopedAnalysis(sim::Network& net)
      : analyzer_(std::make_unique<check::Analyzer>(net)) {}
  /// Call after each run_to_convergence(); throws on violations.
  void assert_clean() {
    analyzer_->check_all();
    analyzer_->expect_clean();
  }

 private:
  std::unique_ptr<check::Analyzer> analyzer_;
};
#else
class ScopedAnalysis {
 public:
  explicit ScopedAnalysis(sim::Network&) {}
  void assert_clean() {}
};
#endif

}  // namespace centaur::examples
