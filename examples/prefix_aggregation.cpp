// Prefix (de)aggregation and update isolation — the paper's S6.4.
//
// Centaur disseminates routing updates per link, orthogonal to prefix
// granularity: an AS can announce one aggregate for its whole address
// space, or split itself into several logical destination "nodes" with
// finer prefixes.  This example routes actual IP addresses: destinations
// own prefixes, lookups combine longest-prefix match (who owns this
// address?) with valley-free path computation (how do I reach the owner?),
// and aggregation level decides how many logical destinations — and hence
// how much update state — a domain exposes.
#include <iostream>

#include "policy/valley_free.hpp"
#include "topology/generator.hpp"
#include "topology/prefix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace centaur;

int main() {
  util::Rng rng(88);
  const topo::AsGraph g =
      topo::tiered_internet(topo::caida_like_params(60), rng);
  std::cout << "Topology: " << g.num_nodes() << " ASes, " << g.num_links()
            << " links\n\n";

  // 1. Address plan: every AS owns one /16 out of 10.0.0.0/8.
  topo::PrefixTable table;
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto prefix =
        topo::Ipv4Prefix::of(0x0A000000u | (std::uint32_t{v} << 16), 16);
    table.insert(prefix, v);
  }
  std::cout << "Announced " << table.size() << " /16 prefixes.\n";

  // 2. Route a packet: longest-prefix match, then the valley-free path.
  const std::uint32_t dst_ip = 0x0A2A1234;  // 10.42.18.52 -> AS 42
  const auto route = table.lookup(dst_ip);
  const auto paths = policy::ValleyFreeRoutes::compute(g, route->origin);
  const topo::NodeId src = 7;
  std::cout << "10.42.18.52 matches " << route->prefix.to_string()
            << " (AS " << route->origin << "); AS " << src << " forwards via "
            << topo::to_string(paths.path_from(src)) << "\n\n";

  // 3. De-aggregation: AS 42 splits its /16 into four /18 sub-prefixes
  //    (logically four destination "nodes" in Centaur's topology view).
  const topo::PrefixRoute owned{route->prefix, route->origin};
  const auto subs = topo::deaggregate(owned, 18);
  table.erase(owned.prefix);
  for (const auto& s : subs) table.insert(s.prefix, s.origin);
  std::cout << "AS 42 de-aggregates into " << subs.size()
            << " /18s; the table now holds " << table.size()
            << " routes.  Lookups still resolve: 10.42.18.52 -> "
            << table.lookup(dst_ip)->prefix.to_string() << "\n";

  // 4. Update isolation: an internal failure affecting only one /18 needs
  //    an update for that sub-prefix only; with one aggregate, the whole
  //    /16 would have churned.
  const auto& failed = subs[1];
  table.erase(failed.prefix);
  std::cout << "Sub-prefix " << failed.prefix.to_string()
            << " withdrawn (internal failure): 1 of " << subs.size()
            << " sub-prefixes affected; 10.42.18.52 ("
            << (table.lookup(dst_ip)
                    ? "still routed via " +
                          table.lookup(dst_ip)->prefix.to_string()
                    : std::string("now unrouted"))
            << ").\n\n";

  // 5. Re-aggregation restores the compact table.
  table.insert(failed.prefix, failed.origin);
  auto routes = table.routes();
  const auto aggregated = topo::aggregate(routes);
  util::TextTable t("Aggregation effect");
  t.header({"view", "routes"});
  t.row({"de-aggregated table", util::fmt_count(routes.size())});
  t.row({"after CIDR aggregation", util::fmt_count(aggregated.size())});
  t.print(std::cout);
  std::cout << "Centaur carries either granularity unchanged: destination\n"
               "marks name prefixes, link-level updates stay the same —\n"
               "update isolation comes from the aggregation level alone\n"
               "(S6.4), exactly as in BGP.\n";
  return 0;
}
