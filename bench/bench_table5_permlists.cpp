// Table 5 — distribution of the number of entries in one Permission List.
//
// Same pipeline as Table 4; reports what fraction of Permission Lists hold
// 1 / 2 / 3 / >3 (destination-list, next-hop) pair entries, plus byte-size
// accounting for the raw and Bloom-compressed encodings (S4.1 proposes
// compressing destination lists with Bloom filters; the paper's Table 5
// likewise does not count destinations inside a list).
#include <iostream>

#include "bench_util.hpp"
#include "eval/static_eval.hpp"

namespace {

using namespace centaur;
using eval::PathSetMode;
using eval::PlistScheme;

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(&argc, argv, "table5_permlists",
                               "Table 5: number of entries per Permission "
                               "List");
  const auto& params = io.params;

  const auto standins = bench::make_measured_standins(params);

  // mode x topology grid, one trial each, fanned across the driver.
  struct Job {
    std::string name;
    const topo::AsGraph* g;
    std::uint64_t seed;
    PathSetMode mode;
    const char* tag;
  };
  std::vector<Job> jobs;
  for (const auto mode : {PathSetMode::kMultipath, PathSetMode::kSinglePath}) {
    const char* tag =
        mode == PathSetMode::kMultipath ? "multipath" : "single-path";
    jobs.push_back({"CAIDA-like", &standins.caida_like, params.seed ^ 0x7A51,
                    mode, tag});
    jobs.push_back({"HeTop-like", &standins.hetop_like, params.seed ^ 0x7A52,
                    mode, tag});
  }
  struct Timed {
    eval::PGraphStats stats;
    double wall_s = 0;
  };
  const auto results =
      runner::run_trials(jobs.size(), io.threads, [&](std::size_t i) {
        const Job& job = jobs[i];
        const runner::Stopwatch sw;
        util::Rng rng(job.seed);
        Timed t;
        t.stats = eval::compute_pgraph_stats(*job.g,
                                             params.pgraph_vantage_sample, rng,
                                             job.mode, PlistScheme::kMinimal);
        t.wall_s = sw.seconds();
        return t;
      });

  util::TextTable table("Table 5 — Permission List entry distribution");
  table.header({"Topology", "=1", "=2", "=3", ">3", "#lists"});
  util::TextTable bytes("Permission List sizes (bytes, ours)");
  bytes.header({"Topology", "raw mean", "raw p99", "bloom mean"});

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const eval::PGraphStats& s = results[i].stats;
    table.row({job.name + " (" + job.tag + ")",
               util::fmt_percent(s.frac_entries_1),
               util::fmt_percent(s.frac_entries_2),
               util::fmt_percent(s.frac_entries_3),
               util::fmt_percent(s.frac_entries_gt3),
               util::fmt_count(s.plists_total)});
    bytes.row({job.name + " (" + job.tag + ")",
               util::fmt_double(s.plist_bytes_raw.mean(), 1),
               util::fmt_double(s.plist_bytes_raw.quantile(0.99), 1),
               util::fmt_double(s.plist_bytes_bloom.mean(), 1)});
    runner::TrialResult trial;
    trial.name = job.name + "/" + job.tag;
    trial.wall_time_s = results[i].wall_s;
    trial.metrics.emplace_back("plists_total",
                               static_cast<double>(s.plists_total));
    trial.metrics.emplace_back("frac_entries_2", s.frac_entries_2);
    trial.metrics.emplace_back("raw_bytes_mean", s.plist_bytes_raw.mean());
    io.report.add(std::move(trial));
  }
  table.row({"CAIDA (paper)", "0.7%", "91.9%", "7.0%", "0.6%", "-"});
  table.row({"HeTop (paper)", "0.7%", "92.9%", "6.4%", "0.1%", "-"});
  table.print(std::cout);
  bytes.print(std::cout);

  std::cout << "Shape check: Permission Lists are small in practice — entry\n"
               "counts concentrate at the low end (the paper's point in\n"
               "S4.1/S6.3); see EXPERIMENTS.md for the distribution-shape\n"
               "discussion.\n";
  io.report.write();
  return 0;
}
