// Table 5 — distribution of the number of entries in one Permission List.
//
// Same pipeline as Table 4; reports what fraction of Permission Lists hold
// 1 / 2 / 3 / >3 (destination-list, next-hop) pair entries, plus byte-size
// accounting for the raw and Bloom-compressed encodings (S4.1 proposes
// compressing destination lists with Bloom filters; the paper's Table 5
// likewise does not count destinations inside a list).
#include <iostream>

#include "bench_util.hpp"
#include "eval/static_eval.hpp"

namespace {

using namespace centaur;
using eval::PathSetMode;
using eval::PlistScheme;

void add_row(util::TextTable& table, util::TextTable& bytes,
             const std::string& name, const topo::AsGraph& g,
             std::size_t vantages, std::uint64_t seed, PathSetMode mode,
             PlistScheme scheme, const char* tag) {
  util::Rng rng(seed);
  const eval::PGraphStats s =
      eval::compute_pgraph_stats(g, vantages, rng, mode, scheme);
  table.row({name + " (" + tag + ")", util::fmt_percent(s.frac_entries_1),
             util::fmt_percent(s.frac_entries_2),
             util::fmt_percent(s.frac_entries_3),
             util::fmt_percent(s.frac_entries_gt3),
             util::fmt_count(s.plists_total)});
  bytes.row({name + " (" + tag + ")",
             util::fmt_double(s.plist_bytes_raw.mean(), 1),
             util::fmt_double(s.plist_bytes_raw.quantile(0.99), 1),
             util::fmt_double(s.plist_bytes_bloom.mean(), 1)});
}

}  // namespace

int main() {
  const auto params = bench::banner(
      "bench_table5_permlists",
      "Table 5: number of entries per Permission List");

  const auto standins = bench::make_measured_standins(params);

  util::TextTable table("Table 5 — Permission List entry distribution");
  table.header({"Topology", "=1", "=2", "=3", ">3", "#lists"});
  util::TextTable bytes("Permission List sizes (bytes, ours)");
  bytes.header({"Topology", "raw mean", "raw p99", "bloom mean"});

  for (const auto mode :
       {PathSetMode::kMultipath, PathSetMode::kSinglePath}) {
    const char* tag =
        mode == PathSetMode::kMultipath ? "multipath" : "single-path";
    add_row(table, bytes, "CAIDA-like", standins.caida_like,
            params.pgraph_vantage_sample, params.seed ^ 0x7A51, mode,
            PlistScheme::kMinimal, tag);
    add_row(table, bytes, "HeTop-like", standins.hetop_like,
            params.pgraph_vantage_sample, params.seed ^ 0x7A52, mode,
            PlistScheme::kMinimal, tag);
  }
  table.row({"CAIDA (paper)", "0.7%", "91.9%", "7.0%", "0.6%", "-"});
  table.row({"HeTop (paper)", "0.7%", "92.9%", "6.4%", "0.1%", "-"});
  table.print(std::cout);
  bytes.print(std::cout);

  std::cout << "Shape check: Permission Lists are small in practice — entry\n"
               "counts concentrate at the low end (the paper's point in\n"
               "S4.1/S6.3); see EXPERIMENTS.md for the distribution-shape\n"
               "discussion.\n";
  return 0;
}
