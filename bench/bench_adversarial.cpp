// Adversarial scenario packs — detection latency and blast radius.
//
// Runs the three builtin adversarial packs (route leak, interception,
// policy churn; DESIGN.md §15) across all four protocol arms and reports,
// per pack x arm, the audit flag counts, the detection latency (node
// checks and virtual time until the analyzer first flags a poisoned
// route), and the blast radius (nodes whose selected paths transit the
// misbehaving AS).  The policy arms must detect every pack; the OSPF
// control arm (no policy layer, no RouteView) must stay silent — that
// contrast is the point of the bench.
//
// Every quantity is a deterministic simulation output for the fixed pack
// topology (40 nodes, topology seed 61793, run seed 1 — identical to the
// committed scenarios/*.json), so the JSON baseline gates at tolerance 0.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "faults/campaign.hpp"
#include "faults/scenario.hpp"

namespace {

using namespace centaur;

// The pack construction parameters — must match scenarios/*.json (the
// CommittedJsonPacksMatchBuilders test pins the builders to the files).
constexpr std::size_t kPackNodes = 40;
constexpr std::uint64_t kPackSeed = 1;

struct Pack {
  const char* name;
  faults::ScenarioSpec spec;
};

const char* arm_name(eval::Protocol p) {
  switch (p) {
    case eval::Protocol::kBgp:
      return "bgp";
    case eval::Protocol::kBgpRcn:
      return "bgp_rcn";
    case eval::Protocol::kCentaur:
      return "centaur";
    case eval::Protocol::kOspf:
      return "ospf";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "adversarial",
      "Adversarial packs: detection latency + blast radius per protocol");
  io.report.add_note(
      "fixed pack size (40 nodes, topo seed 61793, run seed 1) at every "
      "scale — identical to the committed scenarios/*.json");

  std::vector<Pack> packs;
  packs.push_back({"route_leak",
                   faults::route_leak_scenario(kPackNodes, kPackSeed)});
  packs.push_back({"interception",
                   faults::interception_scenario(kPackNodes, kPackSeed)});
  packs.push_back({"policy_churn",
                   faults::policy_churn_scenario(kPackNodes, kPackSeed)});

  // All packs share one topology (same style/nodes/seed); build it once.
  const topo::AsGraph graph = packs.front().spec.topology.build();
  std::cout << topo::compute_stats(graph, "adversarial pack topology")
            << "\n\n";

  // One trial per pack x protocol arm, fanned across the trial driver.
  // Inputs are a pure function of the index, so results are bit-identical
  // for any CENTAUR_THREADS.
  constexpr std::size_t kArms = std::size(eval::kAllProtocols);
  struct Timed {
    faults::CampaignResult result;
    double wall_s = 0;
  };
  const auto results = runner::run_trials(
      packs.size() * kArms, io.threads, [&](std::size_t i) {
        faults::ScenarioSpec spec = packs[i / kArms].spec;
        spec.protocol = eval::kAllProtocols[i % kArms];
        // rel_change mutates the graph's relationship table, so arms that
        // rewire must not share one AsGraph across concurrent trials.
        const runner::Stopwatch sw;
        Timed t;
        t.result = faults::run_scenario(spec);
        t.wall_s = sw.seconds();
        return t;
      });

  util::TextTable table(
      "Adversarial packs — first adversarial phase, per protocol arm");
  table.header({"pack", "arm", "flagged", "det evts", "det ms", "blast"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Pack& pack = packs[i / kArms];
    const faults::CampaignResult& r = results[i].result;

    runner::TrialResult trial;
    trial.name = std::string(pack.name) + "_" + arm_name(r.protocol);
    trial.wall_time_s = results[i].wall_s;
    trial.events = r.total_events;
    trial.messages = r.total_messages;
    trial.bytes = r.total_bytes;
    trial.metrics.emplace_back(
        "violations", static_cast<double>(r.analysis.violations_seen));
    const faults::PhaseReport* first_flagged = nullptr;
    for (const faults::PhaseReport& p : r.phases) {
      trial.metrics.emplace_back(
          p.name + "_flagged", static_cast<double>(p.audit_routes_flagged));
      trial.metrics.emplace_back(p.name + "_detection_events",
                                 static_cast<double>(p.detection_events));
      trial.metrics.emplace_back(p.name + "_blast",
                                 static_cast<double>(p.blast_radius));
      if (first_flagged == nullptr && p.audit_routes_flagged > 0) {
        first_flagged = &p;
      }
    }
    io.report.add(trial);

    const faults::PhaseReport& shown =
        first_flagged != nullptr ? *first_flagged : r.phases.front();
    table.row({pack.name, arm_name(r.protocol),
               util::fmt_count(shown.audit_routes_flagged),
               shown.detection_events < 0
                   ? "-"
                   : util::fmt_count(
                         static_cast<std::size_t>(shown.detection_events)),
               shown.detection_time < 0
                   ? "-"
                   : util::fmt_double(shown.detection_time * 1e3, 2),
               util::fmt_count(shown.blast_radius)});
  }
  table.print(std::cout);

  std::cout << "\nPolicy arms flag every pack while the adversary is "
               "active; the OSPF control arm has no policy layer and "
               "must report zero flags and zero blast.\n";
  io.report.write();
  return 0;
}
