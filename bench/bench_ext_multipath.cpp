// Extension study (paper S7): multipath dissemination cost.
//
// "We anticipate Centaur may better support multi-path routing since it
// can propagate multiple paths for a destination in a more compact and
// scalable way."  This bench quantifies that: per vantage AS, disseminate
// the complete co-optimal path set to every destination either as path
// vectors (one announcement per path) or as Centaur downstream links (each
// link of the union DAG once, Permission Lists on multi-homed heads).
#include <iostream>

#include "bench_util.hpp"
#include "eval/static_eval.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "ext_multipath",
      "S7 extension: multipath dissemination, path vector vs Centaur links");
  const auto& params = io.params;

  const std::size_t n = std::max<std::size_t>(400, params.caida_like_nodes / 8);
  util::Rng topo_rng(params.seed ^ 0xE070);
  const topo::AsGraph g =
      topo::tiered_internet(topo::caida_like_params(n), topo_rng);
  std::cout << topo::compute_stats(g, "study topology") << "\n\n";

  // The vantage sample is drawn up front (deterministic); each vantage's
  // dissemination cost is an independent trial for the parallel driver.
  util::Rng pick(params.seed ^ 0xE071);
  const std::vector<std::size_t> sample = pick.sample_without_replacement(n, 6);
  struct Timed {
    eval::MultipathDissemination cost;
    double wall_s = 0;
  };
  const auto results =
      runner::run_trials(sample.size(), io.threads, [&](std::size_t i) {
        const runner::Stopwatch sw;
        Timed t;
        t.cost = eval::multipath_dissemination_cost(
            g, static_cast<topo::NodeId>(sample[i]));
        t.wall_s = sw.seconds();
        return t;
      });

  util::TextTable table("Complete co-optimal path set, per vantage AS");
  table.header({"vantage", "dests", "paths", "max/dest", "PV bytes",
                "Centaur links", "Centaur bytes", "PV/Centaur"});
  util::Accumulator ratios;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const auto v = static_cast<topo::NodeId>(sample[i]);
    const auto& cost = results[i].cost;
    const double ratio =
        static_cast<double>(cost.path_vector_bytes) /
        std::max<double>(1, static_cast<double>(cost.centaur_bytes));
    ratios.add(ratio);
    table.row({std::to_string(v), util::fmt_count(cost.destinations),
               util::fmt_double(cost.total_paths, 0),
               util::fmt_double(cost.max_paths_per_dest, 0),
               util::fmt_double(cost.path_vector_bytes, 0),
               util::fmt_count(cost.centaur_links),
               util::fmt_count(cost.centaur_bytes),
               util::fmt_double(ratio, 2)});
    runner::TrialResult trial;
    trial.name = "vantage_" + std::to_string(v);
    trial.wall_time_s = results[i].wall_s;
    trial.metrics.emplace_back("pv_bytes", cost.path_vector_bytes);
    trial.metrics.emplace_back("centaur_bytes",
                               static_cast<double>(cost.centaur_bytes));
    trial.metrics.emplace_back("pv_over_centaur", ratio);
    io.report.add(std::move(trial));
  }
  table.print(std::cout);

  std::cout << "Mean PV/Centaur byte ratio: " << util::fmt_double(ratios.mean(), 2)
            << "x (min " << util::fmt_double(ratios.min(), 2) << "x, max "
            << util::fmt_double(ratios.max(), 2) << "x).\n"
            << "Path vector re-serialises shared segments once per path;\n"
               "Centaur names each link once, so the gap widens with path\n"
               "diversity — the S7 anticipation holds.\n";
  io.report.write();
  return 0;
}
