// Extension study (paper S7): multipath dissemination cost.
//
// "We anticipate Centaur may better support multi-path routing since it
// can propagate multiple paths for a destination in a more compact and
// scalable way."  This bench quantifies that: per vantage AS, disseminate
// the complete co-optimal path set to every destination either as path
// vectors (one announcement per path) or as Centaur downstream links (each
// link of the union DAG once, Permission Lists on multi-homed heads).
#include <iostream>

#include "bench_util.hpp"
#include "eval/static_eval.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

}  // namespace

int main() {
  const auto params = bench::banner(
      "bench_ext_multipath",
      "S7 extension: multipath dissemination, path vector vs Centaur links");

  const std::size_t n = std::max<std::size_t>(400, params.caida_like_nodes / 8);
  util::Rng topo_rng(params.seed ^ 0xE070);
  const topo::AsGraph g =
      topo::tiered_internet(topo::caida_like_params(n), topo_rng);
  std::cout << topo::compute_stats(g, "study topology") << "\n\n";

  util::TextTable table("Complete co-optimal path set, per vantage AS");
  table.header({"vantage", "dests", "paths", "max/dest", "PV bytes",
                "Centaur links", "Centaur bytes", "PV/Centaur"});
  util::Rng pick(params.seed ^ 0xE071);
  util::Accumulator ratios;
  for (const std::size_t raw : pick.sample_without_replacement(n, 6)) {
    const auto v = static_cast<topo::NodeId>(raw);
    const auto cost = eval::multipath_dissemination_cost(g, v);
    const double ratio =
        static_cast<double>(cost.path_vector_bytes) /
        std::max<double>(1, static_cast<double>(cost.centaur_bytes));
    ratios.add(ratio);
    table.row({std::to_string(v), util::fmt_count(cost.destinations),
               util::fmt_double(cost.total_paths, 0),
               util::fmt_double(cost.max_paths_per_dest, 0),
               util::fmt_double(cost.path_vector_bytes, 0),
               util::fmt_count(cost.centaur_links),
               util::fmt_count(cost.centaur_bytes),
               util::fmt_double(ratio, 2)});
  }
  table.print(std::cout);

  std::cout << "Mean PV/Centaur byte ratio: " << util::fmt_double(ratios.mean(), 2)
            << "x (min " << util::fmt_double(ratios.min(), 2) << "x, max "
            << util::fmt_double(ratios.max(), 2) << "x).\n"
            << "Path vector re-serialises shared segments once per path;\n"
               "Centaur names each link once, so the gap widens with path\n"
               "diversity — the S7 anticipation holds.\n";
  return 0;
}
