// Microbenchmarks for the core data-structure operations whose complexity
// S6.3 analyses: BuildGraph (O(|E| * alpha)), DerivePath (O(d * i)), the
// announcement diff/apply path, the valley-free solver, and the Bloom
// filter used for Permission-List compression.
//
// The custom main (bottom of file) mirrors every per-iteration run into the
// shared BENCH_micro.json report when --json / CENTAUR_BENCH_JSON is set —
// these numbers are the committed perf baselines CI diffs against.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "centaur/announce.hpp"
#include "centaur/build_graph.hpp"
#include "centaur/centaur_node.hpp"
#include "policy/valley_free.hpp"
#include "runner/bench_report.hpp"
#include "sim/network.hpp"
#include "topology/generator.hpp"
#include "util/bloom.hpp"
#include "util/rng.hpp"
#include "util/scale.hpp"
#include "wire/wire_format.hpp"

namespace {

using namespace centaur;
using core::PGraph;
using topo::NodeId;
using topo::Path;

topo::AsGraph make_topology(std::size_t n) {
  util::Rng rng(0xBE7C4 ^ n);
  return topo::tiered_internet(topo::caida_like_params(n), rng);
}

std::map<NodeId, Path> selected_paths(const topo::AsGraph& g, NodeId vantage) {
  std::map<NodeId, Path> selected;
  for (NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    if (dest == vantage) {
      selected[dest] = Path{vantage};
      continue;
    }
    const auto routes = policy::ValleyFreeRoutes::compute(
        g, dest, policy::TieBreak::kPerDestRandom, 42);
    if (routes.at(vantage).reachable()) {
      selected[dest] = routes.path_from(vantage);
    }
  }
  return selected;
}

void BM_ValleyFreeSolver(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  NodeId dest = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::ValleyFreeRoutes::compute(g, dest));
    dest = static_cast<NodeId>((dest + 1) % g.num_nodes());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ValleyFreeSolver)->Range(64, 1024)->Complexity();

void BM_MultipathSolver(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  NodeId dest = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::MultipathRoutes::compute(g, dest));
    dest = static_cast<NodeId>((dest + 1) % g.num_nodes());
  }
}
BENCHMARK(BM_MultipathSolver)->Range(64, 1024);

void BM_BuildGraph(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_local_pgraph(1, selected));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildGraph)->Range(64, 1024)->Complexity();

void BM_DerivePath(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  const PGraph pg = core::build_local_pgraph(1, selected);
  NodeId dest = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pg.derive_path(dest));
    dest = static_cast<NodeId>((dest + 1) % g.num_nodes());
  }
}
BENCHMARK(BM_DerivePath)->Range(64, 1024);

void BM_ExportViewAndDiff(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  const PGraph pg = core::build_local_pgraph(1, selected);
  const auto all = [](NodeId) { return true; };
  const core::ExportedView base = core::make_export_view(pg, all);
  for (auto _ : state) {
    core::ExportedView view = core::make_export_view(pg, all);
    benchmark::DoNotOptimize(core::diff_views(base, view));
  }
}
BENCHMARK(BM_ExportViewAndDiff)->Range(64, 512);

void BM_ApplyFullDelta(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  const PGraph pg = core::build_local_pgraph(1, selected);
  const auto all = [](NodeId) { return true; };
  const core::GraphDelta delta =
      core::diff_views(core::ExportedView{}, core::make_export_view(pg, all));
  for (auto _ : state) {
    PGraph fresh(1);
    benchmark::DoNotOptimize(core::apply_delta(fresh, delta, 2));
  }
}
BENCHMARK(BM_ApplyFullDelta)->Range(64, 512);

void BM_ApplyDelta(benchmark::State& state) {
  // Steady-phase counterpart of BM_ApplyFullDelta: a small incremental
  // delta (a few destinations' paths leaving and returning) applied to an
  // already-assembled neighbor P-graph — the per-message import cost the
  // incremental recompute plane pays in the steady state.
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  auto shrunk = selected;
  std::size_t idx = 0;
  for (auto it = shrunk.begin(); it != shrunk.end();) {
    it = (idx++ % 8 == 3) ? shrunk.erase(it) : std::next(it);
  }
  const auto all = [](NodeId) { return true; };
  const core::ExportedView before =
      core::make_export_view(core::build_local_pgraph(1, selected), all);
  const core::ExportedView after =
      core::make_export_view(core::build_local_pgraph(1, shrunk), all);
  const core::GraphDelta fwd = core::diff_views(before, after);
  const core::GraphDelta back = core::diff_views(after, before);
  PGraph target(1);
  core::apply_delta(target, core::diff_views(core::ExportedView{}, before), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::apply_delta(target, fwd, 2));
    benchmark::DoNotOptimize(core::apply_delta(target, back, 2));
  }
  // Deterministic workload shape (gated at tolerance 0).
  state.counters["delta_links"] =
      static_cast<double>(fwd.upserts.size() + fwd.removes.size());
  state.counters["delta_dests"] =
      static_cast<double>(fwd.dest_adds.size() + fwd.dest_removes.size());
}
BENCHMARK(BM_ApplyDelta)->Range(64, 512);

void BM_Reselect(benchmark::State& state) {
  // The incremental-plane reselect sweep: after convergence, a
  // policy_changed() re-ranks every known destination by rank-merging the
  // per-neighbor candidate summaries (no selection actually changes, so
  // nothing floods) — the per-delta decision cost of the steady phase.
  auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(0x5EEC7);
  sim::Network net(g, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    net.attach(v, std::make_unique<core::CentaurNode>(g));
  }
  net.start_all_and_converge();
  auto& node = dynamic_cast<core::CentaurNode&>(net.node(1));
  for (auto _ : state) {
    node.policy_changed();
  }
  // Deterministic workload shape (gated at tolerance 0).
  state.counters["selected_dests"] =
      static_cast<double>(node.selected_paths().size());
}
BENCHMARK(BM_Reselect)->Range(64, 512);

void BM_EncodeDelta(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  const PGraph pg = core::build_local_pgraph(1, selected);
  const auto all = [](NodeId) { return true; };
  const core::GraphDelta delta =
      core::diff_views(core::ExportedView{}, core::make_export_view(pg, all));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wire::encode(delta, wire::PlistEncoding::kExplicit));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delta.byte_size(false)));
}
BENCHMARK(BM_EncodeDelta)->Range(64, 512);

void BM_EncodeBatch(benchmark::State& state) {
  // Datagram batching (CENTAUR_BATCH_DATAGRAMS): encode k same-neighbor
  // updates as one batch datagram and report the byte delta against k
  // separate single-delta datagrams.  Each member trades its two-byte
  // header for a one-byte flags field, so the batch saves k-2 bytes minus
  // the member-count varint — the counters make that exact delta a gated
  // datapoint (batching is about datagram count, not bytes; the bytes must
  // simply never regress).
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  const PGraph pg = core::build_local_pgraph(1, selected);
  const auto all = [](NodeId) { return true; };
  const core::GraphDelta whole =
      core::diff_views(core::ExportedView{}, core::make_export_view(pg, all));
  // Four members, as if four same-instant floods had queued in the outbox;
  // round-robin over the sorted upserts keeps each member canonical.
  constexpr std::size_t kMembers = 4;
  std::vector<core::GraphDelta> members(kMembers);
  for (std::size_t i = 0; i < whole.upserts.size(); ++i) {
    members[i % kMembers].upserts.push_back(whole.upserts[i]);
  }
  std::vector<const core::GraphDelta*> ptrs;
  for (const core::GraphDelta& m : members) ptrs.push_back(&m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wire::encode_batch(ptrs, wire::PlistEncoding::kExplicit));
  }
  const std::size_t batch_bytes =
      wire::encoded_batch_size(ptrs, wire::PlistEncoding::kExplicit);
  std::size_t separate_bytes = 0;
  for (const core::GraphDelta& m : members) {
    separate_bytes += m.byte_size(false);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_bytes));
  // Deterministic workload shape (gated at tolerance 0).
  state.counters["batch_members"] = static_cast<double>(kMembers);
  state.counters["batch_bytes"] = static_cast<double>(batch_bytes);
  state.counters["separate_bytes"] = static_cast<double>(separate_bytes);
  state.counters["bytes_saved"] =
      static_cast<double>(separate_bytes - batch_bytes);
}
BENCHMARK(BM_EncodeBatch)->Range(64, 512);

void BM_DecodeDelta(benchmark::State& state) {
  const auto g = make_topology(static_cast<std::size_t>(state.range(0)));
  const auto selected = selected_paths(g, 1);
  const PGraph pg = core::build_local_pgraph(1, selected);
  const auto all = [](NodeId) { return true; };
  const core::GraphDelta delta =
      core::diff_views(core::ExportedView{}, core::make_export_view(pg, all));
  const std::vector<std::uint8_t> buf =
      wire::encode(delta, wire::PlistEncoding::kExplicit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_DecodeDelta)->Range(64, 512);

void BM_BloomInsertContains(benchmark::State& state) {
  util::BloomFilter f(static_cast<std::size_t>(state.range(0)), 0.01);
  std::uint32_t i = 0;
  for (auto _ : state) {
    f.insert(i);
    benchmark::DoNotOptimize(f.contains(i / 2));
    ++i;
  }
}
BENCHMARK(BM_BloomInsertContains)->Range(64, 4096);

void BM_PermissionListLookup(benchmark::State& state) {
  core::PermissionList pl;
  for (NodeId d = 0; d < static_cast<NodeId>(state.range(0)); ++d) {
    pl.add(d, d % 3);
  }
  NodeId d = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pl.permits(d, d % 3));
    d = (d + 1) % static_cast<NodeId>(state.range(0));
  }
}
BENCHMARK(BM_PermissionListLookup)->Range(8, 1024);

// Console reporting plus collection of per-iteration runs into the shared
// JSON schema (wall_time_s = mean real time per iteration; iteration count
// and items/s travel as metrics).  Aggregate rows (BigO/RMS) stay
// console-only.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollector(runner::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      runner::TrialResult t;
      t.name = run.benchmark_name();
      t.wall_time_s =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      t.metrics.emplace_back("iterations",
                             static_cast<double>(run.iterations));
      for (const auto& [counter_name, counter] : run.counters) {
        t.metrics.emplace_back(counter_name, counter.value);
      }
      report_->add(std::move(t));
    }
  }

 private:
  runner::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      runner::BenchReport::resolve_path(&argc, argv, "micro");
  runner::BenchReport report("micro",
                             centaur::util::to_string(
                                 centaur::util::scale_from_env()),
                             /*threads=*/1);
  report.set_path(json_path);
  report.add_note(
      "centaur bytes = exact wire-codec encoded length (v1, varint+delta)");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollector collector(&report);
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();
  report.write();
  return 0;
}
