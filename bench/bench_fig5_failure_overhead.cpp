// Figure 5 — immediate overhead of a single link failure.
//
// For each sampled link, count the update messages the two endpoint nodes
// emit immediately (no cascading): BGP withdraws per destination per
// exported neighbor; Centaur withdraws the one failed link per neighbor
// whose exported view contained it.  The paper reports Centaur sending
// roughly 100-1000x fewer messages on the RouteViews-derived topology.
#include <iostream>

#include "bench_util.hpp"
#include "eval/static_eval.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

runner::TrialResult report(const std::string& name, const std::string& tag,
                           const topo::AsGraph& g, std::size_t link_sample,
                           std::uint64_t seed) {
  const runner::Stopwatch sw;
  util::Rng rng(seed);
  const eval::FailureOverhead fo =
      eval::immediate_failure_overhead(g, link_sample, rng);

  util::TextTable table("Figure 5 — " + name + " (" +
                        util::fmt_count(fo.links_sampled) +
                        " sampled link failures)");
  table.header({"Protocol", "mean msgs", "median", "p90", "max"});
  auto row = [&table](const char* proto, const util::Accumulator& acc) {
    table.row({proto, util::fmt_double(acc.mean(), 1),
               util::fmt_double(acc.median(), 1),
               util::fmt_double(acc.quantile(0.9), 1),
               util::fmt_double(acc.max(), 1)});
  };
  row("BGP", fo.bgp_messages);
  row("Centaur", fo.centaur_messages);
  table.print(std::cout);

  const double ratio =
      fo.bgp_messages.mean() / std::max(1.0, fo.centaur_messages.mean());
  std::cout << "Centaur reduction factor (mean BGP / mean Centaur): "
            << util::fmt_double(ratio, 1) << "x\n";
  std::cout << "Paper: roughly 100-1000x fewer update messages; the factor\n"
               "grows with topology size (more destinations behind each\n"
               "link), so expect the low end at reduced CENTAUR_SCALE.\n\n";

  // CDF series for the figure itself.
  util::TextTable cdf("Figure 5 CDF series — " + name);
  cdf.header({"CDF", "BGP msgs", "Centaur msgs"});
  const util::Cdf bgp_cdf(fo.bgp_messages.samples());
  const util::Cdf cent_cdf(fo.centaur_messages.samples());
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    cdf.row({util::fmt_percent(q, 0), util::fmt_double(bgp_cdf.inverse(q), 0),
             util::fmt_double(cent_cdf.inverse(q), 0)});
  }
  cdf.print(std::cout);

  // This is a static (no-simulator) analysis: events/messages/bytes stay 0,
  // the figure values travel as named metrics.
  runner::TrialResult t;
  t.name = tag;
  t.wall_time_s = sw.seconds();
  t.metrics.emplace_back("links_sampled",
                         static_cast<double>(fo.links_sampled));
  t.metrics.emplace_back("bgp_mean_msgs", fo.bgp_messages.mean());
  t.metrics.emplace_back("centaur_mean_msgs", fo.centaur_messages.mean());
  t.metrics.emplace_back("reduction_factor", ratio);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "fig5_failure_overhead",
      "Figure 5: immediate update messages after one link failure "
      "(BGP vs Centaur, no cascading)");
  const auto& params = io.params;

  const auto standins = bench::make_measured_standins(params);
  io.report.add(report("CAIDA-like topology", "caida_like",
                       standins.caida_like, params.fig5_link_sample,
                       params.seed ^ 0xF150));
  io.report.add(report("HeTop-like topology", "hetop_like",
                       standins.hetop_like, params.fig5_link_sample,
                       params.seed ^ 0xF151));
  io.report.write();
  return 0;
}
