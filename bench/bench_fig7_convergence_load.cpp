// Figure 7 — CDF of convergence load (messages per link flip), Centaur vs
// OSPF.
//
// OSPF has no policies: every link-state change floods over every link in
// the network, so its per-event load is Theta(E) regardless of how many
// destinations care.  The paper observes Centaur converging with fewer
// messages than OSPF in 82% of the flip events.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiments.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

}  // namespace

int main() {
  const auto params = bench::banner(
      "bench_fig7_convergence_load",
      "Figure 7: CDF of message load per link flip (Centaur vs OSPF)");

  util::Rng topo_rng(params.seed ^ 0xF170);
  const topo::AsGraph g = topo::brite_like(
      params.proto_nodes, 2, std::max<std::size_t>(4, params.proto_nodes / 40),
      topo_rng);
  std::cout << topo::compute_stats(g, "BRITE-like prototype topology")
            << "\n\n";

  const auto centaur_series = eval::run_link_flips(
      g, eval::Protocol::kCentaur, params.proto_flip_sample,
      util::Rng(params.seed ^ 0xF7F7));
  const auto ospf_series = eval::run_link_flips(
      g, eval::Protocol::kOspf, params.proto_flip_sample,
      util::Rng(params.seed ^ 0xF7F7));  // identical flip sequence

  const util::Cdf centaur_cdf(centaur_series.message_counts);
  const util::Cdf ospf_cdf(ospf_series.message_counts);

  util::TextTable table("Figure 7 — message count CDF per flip");
  table.header({"CDF", "Centaur", "OSPF"});
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.82, 0.9, 0.99}) {
    table.row({util::fmt_percent(q, 0),
               util::fmt_double(centaur_cdf.inverse(q), 0),
               util::fmt_double(ospf_cdf.inverse(q), 0)});
  }
  table.print(std::cout);

  std::size_t centaur_fewer = 0;
  for (std::size_t i = 0; i < centaur_series.message_counts.size(); ++i) {
    if (centaur_series.message_counts[i] < ospf_series.message_counts[i]) {
      ++centaur_fewer;
    }
  }
  std::cout << "Centaur sends fewer messages than OSPF in "
            << util::fmt_percent(
                   static_cast<double>(centaur_fewer) /
                   static_cast<double>(
                       std::max<std::size_t>(1,
                                             centaur_series.message_counts.size())))
            << " of flip events (paper: 82%).\n"
            << "OSPF floods every change over every link (no policies);\n"
               "Centaur's tail cases are flips near well-connected cores\n"
               "where selected-path churn touches many neighbors.\n";
  return 0;
}
