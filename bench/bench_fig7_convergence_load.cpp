// Figure 7 — CDF of convergence load (messages per link flip), Centaur vs
// OSPF.
//
// OSPF has no policies: every link-state change floods over every link in
// the network, so its per-event load is Theta(E) regardless of how many
// destinations care.  The paper observes Centaur converging with fewer
// messages than OSPF in 82% of the flip events.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiments.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "fig7_convergence_load",
      "Figure 7: CDF of message load per link flip (Centaur vs OSPF)");
  const auto& params = io.params;

  util::Rng topo_rng(params.seed ^ 0xF170);
  const topo::AsGraph g = topo::brite_like(
      params.proto_nodes, 2, std::max<std::size_t>(4, params.proto_nodes / 40),
      topo_rng);
  std::cout << topo::compute_stats(g, "BRITE-like prototype topology")
            << "\n\n";

  eval::RunOptions opts;
  opts.analysis = eval::analysis_from_env();
  // Both arms replay the identical flip sequence (same fixed seed) — one
  // trial per protocol through the parallel driver.
  struct Arm {
    const char* name;
    eval::Protocol proto;
  };
  const Arm arms[] = {
      {"centaur", eval::Protocol::kCentaur},
      {"ospf", eval::Protocol::kOspf},
  };
  struct Timed {
    eval::FlipSeries series;
    double wall_s = 0;
  };
  const auto results =
      runner::run_trials(std::size(arms), io.threads, [&](std::size_t i) {
        const runner::Stopwatch sw;
        Timed t;
        t.series = eval::run_link_flips(g, arms[i].proto,
                                        params.proto_flip_sample,
                                        util::Rng(params.seed ^ 0xF7F7), opts);
        t.wall_s = sw.seconds();
        return t;
      });
  for (std::size_t i = 0; i < std::size(arms); ++i) {
    io.report.add(
        bench::series_trial(arms[i].name, results[i].wall_s, results[i].series));
  }
  const auto& centaur_series = results[0].series;
  const auto& ospf_series = results[1].series;

  const util::Cdf centaur_cdf(centaur_series.message_counts);
  const util::Cdf ospf_cdf(ospf_series.message_counts);

  util::TextTable table("Figure 7 — message count CDF per flip");
  table.header({"CDF", "Centaur", "OSPF"});
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.82, 0.9, 0.99}) {
    table.row({util::fmt_percent(q, 0),
               util::fmt_double(centaur_cdf.inverse(q), 0),
               util::fmt_double(ospf_cdf.inverse(q), 0)});
  }
  table.print(std::cout);

  std::size_t centaur_fewer = 0;
  for (std::size_t i = 0; i < centaur_series.message_counts.size(); ++i) {
    if (centaur_series.message_counts[i] < ospf_series.message_counts[i]) {
      ++centaur_fewer;
    }
  }
  std::cout << "Centaur sends fewer messages than OSPF in "
            << util::fmt_percent(
                   static_cast<double>(centaur_fewer) /
                   static_cast<double>(
                       std::max<std::size_t>(1,
                                             centaur_series.message_counts.size())))
            << " of flip events (paper: 82%).\n"
            << "OSPF floods every change over every link (no policies);\n"
               "Centaur's tail cases are flips near well-connected cores\n"
               "where selected-path churn touches many neighbors.\n";
  io.report.write();
  return 0;
}
