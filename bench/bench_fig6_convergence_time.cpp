// Figure 6 — CDF of convergence time, Centaur vs BGP.
//
// The paper's prototype experiment (S5.3): generate a BRITE topology,
// infer customer-provider relationships from node degree, let the network
// stabilise, then sequentially flip links (remove, reconverge, restore,
// reconverge), measuring the time to re-stabilise after each transition.
// Link delays are uniform in [0, 5) ms; CPU delay is ignored.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiments.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "fig6_convergence_time",
      "Figure 6: CDF of convergence time after link flips (Centaur vs BGP)");
  const auto& params = io.params;

  util::Rng topo_rng(params.seed ^ 0xF160);
  const topo::AsGraph g = topo::brite_like(
      params.proto_nodes, 2, std::max<std::size_t>(4, params.proto_nodes / 40),
      topo_rng);
  std::cout << topo::compute_stats(g, "BRITE-like prototype topology")
            << "\n\n";

  // BGP runs with the standard 30 s eBGP MRAI (the SSFNet default the
  // paper's DistComm prototype inherits) — the dominant term in its
  // convergence time — plus an MRAI-less ablation showing the
  // propagation-limited floor.
  eval::RunOptions base;
  base.analysis = eval::analysis_from_env();
  eval::RunOptions mrai30 = base;
  mrai30.bgp_mrai = 30.0;

  // One trial per protocol arm, fanned across the trial driver.  Every arm
  // deliberately reuses the same seed so all protocols replay the identical
  // flip sequence; each trial's inputs are a pure function of its index, so
  // the results are bit-identical for any CENTAUR_THREADS.
  struct Arm {
    const char* name;
    eval::Protocol proto;
    const eval::RunOptions& opts;
  };
  const Arm arms[] = {
      {"centaur", eval::Protocol::kCentaur, base},
      {"bgp_mrai30", eval::Protocol::kBgp, mrai30},
      {"bgp_nomrai", eval::Protocol::kBgp, base},
  };
  struct Timed {
    eval::FlipSeries series;
    double wall_s = 0;
  };
  const auto results =
      runner::run_trials(std::size(arms), io.threads, [&](std::size_t i) {
        const runner::Stopwatch sw;
        Timed t;
        t.series = eval::run_link_flips(g, arms[i].proto,
                                        params.proto_flip_sample,
                                        util::Rng(params.seed ^ 0xF1F1),
                                        arms[i].opts);
        t.wall_s = sw.seconds();
        return t;
      });
  for (std::size_t i = 0; i < std::size(arms); ++i) {
    io.report.add(
        bench::series_trial(arms[i].name, results[i].wall_s, results[i].series));
  }
  const auto& centaur_series = results[0].series;
  const auto& bgp_series = results[1].series;
  const auto& bgp_nomrai_series = results[2].series;

  const util::Cdf centaur_cdf(centaur_series.convergence_times);
  const util::Cdf bgp_cdf(bgp_series.convergence_times);
  const util::Cdf bgp_nomrai_cdf(bgp_nomrai_series.convergence_times);

  util::TextTable table("Figure 6 — convergence time CDF (milliseconds)");
  table.header({"CDF", "Centaur", "BGP (30s MRAI)", "BGP (no MRAI)"});
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    table.row({util::fmt_percent(q, 0),
               util::fmt_double(centaur_cdf.inverse(q) * 1e3, 2),
               util::fmt_double(bgp_cdf.inverse(q) * 1e3, 2),
               util::fmt_double(bgp_nomrai_cdf.inverse(q) * 1e3, 2)});
  }
  table.print(std::cout);

  util::Accumulator ca, ba;
  for (double t : centaur_series.convergence_times) ca.add(t);
  for (double t : bgp_series.convergence_times) ba.add(t);
  std::size_t centaur_faster = 0;
  for (std::size_t i = 0; i < centaur_series.convergence_times.size(); ++i) {
    if (centaur_series.convergence_times[i] <=
        bgp_series.convergence_times[i]) {
      ++centaur_faster;
    }
  }
  std::cout << "Transitions measured: "
            << centaur_series.convergence_times.size() << " (down+up per link)\n"
            << "Mean convergence: Centaur "
            << util::fmt_double(ca.mean() * 1e3, 2) << " ms, BGP "
            << util::fmt_double(ba.mean() * 1e3, 2) << " ms\n"
            << "Centaur at least as fast in "
            << util::fmt_percent(static_cast<double>(centaur_faster) /
                                 static_cast<double>(std::max<std::size_t>(
                                     1, centaur_series.convergence_times.size())))
            << " of transitions\n"
            << "Paper: \"Centaur converges much faster than BGP almost all "
               "the time\" (Fig 6).\n";
  io.report.write();
  return 0;
}
