// Shared scaffolding for the reproduction benches.
//
// Every bench binary is a standalone executable that regenerates one table
// or figure of the paper, printing (a) the run configuration, (b) our
// measured rows/series, and (c) the paper's reference values for
// side-by-side comparison.  All benches honour CENTAUR_SCALE
// ({smoke,default,large}) and are deterministic for a fixed scale.
#pragma once

#include <iostream>
#include <string>
#include <utility>

#include "eval/experiments.hpp"
#include "runner/bench_report.hpp"
#include "runner/parallel.hpp"
#include "topology/generator.hpp"
#include "topology/stats.hpp"
#include "util/rng.hpp"
#include "util/scale.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace centaur::bench {

using util::Scale;
using util::ScaleParams;

/// Everything a bench main needs: the scale parameters, the trial-driver
/// worker count, and the (possibly disabled) JSON report.
struct BenchIo {
  ScaleParams params;
  std::size_t threads = 1;
  runner::BenchReport report;
};

/// Parses `--json <path>` out of argv, reads CENTAUR_SCALE / CENTAUR_THREADS
/// / CENTAUR_BENCH_JSON, prints the standard banner, and returns the bundle.
/// `name` is the bench's short name (no "bench_" prefix) — it keys the
/// default BENCH_<name>.json file name.
inline BenchIo bench_setup(int* argc, char** argv, const std::string& name,
                           const std::string& what) {
  const Scale scale = util::scale_from_env();
  const std::size_t threads = runner::threads_from_env();
  BenchIo io{util::params_for(scale), threads,
             runner::BenchReport(name, util::to_string(scale), threads)};
  io.report.set_path(runner::BenchReport::resolve_path(argc, argv, name));
  // Sizing-model provenance: since the wire codec landed, Centaur byte
  // counts are exact encoded lengths, not the old fixed-header estimate.
  io.report.add_note(
      "centaur bytes = exact wire-codec encoded length (v1, varint+delta)");
  std::cout << "################################################################\n"
            << "# bench_" << name << "\n"
            << "# " << what << "\n"
            << "# scale=" << util::to_string(scale)
            << " (set CENTAUR_SCALE=smoke|default|large)"
            << " threads=" << threads << " (CENTAUR_THREADS)\n"
            << "# json="
            << (io.report.enabled() ? "on (--json / CENTAUR_BENCH_JSON)"
                                    : "off (--json <path> to enable)")
            << "\n"
            << "################################################################\n\n";
  return io;
}

/// Packages a link-flip series as a JSON trial row: run totals plus the
/// summary metrics the figures are drawn from.
inline runner::TrialResult series_trial(std::string name, double wall_s,
                                        const eval::FlipSeries& s) {
  runner::TrialResult t;
  t.name = std::move(name);
  t.wall_time_s = wall_s;
  t.events = s.events;
  t.messages = s.total_messages;
  t.bytes = s.total_bytes;
  util::Accumulator conv, msgs;
  for (const double c : s.convergence_times) conv.add(c);
  for (const double m : s.message_counts) msgs.add(m);
  t.metrics.emplace_back("transitions",
                         static_cast<double>(s.convergence_times.size()));
  if (!s.convergence_times.empty()) {
    t.metrics.emplace_back("mean_convergence_s", conv.mean());
    t.metrics.emplace_back("mean_messages_per_flip", msgs.mean());
  }
  t.metrics.emplace_back(
      "cold_start_messages",
      static_cast<double>(s.cold_start.messages_sent));
  t.metrics.emplace_back("cold_start_time_s", s.cold_start_time);
  t.metrics.emplace_back("check_violations",
                         static_cast<double>(s.analysis.violations_seen));
  return t;
}

/// The two synthetic measured-topology stand-ins (see DESIGN.md for the
/// substitution rationale).  Deterministic per scale.
struct MeasuredStandIns {
  topo::AsGraph caida_like;
  topo::AsGraph hetop_like;
};

inline MeasuredStandIns make_measured_standins(const ScaleParams& params) {
  MeasuredStandIns out;
  util::Rng caida_rng(params.seed ^ 0xCA1DA);
  out.caida_like =
      topo::tiered_internet(topo::caida_like_params(params.caida_like_nodes),
                            caida_rng);
  util::Rng hetop_rng(params.seed ^ 0x4E709);
  out.hetop_like =
      topo::tiered_internet(topo::hetop_like_params(params.hetop_like_nodes),
                            hetop_rng);
  return out;
}

}  // namespace centaur::bench
