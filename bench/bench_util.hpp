// Shared scaffolding for the reproduction benches.
//
// Every bench binary is a standalone executable that regenerates one table
// or figure of the paper, printing (a) the run configuration, (b) our
// measured rows/series, and (c) the paper's reference values for
// side-by-side comparison.  All benches honour CENTAUR_SCALE
// ({smoke,default,large}) and are deterministic for a fixed scale.
#pragma once

#include <iostream>
#include <string>

#include "topology/generator.hpp"
#include "topology/stats.hpp"
#include "util/rng.hpp"
#include "util/scale.hpp"
#include "util/table.hpp"

namespace centaur::bench {

using util::Scale;
using util::ScaleParams;

/// Prints the standard bench banner and returns the active scale params.
inline ScaleParams banner(const std::string& name, const std::string& what) {
  const Scale scale = util::scale_from_env();
  const ScaleParams params = util::params_for(scale);
  std::cout << "################################################################\n"
            << "# " << name << "\n"
            << "# " << what << "\n"
            << "# scale=" << util::to_string(scale)
            << " (set CENTAUR_SCALE=smoke|default|large)\n"
            << "################################################################\n\n";
  return params;
}

/// The two synthetic measured-topology stand-ins (see DESIGN.md for the
/// substitution rationale).  Deterministic per scale.
struct MeasuredStandIns {
  topo::AsGraph caida_like;
  topo::AsGraph hetop_like;
};

inline MeasuredStandIns make_measured_standins(const ScaleParams& params) {
  MeasuredStandIns out;
  util::Rng caida_rng(params.seed ^ 0xCA1DA);
  out.caida_like =
      topo::tiered_internet(topo::caida_like_params(params.caida_like_nodes),
                            caida_rng);
  util::Rng hetop_rng(params.seed ^ 0x4E709);
  out.hetop_like =
      topo::tiered_internet(topo::hetop_like_params(params.hetop_like_nodes),
                            hetop_rng);
  return out;
}

}  // namespace centaur::bench
