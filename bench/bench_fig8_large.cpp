// Figure 8, large-scale arm — 100k+-AS cold-start convergence on the
// sharded event plane (DESIGN.md §13).
//
// The Fig 8 sweep (bench_fig8_scalability) measures per-event update
// overhead on topologies up to a few hundred nodes.  This arm answers the
// scale question instead: a tiered-internet topology at (or beyond) the
// paper's measured-table sizes ×4, cold-started to quiescence under
// CENTAUR_SHARDS-way topology sharding, reporting wall time, peak-RSS
// growth, and the per-shard event/channel breakdown.
//
// Workload notes (also emitted as JSON provenance):
//   * Origination is destination-limited to the lowest fig8_large_origins
//     ids (the generator's core tiers): full-mesh origination is quadratic
//     in routes and infeasible at this scale for every protocol.  Routing
//     for the originated set is complete and unmodified.
//   * Centaur runs sharded AND unsharded; the deterministic counters must
//     match exactly (the sharded plane's bit-identity contract, asserted
//     here at full scale), so the two wall times are directly comparable.
//   * BGP runs as the sharded baseline protocol.
//   * OSPF is excluded: its per-node LSDB is O(total links), which at 100k
//     nodes is quadratic aggregate memory — infeasible by design, not by
//     implementation.
//   * The invariant analyzer stays off: a quiescence sweep re-derives every
//     (node, destination) pair, which at this scale costs more than the
//     run it checks.  Identity/invariant coverage for the sharded plane
//     lives in tests/shard_identity_test.cpp.
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eval/experiments.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace centaur;

/// Pins CENTAUR_SHARDS for one trial; restores the caller's value on exit
/// (the Network constructor samples the environment).
class ScopedShards {
 public:
  explicit ScopedShards(std::size_t count) {
    const char* prev = std::getenv("CENTAUR_SHARDS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("CENTAUR_SHARDS", std::to_string(count).c_str(), 1);
  }
  ~ScopedShards() {
    if (had_prev_) {
      ::setenv("CENTAUR_SHARDS", prev_.c_str(), 1);
    } else {
      ::unsetenv("CENTAUR_SHARDS");
    }
  }
  ScopedShards(const ScopedShards&) = delete;
  ScopedShards& operator=(const ScopedShards&) = delete;

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// Deterministic cold-start outcome, for the sharded-vs-unsharded identity
/// assertion.
struct ColdCounters {
  std::uint64_t events = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  double converged_at = 0;

  bool operator==(const ColdCounters&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "fig8_large",
      "Figure 8 (large-scale arm): 100k+-AS tiered-internet cold start "
      "under the sharded event plane");
  const auto& params = io.params;
  const std::size_t n = params.fig8_large_nodes;
  const auto origins = static_cast<topo::NodeId>(params.fig8_large_origins);
  const std::size_t shards = runner::shards_from_env() > 1
                                 ? runner::shards_from_env()
                                 : 4;  // the arm exists to exercise sharding

  util::Rng topo_rng(params.seed ^ 0xF18A);
  const runner::Stopwatch gen_sw;
  const topo::AsGraph g =
      topo::tiered_internet(topo::caida_like_params(n), topo_rng);
  const double gen_s = gen_sw.seconds();
  std::cout << "topology: " << g.num_nodes() << " nodes, " << g.num_links()
            << " links (tiered_internet, generated in "
            << util::fmt_double(gen_s, 2) << " s)\n"
            << "origins:  lowest " << origins << " ids (destination-limited)\n"
            << "shards:   " << shards << " (CENTAUR_SHARDS)\n\n";

  eval::RunOptions opts;
  opts.origin_limit = origins;

  util::TextTable table("Figure 8 large — cold start to quiescence");
  table.header({"Arm", "Wall s", "Sim s", "Events", "Messages", "MB sent",
                "RSS +MiB"});

  ColdCounters sharded_counters, unsharded_counters;
  const auto cold_start = [&](const std::string& name, eval::Protocol proto,
                              std::size_t shard_count,
                              ColdCounters* counters_out) {
    const ScopedShards pin(shard_count);
    const std::uint64_t rss_before = runner::peak_rss_kb();
    util::Rng rng(params.seed ^ 0xF888);
    const runner::Stopwatch sw;
    const eval::ProtocolRun run(g, proto, rng, opts);
    runner::TrialResult t;
    t.name = name;
    t.wall_time_s = sw.seconds();
    const sim::Simulator& sim =
        const_cast<eval::ProtocolRun&>(run).network().simulator();
    t.events = sim.executed();
    t.messages = run.cold_start().messages_sent;
    t.bytes = run.cold_start().bytes_sent;
    t.peak_rss_delta_kb = runner::peak_rss_kb() - rss_before;
    t.metrics.emplace_back("cold_start_time_s", run.cold_start_time());
    t.metrics.emplace_back("shards", static_cast<double>(sim.shards()));
    if (sim.shards() > 1) {
      // Per-shard breakdown: events are deterministic (gateable); wall
      // seconds are machine noise, so they ride in a provenance note.
      std::string walls;
      std::uint64_t channel_total = 0;
      for (std::size_t s = 0; s < sim.shards(); ++s) {
        const sim::Simulator::ShardStats& st = sim.shard_stats()[s];
        t.metrics.emplace_back("shard" + std::to_string(s) + "_events",
                               static_cast<double>(st.events));
        if (!walls.empty()) walls += ", ";
        walls += "s" + std::to_string(s) + "=" +
                 util::fmt_double(st.wall_s, 2) + "s";
        for (std::size_t d = 0; d < sim.shards(); ++d) {
          channel_total += sim.channel_messages(s, d);
        }
      }
      t.metrics.emplace_back("cross_shard_messages",
                             static_cast<double>(channel_total));
      io.report.add_note(name + " per-shard exec wall: " + walls);
    }
    if (counters_out != nullptr) {
      *counters_out = ColdCounters{t.events, t.messages, t.bytes,
                                   run.cold_start_time()};
    }
    table.row({name, util::fmt_double(t.wall_time_s, 1),
               util::fmt_double(run.cold_start_time(), 1),
               util::fmt_count(t.events), util::fmt_count(t.messages),
               util::fmt_double(static_cast<double>(t.bytes) / (1 << 20), 1),
               util::fmt_double(static_cast<double>(t.peak_rss_delta_kb) / 1024,
                                0)});
    io.report.add(std::move(t));
  };

  // Largest trial first so its peak-RSS delta reflects the real footprint
  // (the kernel high-water mark only rises; later, smaller trials report
  // the growth they add on top, typically ~0).
  cold_start("centaur_sharded", eval::Protocol::kCentaur, shards,
             &sharded_counters);
  cold_start("centaur_unsharded", eval::Protocol::kCentaur, 1,
             &unsharded_counters);
  cold_start("bgp_sharded", eval::Protocol::kBgp, shards, nullptr);
  table.print(std::cout);

  if (!(sharded_counters == unsharded_counters)) {
    // The whole point of the deterministic barrier protocol: if this fires,
    // the sharded plane broke bit-identity at scale.
    throw std::logic_error(
        "fig8_large: sharded and unsharded Centaur cold starts diverged");
  }
  std::cout << "\nIdentity check: sharded (" << shards
            << "-way) and unsharded Centaur cold starts are bit-identical ("
            << util::fmt_count(sharded_counters.events) << " events, "
            << util::fmt_count(sharded_counters.messages) << " messages).\n";

  io.report.add_note("topology: tiered_internet caida_like n=" +
                     std::to_string(g.num_nodes()) + " links=" +
                     std::to_string(g.num_links()) + " generated in " +
                     util::fmt_double(gen_s, 2) + " s");
  io.report.add_note(
      "origination limited to lowest " + std::to_string(origins) +
      " ids (core tiers): full-mesh origination is quadratic in routes and "
      "infeasible at this scale for every protocol; routing for the "
      "originated set is complete");
  io.report.add_note(
      "sharded vs unsharded Centaur: identical deterministic counters "
      "(asserted in-run); wall times in the trial rows are directly "
      "comparable");
  io.report.add_note(
      "OSPF excluded: per-node LSDB is O(total links) => quadratic "
      "aggregate memory at 100k+ nodes (infeasible by design)");
  io.report.add_note(
      "invariant analyzer off: a quiescence sweep re-derives every "
      "(node, destination) pair; sharded-plane identity/invariant coverage "
      "lives in tests/shard_identity_test.cpp");
  io.report.write();
  return 0;
}
