// Serving-plane query bench (DESIGN.md §14.5).
//
// Phase 1 ("live"): query lanes hammer the RCU snapshot engine while the
// Centaur protocol cold-starts and flips links on another thread — reads
// race publishes, which is the TSan workload; QPS and latency percentiles
// are reported but never gated (machine-dependent).
//
// Phase 2 ("steady"): after convergence the canonical query set is answered
// at 1 thread and at CENTAUR_SERVE_THREADS lanes, asserted bit-identical,
// and the resulting counters (statuses, hops, disjoint-path histogram,
// publish counts) become the gated datapoints of BENCH_query.json
// (baselines/BENCH_query.json, compared at --tolerance 0 by CI).
#include <iostream>

#include "bench_util.hpp"
#include "serve/query_bench.hpp"

int main(int argc, char** argv) {
  using namespace centaur;

  auto io = bench::bench_setup(
      &argc, argv, "query",
      "Serving plane: k-path queries over RCU P-graph snapshots");

  serve::QueryBenchConfig config;
  config.nodes = io.params.proto_nodes;
  config.seed = io.params.seed ^ 0x5E62E;
  config.serve = eval::serve_options_from_env();

  std::cout << "nodes=" << config.nodes << " query_threads="
            << config.serve.query_threads << " (CENTAUR_SERVE_THREADS)"
            << " k=" << config.serve.query_k << " (CENTAUR_QUERY_K)"
            << " snapshots=" << eval::to_string(config.serve.snapshot_policy)
            << " (CENTAUR_SNAPSHOT_POLICY)\n\n";

  const serve::QueryBenchResult result = serve::run_query_bench(config);

  const auto metric = [](const runner::TrialResult& t, const char* key) {
    for (const auto& [name, value] : t.metrics) {
      if (name == std::string(key)) return value;
    }
    return 0.0;
  };
  util::TextTable live("live phase — queries racing convergence");
  live.header({"metric", "value"});
  live.row({"queries issued",
            util::fmt_count(
                static_cast<std::size_t>(metric(result.live, "queries_issued")))});
  live.row({"QPS", util::fmt_double(metric(result.live, "qps"), 0)});
  live.row({"query p50 (us)",
            util::fmt_double(metric(result.live, "query_p50_us"), 1)});
  live.row({"query p99 (us)",
            util::fmt_double(metric(result.live, "query_p99_us"), 1)});
  live.row({"publish p50 (us)",
            util::fmt_double(metric(result.live, "publish_p50_us"), 1)});
  live.row({"publish p99 (us)",
            util::fmt_double(metric(result.live, "publish_p99_us"), 1)});
  live.print(std::cout);

  util::TextTable steady("steady phase — deterministic (gated at 0%)");
  steady.header({"metric", "value"});
  for (const char* key :
       {"found", "unreachable", "not_destination", "paths_returned",
        "total_hops", "disjoint_1", "disjoint_2", "disjoint_3plus",
        "publishes", "full_builds", "cells_live"}) {
    steady.row({key, util::fmt_count(static_cast<std::size_t>(
                         metric(result.steady, key)))});
  }
  steady.print(std::cout);

  io.report.add(result.live);
  io.report.add(result.steady);
  io.report.add_note(
      "steady answers asserted bit-identical at 1 vs " +
      std::to_string(config.serve.query_threads) + " query threads");
  io.report.write();
  if (io.report.enabled()) std::cout << "\nwrote BENCH_query.json report\n";
  return 0;
}
