// Ablation — how much of Centaur's failure-time advantage comes from
// root-cause information alone?
//
// The paper (S1, S7) positions Centaur against BGP-RCN: path vector with
// piggy-backed link-level failure notices.  RCN suppresses path
// exploration (no stale alternatives crossing the failed link) but still
// pays one message per affected destination; Centaur withdraws the link
// itself.  This bench runs identical link-flip sequences under plain BGP,
// BGP-RCN, and Centaur and compares per-event message counts.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiments.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "ablation_rcn",
      "Ablation: plain BGP vs BGP-RCN vs Centaur on identical link flips");
  const auto& params = io.params;

  util::Rng topo_rng(params.seed ^ 0xAB2C);
  const topo::AsGraph g = topo::brite_like(
      params.proto_nodes, 2, std::max<std::size_t>(4, params.proto_nodes / 40),
      topo_rng);
  std::cout << topo::compute_stats(g, "ablation topology") << "\n\n";

  const eval::Protocol protocols[] = {
      eval::Protocol::kBgp, eval::Protocol::kBgpRcn, eval::Protocol::kCentaur};
  eval::RunOptions opts;
  opts.analysis = eval::analysis_from_env();

  // One trial per protocol, identical flip sequence (fixed seed), results
  // assembled in index order after the parallel fan-out.
  struct Timed {
    eval::FlipSeries series;
    double wall_s = 0;
  };
  const auto results =
      runner::run_trials(std::size(protocols), io.threads, [&](std::size_t i) {
        const runner::Stopwatch sw;
        Timed t;
        t.series =
            eval::run_link_flips(g, protocols[i], params.proto_flip_sample,
                                 util::Rng(params.seed ^ 0xAB2D), opts);
        t.wall_s = sw.seconds();
        return t;
      });

  util::TextTable table("Messages per link-flip event");
  table.header({"protocol", "mean", "median", "p90", "max", "cold-start"});
  std::vector<double> means;
  for (std::size_t i = 0; i < std::size(protocols); ++i) {
    const auto& series = results[i].series;
    util::Accumulator acc;
    for (double m : series.message_counts) acc.add(m);
    means.push_back(acc.mean());
    table.row({eval::to_string(protocols[i]), util::fmt_double(acc.mean(), 1),
               util::fmt_double(acc.median(), 1),
               util::fmt_double(acc.quantile(0.9), 1),
               util::fmt_double(acc.max(), 0),
               util::fmt_count(series.cold_start.messages_sent)});
    io.report.add(bench::series_trial(eval::to_string(protocols[i]),
                                      results[i].wall_s, series));
  }
  table.print(std::cout);

  std::cout << "Reduction vs plain BGP: RCN "
            << util::fmt_double(means[0] / std::max(1.0, means[1]), 2)
            << "x, Centaur "
            << util::fmt_double(means[0] / std::max(1.0, means[2]), 2)
            << "x.\n"
               "RCN only prunes *exploration* — paths that get advertised,\n"
               "briefly adopted, and withdrawn again.  With low uniform\n"
               "delays and no MRAI, exploration windows are milliseconds\n"
               "wide, so RCN's savings are small while it still pays one\n"
               "withdrawal per affected destination.  Centaur's gap comes\n"
               "from changing the announcement unit from paths to links —\n"
               "supporting the paper's argument (S1, S7) that piggy-backed\n"
               "root-cause info on path vector is not enough.\n";
  io.report.write();
  return 0;
}
