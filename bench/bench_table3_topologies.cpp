// Table 3 — characteristics of input topologies.
//
// The paper measures CAIDA Sep'07 and HeTop May'05 snapshots; we generate
// synthetic stand-ins matching their link-category mix and density (see
// DESIGN.md).  This bench prints our stand-ins' characteristics next to the
// paper's reference rows so the shape match is auditable.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace centaur;

void add_row(util::TextTable& table, const topo::TopologyStats& s) {
  table.row({s.name, util::fmt_count(s.nodes), util::fmt_count(s.links),
             util::fmt_count(s.peering), util::fmt_count(s.provider),
             util::fmt_count(s.sibling), util::fmt_double(s.avg_degree, 2),
             util::fmt_percent(static_cast<double>(s.peering) /
                               static_cast<double>(s.links))});
}

runner::TrialResult topo_trial(const std::string& tag, double wall_s,
                               const topo::TopologyStats& s) {
  runner::TrialResult t;
  t.name = tag;
  t.wall_time_s = wall_s;
  t.metrics.emplace_back("nodes", static_cast<double>(s.nodes));
  t.metrics.emplace_back("links", static_cast<double>(s.links));
  t.metrics.emplace_back("avg_degree", s.avg_degree);
  t.metrics.emplace_back("peering_fraction",
                         static_cast<double>(s.peering) /
                             static_cast<double>(s.links));
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "table3_topologies",
      "Table 3: characteristics of input topologies (synthetic stand-ins)");
  const auto& params = io.params;

  const runner::Stopwatch gen_sw;
  const auto standins = bench::make_measured_standins(params);
  const double gen_s = gen_sw.seconds();

  util::TextTable table("Table 3 — input topologies");
  table.header({"Name", "Nodes", "Links", "Peering", "Provider", "Sibling",
                "AvgDeg", "Peer%"});
  const auto caida_stats =
      topo::compute_stats(standins.caida_like, "CAIDA-like (ours)");
  const auto hetop_stats =
      topo::compute_stats(standins.hetop_like, "HeTop-like (ours)");
  add_row(table, caida_stats);
  add_row(table, hetop_stats);
  io.report.add(topo_trial("caida_like", gen_s / 2, caida_stats));
  io.report.add(topo_trial("hetop_like", gen_s / 2, hetop_stats));
  table.row({"CAIDA/Sep'07 (paper)", "26,022", "52,691", "4,002", "48,457",
             "232", "4.05", "7.6%"});
  table.row({"HeTop/May'05 (paper)", "19,940", "59,508", "20,983", "38,265",
             "260", "5.97", "35.3%"});
  table.print(std::cout);

  std::cout << "Shape checks: peering fraction and average degree of each\n"
               "stand-in should track its paper row; absolute node counts\n"
               "scale with CENTAUR_SCALE.\n";
  io.report.write();
  return 0;
}
