// Table 3 — characteristics of input topologies.
//
// The paper measures CAIDA Sep'07 and HeTop May'05 snapshots; we generate
// synthetic stand-ins matching their link-category mix and density (see
// DESIGN.md).  This bench prints our stand-ins' characteristics next to the
// paper's reference rows so the shape match is auditable.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace centaur;

void add_row(util::TextTable& table, const topo::TopologyStats& s) {
  table.row({s.name, util::fmt_count(s.nodes), util::fmt_count(s.links),
             util::fmt_count(s.peering), util::fmt_count(s.provider),
             util::fmt_count(s.sibling), util::fmt_double(s.avg_degree, 2),
             util::fmt_percent(static_cast<double>(s.peering) /
                               static_cast<double>(s.links))});
}

}  // namespace

int main() {
  const auto params = bench::banner(
      "bench_table3_topologies",
      "Table 3: characteristics of input topologies (synthetic stand-ins)");

  const auto standins = bench::make_measured_standins(params);

  util::TextTable table("Table 3 — input topologies");
  table.header({"Name", "Nodes", "Links", "Peering", "Provider", "Sibling",
                "AvgDeg", "Peer%"});
  add_row(table, topo::compute_stats(standins.caida_like, "CAIDA-like (ours)"));
  add_row(table, topo::compute_stats(standins.hetop_like, "HeTop-like (ours)"));
  table.row({"CAIDA/Sep'07 (paper)", "26,022", "52,691", "4,002", "48,457",
             "232", "4.05", "7.6%"});
  table.row({"HeTop/May'05 (paper)", "19,940", "59,508", "20,983", "38,265",
             "260", "5.97", "35.3%"});
  table.print(std::cout);

  std::cout << "Shape checks: peering fraction and average degree of each\n"
               "stand-in should track its paper row; absolute node counts\n"
               "scale with CENTAUR_SCALE.\n";
  return 0;
}
