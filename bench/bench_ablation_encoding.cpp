// Ablation — Permission-List design choices (S4.1, S6.1):
//   * per-dest-next vs exhaustive per-path encoding (the paper proves them
//     equally expressive; per-dest-next is what ships),
//   * raw vs Bloom-compressed destination lists,
//   * per-link (Table 2 literal) vs minimal (Fig 4(c)) list placement.
// Prints announcement-state bytes per local P-graph under each combination,
// quantifying why the shipped design was chosen.  (The single-path vs
// multipath path-set contrast lives in bench_table4_pgraphs.)
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "centaur/build_graph.hpp"
#include "policy/valley_free.hpp"

namespace {

using namespace centaur;
using core::PGraph;
using topo::NodeId;
using topo::Path;

struct EncodingCosts {
  std::size_t lists = 0;
  std::size_t raw_bytes = 0;         // per-dest-next, plain
  std::size_t bloom_bytes = 0;       // per-dest-next, bloom dest lists
  std::size_t exhaustive_bytes = 0;  // per-path encoding
};

EncodingCosts measure(const PGraph& pg,
                      const std::map<NodeId, Path>& selected) {
  EncodingCosts costs;
  // Exhaustive per-path lists: one entry per selected path crossing the
  // link (rebuilt from the path set).
  std::map<core::DirectedLink, core::ExhaustivePermissionList> exhaustive;
  for (const auto& [dest, path] : selected) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      exhaustive[core::DirectedLink{path[i], path[i + 1]}].add(path);
    }
  }
  for (const auto& [link, data] : pg.links()) {
    if (!pg.multi_homed(link.to) || data.plist.empty()) continue;
    ++costs.lists;
    costs.raw_bytes += data.plist.byte_size(false);
    costs.bloom_bytes += data.plist.byte_size(true);
    const auto it = exhaustive.find(link);
    if (it != exhaustive.end()) {
      costs.exhaustive_bytes += it->second.byte_size();
    }
  }
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "ablation_encoding",
      "Ablation: Permission-List encodings and placements");
  const auto& params = io.params;

  // A mid-size topology and a handful of vantages keep this bench quick.
  const std::size_t n = std::max<std::size_t>(300, params.caida_like_nodes / 8);
  util::Rng topo_rng(params.seed ^ 0xAB1A);
  const topo::AsGraph g =
      topo::tiered_internet(topo::caida_like_params(n), topo_rng);
  std::cout << topo::compute_stats(g, "ablation topology") << "\n\n";

  // Per-vantage selected path sets (per-dest-random tie-break, the
  // realistic mode used by the Table 4/5 pipeline).
  const NodeId vantages[] = {1, static_cast<NodeId>(n / 3),
                             static_cast<NodeId>(n - 2)};
  std::map<NodeId, std::map<NodeId, Path>> selected;
  for (const NodeId v : vantages) selected[v][v] = Path{v};
  for (NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    const auto routes = policy::ValleyFreeRoutes::compute(
        g, dest, policy::TieBreak::kPerDestRandom, params.seed);
    for (const NodeId v : vantages) {
      if (v != dest && routes.at(v).reachable()) {
        selected[v][dest] = routes.path_from(v);
      }
    }
  }

  util::TextTable table("Announcement state per local P-graph (averages)");
  table.header(
      {"placement", "#lists", "per-dest-next B", "bloom B", "exhaustive B"});
  for (const bool minimal : {false, true}) {
    const runner::Stopwatch sw;
    double lists = 0, raw = 0, bloom = 0, exhaustive = 0;
    for (const NodeId v : vantages) {
      PGraph pg = core::build_local_pgraph(v, selected[v]);
      if (minimal) core::minimize_permission_lists(pg);
      const EncodingCosts c = measure(pg, selected[v]);
      lists += static_cast<double>(c.lists);
      raw += static_cast<double>(c.raw_bytes);
      bloom += static_cast<double>(c.bloom_bytes);
      exhaustive += static_cast<double>(c.exhaustive_bytes);
    }
    const double k = static_cast<double>(std::size(vantages));
    table.row({minimal ? "minimal (Fig 4c)" : "per-link (Table 2)",
               util::fmt_double(lists / k, 1), util::fmt_double(raw / k, 0),
               util::fmt_double(bloom / k, 0),
               util::fmt_double(exhaustive / k, 0)});
    runner::TrialResult trial;
    trial.name = minimal ? "minimal" : "per_link";
    trial.wall_time_s = sw.seconds();
    trial.metrics.emplace_back("avg_lists", lists / k);
    trial.metrics.emplace_back("avg_raw_bytes", raw / k);
    trial.metrics.emplace_back("avg_bloom_bytes", bloom / k);
    trial.metrics.emplace_back("avg_exhaustive_bytes", exhaustive / k);
    io.report.add(std::move(trial));
  }
  table.print(std::cout);

  std::cout << "Takeaways: per-dest-next is far smaller than the equally\n"
               "expressive exhaustive per-path encoding (Claim 1); Bloom\n"
               "compression only pays once destination lists grow large;\n"
               "the minimal placement roughly halves the list count.\n";
  io.report.write();
  return 0;
}
