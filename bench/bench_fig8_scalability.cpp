// Figure 8 — scalability: update overhead vs topology size.
//
// The paper creates BRITE topologies of increasing size, cold-starts the
// protocols, and measures the update overhead per routing event; Centaur's
// advantage over BGP widens with topology size because a BGP event fans out
// per destination while a Centaur event stays per link.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "eval/experiments.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

double mean(const std::vector<double>& v) {
  util::Accumulator a;
  for (double x : v) a.add(x);
  return a.mean();
}

}  // namespace

int main() {
  const auto params = bench::banner(
      "bench_fig8_scalability",
      "Figure 8: update overhead per routing event vs topology size "
      "(Centaur vs BGP)");

  util::TextTable table("Figure 8 — mean messages per link-flip event");
  table.header({"Nodes", "Links", "Centaur", "BGP", "BGP/Centaur",
                "Centaur cold-start", "BGP cold-start"});

  const std::size_t steps = std::max<std::size_t>(2, params.fig8_steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t n =
        params.fig8_min_nodes +
        (params.fig8_max_nodes - params.fig8_min_nodes) * s / (steps - 1);
    util::Rng topo_rng(params.seed ^ (0xF180 + s));
    const topo::AsGraph g =
        topo::brite_like(n, 2, std::max<std::size_t>(4, n / 40), topo_rng);

    const std::size_t flips =
        std::max<std::size_t>(1, params.fig8_events_per_size / 2);
    const auto centaur_series = eval::run_link_flips(
        g, eval::Protocol::kCentaur, flips, util::Rng(params.seed ^ 0xF888));
    const auto bgp_series = eval::run_link_flips(
        g, eval::Protocol::kBgp, flips, util::Rng(params.seed ^ 0xF888));

    const double cm = mean(centaur_series.message_counts);
    const double bm = mean(bgp_series.message_counts);
    table.row({util::fmt_count(n), util::fmt_count(g.num_links()),
               util::fmt_double(cm, 1), util::fmt_double(bm, 1),
               util::fmt_double(bm / std::max(1.0, cm), 2),
               util::fmt_count(centaur_series.cold_start.messages_sent),
               util::fmt_count(bgp_series.cold_start.messages_sent)});
  }
  table.print(std::cout);

  std::cout << "Shape check: the BGP/Centaur ratio should grow with the\n"
               "topology size — \"Centaur presents more distinct advantage\n"
               "on larger topologies\" (paper Fig 8).\n";
  return 0;
}
