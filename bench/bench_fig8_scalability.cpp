// Figure 8 — scalability: update overhead vs topology size.
//
// The paper creates BRITE topologies of increasing size, cold-starts the
// protocols, and measures the update overhead per routing event; Centaur's
// advantage over BGP widens with topology size because a BGP event fans out
// per destination while a Centaur event stays per link.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "eval/experiments.hpp"
#include "util/stats.hpp"

namespace {

using namespace centaur;

double mean(const std::vector<double>& v) {
  util::Accumulator a;
  for (double x : v) a.add(x);
  return a.mean();
}

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(
      &argc, argv, "fig8_scalability",
      "Figure 8: update overhead per routing event vs topology size "
      "(Centaur vs BGP)");
  const auto& params = io.params;

  util::TextTable table("Figure 8 — mean messages per link-flip event");
  table.header({"Nodes", "Links", "Centaur", "BGP", "BGP/Centaur",
                "Centaur cold-start", "BGP cold-start"});

  const std::size_t steps = std::max<std::size_t>(2, params.fig8_steps);
  const std::size_t flips =
      std::max<std::size_t>(1, params.fig8_events_per_size / 2);
  const eval::Protocol protos[] = {eval::Protocol::kCentaur,
                                   eval::Protocol::kBgp};
  eval::RunOptions opts;
  opts.analysis = eval::analysis_from_env();

  // steps x protocols independent trials.  Each trial regenerates its
  // topology from the per-size seed (deterministic, so the two protocol
  // arms of a size see the identical graph) and replays the size's flip
  // sequence; trial inputs are a pure function of the index, making the
  // fan-out bit-identical to a serial run.
  struct Timed {
    eval::FlipSeries series;
    std::size_t nodes = 0;
    std::size_t links = 0;
    double wall_s = 0;
  };
  const std::size_t trial_count = steps * std::size(protos);
  const auto results =
      runner::run_trials(trial_count, io.threads, [&](std::size_t i) {
        const std::size_t s = i / std::size(protos);
        const eval::Protocol proto = protos[i % std::size(protos)];
        const std::size_t n =
            params.fig8_min_nodes +
            (params.fig8_max_nodes - params.fig8_min_nodes) * s / (steps - 1);
        util::Rng topo_rng(params.seed ^ (0xF180 + s));
        const topo::AsGraph g =
            topo::brite_like(n, 2, std::max<std::size_t>(4, n / 40), topo_rng);
        const runner::Stopwatch sw;
        Timed t;
        t.series = eval::run_link_flips(g, proto, flips,
                                        util::Rng(params.seed ^ 0xF888), opts);
        t.nodes = n;
        t.links = g.num_links();
        t.wall_s = sw.seconds();
        return t;
      });

  for (std::size_t s = 0; s < steps; ++s) {
    const Timed& centaur = results[s * std::size(protos)];
    const Timed& bgp = results[s * std::size(protos) + 1];
    const double cm = mean(centaur.series.message_counts);
    const double bm = mean(bgp.series.message_counts);
    table.row({util::fmt_count(centaur.nodes), util::fmt_count(centaur.links),
               util::fmt_double(cm, 1), util::fmt_double(bm, 1),
               util::fmt_double(bm / std::max(1.0, cm), 2),
               util::fmt_count(centaur.series.cold_start.messages_sent),
               util::fmt_count(bgp.series.cold_start.messages_sent)});
    for (const Timed* t : {&centaur, &bgp}) {
      const bool is_centaur = t == &centaur;
      io.report.add(bench::series_trial(
          std::string(is_centaur ? "centaur_n" : "bgp_n") +
              std::to_string(t->nodes),
          t->wall_s, t->series));
    }
    // Wall-time gap note per scale (informational, like wall_time_s itself
    // — never gated; bench_compare.py prints baseline vs current side by
    // side).  The incremental recompute plane exists to close this ratio.
    io.report.add_note(
        "centaur_vs_bgp_wall_ratio n=" + std::to_string(centaur.nodes) +
        ": " +
        util::fmt_double(centaur.wall_s / std::max(bgp.wall_s, 1e-9), 2) +
        " (centaur " + util::fmt_double(centaur.wall_s, 3) + " s, bgp " +
        util::fmt_double(bgp.wall_s, 3) + " s)");
  }
  table.print(std::cout);

  std::cout << "Shape check: the BGP/Centaur ratio should grow with the\n"
               "topology size — \"Centaur presents more distinct advantage\n"
               "on larger topologies\" (paper Fig 8).\n";

  // ProtocolRun reuse measurement (stdout only — the JSON baseline is
  // unchanged): campaign harnesses that need repeated cold starts used to
  // construct a fresh ProtocolRun each time, paying a full AS-graph copy
  // per run; reset() rebuilds the network and nodes in place instead.
  // Compare equal numbers of cold starts on the largest Fig 8 topology.
  {
    const std::size_t n = params.fig8_max_nodes;
    util::Rng topo_rng(params.seed ^ (0xF180 + steps - 1));
    const topo::AsGraph g =
        topo::brite_like(n, 2, std::max<std::size_t>(4, n / 40), topo_rng);
    eval::RunOptions plain;  // analysis off: measure the harness, not checks
    constexpr std::size_t kRepeats = 3;

    const runner::Stopwatch copy_sw;
    for (std::size_t r = 0; r < kRepeats; ++r) {
      util::Rng rng(params.seed ^ 0xF888);
      const eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng, plain);
    }
    const double copy_s = copy_sw.seconds();

    util::Rng rng(params.seed ^ 0xF888);
    eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng, plain);
    const runner::Stopwatch reset_sw;
    for (std::size_t r = 0; r < kRepeats; ++r) run.reset(rng);
    const double reset_s = reset_sw.seconds();

    std::cout << "\nProtocolRun reuse (n=" << n << ", " << kRepeats
              << " cold starts): fresh-construct "
              << util::fmt_double(copy_s * 1e3, 1)
              << " ms (AS-graph copy per run), reset-in-place "
              << util::fmt_double(reset_s * 1e3, 1) << " ms ("
              << util::fmt_double(copy_s / std::max(reset_s, 1e-9), 2)
              << "x)\n";
  }

  // Intra-trial parallelism speedup (stdout + report notes — counters are
  // bit-identical across thread counts by construction, so the JSON
  // baseline is unchanged).  Per-phase serial vs 4-lane wall time on the
  // largest Fig 8 topology:
  //   * cold start + single-link flips are delivery-cascade dominated
  //     (continuous link delays, so mostly singleton batches) — the honest
  //     "no parallelism available" floor, included to show the batching
  //     machinery costs ~nothing when there is nothing to overlap;
  //   * the SRLG burst downs a quarter of the links at one simulated
  //     instant, so the reconvergence opens with a wide same-instant batch
  //     of per-node re-selections — the workload the parallel phase exists
  //     for (paper-style regional failure / shared-risk group event).
  {
    const std::size_t n = params.fig8_max_nodes;
    util::Rng topo_rng(params.seed ^ (0xF180 + steps - 1));
    const topo::AsGraph g =
        topo::brite_like(n, 2, std::max<std::size_t>(4, n / 40), topo_rng);
    eval::RunOptions plain;  // analysis off: measure the engine, not checks

    // Same burst set for both runs: every fourth link, spread across the
    // whole id space.
    std::vector<topo::LinkId> burst_links;
    for (topo::LinkId l = 0; l < g.num_links(); l += 4) burst_links.push_back(l);

    struct PhaseTimes {
      double cold_s = 0;
      double flips_s = 0;
      double burst_s = 0;    // same-instant re-selection batch only
      double cascade_s = 0;  // remaining delivery cascade to quiescence
    };
    // The Network constructor samples CENTAUR_INTRA_THREADS, so pin the
    // lane count via the environment around each run.
    const auto timed_run = [&](std::size_t intra) {
      setenv("CENTAUR_INTRA_THREADS", std::to_string(intra).c_str(), 1);
      util::Rng rng(params.seed ^ 0xF888);
      const runner::Stopwatch cold_sw;
      eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng, plain);
      PhaseTimes t;
      t.cold_s = cold_sw.seconds();
      util::Rng flip_rng(params.seed ^ 0xF889);
      const runner::Stopwatch flip_sw;
      for (std::size_t f = 0; f < flips; ++f) {
        const auto link =
            static_cast<topo::LinkId>(flip_rng.next() % g.num_links());
        run.flip(link, false);
        run.flip(link, true);
      }
      t.flips_s = flip_sw.seconds();
      // The burst step is every per-node re-selection at the failure
      // instant (on_link_change + same-instant flushes, one wide batch);
      // run_until(now) drains exactly that, leaving the delayed deliveries
      // queued for the cascade measurement.
      sim::Simulator& s = run.network().simulator();
      const runner::Stopwatch burst_sw;
      for (const topo::LinkId l : burst_links) {
        run.network().set_link_state(l, false);
      }
      s.run_until(s.now());
      t.burst_s = burst_sw.seconds();
      const runner::Stopwatch cascade_sw;
      run.network().run_to_convergence();
      t.cascade_s = cascade_sw.seconds();
      return t;
    };

    const char* prev_intra = std::getenv("CENTAUR_INTRA_THREADS");
    const std::string saved_intra = prev_intra != nullptr ? prev_intra : "";
    const PhaseTimes serial = timed_run(1);
    const PhaseTimes parallel = timed_run(4);
    if (prev_intra != nullptr) {
      setenv("CENTAUR_INTRA_THREADS", saved_intra.c_str(), 1);
    } else {
      unsetenv("CENTAUR_INTRA_THREADS");
    }
    const auto speedup = [](double s, double p) {
      return s / std::max(p, 1e-9);
    };
    const auto line = [&](const char* name, double s, double p) {
      std::cout << "  " << name << util::fmt_double(s * 1e3, 1) << " ms -> "
                << util::fmt_double(p * 1e3, 1) << " ms ("
                << util::fmt_double(speedup(s, p), 2) << "x)\n";
    };
    const unsigned cores = std::thread::hardware_concurrency();
    std::cout << "\nIntra-trial parallel speedup (n=" << n
              << ", CENTAUR_INTRA_THREADS 1 vs 4, " << cores
              << " host cores, identical results):\n";
    line("cold-start phase:   ", serial.cold_s, parallel.cold_s);
    line("link-flip phase:    ", serial.flips_s, parallel.flips_s);
    line("SRLG re-selection:  ", serial.burst_s, parallel.burst_s);
    line("SRLG cascade:       ", serial.cascade_s, parallel.cascade_s);
    io.report.add_note(
        "intra-trial speedup (1 vs 4 lanes, n=" + std::to_string(n) + ", " +
        std::to_string(cores) + " host cores): cold-start " +
        util::fmt_double(speedup(serial.cold_s, parallel.cold_s), 2) +
        "x, link-flips " +
        util::fmt_double(speedup(serial.flips_s, parallel.flips_s), 2) +
        "x, srlg re-selection (" + std::to_string(burst_links.size()) +
        " links at one instant) " +
        util::fmt_double(speedup(serial.burst_s, parallel.burst_s), 2) +
        "x, srlg cascade " +
        util::fmt_double(speedup(serial.cascade_s, parallel.cascade_s), 2) +
        "x");
  }
  io.report.write();
  return 0;
}
