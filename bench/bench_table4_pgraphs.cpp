// Table 4 — structural characteristics of P-graphs.
//
// Pipeline (paper S5.2): per sampled vantage node, derive the complete
// valley-free path set to every destination, build the local P-graph with
// BuildGraph, and report the average number of links and of Permission
// Lists.  The primary rows use the multipath path-set and minimal
// Permission-List placement (the interpretation that matches the paper's
// counting — see EXPERIMENTS.md); the single-path ablation rows show how
// strongly the numbers depend on that interpretation.
#include <iostream>

#include "bench_util.hpp"
#include "eval/static_eval.hpp"

namespace {

using namespace centaur;
using eval::PathSetMode;
using eval::PlistScheme;

void add_rows(util::TextTable& table, const std::string& name,
              const topo::AsGraph& g, std::size_t vantages,
              std::uint64_t seed) {
  const struct {
    const char* tag;
    PathSetMode mode;
    PlistScheme scheme;
  } variants[] = {
      {"multipath/minimal", PathSetMode::kMultipath, PlistScheme::kMinimal},
      {"multipath/per-link", PathSetMode::kMultipath, PlistScheme::kPerLink},
      {"single-path/minimal", PathSetMode::kSinglePath, PlistScheme::kMinimal},
  };
  for (const auto& v : variants) {
    util::Rng rng(seed);
    const eval::PGraphStats s =
        eval::compute_pgraph_stats(g, vantages, rng, v.mode, v.scheme);
    table.row({name + " (" + v.tag + ")",
               util::fmt_double(s.avg_links, 1),
               util::fmt_double(s.avg_plists, 1),
               util::fmt_double(s.avg_links /
                                    static_cast<double>(g.num_nodes()),
                                3),
               util::fmt_double(s.avg_plists / std::max(1.0, s.avg_links), 3),
               util::fmt_double(s.path_length.mean(), 2)});
  }
}

}  // namespace

int main() {
  const auto params = bench::banner(
      "bench_table4_pgraphs",
      "Table 4: structural characteristics of P-graphs");

  const auto standins = bench::make_measured_standins(params);

  util::TextTable table("Table 4 — P-graph structure (averages per vantage)");
  table.header({"Topology", "Links", "PermLists", "Links/node",
                "PermLists/link", "AvgPathLen"});
  add_rows(table, "CAIDA-like", standins.caida_like,
           params.pgraph_vantage_sample, params.seed ^ 0x7A41);
  add_rows(table, "HeTop-like", standins.hetop_like,
           params.pgraph_vantage_sample, params.seed ^ 0x7A42);
  table.row({"CAIDA (paper)", "40339", "14437", "1.550", "0.358", "-"});
  table.row({"HeTop (paper)", "32006", "12219", "1.605", "0.382", "-"});
  table.print(std::cout);

  std::cout << "Sample: " << params.pgraph_vantage_sample
            << " vantage nodes per topology, complete destination sets.\n"
               "Shape checks: P-graphs are sparse supersets of spanning\n"
               "trees (links/node slightly above 1); a minority of links\n"
               "carry Permission Lists.\n";
  return 0;
}
