// Table 4 — structural characteristics of P-graphs.
//
// Pipeline (paper S5.2): per sampled vantage node, derive the complete
// valley-free path set to every destination, build the local P-graph with
// BuildGraph, and report the average number of links and of Permission
// Lists.  The primary rows use the multipath path-set and minimal
// Permission-List placement (the interpretation that matches the paper's
// counting — see EXPERIMENTS.md); the single-path ablation rows show how
// strongly the numbers depend on that interpretation.
#include <iostream>

#include "bench_util.hpp"
#include "eval/static_eval.hpp"

namespace {

using namespace centaur;
using eval::PathSetMode;
using eval::PlistScheme;

struct Variant {
  const char* tag;
  PathSetMode mode;
  PlistScheme scheme;
};

constexpr Variant kVariants[] = {
    {"multipath/minimal", PathSetMode::kMultipath, PlistScheme::kMinimal},
    {"multipath/per-link", PathSetMode::kMultipath, PlistScheme::kPerLink},
    {"single-path/minimal", PathSetMode::kSinglePath, PlistScheme::kMinimal},
};

}  // namespace

int main(int argc, char** argv) {
  auto io = bench::bench_setup(&argc, argv, "table4_pgraphs",
                               "Table 4: structural characteristics of "
                               "P-graphs");
  const auto& params = io.params;

  const auto standins = bench::make_measured_standins(params);

  // topology x variant grid, one trial each, fanned across the driver.
  // Each trial reseeds its own Rng from the job description, so the grid is
  // order-independent.
  struct Job {
    std::string name;
    const topo::AsGraph* g;
    std::uint64_t seed;
    Variant variant;
  };
  std::vector<Job> jobs;
  for (const auto& v : kVariants) {
    jobs.push_back(
        {"CAIDA-like", &standins.caida_like, params.seed ^ 0x7A41, v});
  }
  for (const auto& v : kVariants) {
    jobs.push_back(
        {"HeTop-like", &standins.hetop_like, params.seed ^ 0x7A42, v});
  }
  struct Timed {
    eval::PGraphStats stats;
    double wall_s = 0;
  };
  const auto results =
      runner::run_trials(jobs.size(), io.threads, [&](std::size_t i) {
        const Job& job = jobs[i];
        const runner::Stopwatch sw;
        util::Rng rng(job.seed);
        Timed t;
        t.stats = eval::compute_pgraph_stats(*job.g,
                                             params.pgraph_vantage_sample, rng,
                                             job.variant.mode,
                                             job.variant.scheme);
        t.wall_s = sw.seconds();
        return t;
      });

  util::TextTable table("Table 4 — P-graph structure (averages per vantage)");
  table.header({"Topology", "Links", "PermLists", "Links/node",
                "PermLists/link", "AvgPathLen"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const eval::PGraphStats& s = results[i].stats;
    table.row({job.name + " (" + job.variant.tag + ")",
               util::fmt_double(s.avg_links, 1),
               util::fmt_double(s.avg_plists, 1),
               util::fmt_double(s.avg_links /
                                    static_cast<double>(job.g->num_nodes()),
                                3),
               util::fmt_double(s.avg_plists / std::max(1.0, s.avg_links), 3),
               util::fmt_double(s.path_length.mean(), 2)});
    runner::TrialResult trial;
    trial.name = job.name + "/" + job.variant.tag;
    trial.wall_time_s = results[i].wall_s;
    trial.metrics.emplace_back("avg_links", s.avg_links);
    trial.metrics.emplace_back("avg_plists", s.avg_plists);
    trial.metrics.emplace_back("avg_path_len", s.path_length.mean());
    io.report.add(std::move(trial));
  }
  table.row({"CAIDA (paper)", "40339", "14437", "1.550", "0.358", "-"});
  table.row({"HeTop (paper)", "32006", "12219", "1.605", "0.382", "-"});
  table.print(std::cout);

  std::cout << "Sample: " << params.pgraph_vantage_sample
            << " vantage nodes per topology, complete destination sets.\n"
               "Shape checks: P-graphs are sparse supersets of spanning\n"
               "trees (links/node slightly above 1); a minority of links\n"
               "carry Permission Lists.\n";
  io.report.write();
  return 0;
}
