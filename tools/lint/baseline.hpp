// Shrink-only baseline for grandfathered findings.
//
// The baseline file holds one entry per (rule, file, token) group with the
// number of such findings that existed when the rule landed:
//
//   # comments and blank lines are ignored
//   D2 src/topology/generator.cpp unordered_set 2
//
// Matching current findings are reported as "baselined" instead of failing
// the gate.  The file may only shrink: if the tree now has FEWER findings
// than an entry claims, the entry is stale and itself fails the gate (rule
// BASE) until it is trimmed — so fixed debt can never silently return, and
// the file never drifts from reality in either direction.  Keys are
// line-number-free so unrelated edits don't churn the baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rules.hpp"

namespace centaur::lint {

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string token;
  std::size_t count = 0;
  std::size_t line = 0;  ///< line in the baseline file (for messages)
};

struct Baseline {
  std::vector<BaselineEntry> entries;
  std::vector<std::string> errors;  ///< parse problems
};

Baseline parse_baseline(const std::string& text);

struct BaselineOutcome {
  std::vector<Finding> fresh;     ///< findings not covered -> fail the gate
  std::size_t baselined = 0;      ///< findings absorbed by entries
  /// Stale entries (more baselined than present) as BASE-rule findings
  /// against the baseline file -> also fail the gate.
  std::vector<Finding> stale;
};

/// Applies `baseline` to `findings` (grouped by rule+path+token; within a
/// group the first `count` findings are absorbed, the rest are fresh).
BaselineOutcome apply_baseline(const std::vector<Finding>& findings,
                               const Baseline& baseline,
                               const std::string& baseline_path);

}  // namespace centaur::lint
