// Finding reporters: grep-style text, JSON, and SARIF 2.1.0.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace centaur::lint {

struct ReportStats {
  std::size_t files = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
};

/// `file:line:col: RULE: message` lines plus a one-line summary.
std::string render_text(const std::vector<Finding>& findings,
                        const ReportStats& stats);

/// {"tool": ..., "rule_set_version": N, "findings": [...], "stats": {...}}
std::string render_json(const std::vector<Finding>& findings,
                        const ReportStats& stats);

/// Minimal valid SARIF 2.1.0 log with one run.
std::string render_sarif(const std::vector<Finding>& findings);

}  // namespace centaur::lint
