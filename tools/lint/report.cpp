#include "report.hpp"

#include <cstdio>
#include <sstream>

namespace centaur::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string render_text(const std::vector<Finding>& findings,
                        const ReportStats& stats) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ":" << f.col << ": " << f.rule << ": "
       << f.message << "\n";
  }
  os << "centaur-lint: " << stats.files << " file(s), " << findings.size()
     << " finding(s)";
  if (stats.suppressed > 0) os << ", " << stats.suppressed << " suppressed";
  if (stats.baselined > 0) os << ", " << stats.baselined << " baselined";
  os << "\n";
  return os.str();
}

std::string render_json(const std::vector<Finding>& findings,
                        const ReportStats& stats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"centaur-lint\",\n";
  os << "  \"rule_set_version\": " << kRuleSetVersion << ",\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"col\": " << f.col << ", \"token\": \"" << json_escape(f.token)
       << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "" : "\n  ") << "],\n";
  os << "  \"stats\": {\"files\": " << stats.files
     << ", \"suppressed\": " << stats.suppressed
     << ", \"baselined\": " << stats.baselined << "}\n";
  os << "}\n";
  return os.str();
}

std::string render_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  os << "  \"version\": \"2.1.0\",\n";
  os << "  \"runs\": [\n    {\n";
  os << "      \"tool\": {\n        \"driver\": {\n";
  os << "          \"name\": \"centaur-lint\",\n";
  os << "          \"version\": \"" << kRuleSetVersion << ".0\",\n";
  os << "          \"informationUri\": "
        "\"https://github.com/centaur/centaur\",\n";
  os << "          \"rules\": [";
  const auto& rules = rule_table();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "            {\"id\": \"" << rules[i].id
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(rules[i].summary) << "\"}}";
  }
  os << "\n          ]\n        }\n      },\n";
  os << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "        {\"ruleId\": \"" << json_escape(f.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << json_escape(f.message) << "\"}, \"locations\": [{"
       << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << json_escape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line
       << ", \"startColumn\": " << f.col << "}}}]}";
  }
  os << (findings.empty() ? "" : "\n      ") << "]\n";
  os << "    }\n  ]\n}\n";
  return os.str();
}

}  // namespace centaur::lint
