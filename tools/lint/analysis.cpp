#include "analysis.hpp"

#include <array>
#include <unordered_set>

namespace centaur::lint {
namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "if",       "for",        "while",    "switch",   "catch",
      "return",   "sizeof",     "alignof",  "decltype", "noexcept",
      "static_assert",          "new",      "delete",   "throw",
      "case",     "do",         "else",     "goto",     "default",
      "and",      "or",         "not",      "assert",   "typeid",
      "static_cast",            "dynamic_cast",         "const_cast",
      "reinterpret_cast",       "requires", "co_await", "co_return",
      "co_yield",
  };
  return kw;
}

bool is_type_intro(const std::string& s) {
  return s == "class" || s == "struct" || s == "union" || s == "enum";
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kOther } kind;
  std::string name;  // empty for anonymous
};

struct Extractor {
  const LexedFile& file;
  const std::vector<Token>& toks;
  std::vector<FunctionInfo> out;
  std::vector<Scope> scopes;

  explicit Extractor(const LexedFile& f) : file(f), toks(f.tokens) {}

  bool is(std::size_t i, TokKind k, const char* text = nullptr) const {
    return i < toks.size() && toks[i].kind == k &&
           (text == nullptr || toks[i].text == text);
  }

  bool punct(std::size_t i, const char* text) const {
    return is(i, TokKind::kPunct, text);
  }

  /// Index just past the matching closer for the opener at `i`.
  std::size_t skip_balanced(std::size_t i, const char* open,
                            const char* close) const {
    std::size_t depth = 0;
    for (; i < toks.size(); ++i) {
      if (punct(i, open)) ++depth;
      else if (punct(i, close) && --depth == 0) return i + 1;
    }
    return i;
  }

  std::string scope_prefix() const {
    std::string q;
    for (const Scope& s : scopes) {
      if ((s.kind == Scope::kNamespace || s.kind == Scope::kClass) &&
          !s.name.empty()) {
        q += s.name;
        q += "::";
      }
    }
    return q;
  }

  /// Consumes a function body starting at the `{` at index `open`, filling
  /// `fn` with calls/guard info.  Returns the index just past the `}`.
  std::size_t consume_body(std::size_t open, FunctionInfo fn) {
    std::size_t depth = 0;
    std::size_t i = open;
    fn.body_begin = open + 1;
    bool saw_guard = false, saw_defer = false;
    for (; i < toks.size(); ++i) {
      if (punct(i, "{")) {
        ++depth;
        continue;
      }
      if (punct(i, "}")) {
        if (--depth == 0) {
          ++i;
          break;
        }
        continue;
      }
      if (toks[i].kind == TokKind::kIdent) {
        const std::string& t = toks[i].text;
        if (t == "in_parallel_phase") saw_guard = true;
        if (t == "defer_commit_op") saw_defer = true;
        if (punct(i + 1, "(") && keywords().count(t) == 0) {
          fn.calls.push_back(t);
        }
      }
    }
    fn.body_end = i > 0 ? i - 1 : i;  // index of the closing '}'
    fn.guard_aware = saw_guard && saw_defer;
    out.push_back(std::move(fn));
    return i;
  }

  /// At declaration scope, tries to read a function definition starting at
  /// token `i`.  On success consumes through the body and returns the index
  /// past it; otherwise returns `i` (caller advances by one).
  std::size_t try_function(std::size_t i) {
    // Qualified-id: Ident (template-args)? (:: Ident (template-args)?)*
    // then '('.  `operator` may be followed by punctuation.
    std::size_t j = i;
    std::string last;
    std::string qual;
    while (true) {
      if (!is(j, TokKind::kIdent)) return i;
      last = toks[j].text;
      if (keywords().count(last) != 0) return i;
      ++j;
      if (last == "operator") {
        // operator name: consume punct tokens up to the parameter '('.
        // `operator()` is two extra tokens; `operator<` one.
        if (punct(j, "(") && punct(j + 1, ")")) {
          last = "operator()";
          j += 2;
        } else {
          while (j < toks.size() && toks[j].kind == TokKind::kPunct &&
                 toks[j].text != "(") {
            last += toks[j].text;
            ++j;
          }
        }
        break;
      }
      if (punct(j, "<")) {
        // Template arguments in a qualified name (rare at def site); skip
        // conservatively to the matching '>'.
        std::size_t depth = 0;
        std::size_t k = j;
        for (; k < toks.size(); ++k) {
          if (punct(k, "<")) ++depth;
          else if (punct(k, ">") && --depth == 0) { ++k; break; }
          else if (punct(k, "{") || punct(k, ";")) return i;
        }
        j = k;
      }
      if (punct(j, "::") && is(j + 1, TokKind::kIdent)) {
        qual += last;
        qual += "::";
        ++j;
        continue;
      }
      break;
    }
    if (!punct(j, "(")) return i;
    const std::size_t after_params = skip_balanced(j, "(", ")");
    if (after_params >= toks.size()) return i;

    // Scan past cv-qualifiers, ref-qualifiers, noexcept(...), trailing
    // return, and constructor init lists, to the body '{' — or bail at
    // ';' / '=' (declaration, = default, = delete, assignment).
    std::size_t k = after_params;
    bool in_init_list = false;
    while (k < toks.size()) {
      if (punct(k, ";") || punct(k, "=")) return i;
      if (punct(k, "(")) {
        k = skip_balanced(k, "(", ")");
        continue;
      }
      if (punct(k, ":")) {
        in_init_list = true;
        ++k;
        continue;
      }
      if (punct(k, "{")) {
        // In an init list, `member{...}` braces follow an identifier or a
        // closing '>'; the body '{' follows ')', '}' or the ':' handling.
        if (in_init_list && k > 0 &&
            (toks[k - 1].kind == TokKind::kIdent || punct(k - 1, ">"))) {
          k = skip_balanced(k, "{", "}");
          continue;
        }
        FunctionInfo fn;
        fn.name = last;
        fn.qualified = scope_prefix() + qual + last;
        fn.file = file.path;
        fn.line = toks[i].line;
        return consume_body(k, std::move(fn));
      }
      ++k;
    }
    return i;
  }

  void run() {
    std::size_t i = 0;
    while (i < toks.size()) {
      const Token& t = toks[i];
      if (punct(i, "{")) {
        scopes.push_back(Scope{Scope::kOther, ""});
        ++i;
        continue;
      }
      if (punct(i, "}")) {
        if (!scopes.empty()) scopes.pop_back();
        ++i;
        continue;
      }
      if (t.kind == TokKind::kIdent && t.text == "namespace") {
        std::size_t j = i + 1;
        std::string name;
        while (is(j, TokKind::kIdent)) {
          if (!name.empty()) name += "::";
          name += toks[j].text;
          ++j;
          if (punct(j, "::")) ++j;
          else break;
        }
        if (punct(j, "{")) {
          scopes.push_back(Scope{Scope::kNamespace, name});
          i = j + 1;
          continue;
        }
        i = j;
        continue;
      }
      if (t.kind == TokKind::kIdent && is_type_intro(t.text)) {
        // class/struct NAME ... { starts a class scope; `enum` and
        // forward declarations / variable declarations do not.
        const bool is_enum = t.text == "enum";
        std::size_t j = i + 1;
        while (is(j, TokKind::kIdent) &&
               (toks[j].text == "alignas" || toks[j].text == "final")) {
          ++j;
        }
        std::string name;
        if (is(j, TokKind::kIdent)) {
          name = toks[j].text;
          ++j;
          if (punct(j, "<")) {  // explicit specialization
            std::size_t depth = 0;
            for (; j < toks.size(); ++j) {
              if (punct(j, "<")) ++depth;
              else if (punct(j, ">") && --depth == 0) { ++j; break; }
              else if (punct(j, "{") || punct(j, ";")) break;
            }
          }
        }
        if (is(j, TokKind::kIdent, "final")) ++j;
        if (punct(j, ":")) {  // base clause: scan to '{' or ';'
          while (j < toks.size() && !punct(j, "{") && !punct(j, ";")) ++j;
        }
        if (punct(j, "{")) {
          scopes.push_back(
              Scope{is_enum ? Scope::kOther : Scope::kClass, name});
          i = j + 1;
          continue;
        }
        i = j;  // forward declaration or variable; keep scanning
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        const std::size_t next = try_function(i);
        if (next != i) {
          i = next;
          continue;
        }
      }
      ++i;
    }
  }
};

}  // namespace

std::vector<FunctionInfo> extract_functions(const LexedFile& file) {
  Extractor ex(file);
  ex.run();
  return ex.out;
}

bool matches_function_pattern(const std::string& qualified,
                              const std::string& pattern) {
  if (pattern.empty()) return false;
  if (qualified == pattern) return true;
  // Suffix match on a :: boundary.
  if (qualified.size() > pattern.size() + 2 &&
      qualified.compare(qualified.size() - pattern.size(), pattern.size(),
                        pattern) == 0 &&
      qualified.compare(qualified.size() - pattern.size() - 2, 2, "::") == 0) {
    return true;
  }
  // Bare class-name pattern: any member of the class.
  if (pattern.find("::") == std::string::npos) {
    const std::string needle = pattern + "::";
    const std::size_t at = qualified.find(needle);
    if (at != std::string::npos &&
        (at == 0 || (at >= 2 && qualified.compare(at - 2, 2, "::") == 0))) {
      return true;
    }
  }
  return false;
}

}  // namespace centaur::lint
