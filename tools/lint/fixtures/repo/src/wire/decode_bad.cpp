// Fixture for rule W1: raw byte-pointer reads in a src/wire decode path.
// `Cursor` is declared as a sanctioned cursor class in ../../../contexts.txt.
#include <cstdint>

namespace fixture {

unsigned read_header(const std::uint8_t* data) {
  unsigned v = *data;  // W1: raw dereference outside the cursor API
  ++data;              // W1: raw pointer advance
  return v;
}

struct Cursor {
  const std::uint8_t* pos_;
  unsigned u8() {
    return *pos_++;  // sanctioned: Cursor member
  }
};

unsigned suppressed_read(const std::uint8_t* bytes) {
  // centaur-lint: allow(W1) fixture: next-line suppression is honored
  return bytes[0];
}

}  // namespace fixture
