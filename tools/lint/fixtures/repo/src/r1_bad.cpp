// Fixture for rule R1: unsanctioned randomness and wall-clock time in src/.
#include <cstdlib>
#include <random>

int r1_fixture() {
  std::random_device rd;
  int a = rand();
  // centaur-lint: allow(R1) fixture: next-line suppression is honored
  long b = time(nullptr);
  return static_cast<int>(rd()) + a + static_cast<int>(b);
}
