// Fixture for rule D1.  FakeNode::on_message is declared as an `entry` in
// ../../contexts.txt, window_ as a `counter`, Driver::run as a `driver`.

struct FakeNode {
  void on_message() {
    schedule(1);  // D1: direct schedule() in the entry itself
    bump();
    guarded_bump();
    // centaur-lint: allow(D1) fixture: next-line suppression is honored
    schedule_at(2, 3);
  }

  void bump() {
    ++window_;  // D1: counter mutated in a handler-reachable helper
  }

  void guarded_bump() {
    if (in_parallel_phase()) {
      defer_commit_op();
    } else {
      ++window_;  // exempt: the function implements the guard protocol
    }
  }

  int window_ = 0;
};

struct Driver {
  void run() {
    schedule_at(0, 0);  // exempt: declared driver, pruned from the walk
  }
};
