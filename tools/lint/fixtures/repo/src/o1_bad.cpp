// Fixture for rule O1: stdout printing in library code.
#include <cstdio>
#include <iostream>

void o1_fixture() {
  std::cout << "hello\n";
  printf("x");  // centaur-lint: allow(O1) fixture: same-line suppression
}
