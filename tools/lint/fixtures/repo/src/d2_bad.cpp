// Fixture for rule D2: unordered containers in src/.
#include <unordered_map>

void d2_fixture() {
  std::unordered_map<int, int> m;
  (void)m;
  // centaur-lint: allow(D2) fixture: next-line suppression is honored
  std::unordered_set<int> s;
  (void)s;
}
