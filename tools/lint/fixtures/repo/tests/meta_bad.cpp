// Fixture for the LINT meta rule: broken suppression directives are
// themselves findings, and LINT findings cannot be suppressed.

int lint_meta_fixture() {
  return 0;  // centaur-lint: allow(D2)
}

// centaur-lint: allow(R9) fixture: names an unknown rule
