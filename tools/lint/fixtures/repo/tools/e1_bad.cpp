// Fixture for rule E1: raw getenv outside src/util/env.cpp.
#include <cstdlib>

const char* e1_fixture() { return std::getenv("CENTAUR_FIXTURE"); }

const char* e1_suppressed() {
  // centaur-lint: allow(E1) fixture: next-line suppression is honored
  return getenv("CENTAUR_FIXTURE");
}
