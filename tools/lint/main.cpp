// centaur-lint — project-contract static analyzer (see DESIGN.md §11).
//
// Exit codes: 0 clean, 1 findings, 2 usage / IO / configuration error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "report.hpp"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: centaur-lint [options] [path...]\n"
        "\n"
        "Walks src/, tools/, and tests/ under --root (or the given paths)\n"
        "and enforces the project-contract rules (DESIGN.md §11).\n"
        "\n"
        "options:\n"
        "  --root DIR       repo root (default: .)\n"
        "  --contexts FILE  rule contexts (default: ROOT/tools/lint/"
        "contexts.txt)\n"
        "  --baseline FILE  shrink-only baseline (default: ROOT/tools/lint/"
        "baseline.txt)\n"
        "  --format FMT     text | json | sarif (default: text)\n"
        "  --output FILE    write the report to FILE instead of stdout\n"
        "  --list-rules     print the rule table and exit\n"
        "  -h, --help       this message\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace centaur::lint;

  LintOptions opts;
  std::string format = "text";
  std::string output;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "centaur-lint: " << flag << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opts.root = next("--root");
    } else if (arg == "--contexts") {
      opts.contexts_path = next("--contexts");
    } else if (arg == "--baseline") {
      opts.baseline_path = next("--baseline");
    } else if (arg == "--format") {
      format = next("--format");
    } else if (arg == "--output") {
      output = next("--output");
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "centaur-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      opts.paths.push_back(arg);
    }
  }

  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "centaur-lint: unknown --format '" << format << "'\n";
    return 2;
  }

  if (list_rules) {
    std::cout << "centaur-lint rule set v" << kRuleSetVersion << "\n";
    for (const RuleDescription& r : rule_table()) {
      std::cout << "  " << r.id << "  " << r.summary << "\n";
    }
    return 0;
  }

  const LintResult result = run_lint(opts);
  if (!result.errors.empty()) {
    for (const std::string& e : result.errors) {
      std::cerr << "centaur-lint: error: " << e << "\n";
    }
    return 2;
  }

  std::string report;
  if (format == "json") {
    report = render_json(result.findings, result.stats);
  } else if (format == "sarif") {
    report = render_sarif(result.findings);
  } else {
    report = render_text(result.findings, result.stats);
  }

  if (output.empty()) {
    std::cout << report;
  } else {
    std::ofstream out(output, std::ios::binary);
    if (!out) {
      std::cerr << "centaur-lint: cannot write " << output << "\n";
      return 2;
    }
    out << report;
    // Keep the terminal useful even when the report goes to a file.
    std::cout << render_text(result.findings, result.stats);
  }

  return result.findings.empty() ? 0 : 1;
}
