// Rule definitions and the rule engine (rule-set version 1).
//
// Rules enforced, with path scopes (paths are repo-relative):
//
//   D1  determinism / deferred side effects          src/
//       No direct schedule()/schedule_at() call and no unguarded mutation
//       of a declared shared Network counter in any function reachable
//       from a node-tagged batch handler entry point (declared with
//       `entry` in contexts.txt).  Functions whose body implements the
//       serial-or-defer protocol itself (mentions both in_parallel_phase
//       and defer_commit_op) are exempt; `driver` functions in
//       contexts.txt are by-contract never called from handlers and prune
//       the reachability walk.
//   D2  no unordered containers                      src/
//       std::unordered_map / std::unordered_set leak hash-iteration order
//       into results; use util::FlatMap or a sorted util::SmallVec.
//   E1  env hygiene                                  src/ tools/ tests/
//       No raw getenv outside src/util/env.cpp; use the util/env strict
//       parsers (env_size_t, env_flag_strict, env_enum_strict, env_string).
//   R1  sanctioned randomness & time only            src/
//       No rand()/srand()/std::random_device, no time()/clock()/
//       gettimeofday()/std::chrono::system_clock: the sim clock and
//       util/rng are the only entropy/time sources protocol results may
//       depend on (steady_clock is permitted for wall-time *measurement*).
//   W1  decode safety                                src/wire/
//       No raw byte-pointer reads (deref, indexing, advance) outside the
//       bounds-checked cursor API (declared with `cursor` in
//       contexts.txt).
//   O1  no stdout printing in library code           src/
//       No printf/puts/putchar/std::cout; library diagnostics go through
//       util/log (stderr), reports through explicit streams.
//
//   LINT (meta) malformed suppression directives, unknown rule names.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis.hpp"
#include "lexer.hpp"

namespace centaur::lint {

inline constexpr int kRuleSetVersion = 1;

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;
  /// Stable fingerprint component for baseline matching (typically the
  /// offending token), independent of line numbers.
  std::string token;
};

/// Parsed contexts.txt: the checked-in declarations rules D1/W1 run against.
struct RuleContexts {
  std::vector<std::string> entries;   ///< D1 batch-handler entry points
  std::vector<std::string> counters;  ///< D1 shared counter identifiers
  std::vector<std::string> drivers;   ///< D1 driver-side functions (pruned)
  std::vector<std::string> cursors;   ///< W1 sanctioned cursor functions
  std::vector<std::string> errors;    ///< parse problems, "line N: ..."
};

RuleContexts parse_contexts(const std::string& text);

struct RuleDescription {
  const char* id;
  const char* summary;
};

/// The versioned rule table (for --list-rules and the SARIF tool object).
const std::vector<RuleDescription>& rule_table();

bool is_known_rule(const std::string& id);

/// Runs every rule over the lexed files and returns raw findings —
/// suppressions and baseline are applied by the driver, not here.
std::vector<Finding> run_rules(const std::vector<LexedFile>& files,
                               const RuleContexts& contexts);

}  // namespace centaur::lint
