// Heuristic function extraction and call-graph construction.
//
// Rule D1 ("no direct schedule / Network-counter mutation reachable from a
// node-tagged batch handler") needs to know which function each token lives
// in and which functions call which.  A full C++ parse is out of scope for a
// dependency-free linter, so this pass recovers just enough structure from
// the token stream:
//
//   * function definitions — a (possibly qualified) identifier followed by a
//     balanced parameter list and a `{` body, found at namespace/class
//     scope; constructors with init lists are handled, lambdas are treated
//     as part of their enclosing function's body;
//   * the qualified name — enclosing class/namespace names joined with
//     `::`, so `Network::send` and an inline `Cursor::u8` both resolve;
//   * the set of callee names — every identifier followed by `(` inside the
//     body (minus keywords), which over-approximates the real call graph:
//     calls are matched cross-file by unqualified name, never missed, and
//     sometimes over-matched.  Over-approximation keeps D1 sound as a gate;
//     false positives are handled with inline suppressions or `driver`
//     declarations in contexts.txt.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace centaur::lint {

struct FunctionInfo {
  std::string qualified;  ///< e.g. "Network::send", "anon::helper" -> "helper"
  std::string name;       ///< last component
  std::string file;
  std::size_t line = 0;
  /// Token index range of the body, braces excluded: [body_begin, body_end).
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<std::string> calls;  ///< unqualified callee names, in order
  /// Body mentions both in_parallel_phase and defer_commit_op: the function
  /// implements the serial-or-defer protocol itself and is exempt from D1's
  /// direct-mutation check (DESIGN.md §11).
  bool guard_aware = false;
};

/// Extracts function definitions from a lexed file.
std::vector<FunctionInfo> extract_functions(const LexedFile& file);

/// True if `qualified` matches a contexts.txt function pattern: exact match,
/// suffix match on a `::` boundary ("Network::send" matches
/// "centaur::sim::Network::send"), or — for a bare class name pattern like
/// "Cursor" — any member of that class.
bool matches_function_pattern(const std::string& qualified,
                              const std::string& pattern);

}  // namespace centaur::lint
