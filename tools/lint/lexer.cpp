#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace centaur::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the rules care about (longest first within
/// each leading character).  Everything else lexes as a single char.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "==",  "!=", "<=", ">=", "&&", "||", "<<",
    ">>",  "|=",  "&=",  "^=",  ".*",
};

struct Lexer {
  const std::string& src;
  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t col = 1;
  LexedFile out;
  // #include state: 0 = line start, 1 = saw '#', 2 = saw "include".
  int pp_state = 0;

  explicit Lexer(std::string path, const std::string& text) : src(text) {
    out.path = std::move(path);
  }

  char peek(std::size_t off = 0) const {
    return i + off < src.size() ? src[i + off] : '\0';
  }

  void advance() {
    if (src[i] == '\n') {
      ++line;
      col = 1;
      pp_state = 0;
    } else {
      ++col;
    }
    ++i;
  }

  void push(TokKind kind, std::string text, std::size_t tok_line,
            std::size_t tok_col) {
    if (pp_state == 1 && kind == TokKind::kIdent && text == "include") {
      pp_state = 2;
    } else if (kind == TokKind::kPunct && text == "#" && col == tok_col) {
      // handled by caller; state set there
    } else if (kind != TokKind::kHeaderName) {
      if (pp_state == 2) pp_state = 0;
    }
    out.tokens.push_back(Token{kind, std::move(text), tok_line, tok_col});
  }

  void lex_line_comment() {
    const std::size_t start_line = line;
    std::string text;
    advance();  // first '/'
    advance();  // second '/'
    while (i < src.size() && peek() != '\n') {
      text.push_back(peek());
      advance();
    }
    scan_directive(text, start_line);
  }

  void lex_block_comment() {
    const std::size_t start_line = line;
    std::string text;
    advance();  // '/'
    advance();  // '*'
    while (i < src.size()) {
      if (peek() == '*' && peek(1) == '/') {
        advance();
        advance();
        break;
      }
      text.push_back(peek());
      advance();
    }
    scan_directive(text, start_line);
  }

  /// Parses an allow() suppression directive out of comment text, if the
  /// directive marker is present.
  void scan_directive(const std::string& text, std::size_t comment_line) {
    const std::size_t at = text.find("centaur-lint:");
    if (at == std::string::npos) return;
    std::size_t p = at + std::string("centaur-lint:").size();
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
      ++p;
    const std::string kAllow = "allow(";
    if (text.compare(p, kAllow.size(), kAllow) != 0) {
      out.directive_errors.emplace_back(
          comment_line, "malformed centaur-lint directive (expected "
                        "'centaur-lint: allow(RULE) reason')");
      return;
    }
    p += kAllow.size();
    const std::size_t close = text.find(')', p);
    if (close == std::string::npos) {
      out.directive_errors.emplace_back(comment_line,
                                        "unterminated allow(...) rule list");
      return;
    }
    Suppression s;
    s.line = comment_line;
    std::string rule;
    for (std::size_t q = p; q <= close; ++q) {
      const char c = q < close ? text[q] : ',';
      if (c == ',') {
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](unsigned char ch) {
                                    return std::isspace(ch) != 0;
                                  }),
                   rule.end());
        if (!rule.empty()) s.rules.push_back(rule);
        rule.clear();
      } else {
        rule.push_back(c);
      }
    }
    std::size_t r = close + 1;
    while (r < text.size() && std::isspace(static_cast<unsigned char>(text[r])))
      ++r;
    s.reason = text.substr(r);
    while (!s.reason.empty() &&
           std::isspace(static_cast<unsigned char>(s.reason.back()))) {
      s.reason.pop_back();
    }
    if (s.rules.empty()) {
      out.directive_errors.emplace_back(comment_line,
                                        "allow() names no rules");
      return;
    }
    if (s.reason.empty()) {
      out.directive_errors.emplace_back(
          comment_line, "suppression needs a reason: centaur-lint: "
                        "allow(RULE) <why this is safe>");
      return;
    }
    out.suppressions.push_back(std::move(s));
  }

  void lex_string() {
    const std::size_t l = line, c = col;
    advance();  // opening quote
    std::string text;
    while (i < src.size() && peek() != '"' && peek() != '\n') {
      if (peek() == '\\' && i + 1 < src.size()) advance();
      text.push_back(peek());
      advance();
    }
    if (i < src.size() && peek() == '"') advance();
    push(TokKind::kString, std::move(text), l, c);
  }

  void lex_raw_string() {
    const std::size_t l = line, c = col;
    advance();  // '"'
    std::string delim;
    while (i < src.size() && peek() != '(') {
      delim.push_back(peek());
      advance();
    }
    const std::string closer = ")" + delim + "\"";
    std::string text;
    if (i < src.size()) advance();  // '('
    while (i < src.size() && src.compare(i, closer.size(), closer) != 0) {
      text.push_back(peek());
      advance();
    }
    for (std::size_t k = 0; k < closer.size() && i < src.size(); ++k) advance();
    push(TokKind::kString, std::move(text), l, c);
  }

  void lex_char() {
    const std::size_t l = line, c = col;
    advance();  // opening quote
    std::string text;
    while (i < src.size() && peek() != '\'' && peek() != '\n') {
      if (peek() == '\\' && i + 1 < src.size()) advance();
      text.push_back(peek());
      advance();
    }
    if (i < src.size() && peek() == '\'') advance();
    push(TokKind::kChar, std::move(text), l, c);
  }

  void lex_number() {
    const std::size_t l = line, c = col;
    std::string text;
    // pp-number: digits, letters, dots, digit separators, exponent signs.
    while (i < src.size()) {
      const char ch = peek();
      if (ident_char(ch) || ch == '.' || ch == '\'') {
        text.push_back(ch);
        advance();
        continue;
      }
      if ((ch == '+' || ch == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text.push_back(ch);
          advance();
          continue;
        }
      }
      break;
    }
    push(TokKind::kNumber, std::move(text), l, c);
  }

  void lex_header_name() {
    const std::size_t l = line, c = col;
    std::string text;
    text.push_back(peek());  // '<'
    advance();
    while (i < src.size() && peek() != '>' && peek() != '\n') {
      text.push_back(peek());
      advance();
    }
    if (i < src.size() && peek() == '>') {
      text.push_back('>');
      advance();
    }
    pp_state = 0;
    push(TokKind::kHeaderName, std::move(text), l, c);
  }

  void run() {
    while (i < src.size()) {
      const char c = peek();
      if (c == '\\' && peek(1) == '\n') {  // line continuation
        advance();
        advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '"') {
        lex_string();
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      // Raw string prefixes: R"..., u8R"..., uR"..., UR"..., LR"...
      if (ident_start(c)) {
        std::size_t j = i;
        while (j < src.size() && ident_char(src[j])) ++j;
        const std::string word = src.substr(i, j - i);
        const bool raw_prefix = (word == "R" || word == "u8R" || word == "uR" ||
                                 word == "UR" || word == "LR");
        if (raw_prefix && j < src.size() && src[j] == '"') {
          while (i < j) advance();  // consume the prefix
          lex_raw_string();
          continue;
        }
        const std::size_t l = line, cc = col;
        while (i < j) advance();
        push(TokKind::kIdent, word, l, cc);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        lex_number();
        continue;
      }
      if (c == '<' && pp_state == 2) {
        lex_header_name();
        continue;
      }
      if (c == '#') {
        // '#' only arms include-detection at the start of a line (the lexer
        // has no horizontal state, so accept '#' anywhere a directive could
        // begin: pp_state 0 means no token seen since the last newline).
        const std::size_t l = line, cc = col;
        const bool at_line_start = pp_state == 0;
        advance();
        push(TokKind::kPunct, "#", l, cc);
        if (at_line_start) pp_state = 1;
        continue;
      }
      // Multi-char punctuators, longest match first.
      bool matched = false;
      for (const char* p : kPuncts) {
        const std::size_t n = std::char_traits<char>::length(p);
        if (src.compare(i, n, p) == 0) {
          const std::size_t l = line, cc = col;
          for (std::size_t k = 0; k < n; ++k) advance();
          push(TokKind::kPunct, p, l, cc);
          matched = true;
          break;
        }
      }
      if (matched) continue;
      const std::size_t l = line, cc = col;
      std::string one(1, c);
      advance();
      push(TokKind::kPunct, std::move(one), l, cc);
    }
    mark_own_line_suppressions();
  }

  void mark_own_line_suppressions() {
    for (Suppression& s : out.suppressions) {
      s.own_line = true;
      for (const Token& t : out.tokens) {
        if (t.line == s.line) {
          s.own_line = false;
          break;
        }
      }
    }
  }
};

}  // namespace

LexedFile lex_file_text(std::string path, const std::string& text) {
  Lexer lx(std::move(path), text);
  lx.run();
  return lx.out;
}

}  // namespace centaur::lint
