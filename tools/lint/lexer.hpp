// Minimal C++ lexer for centaur-lint.
//
// The linter enforces project contracts (DESIGN.md §11) with token-level
// analysis: no libclang, no compiler dependency, so the CI gate stays
// hermetic and builds in well under a second.  The lexer therefore only has
// to be exact about the things rules look at — identifiers, punctuation,
// include header-names — and has to be exact about what rules must *never*
// look inside: comments, string/char literals (including raw strings), so a
// doc comment mentioning std::unordered_map can never trip rule D2.
//
// Comments are additionally scanned for inline suppression directives: the
// word "centaur-lint", a colon, an `allow(RULE[,RULE...])` rule list, and a
// mandatory free-text reason.  (The syntax is spelled out in prose here
// because a literal example in this comment would itself be parsed.)
//
// A directive suppresses matching findings on its own line; a directive
// that is alone on its line suppresses the following line instead.  A
// directive without a reason, or naming an unknown rule, is itself a
// finding (rule LINT) — suppressions are part of the audited surface.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace centaur::lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kHeaderName,  ///< the <...> of an #include directive, angle brackets kept
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line = 0;  ///< 1-based
  std::size_t col = 0;   ///< 1-based
};

/// One parsed allow() suppression directive.
struct Suppression {
  std::vector<std::string> rules;
  std::string reason;
  std::size_t line = 0;   ///< line the comment starts on
  bool own_line = false;  ///< no code tokens share the line -> covers line+1
};

struct LexedFile {
  std::string path;  ///< repo-relative, forward slashes
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  /// Malformed directives (the marker is present but unparseable or the
  /// reason is missing), as (line, message).
  std::vector<std::pair<std::size_t, std::string>> directive_errors;
};

/// Lexes `text` (the contents of `path`).  Never throws on malformed input:
/// an unterminated literal simply consumes to end of file.
LexedFile lex_file_text(std::string path, const std::string& text);

}  // namespace centaur::lint
