// Driver: file walk, suppression + baseline application, final verdict.
#pragma once

#include <string>
#include <vector>

#include "baseline.hpp"
#include "report.hpp"
#include "rules.hpp"

namespace centaur::lint {

struct LintOptions {
  /// Repo root; the default walk covers root/{src,tools,tests}.
  std::string root = ".";
  /// Explicit files/directories (repo-relative or absolute).  Empty ->
  /// default walk.
  std::vector<std::string> paths;
  std::string contexts_path;  ///< empty -> root/tools/lint/contexts.txt
  std::string baseline_path;  ///< empty -> root/tools/lint/baseline.txt
};

struct LintResult {
  /// Findings that fail the gate, sorted by file/line/col.
  std::vector<Finding> findings;
  ReportStats stats;
  /// Fatal problems (unreadable root, missing contexts file, ...).  When
  /// non-empty the findings are meaningless and the exit code is 2.
  std::vector<std::string> errors;
};

/// Collects the files the default walk would visit (sorted, repo-relative).
std::vector<std::string> collect_files(const LintOptions& opts,
                                       std::vector<std::string>* errors);

/// Runs the full pipeline: walk, lex, rules, suppressions, baseline.
LintResult run_lint(const LintOptions& opts);

}  // namespace centaur::lint
