#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace centaur::lint {
namespace {

namespace fs = std::filesystem;

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx";
}

std::string to_repo_relative(const fs::path& abs, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(abs, root, ec);
  if (ec || rel.empty()) rel = abs;
  return rel.generic_string();
}

/// Directories never walked: build trees, VCS metadata, and the lint
/// fixture trees (they contain deliberate violations exercised by tests).
bool is_skipped_dir(const fs::path& rel) {
  const std::string s = rel.generic_string();
  if (s == "tools/lint/fixtures") return true;
  const std::string name = rel.filename().string();
  return name == ".git" || name == "build" || name.rfind("build-", 0) == 0 ||
         name == "CMakeFiles";
}

void walk_dir(const fs::path& dir, const fs::path& root,
              std::vector<std::string>* out,
              std::vector<std::string>* errors) {
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec), end;
  if (ec) {
    errors->push_back("cannot walk " + dir.generic_string() + ": " +
                      ec.message());
    return;
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      errors->push_back("walk error under " + dir.generic_string() + ": " +
                        ec.message());
      return;
    }
    const fs::path rel = fs::relative(it->path(), root, ec);
    if (it->is_directory() && is_skipped_dir(rel)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && has_source_extension(it->path())) {
      out->push_back(rel.generic_string());
    }
  }
}

bool read_file(const fs::path& p, std::string* out, std::string* err) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *err = "cannot read " + p.generic_string();
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// True when `sup` covers `line` (same line, or the directive is alone on
/// its line and covers the next one).
bool covers_line(const Suppression& sup, std::size_t line) {
  if (sup.line == line) return true;
  return sup.own_line && sup.line + 1 == line;
}

bool rule_listed(const Suppression& sup, const std::string& rule) {
  return std::find(sup.rules.begin(), sup.rules.end(), rule) !=
         sup.rules.end();
}

}  // namespace

std::vector<std::string> collect_files(const LintOptions& opts,
                                       std::vector<std::string>* errors) {
  const fs::path root = fs::path(opts.root);
  std::vector<std::string> files;
  if (opts.paths.empty()) {
    for (const char* sub : {"src", "tools", "tests"}) {
      const fs::path dir = root / sub;
      std::error_code ec;
      if (fs::is_directory(dir, ec)) walk_dir(dir, root, &files, errors);
    }
  } else {
    for (const std::string& p : opts.paths) {
      fs::path abs = fs::path(p);
      if (abs.is_relative()) abs = root / abs;
      std::error_code ec;
      if (fs::is_directory(abs, ec)) {
        walk_dir(abs, root, &files, errors);
      } else if (fs::is_regular_file(abs, ec)) {
        files.push_back(to_repo_relative(abs, root));
      } else {
        errors->push_back("no such file or directory: " + p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

LintResult run_lint(const LintOptions& opts) {
  LintResult result;
  const fs::path root = fs::path(opts.root);

  const std::vector<std::string> files = collect_files(opts, &result.errors);
  result.stats.files = files.size();

  // Contexts are required: D1/W1 are meaningless without their declared
  // entry points and cursor functions.
  const fs::path contexts_path =
      opts.contexts_path.empty() ? root / "tools" / "lint" / "contexts.txt"
                                 : fs::path(opts.contexts_path);
  std::string contexts_text, err;
  if (!read_file(contexts_path, &contexts_text, &err)) {
    result.errors.push_back(err);
  }
  const RuleContexts contexts = parse_contexts(contexts_text);
  for (const std::string& e : contexts.errors) {
    result.errors.push_back(contexts_path.generic_string() + ": " + e);
  }

  // The baseline is optional (no file -> empty baseline).
  const fs::path baseline_path =
      opts.baseline_path.empty() ? root / "tools" / "lint" / "baseline.txt"
                                 : fs::path(opts.baseline_path);
  std::string baseline_text;
  std::error_code ec;
  if (fs::exists(baseline_path, ec)) {
    if (!read_file(baseline_path, &baseline_text, &err)) {
      result.errors.push_back(err);
    }
  }
  const Baseline baseline = parse_baseline(baseline_text);
  for (const std::string& e : baseline.errors) {
    result.errors.push_back(baseline_path.generic_string() + ": " + e);
  }

  if (!result.errors.empty()) return result;

  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const std::string& rel : files) {
    std::string text;
    if (!read_file(root / rel, &text, &err)) {
      result.errors.push_back(err);
      continue;
    }
    lexed.push_back(lex_file_text(rel, text));
  }
  if (!result.errors.empty()) return result;

  std::vector<Finding> raw = run_rules(lexed, contexts);

  // Inline suppressions.  LINT findings (malformed directives) are not
  // themselves suppressible — a broken directive can't vouch for itself.
  std::vector<Finding> unsuppressed;
  for (Finding& f : raw) {
    bool suppressed = false;
    if (f.rule != "LINT") {
      for (const LexedFile& lf : lexed) {
        if (lf.path != f.file) continue;
        for (const Suppression& sup : lf.suppressions) {
          if (covers_line(sup, f.line) && rule_listed(sup, f.rule)) {
            suppressed = true;
            break;
          }
        }
        break;
      }
    }
    if (suppressed) {
      ++result.stats.suppressed;
    } else {
      unsuppressed.push_back(std::move(f));
    }
  }

  BaselineOutcome outcome = apply_baseline(
      unsuppressed, baseline, to_repo_relative(baseline_path, root));
  result.stats.baselined = outcome.baselined;
  result.findings = std::move(outcome.fresh);
  result.findings.insert(result.findings.end(), outcome.stale.begin(),
                         outcome.stale.end());
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.col < b.col;
                   });
  return result;
}

}  // namespace centaur::lint
