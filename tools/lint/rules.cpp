#include "rules.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace centaur::lint {
namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool in_src(const std::string& path) { return starts_with(path, "src/"); }

bool e1_scope(const std::string& path) {
  if (path == "src/util/env.cpp") return false;  // the sanctioned accessor
  return in_src(path) || starts_with(path, "tools/") ||
         starts_with(path, "tests/");
}

bool in_wire(const std::string& path) {
  return starts_with(path, "src/wire/");
}

void add(std::vector<Finding>& out, const char* rule, const LexedFile& f,
         const Token& t, std::string message, std::string token = "") {
  out.push_back(Finding{rule, f.path, t.line, t.col, std::move(message),
                        token.empty() ? t.text : std::move(token)});
}

// ----------------------------------------------------------- D2 / E1 / R1 /
// O1: single-token rules over one file.

void run_token_rules(const LexedFile& f, std::vector<Finding>& out) {
  const bool src = in_src(f.path);
  const bool e1 = e1_scope(f.path);
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kHeaderName && src) {
      if (t.text == "<unordered_map>" || t.text == "<unordered_set>") {
        add(out, "D2", f, t,
            "include of " + t.text +
                " in src/: use util::FlatMap or a sorted util::SmallVec "
                "(hash-iteration order is not deterministic across "
                "implementations)",
            t.text);
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    const std::string& s = t.text;
    const bool called = i + 1 < toks.size() &&
                        toks[i + 1].kind == TokKind::kPunct &&
                        toks[i + 1].text == "(";
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const bool member_access =
        prev != nullptr && prev->kind == TokKind::kPunct &&
        (prev->text == "." || prev->text == "->");

    if (src && (s == "unordered_map" || s == "unordered_set")) {
      add(out, "D2", f, t,
          "std::" + s +
              " in src/: use util::FlatMap or a sorted util::SmallVec");
    }
    if (e1 && (s == "getenv" || s == "secure_getenv")) {
      add(out, "E1", f, t,
          "raw " + s +
              " outside src/util/env.cpp: use the util/env strict parsers "
              "(env_size_t / env_flag_strict / env_enum_strict / "
              "env_string)");
    }
    if (src) {
      if (s == "random_device" || s == "system_clock") {
        add(out, "R1", f, t,
            "std::" + s +
                " in src/: the sim clock and util/rng are the only "
                "sanctioned time/entropy sources");
      } else if ((s == "rand" || s == "srand" || s == "gettimeofday" ||
                  s == "clock_gettime") &&
                 called && !member_access) {
        add(out, "R1", f, t,
            s + "() in src/: use util::Rng (deterministic, seedable)");
      } else if ((s == "time" || s == "clock") && called && !member_access) {
        // Allow `obj.time()` / `foo::time()`; flag `time(`, `std::time(`
        // and `::time(`.
        bool qualified_other = false;
        if (prev != nullptr && prev->kind == TokKind::kPunct &&
            prev->text == "::") {
          const Token* prev2 = i >= 2 ? &toks[i - 2] : nullptr;
          qualified_other = prev2 != nullptr &&
                            prev2->kind == TokKind::kIdent &&
                            prev2->text != "std";
        }
        if (!qualified_other) {
          add(out, "R1", f, t,
              s + "() in src/: wall-clock reads make results "
                  "irreproducible; use the sim clock");
        }
      }
      if (s == "printf" || s == "puts" || s == "putchar" || s == "cout") {
        add(out, "O1", f, t,
            (s == "cout" ? "std::cout" : s + "()") +
                std::string(" in library code: print through an explicit "
                            "std::ostream parameter or util/log"));
      }
    }
  }
}

// ------------------------------------------------------------------- W1 ---
// Raw byte-pointer reads in src/wire outside the sanctioned cursor API.

bool token_in_function(const FunctionInfo& fn, std::size_t idx) {
  return idx >= fn.body_begin && idx < fn.body_end;
}

bool sanctioned_cursor(const std::vector<FunctionInfo>& fns, std::size_t idx,
                       const RuleContexts& ctx) {
  for (const FunctionInfo& fn : fns) {
    if (!token_in_function(fn, idx)) continue;
    for (const std::string& pat : ctx.cursors) {
      if (matches_function_pattern(fn.qualified, pat)) return true;
    }
  }
  return false;
}

void run_w1(const LexedFile& f, const std::vector<FunctionInfo>& fns,
            const RuleContexts& ctx, std::vector<Finding>& out) {
  if (!in_wire(f.path)) return;
  const std::vector<Token>& toks = f.tokens;

  // Pass 1: collect identifiers declared as raw byte pointers anywhere in
  // the file — `[const] [std::] uint8_t * [*|const]* name`.  The
  // declaration site itself is remembered so `uint8_t** pos` in a parameter
  // list is never mistaken for a dereference.
  std::set<std::string> pointers;
  std::set<std::size_t> decl_sites;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "uint8_t" && toks[i].text != "byte")) {
      continue;
    }
    std::size_t j = i + 1;
    bool saw_star = false;
    while (j < toks.size() &&
           ((toks[j].kind == TokKind::kPunct && toks[j].text == "*") ||
            (toks[j].kind == TokKind::kIdent && toks[j].text == "const"))) {
      saw_star = saw_star || toks[j].text == "*";
      ++j;
    }
    if (saw_star && j < toks.size() && toks[j].kind == TokKind::kIdent) {
      pointers.insert(toks[j].text);
      decl_sites.insert(j);
    }
  }
  if (pointers.empty()) return;

  // Pass 2: flag reads/advances of those identifiers outside the cursor API.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || pointers.count(t.text) == 0 ||
        decl_sites.count(i) != 0) {
      continue;
    }
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const bool prev_deref =
        prev != nullptr && prev->kind == TokKind::kPunct && prev->text == "*" &&
        // `*p` is a dereference unless `*` follows something that makes it
        // a multiplication or a declarator (an identifier, number, or
        // closing bracket).
        !(i >= 2 && (toks[i - 2].kind == TokKind::kIdent ||
                     toks[i - 2].kind == TokKind::kNumber ||
                     (toks[i - 2].kind == TokKind::kPunct &&
                      (toks[i - 2].text == ")" || toks[i - 2].text == "]"))));
    const bool indexed = next != nullptr && next->kind == TokKind::kPunct &&
                         next->text == "[";
    const bool advanced =
        (next != nullptr && next->kind == TokKind::kPunct &&
         (next->text == "++" || next->text == "--" || next->text == "+=")) ||
        (prev != nullptr && prev->kind == TokKind::kPunct &&
         (prev->text == "++" || prev->text == "--"));
    if (!(prev_deref || indexed || advanced)) continue;
    if (sanctioned_cursor(fns, i, ctx)) continue;
    add(out, "W1", f, t,
        "raw byte-pointer read of '" + t.text +
            "' in a src/wire decode path: go through the bounds-checked "
            "cursor API (wire::Cursor / get_varint)");
  }
}

// ------------------------------------------------------------------- D1 ---

struct GlobalFn {
  const LexedFile* file;
  FunctionInfo info;
  bool reachable = false;
  bool driver = false;
};

void run_d1(const std::vector<LexedFile>& files,
            const std::vector<std::vector<FunctionInfo>>& fns_per_file,
            const RuleContexts& ctx, std::vector<Finding>& out) {
  if (ctx.entries.empty()) return;

  std::vector<GlobalFn> fns;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    if (!in_src(files[fi].path)) continue;  // D1 is a src/ contract
    for (const FunctionInfo& fn : fns_per_file[fi]) {
      GlobalFn g{&files[fi], fn, false, false};
      for (const std::string& d : ctx.drivers) {
        if (matches_function_pattern(fn.qualified, d)) g.driver = true;
      }
      fns.push_back(std::move(g));
    }
  }

  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    by_name[fns[i].info.name].push_back(i);
  }

  // Seed: functions matching an `entry` pattern.
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    for (const std::string& e : ctx.entries) {
      if (matches_function_pattern(fns[i].info.qualified, e) &&
          !fns[i].driver) {
        fns[i].reachable = true;
        work.push_back(i);
        break;
      }
    }
  }
  // Name-matched closure (over-approximate by construction).
  while (!work.empty()) {
    const std::size_t cur = work.back();
    work.pop_back();
    for (const std::string& callee : fns[cur].info.calls) {
      const auto it = by_name.find(callee);
      if (it == by_name.end()) continue;
      for (const std::size_t target : it->second) {
        if (fns[target].reachable || fns[target].driver) continue;
        fns[target].reachable = true;
        work.push_back(target);
      }
    }
  }

  const std::set<std::string> counters(ctx.counters.begin(),
                                       ctx.counters.end());
  for (const GlobalFn& g : fns) {
    if (!g.reachable || g.info.guard_aware) continue;
    const std::vector<Token>& toks = g.file->tokens;
    for (std::size_t i = g.info.body_begin; i < g.info.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      const bool called = i + 1 < g.info.body_end &&
                          toks[i + 1].kind == TokKind::kPunct &&
                          toks[i + 1].text == "(";
      if ((t.text == "schedule" || t.text == "schedule_at") && called) {
        add(out, "D1", *g.file, t,
            "direct " + t.text + "() in handler-reachable function '" +
                g.info.qualified +
                "': untagged events break same-instant batching — use "
                "schedule_tagged/schedule_at_tagged or defer through "
                "sim::defer_commit_op",
            g.info.qualified + ":" + t.text);
        continue;
      }
      if (counters.count(t.text) == 0) continue;
      // Mutation contexts: `++c` / `--c` / `c ++` / `c op=` / `c =` /
      // `c.member op=` etc.
      const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
      bool mutated = prev != nullptr && prev->kind == TokKind::kPunct &&
                     (prev->text == "++" || prev->text == "--");
      std::size_t j = i + 1;
      while (!mutated && j + 1 < toks.size() &&
             toks[j].kind == TokKind::kPunct && toks[j].text == "." &&
             toks[j + 1].kind == TokKind::kIdent) {
        j += 2;
      }
      if (!mutated && j < toks.size() && toks[j].kind == TokKind::kPunct) {
        const std::string& op = toks[j].text;
        mutated = op == "=" || op == "+=" || op == "-=" || op == "++" ||
                  op == "--";
      }
      if (mutated) {
        add(out, "D1", *g.file, t,
            "shared counter '" + t.text +
                "' mutated in handler-reachable function '" +
                g.info.qualified +
                "' without the in_parallel_phase/defer_commit_op protocol",
            g.info.qualified + ":" + t.text);
      }
    }
  }
}

}  // namespace

RuleContexts parse_contexts(const std::string& text) {
  RuleContexts ctx;
  std::istringstream in(text);
  std::string line_text;
  std::size_t line_no = 0;
  while (std::getline(in, line_text)) {
    ++line_no;
    std::istringstream ls(line_text);
    std::string kind, value;
    if (!(ls >> kind) || kind[0] == '#') continue;
    if (!(ls >> value)) {
      ctx.errors.push_back("line " + std::to_string(line_no) +
                           ": missing value after '" + kind + "'");
      continue;
    }
    if (kind == "entry") ctx.entries.push_back(value);
    else if (kind == "counter") ctx.counters.push_back(value);
    else if (kind == "driver") ctx.drivers.push_back(value);
    else if (kind == "cursor") ctx.cursors.push_back(value);
    else {
      ctx.errors.push_back("line " + std::to_string(line_no) +
                           ": unknown declaration '" + kind +
                           "' (want entry|counter|driver|cursor)");
    }
  }
  return ctx;
}

const std::vector<RuleDescription>& rule_table() {
  static const std::vector<RuleDescription> kRules = {
      {"D1",
       "no direct schedule()/schedule_at() or unguarded shared-counter "
       "mutation reachable from node-tagged batch handlers"},
      {"D2", "no std::unordered_map/unordered_set in src/"},
      {"E1", "no raw getenv outside src/util/env.cpp"},
      {"R1", "no rand()/random_device/time()/system_clock in src/"},
      {"W1", "no raw byte-pointer reads in src/wire outside the cursor API"},
      {"O1", "no printf/std::cout in library code"},
      {"LINT", "malformed or unknown centaur-lint directives"},
  };
  return kRules;
}

bool is_known_rule(const std::string& id) {
  for (const RuleDescription& r : rule_table()) {
    if (id == r.id) return true;
  }
  return false;
}

std::vector<Finding> run_rules(const std::vector<LexedFile>& files,
                               const RuleContexts& contexts) {
  std::vector<Finding> out;
  std::vector<std::vector<FunctionInfo>> fns;
  fns.reserve(files.size());
  for (const LexedFile& f : files) fns.push_back(extract_functions(f));

  for (std::size_t i = 0; i < files.size(); ++i) {
    const LexedFile& f = files[i];
    run_token_rules(f, out);
    run_w1(f, fns[i], contexts, out);
    for (const auto& [line, msg] : f.directive_errors) {
      out.push_back(Finding{"LINT", f.path, line, 1, msg, "directive"});
    }
    for (const Suppression& s : f.suppressions) {
      for (const std::string& r : s.rules) {
        if (!is_known_rule(r)) {
          out.push_back(Finding{"LINT", f.path, s.line, 1,
                                "allow() names unknown rule '" + r + "'",
                                "unknown-rule"});
        }
      }
    }
  }
  run_d1(files, fns, contexts, out);

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.col < b.col;
                   });
  return out;
}

}  // namespace centaur::lint
