#include "baseline.hpp"

#include <map>
#include <sstream>

namespace centaur::lint {

Baseline parse_baseline(const std::string& text) {
  Baseline out;
  std::istringstream in(text);
  std::string line_text;
  std::size_t line_no = 0;
  while (std::getline(in, line_text)) {
    ++line_no;
    std::istringstream ls(line_text);
    BaselineEntry e;
    if (!(ls >> e.rule) || e.rule[0] == '#') continue;
    if (!(ls >> e.path >> e.token >> e.count)) {
      out.errors.push_back("baseline line " + std::to_string(line_no) +
                           ": want 'RULE path token count'");
      continue;
    }
    if (!is_known_rule(e.rule)) {
      out.errors.push_back("baseline line " + std::to_string(line_no) +
                           ": unknown rule '" + e.rule + "'");
      continue;
    }
    if (e.count == 0) {
      out.errors.push_back("baseline line " + std::to_string(line_no) +
                           ": count 0 — delete the entry instead");
      continue;
    }
    e.line = line_no;
    out.entries.push_back(std::move(e));
  }
  return out;
}

BaselineOutcome apply_baseline(const std::vector<Finding>& findings,
                               const Baseline& baseline,
                               const std::string& baseline_path) {
  const auto key = [](const std::string& rule, const std::string& path,
                      const std::string& token) {
    return rule + '\0' + path + '\0' + token;
  };

  std::map<std::string, const BaselineEntry*> entries;
  for (const BaselineEntry& e : baseline.entries) {
    entries[key(e.rule, e.path, e.token)] = &e;
  }

  BaselineOutcome out;
  std::map<std::string, std::size_t> used;
  for (const Finding& f : findings) {
    const std::string k = key(f.rule, f.file, f.token);
    const auto it = entries.find(k);
    if (it != entries.end() && used[k] < it->second->count) {
      ++used[k];
      ++out.baselined;
    } else {
      out.fresh.push_back(f);
    }
  }
  for (const BaselineEntry& e : baseline.entries) {
    const std::size_t have = used[key(e.rule, e.path, e.token)];
    if (have < e.count) {
      out.stale.push_back(Finding{
          "BASE", baseline_path, e.line, 1,
          "stale baseline entry: " + e.rule + " " + e.path + " " + e.token +
              " claims " + std::to_string(e.count) + " finding(s) but only " +
              std::to_string(have) +
              " exist — shrink the entry (the baseline may only shrink)",
          e.rule + ":" + e.path + ":" + e.token});
    }
  }
  return out;
}

}  // namespace centaur::lint
