// centaur — command-line driver for the library.
//
//   centaur generate --style caida|hetop|brite --nodes N [--seed S]
//       Emit a synthetic AS topology in CAIDA as-rel format on stdout.
//   centaur stats --topology FILE
//       Print Table-3-style characteristics of an as-rel topology.
//   centaur routes --topology FILE --vantage AS [--dests K]
//       Print the vantage AS's valley-free routing table (sampled).
//   centaur simulate --topology FILE --protocol centaur|bgp|bgp-rcn|ospf
//                    [--flips K] [--seed S] [--mrai SECONDS] [--check]
//       Cold-start the protocol on the topology and measure link flips.
//       --check runs the simulation in analysis mode (src/check): protocol
//       invariants are re-validated after every event and at each
//       quiescence point, and the violation report is printed (exit status
//       1 if any invariant was breached).
//
// Topologies are as-rel files (`a|b|-1` provider, `a|b|0` peer, `a|b|2`
// sibling); `centaur generate ... > topo.txt` round-trips into every other
// subcommand.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "eval/experiments.hpp"
#include "policy/valley_free.hpp"
#include "topology/algorithms.hpp"
#include "topology/generator.hpp"
#include "topology/parser.hpp"
#include "topology/stats.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace centaur;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  centaur generate --style caida|hetop|brite --nodes N [--seed S]\n"
      "  centaur stats    --topology FILE\n"
      "  centaur routes   --topology FILE --vantage AS [--dests K]\n"
      "  centaur simulate --topology FILE --protocol centaur|bgp|bgp-rcn|ospf\n"
      "                   [--flips K] [--seed S] [--mrai SECONDS] [--check]\n";
  std::exit(error.empty() ? 0 : 2);
}

/// --key value option map; validates that every key is consumed.
/// A few options are valueless flags (e.g. --check) and store "1".
class Options {
 public:
  Options(int argc, char** argv, int first) {
    static const std::set<std::string> kFlags{"check"};
    for (int i = first; i < argc; ++i) {
      const std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        usage("expected --key value pairs, got '" + key + "'");
      }
      if (kFlags.count(key.substr(2))) {
        values_[key.substr(2)] = "1";
        continue;
      }
      if (i + 1 >= argc) usage("option " + key + " expects a value");
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& fallback = "") {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (fallback.empty()) usage("missing required option --" + key);
      return fallback;
    }
    consumed_.insert(key);
    return it->second;
  }

  long get_long(const std::string& key, long fallback) {
    const std::string raw = get(key, std::to_string(fallback));
    try {
      return std::stol(raw);
    } catch (const std::exception&) {
      usage("option --" + key + " expects a number, got '" + raw + "'");
    }
  }

  void finish() {
    for (const auto& [key, value] : values_) {
      if (!consumed_.count(key)) usage("unknown option --" + key);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

topo::ParsedTopology load(const std::string& path) {
  topo::ParsedTopology t = topo::load_as_rel_file(path);
  if (!topo::is_connected(t.graph)) {
    std::cerr << "note: topology is not connected; using it as-is\n";
  }
  return t;
}

int cmd_generate(Options& opt) {
  const std::string style = opt.get("style");
  const auto nodes = static_cast<std::size_t>(opt.get_long("nodes", 1000));
  util::Rng rng(static_cast<std::uint64_t>(opt.get_long("seed", 1)));
  opt.finish();

  topo::AsGraph g;
  if (style == "caida") {
    g = topo::tiered_internet(topo::caida_like_params(nodes), rng);
  } else if (style == "hetop") {
    g = topo::tiered_internet(topo::hetop_like_params(nodes), rng);
  } else if (style == "brite") {
    g = topo::brite_like(nodes, 2, std::max<std::size_t>(4, nodes / 40), rng);
  } else {
    usage("unknown --style '" + style + "'");
  }
  topo::write_as_rel(std::cout, g);
  return 0;
}

int cmd_stats(Options& opt) {
  const auto t = load(opt.get("topology"));
  opt.finish();
  std::cout << topo::compute_stats(t.graph, "topology") << "\n";
  return 0;
}

int cmd_routes(Options& opt) {
  const auto t = load(opt.get("topology"));
  const auto vantage_as = static_cast<std::uint32_t>(opt.get_long("vantage", -1));
  const auto dest_sample =
      static_cast<std::size_t>(opt.get_long("dests", 20));
  opt.finish();

  const auto it = t.as_to_node.find(vantage_as);
  if (it == t.as_to_node.end()) usage("--vantage AS not in the topology");
  const topo::NodeId vantage = it->second;

  util::Rng rng(7);
  const auto dests = rng.sample_without_replacement(
      t.graph.num_nodes(), std::min(dest_sample, t.graph.num_nodes()));
  util::TextTable table("routes of AS " + std::to_string(vantage_as));
  table.header({"destination AS", "class", "AS path"});
  for (const std::size_t raw : dests) {
    const auto dest = static_cast<topo::NodeId>(raw);
    if (dest == vantage) continue;
    const auto routes = policy::ValleyFreeRoutes::compute(t.graph, dest);
    if (!routes.at(vantage).reachable()) {
      table.row({std::to_string(t.node_to_as[dest]), "-", "(unreachable)"});
      continue;
    }
    std::string path_text;
    for (const topo::NodeId hop : routes.path_from(vantage)) {
      path_text += (path_text.empty() ? "" : " ") +
                   std::to_string(t.node_to_as[hop]);
    }
    table.row({std::to_string(t.node_to_as[dest]),
               policy::to_string(routes.at(vantage).source), path_text});
  }
  table.print(std::cout);
  return 0;
}

int cmd_simulate(Options& opt) {
  const auto t = load(opt.get("topology"));
  const std::string proto_name = opt.get("protocol");
  const auto flips = static_cast<std::size_t>(opt.get_long("flips", 10));
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 1));
  const bool analysis = opt.get("check", "0") == "1";
  eval::RunOptions run_options;
  run_options.bgp_mrai = static_cast<double>(opt.get_long("mrai", 0));
  if (analysis) run_options.analysis = eval::AnalysisMode::kCollect;
  opt.finish();

  eval::Protocol proto;
  if (proto_name == "centaur") {
    proto = eval::Protocol::kCentaur;
  } else if (proto_name == "bgp") {
    proto = eval::Protocol::kBgp;
  } else if (proto_name == "bgp-rcn") {
    proto = eval::Protocol::kBgpRcn;
  } else if (proto_name == "ospf") {
    proto = eval::Protocol::kOspf;
  } else {
    usage("unknown --protocol '" + proto_name + "'");
  }

  const auto series =
      eval::run_link_flips(t.graph, proto, flips, util::Rng(seed), run_options);
  util::Accumulator msgs, times;
  for (double m : series.message_counts) msgs.add(m);
  for (double s : series.convergence_times) times.add(s);

  util::TextTable table(std::string("simulation — ") + eval::to_string(proto));
  table.header({"metric", "value"});
  table.row({"cold-start messages",
             util::fmt_count(series.cold_start.messages_sent)});
  table.row({"cold-start bytes", util::fmt_count(series.cold_start.bytes_sent)});
  table.row({"cold-start time (ms)",
             util::fmt_double(series.cold_start_time * 1e3, 2)});
  table.row({"flip transitions", util::fmt_count(msgs.count())});
  table.row({"messages/flip (mean)", util::fmt_double(msgs.mean(), 1)});
  table.row({"messages/flip (p90)", util::fmt_double(msgs.quantile(0.9), 1)});
  table.row({"convergence ms (mean)", util::fmt_double(times.mean() * 1e3, 2)});
  table.row({"convergence ms (p90)",
             util::fmt_double(times.quantile(0.9) * 1e3, 2)});
  if (analysis) {
    table.row({"invariant checks", util::fmt_count(series.analysis.checks_run)});
    table.row({"invariant violations",
               util::fmt_count(series.analysis.violations_seen)});
  }
  table.print(std::cout);
  if (analysis) {
    series.analysis.print(std::cout);
    if (!series.analysis.clean()) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  try {
    Options opt(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(opt);
    if (cmd == "stats") return cmd_stats(opt);
    if (cmd == "routes") return cmd_routes(opt);
    if (cmd == "simulate") return cmd_simulate(opt);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") usage();
    usage("unknown subcommand '" + cmd + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
