// centaur — command-line driver for the library.
//
// Subcommands (see usage() / `centaur help` for the option tables):
//   generate  Emit a synthetic AS topology in CAIDA as-rel format on stdout.
//   stats     Print Table-3-style characteristics of an as-rel topology.
//   routes    Print a vantage AS's valley-free routing table (sampled).
//   simulate  Cold-start a protocol on a topology and measure link flips.
//   campaign  Run a scripted fault-injection campaign (src/faults) — either
//             a JSON ScenarioSpec file or the builtin reliability script —
//             and report per-phase convergence/message/byte numbers.
//   bench     The canned reliability campaign across all four protocols
//             (campaign with --builtin defaults), for baseline capture.
//   serve     Run a Centaur scenario with the serving plane attached and
//             answer a queries file (k paths + disjoint count per query)
//             from the converged RCU snapshots.
//   querybench  The two-phase serving-plane bench (queries racing live
//             convergence, then gated deterministic counters) — the
//             BENCH_query.json producer.
//
// simulate / campaign / bench / serve / querybench share one option-parsing
// path: the same --seed/--mrai/--check/--json spellings everywhere, each
// mirroring an environment variable from the README table (printed by
// `centaur help`).
//
// Topologies are as-rel files (`a|b|-1` provider, `a|b|0` peer, `a|b|2`
// sibling); `centaur generate ... > topo.txt` round-trips into every other
// subcommand.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiments.hpp"
#include "faults/campaign.hpp"
#include "policy/valley_free.hpp"
#include "runner/bench_report.hpp"
#include "runner/parallel.hpp"
#include "serve/engine.hpp"
#include "serve/query_bench.hpp"
#include "serve/query_file.hpp"
#include "topology/algorithms.hpp"
#include "topology/generator.hpp"
#include "topology/parser.hpp"
#include "topology/stats.hpp"
#include "util/env.hpp"
#include "util/scale.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace centaur;

/// Environment knobs honoured by the run subcommands (the README table).
/// Each row is (variable, values with default, what it does).
constexpr struct EnvVar {
  const char* var;
  const char* values;
  const char* what;
} kEnvVars[] = {
    {"CENTAUR_SCALE", "smoke|default|large (default)",
     "topology sizes / trial counts; the campaign/bench node default"},
    {"CENTAUR_THREADS", "integer >= 1 (hardware concurrency)",
     "trial fan-out width; any value is bit-identical to serial"},
    {"CENTAUR_INTRA_THREADS", "integer >= 1 (1)",
     "worker lanes for same-instant event batches inside one trial; any "
     "value is bit-identical to serial"},
    {"CENTAUR_SHARDS", "integer >= 1 (1)",
     "topology sharding: per-shard event queues with deterministic "
     "cross-shard channels; any shard count is bit-identical to unsharded"},
    {"CENTAUR_BENCH_JSON", "file or directory path (off)",
     "emit BENCH_<name>.json reports; --json <path> overrides"},
    {"CENTAUR_CHECK", "off|collect|assert (off)",
     "attach the invariant analyzer to every run; --check = collect"},
    {"CENTAUR_COALESCE", "0/off/false disables (on)",
     "same-burst outbound coalescing of Centaur updates"},
    {"CENTAUR_BATCH_DATAGRAMS", "1 enables (off)",
     "coalesce same-neighbor updates within one instant into one batch "
     "datagram; routing state identical, datagram counts change"},
    {"CENTAUR_INCREMENTAL", "0/off/false disables (on)",
     "incremental recompute plane (cached reselect, dirty-set derivation, "
     "view deltas); off runs the bit-identical from-scratch reference"},
    {"CENTAUR_BLOOM_PLISTS", "1 enables (off)",
     "Bloom-compressed Permission List sizing"},
    {"CENTAUR_SERVE_THREADS", "integer >= 1 (4)",
     "serving-plane query lanes (serve / querybench); results are "
     "bit-identical for any value"},
    {"CENTAUR_QUERY_K", "integer >= 1 (4)",
     "paths returned per query (canonical DerivePath result first)"},
    {"CENTAUR_SNAPSHOT_POLICY", "delta|full (delta)",
     "serving-plane snapshot publishing: delta-proportional overlays with "
     "geometric collapse, or a full copy per publish (ablation)"},
    {"CENTAUR_LOG", "error|warn|info|debug (warn)",
     "library logging verbosity"},
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  centaur generate --style caida|hetop|brite --nodes N [--seed S]\n"
      "  centaur stats    --topology FILE\n"
      "  centaur routes   --topology FILE --vantage AS [--dests K]\n"
      "  centaur simulate --topology FILE --protocol centaur|bgp|bgp-rcn|ospf\n"
      "                   [--flips K] [--seed S] [--mrai SECONDS] [--check]\n"
      "  centaur campaign [--scenario FILE.json | --nodes N] [--topology FILE]\n"
      "                   [--protocol centaur|bgp|bgp-rcn|ospf|all] [--seed S]\n"
      "                   [--mrai SECONDS] [--check] [--json PATH]\n"
      "  centaur bench    [--nodes N] [--seed S] [--json PATH]\n"
      "  centaur serve    --queries FILE.json [--scenario FILE.json]\n"
      "                   [--topology FILE] [--nodes N] [--seed S]\n"
      "                   [--mrai SECONDS] [--check]\n"
      "  centaur querybench [--nodes N] [--seed S] [--json PATH]\n"
      "\n"
      "campaign runs a scripted fault-injection campaign (SRLG bursts, node\n"
      "crash/restart, flap storms, partition/heal, plus the adversarial\n"
      "actions route_leak, intercept, local_pref_flip and rel_change) to\n"
      "quiescence phase by phase; without --scenario it uses the builtin\n"
      "reliability script.  The committed scenarios/*.json packs cover the\n"
      "route-leak, interception and policy-churn scenarios; adversarial\n"
      "phases additionally report routes flagged by the valley-freeness /\n"
      "interception audit, detection latency, and blast radius.\n"
      "bench is the same with all four protocols forced.\n"
      "\n"
      "serve replays a Centaur scenario with the serving plane attached and\n"
      "answers the queries file ({\"queries\":[{\"src\":A,\"dst\":B[,\"k\":K]}]})\n"
      "from the converged RCU snapshots: up to k policy-compliant paths\n"
      "(canonical DerivePath first) plus the disjoint-path count per query.\n"
      "querybench races query lanes against live convergence, then emits the\n"
      "gated deterministic counters as BENCH_query.json.\n"
      "\n"
      "environment (run subcommands):\n";
  for (const EnvVar& e : kEnvVars) {
    std::cerr << "  " << e.var;
    for (std::size_t i = std::strlen(e.var); i < 22; ++i) std::cerr << ' ';
    std::cerr << e.values << "\n";
    std::cerr << "                          " << e.what << "\n";
  }
  std::exit(error.empty() ? 0 : 2);
}

/// --key value option map; validates that every key is consumed.
/// A few options are valueless flags (e.g. --check) and store "1".
class Options {
 public:
  Options(int argc, char** argv, int first) {
    static const std::set<std::string> kFlags{"check"};
    for (int i = first; i < argc; ++i) {
      const std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        usage("expected --key value pairs, got '" + key + "'");
      }
      if (kFlags.count(key.substr(2))) {
        values_[key.substr(2)] = "1";
        continue;
      }
      if (i + 1 >= argc) usage("option " + key + " expects a value");
      values_[key.substr(2)] = argv[++i];
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback = "") {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (fallback.empty()) usage("missing required option --" + key);
      return fallback;
    }
    consumed_.insert(key);
    return it->second;
  }

  /// Like get(), but absent means empty (for options with no default).
  std::string get_optional(const std::string& key) {
    if (!has(key)) return "";
    return get(key);
  }

  long get_long(const std::string& key, long fallback) {
    const std::string raw = get(key, std::to_string(fallback));
    try {
      return std::stol(raw);
    } catch (const std::exception&) {
      usage("option --" + key + " expects a number, got '" + raw + "'");
    }
  }

  void finish() {
    for (const auto& [key, value] : values_) {
      if (!consumed_.count(key)) usage("unknown option --" + key);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

topo::ParsedTopology load(const std::string& path) {
  topo::ParsedTopology t = topo::load_as_rel_file(path);
  if (!topo::is_connected(t.graph)) {
    std::cerr << "note: topology is not connected; using it as-is\n";
  }
  return t;
}

// ----------------------------------------------- shared run options ------
// One parsing path for every subcommand that runs the simulator: the same
// spellings, each with an environment-variable equivalent (see kEnvVars).

/// --mrai / --check (CENTAUR_CHECK is the env-side spelling of --check).
/// --check means "at least collect": a stricter CENTAUR_CHECK=assert still
/// wins, so CI can escalate flagged runs to hard aborts without a flag.
eval::RunOptions run_options_from(Options& opt) {
  eval::RunOptions run_options;
  run_options.bgp_mrai = static_cast<double>(opt.get_long("mrai", 0));
  const eval::AnalysisMode env_mode = eval::analysis_from_env();
  run_options.analysis =
      opt.get("check", "0") == "1" && env_mode != eval::AnalysisMode::kAssert
          ? eval::AnalysisMode::kCollect
          : env_mode;
  return run_options;
}

/// The --protocol spelling for a protocol (to_string() returns display
/// names like "BGP-RCN" that protocol_from_string rejects).
std::string cli_protocol_name(eval::Protocol p) {
  switch (p) {
    case eval::Protocol::kBgp:
      return "bgp";
    case eval::Protocol::kBgpRcn:
      return "bgp-rcn";
    case eval::Protocol::kCentaur:
      return "centaur";
    case eval::Protocol::kOspf:
      return "ospf";
  }
  return "centaur";
}

/// --protocol, with "all" allowed when `allow_all` (campaign sweeps).
std::vector<eval::Protocol> protocols_from(Options& opt,
                                           const std::string& fallback,
                                           bool allow_all) {
  const std::string name = opt.get("protocol", fallback);
  if (allow_all && name == "all") {
    return {std::begin(eval::kAllProtocols), std::end(eval::kAllProtocols)};
  }
  try {
    return {eval::protocol_from_string(name)};
  } catch (const std::invalid_argument&) {
    usage("unknown --protocol '" + name + "'" +
          (allow_all ? " (want centaur|bgp|bgp-rcn|ospf|all)" : ""));
  }
}

/// --json with the CENTAUR_BENCH_JSON fallback and directory naming
/// (delegates to the bench report resolver so all writers agree).
std::string resolve_json_path(Options& opt, const std::string& bench) {
  std::string value = opt.get_optional("json");
  std::string prog = "centaur";
  std::string flag = "--json";
  char* argv[] = {prog.data(), flag.data(), value.data()};
  int argc = value.empty() ? 1 : 3;
  return runner::BenchReport::resolve_path(&argc, argv, bench);
}

// ----------------------------------------------------- subcommands -------

int cmd_generate(Options& opt) {
  const std::string style = opt.get("style");
  const auto nodes = static_cast<std::size_t>(opt.get_long("nodes", 1000));
  util::Rng rng(static_cast<std::uint64_t>(opt.get_long("seed", 1)));
  opt.finish();

  topo::AsGraph g;
  if (style == "caida") {
    g = topo::tiered_internet(topo::caida_like_params(nodes), rng);
  } else if (style == "hetop") {
    g = topo::tiered_internet(topo::hetop_like_params(nodes), rng);
  } else if (style == "brite") {
    g = topo::brite_like(nodes, 2, std::max<std::size_t>(4, nodes / 40), rng);
  } else {
    usage("unknown --style '" + style + "'");
  }
  topo::write_as_rel(std::cout, g);
  return 0;
}

int cmd_stats(Options& opt) {
  const auto t = load(opt.get("topology"));
  opt.finish();
  std::cout << topo::compute_stats(t.graph, "topology") << "\n";
  return 0;
}

int cmd_routes(Options& opt) {
  const auto t = load(opt.get("topology"));
  const auto vantage_as = static_cast<std::uint32_t>(opt.get_long("vantage", -1));
  const auto dest_sample =
      static_cast<std::size_t>(opt.get_long("dests", 20));
  opt.finish();

  const topo::NodeId* found = t.as_to_node.find(vantage_as);
  if (found == nullptr) usage("--vantage AS not in the topology");
  const topo::NodeId vantage = *found;

  util::Rng rng(7);
  const auto dests = rng.sample_without_replacement(
      t.graph.num_nodes(), std::min(dest_sample, t.graph.num_nodes()));
  util::TextTable table("routes of AS " + std::to_string(vantage_as));
  table.header({"destination AS", "class", "AS path"});
  for (const std::size_t raw : dests) {
    const auto dest = static_cast<topo::NodeId>(raw);
    if (dest == vantage) continue;
    const auto routes = policy::ValleyFreeRoutes::compute(t.graph, dest);
    if (!routes.at(vantage).reachable()) {
      table.row({std::to_string(t.node_to_as[dest]), "-", "(unreachable)"});
      continue;
    }
    std::string path_text;
    for (const topo::NodeId hop : routes.path_from(vantage)) {
      path_text += (path_text.empty() ? "" : " ") +
                   std::to_string(t.node_to_as[hop]);
    }
    table.row({std::to_string(t.node_to_as[dest]),
               policy::to_string(routes.at(vantage).source), path_text});
  }
  table.print(std::cout);
  return 0;
}

int cmd_simulate(Options& opt) {
  const auto t = load(opt.get("topology"));
  const eval::Protocol proto = protocols_from(opt, "", false).front();
  const auto flips = static_cast<std::size_t>(opt.get_long("flips", 10));
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 1));
  const eval::RunOptions run_options = run_options_from(opt);
  const bool analysis = run_options.analysis != eval::AnalysisMode::kOff;
  opt.finish();

  const auto series =
      eval::run_link_flips(t.graph, proto, flips, util::Rng(seed), run_options);
  util::Accumulator msgs, times;
  for (double m : series.message_counts) msgs.add(m);
  for (double s : series.convergence_times) times.add(s);

  util::TextTable table(std::string("simulation — ") + eval::to_string(proto));
  table.header({"metric", "value"});
  table.row({"cold-start messages",
             util::fmt_count(series.cold_start.messages_sent)});
  table.row({"cold-start bytes", util::fmt_count(series.cold_start.bytes_sent)});
  table.row({"cold-start time (ms)",
             util::fmt_double(series.cold_start_time * 1e3, 2)});
  table.row({"flip transitions", util::fmt_count(msgs.count())});
  table.row({"messages/flip (mean)", util::fmt_double(msgs.mean(), 1)});
  table.row({"messages/flip (p90)", util::fmt_double(msgs.quantile(0.9), 1)});
  table.row({"convergence ms (mean)", util::fmt_double(times.mean() * 1e3, 2)});
  table.row({"convergence ms (p90)",
             util::fmt_double(times.quantile(0.9) * 1e3, 2)});
  if (analysis) {
    table.row({"invariant checks", util::fmt_count(series.analysis.checks_run)});
    table.row({"invariant violations",
               util::fmt_count(series.analysis.violations_seen)});
  }
  table.print(std::cout);
  if (analysis) {
    series.analysis.print(std::cout);
    if (!series.analysis.clean()) return 1;
  }
  return 0;
}

/// campaign and bench: one parsing/execution path.  `canned` (bench) forces
/// the builtin reliability scenario and all four protocols.
int run_campaign_command(Options& opt, bool canned) {
  const util::ScaleParams params = util::params_for(util::scale_from_env());
  const std::size_t threads = runner::threads_from_env();
  const auto nodes = static_cast<std::size_t>(
      opt.get_long("nodes", static_cast<long>(params.proto_nodes)));
  const bool seed_given = opt.has("seed");
  const auto seed = static_cast<std::uint64_t>(
      opt.get_long("seed", static_cast<long>(params.seed)));
  const std::string scenario_file =
      canned ? "" : opt.get_optional("scenario");

  faults::ScenarioSpec spec =
      scenario_file.empty() ? faults::reliability_scenario(nodes, seed)
                            : faults::load_scenario_file(scenario_file);
  if (!scenario_file.empty() && seed_given) spec.seed = seed;
  if (opt.has("topology")) spec.topology.file = opt.get("topology");
  if (opt.has("mrai") || opt.has("check") ||
      spec.options.analysis == eval::AnalysisMode::kOff) {
    const eval::RunOptions cli = run_options_from(opt);
    if (opt.has("mrai")) spec.options.bgp_mrai = cli.bgp_mrai;
    if (opt.has("check") ||
        spec.options.analysis == eval::AnalysisMode::kOff) {
      spec.options.analysis = cli.analysis;
    }
  }
  const std::vector<eval::Protocol> arms = protocols_from(
      opt, canned ? "all" : cli_protocol_name(spec.protocol), true);
  const std::string bench_name = "campaign_" + spec.name;
  runner::BenchReport report(bench_name,
                             util::to_string(util::scale_from_env()), threads);
  report.set_path(resolve_json_path(opt, bench_name));
  opt.finish();

  const topo::AsGraph graph = spec.topology.build();
  std::cout << topo::compute_stats(graph, "campaign topology") << "\n\n"
            << "scenario " << spec.name << ": " << spec.script.phases.size()
            << " phases, " << spec.script.total_actions() << " actions, "
            << arms.size() << " protocol arm(s), threads=" << threads << "\n\n";

  // One trial per protocol arm; inputs are a pure function of the index, so
  // results are bit-identical for any CENTAUR_THREADS.
  struct Timed {
    faults::CampaignResult result;
    double wall_s = 0;
  };
  const auto results =
      runner::run_trials(arms.size(), threads, [&](std::size_t i) {
        const runner::Stopwatch sw;
        Timed t;
        faults::ScenarioSpec arm = spec;
        arm.protocol = arms[i];
        t.result = faults::run_scenario(graph, arm);
        t.wall_s = sw.seconds();
        return t;
      });

  // Adversarial scripts grow the per-phase table by the DESIGN.md §15
  // metrics: routes flagged by the audit, detection latency (analyzer
  // node-checks and virtual milliseconds until the first flag; "-" when
  // nothing was flagged), and blast radius.
  const bool adversarial = [&spec] {
    for (const faults::FaultPhase& ph : spec.script.phases) {
      for (const faults::FaultAction& a : ph.actions) {
        switch (a.kind) {
          case faults::ActionKind::kRouteLeak:
          case faults::ActionKind::kRouteLeakStop:
          case faults::ActionKind::kIntercept:
          case faults::ActionKind::kInterceptStop:
          case faults::ActionKind::kLocalPrefFlip:
          case faults::ActionKind::kLocalPrefRestore:
          case faults::ActionKind::kRelChange:
            return true;
          default:
            break;
        }
      }
    }
    return false;
  }();

  bool all_clean = true;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const faults::CampaignResult& r = results[i].result;
    util::TextTable table(std::string("campaign ") + spec.name + " — " +
                          eval::to_string(r.protocol));
    std::vector<std::string> header = {"phase",   "actions", "messages",
                                       "bytes",   "dropped", "conv ms",
                                       "events",  "violations"};
    if (adversarial) {
      header.insert(header.end(), {"flagged", "det evts", "det ms", "blast"});
    }
    table.header(header);
    auto phase_row = [&](const faults::PhaseReport& p) {
      std::vector<std::string> row = {
          p.name, util::fmt_count(p.actions), util::fmt_count(p.messages),
          util::fmt_count(p.bytes), util::fmt_count(p.dropped),
          util::fmt_double(p.convergence_time * 1e3, 2),
          util::fmt_count(p.events), util::fmt_count(p.violations)};
      if (adversarial) {
        row.push_back(util::fmt_count(p.audit_routes_flagged));
        row.push_back(p.detection_events < 0
                          ? "-"
                          : util::fmt_count(static_cast<std::size_t>(
                                p.detection_events)));
        row.push_back(p.detection_time < 0
                          ? "-"
                          : util::fmt_double(p.detection_time * 1e3, 2));
        row.push_back(util::fmt_count(p.blast_radius));
      }
      table.row(row);
    };
    phase_row(r.cold_start);
    for (const faults::PhaseReport& p : r.phases) phase_row(p);
    table.print(std::cout);
    std::cout << "max phase convergence: "
              << util::fmt_double(r.max_phase_convergence() * 1e3, 2)
              << " ms, analyzer checks: "
              << util::fmt_count(r.analysis.checks_run) << ", violations: "
              << util::fmt_count(r.analysis.violations_seen) << "\n\n";
    if (!r.clean()) all_clean = false;

    runner::TrialResult trial;
    trial.name = eval::to_string(r.protocol);
    trial.wall_time_s = results[i].wall_s;
    trial.events = r.total_events;
    trial.messages = r.total_messages;
    trial.bytes = r.total_bytes;
    trial.metrics.emplace_back("phases",
                               static_cast<double>(r.phases.size()));
    trial.metrics.emplace_back(
        "cold_start_messages",
        static_cast<double>(r.cold_start.messages));
    trial.metrics.emplace_back("cold_start_time_s",
                               r.cold_start.convergence_time);
    trial.metrics.emplace_back("max_phase_convergence_s",
                               r.max_phase_convergence());
    trial.metrics.emplace_back("mean_phase_convergence_s",
                               r.mean_phase_convergence());
    trial.metrics.emplace_back(
        "check_violations",
        static_cast<double>(r.analysis.violations_seen));
    for (const faults::PhaseReport& p : r.phases) {
      trial.metrics.emplace_back(p.name + "_convergence_s",
                                 p.convergence_time);
      trial.metrics.emplace_back(p.name + "_messages",
                                 static_cast<double>(p.messages));
      if (adversarial) {
        trial.metrics.emplace_back(
            p.name + "_flagged",
            static_cast<double>(p.audit_routes_flagged));
        trial.metrics.emplace_back(
            p.name + "_detection_events",
            static_cast<double>(p.detection_events));
        trial.metrics.emplace_back(p.name + "_blast",
                                   static_cast<double>(p.blast_radius));
      }
    }
    report.add(std::move(trial));
  }
  report.add_note("fault campaign: " + std::to_string(spec.script.phases.size()) +
                  " scripted phases per protocol arm");

  if (canned) {
    // Intra-trial parallelism check: replay the Centaur arm serially and at
    // 4 lanes and report the per-phase wall-time ratio.  Results are
    // bit-identical by construction (tests/intra_parallel_test.cpp), so
    // only wall time can differ; notes-only, never gated.
    const std::optional<std::string> saved =
        util::env_string("CENTAUR_INTRA_THREADS");
    faults::ScenarioSpec arm = spec;
    arm.protocol = eval::Protocol::kCentaur;
    const auto timed = [&](const char* lanes) {
      setenv("CENTAUR_INTRA_THREADS", lanes, 1);
      return faults::run_scenario(graph, arm);
    };
    const faults::CampaignResult serial = timed("1");
    const faults::CampaignResult parallel = timed("4");
    if (saved) {
      setenv("CENTAUR_INTRA_THREADS", saved->c_str(), 1);
    } else {
      unsetenv("CENTAUR_INTRA_THREADS");
    }
    util::TextTable table("centaur intra-trial speedup (1 vs 4 lanes)");
    table.header({"phase", "serial ms", "4-lane ms", "speedup"});
    const auto ratio = [](double s, double p) {
      return s / std::max(p, 1e-9);
    };
    auto speed_row = [&](const std::string& name, double s, double p) {
      table.row({name, util::fmt_double(s * 1e3, 1),
                 util::fmt_double(p * 1e3, 1),
                 util::fmt_double(ratio(s, p), 2) + "x"});
    };
    speed_row("cold_start", serial.cold_start_wall_s,
              parallel.cold_start_wall_s);
    std::string note = "centaur intra-trial speedup (1 vs 4 lanes, " +
                       std::to_string(std::thread::hardware_concurrency()) +
                       " host cores): cold_start " +
                       util::fmt_double(ratio(serial.cold_start_wall_s,
                                              parallel.cold_start_wall_s),
                                        2) +
                       "x";
    const std::size_t phases = std::min(serial.phase_wall_s.size(),
                                        parallel.phase_wall_s.size());
    for (std::size_t p = 0; p < phases; ++p) {
      speed_row(serial.phases[p].name, serial.phase_wall_s[p],
                parallel.phase_wall_s[p]);
      note += ", " + serial.phases[p].name + " " +
              util::fmt_double(
                  ratio(serial.phase_wall_s[p], parallel.phase_wall_s[p]), 2) +
              "x";
    }
    table.print(std::cout);
    report.add_note(note);
  }
  report.write();
  if (report.enabled()) {
    std::cout << "wrote " << bench_name << " JSON report\n";
  }
  return all_clean ? 0 : 1;
}

int cmd_campaign(Options& opt) { return run_campaign_command(opt, false); }
int cmd_bench(Options& opt) { return run_campaign_command(opt, true); }

/// serve: replay a Centaur scenario with the serving plane attached, then
/// answer the --queries file from the converged snapshots.
int cmd_serve(Options& opt) {
  const util::ScaleParams params = util::params_for(util::scale_from_env());
  const std::string queries_file = opt.get("queries");
  const auto nodes = static_cast<std::size_t>(
      opt.get_long("nodes", static_cast<long>(params.proto_nodes)));
  const bool seed_given = opt.has("seed");
  const auto seed = static_cast<std::uint64_t>(
      opt.get_long("seed", static_cast<long>(params.seed)));
  const std::string scenario_file = opt.get_optional("scenario");

  faults::ScenarioSpec spec =
      scenario_file.empty() ? faults::reliability_scenario(nodes, seed)
                            : faults::load_scenario_file(scenario_file);
  if (!scenario_file.empty() && seed_given) spec.seed = seed;
  if (opt.has("topology")) spec.topology.file = opt.get("topology");
  if (opt.has("mrai") || opt.has("check") ||
      spec.options.analysis == eval::AnalysisMode::kOff) {
    const eval::RunOptions cli = run_options_from(opt);
    if (opt.has("mrai")) spec.options.bgp_mrai = cli.bgp_mrai;
    if (opt.has("check") ||
        spec.options.analysis == eval::AnalysisMode::kOff) {
      spec.options.analysis = cli.analysis;
    }
  }
  opt.finish();

  const std::vector<serve::QuerySpec> queries =
      serve::load_queries(queries_file);
  const eval::ServeOptions serve_options = eval::serve_options_from_env();

  const topo::AsGraph graph = spec.topology.build();
  for (const serve::QuerySpec& q : queries) {
    if (q.src >= graph.num_nodes() || q.dst >= graph.num_nodes()) {
      usage("queries file references node " +
            std::to_string(std::max(q.src, q.dst)) + " but the topology has " +
            std::to_string(graph.num_nodes()) + " nodes");
    }
  }

  // Snapshots are published by Centaur's selection commits, so serve always
  // runs the Centaur protocol regardless of the scenario's protocol field.
  serve::QueryEngine engine(graph.num_nodes(), serve_options);
  spec.options.centaur_snapshot_sink = engine.make_sink();
  util::Rng rng(spec.seed);
  eval::ProtocolRun run(graph, eval::Protocol::kCentaur, rng, spec.options);
  faults::CampaignEngine campaign(run);
  faults::CampaignResult campaign_result = campaign.run(spec.script);
  campaign_result.scenario = spec.name;

  std::cout << "scenario " << spec.name << ": cold start + "
            << campaign_result.phases.size() << " phases converged ("
            << util::fmt_count(campaign_result.total_messages)
            << " messages), serving " << queries.size() << " queries at "
            << serve_options.query_threads << " threads, k="
            << serve_options.query_k << "\n\n";

  serve::EvalTotals totals;
  const std::vector<std::string> answers = serve::evaluate_queries(
      engine, queries, serve_options.query_threads, &totals);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::cout << queries[i].src << " -> " << queries[i].dst << ": "
              << answers[i] << "\n";
  }
  std::cout << "\nanswered " << queries.size() << " queries: "
            << totals.found << " ok, " << totals.unreachable
            << " unreachable, " << totals.not_destination
            << " not-a-destination, " << totals.no_snapshot
            << " no-snapshot\n";
  if (!campaign_result.clean()) {
    campaign_result.analysis.print(std::cout);
    return 1;
  }
  return 0;
}

/// querybench: the two-phase serving-plane bench (BENCH_query.json).
int cmd_querybench(Options& opt) {
  const util::ScaleParams params = util::params_for(util::scale_from_env());
  serve::QueryBenchConfig config;
  config.nodes = static_cast<std::size_t>(
      opt.get_long("nodes", static_cast<long>(params.proto_nodes)));
  config.seed = static_cast<std::uint64_t>(opt.get_long(
      "seed", static_cast<long>(params.seed ^ 0x5E62E)));
  config.serve = eval::serve_options_from_env();
  runner::BenchReport report("query",
                             util::to_string(util::scale_from_env()),
                             config.serve.query_threads);
  report.set_path(resolve_json_path(opt, "query"));
  opt.finish();

  std::cout << "querybench: nodes=" << config.nodes << " query_threads="
            << config.serve.query_threads << " k=" << config.serve.query_k
            << " snapshots=" << eval::to_string(config.serve.snapshot_policy)
            << "\n\n";
  const serve::QueryBenchResult result = serve::run_query_bench(config);

  util::TextTable table("querybench");
  table.header({"trial", "metric", "value"});
  for (const runner::TrialResult* trial : {&result.live, &result.steady}) {
    for (const auto& [key, value] : trial->metrics) {
      table.row({trial->name, key, util::fmt_double(value, 1)});
    }
  }
  table.print(std::cout);

  report.add(result.live);
  report.add(result.steady);
  report.add_note("steady answers asserted bit-identical at 1 vs " +
                  std::to_string(config.serve.query_threads) +
                  " query threads");
  report.write();
  if (report.enabled()) std::cout << "wrote query JSON report\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  // Dispatch table: every subcommand parses through the same Options class.
  static const std::map<std::string, int (*)(Options&)> kCommands{
      {"generate", cmd_generate},     {"stats", cmd_stats},
      {"routes", cmd_routes},         {"simulate", cmd_simulate},
      {"campaign", cmd_campaign},     {"bench", cmd_bench},
      {"serve", cmd_serve},           {"querybench", cmd_querybench},
  };
  try {
    if (cmd == "help" || cmd == "--help" || cmd == "-h") usage();
    const auto it = kCommands.find(cmd);
    if (it == kCommands.end()) usage("unknown subcommand '" + cmd + "'");
    Options opt(argc, argv, 2);
    return it->second(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
