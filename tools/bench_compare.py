#!/usr/bin/env python3
"""Compare two schema-v1 BENCH_<name>.json files metric by metric.

Prints a per-trial table of baseline vs current values with % deltas for
the counter fields (events, messages, bytes) and every named metric, plus
the totals row.  Wall time and peak RSS are reported but never gated: they
depend on the machine, while counters and metrics are deterministic for a
fixed scale/seed.

Exit status:
    0  within tolerance (or --tolerance not given)
    1  at least one gated value regressed past --tolerance percent
    2  usage / unreadable input / schema mismatch

Machine-dependent metrics (e.g. the micro bench's `iterations`, which
Google Benchmark picks from the host's speed) can be excluded from gating
with --ignore-metric; they are still printed, marked "(ignored)".

Typical use — hard gate for deterministic baselines:

    python3 tools/bench_compare.py baselines/BENCH_micro.json \
        bench-out/BENCH_micro.json --tolerance 0 --ignore-metric iterations

and warn-only while a baseline settles:

    python3 tools/bench_compare.py baselines/BENCH_fig6.json \
        bench-out/BENCH_fig6.json --tolerance 5 || echo "::warning::..."

Stdlib-only on purpose, like bench_json_schema.py.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1

# Deterministic per-trial counters we gate on (wall_time_s is machine noise).
GATED_COUNTERS = ("events", "messages", "bytes")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: unreadable or not JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema_version") != SCHEMA_VERSION:
        sys.exit(f"{path}: not a schema-v{SCHEMA_VERSION} bench report")
    return doc


def pct_delta(base, cur):
    """Percent change from base to cur; None when undefined (base == 0)."""
    if base == 0:
        return None if cur == 0 else float("inf")
    return 100.0 * (cur - base) / base


def fmt_delta(delta):
    if delta is None:
        return "   0.00%"
    if delta == float("inf"):
        return "  +inf%"
    return f"{delta:+8.2f}%"


def fmt_val(v):
    if isinstance(v, float) and v != int(v):
        return f"{v:.6g}"
    return str(int(v))


def compare_row(rows, where, key, base, cur):
    delta = pct_delta(base, cur)
    rows.append((where, key, base, cur, delta))
    return delta


def main():
    ap = argparse.ArgumentParser(
        description="Diff two schema-v1 BENCH JSON reports.")
    ap.add_argument("baseline", help="reference BENCH_<name>.json")
    ap.add_argument("current", help="freshly produced BENCH_<name>.json")
    ap.add_argument("--tolerance", type=float, default=None, metavar="PCT",
                    help="exit nonzero if any gated counter or metric "
                         "changes by more than PCT percent (absolute)")
    ap.add_argument("--ignore-metric", action="append", default=[],
                    metavar="KEY", dest="ignore_metrics",
                    help="metric name to report but never gate (repeatable); "
                         "for machine-dependent metrics like 'iterations'")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    for key in ("bench", "scale"):
        if base.get(key) != cur.get(key):
            sys.exit(f"refusing to compare: {key!r} differs "
                     f"({base.get(key)!r} vs {cur.get(key)!r})")
    if base.get("threads") != cur.get("threads"):
        print(f"note: thread counts differ ({base.get('threads')} vs "
              f"{cur.get('threads')}); results should still be bit-identical",
              file=sys.stderr)
    # Per-scale Centaur-vs-BGP wall-ratio notes (emitted by the fig8 bench)
    # are paired baseline-vs-current so the wall-time gap trend is readable
    # at a glance; wall time stays informational, never gated.  Other notes
    # print as-is.
    ratio_prefix = "centaur_vs_bgp_wall_ratio "
    ratios = {}
    for which, doc, path in (("baseline", base, args.baseline),
                             ("current", cur, args.current)):
        for note in doc.get("notes", []):
            if note.startswith(ratio_prefix):
                scale = note[len(ratio_prefix):].split(":", 1)[0]
                ratios.setdefault(scale, {})[which] = \
                    note[len(ratio_prefix):].split(":", 1)[1].strip()
            else:
                print(f"note [{path}]: {note}")
    for scale in sorted(ratios, key=lambda s: (len(s), s)):
        pair = ratios[scale]
        print(f"wall ratio (centaur/bgp, informational) {scale}: "
              f"baseline {pair.get('baseline', 'n/a')} -> "
              f"current {pair.get('current', 'n/a')}")

    base_trials = {t["name"]: t for t in base.get("trials", [])}
    cur_trials = {t["name"]: t for t in cur.get("trials", [])}

    rows = []          # (where, key, base, cur, delta) — gated comparisons
    informational = []  # same shape, never gated (wall time, rss)
    missing = sorted(set(base_trials) - set(cur_trials))
    added = sorted(set(cur_trials) - set(base_trials))

    for name in sorted(set(base_trials) & set(cur_trials)):
        bt, ct = base_trials[name], cur_trials[name]
        informational.append(
            (name, "wall_time_s", bt["wall_time_s"], ct["wall_time_s"],
             pct_delta(bt["wall_time_s"], ct["wall_time_s"])))
        for key in GATED_COUNTERS:
            compare_row(rows, name, key, bt[key], ct[key])
        bm, cm = bt.get("metrics", {}), ct.get("metrics", {})
        for key in sorted(set(bm) & set(cm)):
            if key in args.ignore_metrics:
                informational.append(
                    (name, key + " (ignored)", bm[key], cm[key],
                     pct_delta(bm[key], cm[key])))
            else:
                compare_row(rows, name, key, bm[key], cm[key])

    for key in GATED_COUNTERS:
        compare_row(rows, "totals", key, base["totals"][key],
                    cur["totals"][key])
    informational.append(
        ("totals", "wall_time_s", base["totals"]["wall_time_s"],
         cur["totals"]["wall_time_s"],
         pct_delta(base["totals"]["wall_time_s"],
                   cur["totals"]["wall_time_s"])))
    informational.append(
        ("process", "peak_rss_kb", base.get("peak_rss_kb", 0),
         cur.get("peak_rss_kb", 0),
         pct_delta(base.get("peak_rss_kb", 0), cur.get("peak_rss_kb", 0))))

    width = max((len(f"{w}.{k}") for w, k, *_ in rows + informational),
                default=20)
    print(f"{'value':<{width}}  {'baseline':>14}  {'current':>14}  delta")
    for where, key, b, c, delta in rows + informational:
        tag = f"{where}.{key}"
        print(f"{tag:<{width}}  {fmt_val(b):>14}  {fmt_val(c):>14}  "
              f"{fmt_delta(delta)}")
    for name in missing:
        print(f"missing in current: trial {name!r}")
    for name in added:
        print(f"new in current: trial {name!r}")

    if args.tolerance is None:
        return 0
    bad = [(w, k, d) for w, k, _, _, d in rows
           if d == float("inf") or (d is not None and abs(d) > args.tolerance)]
    if missing:
        bad.extend((name, "trial", None) for name in missing)
    if bad:
        print(f"\nFAIL: {len(bad)} value(s) beyond ±{args.tolerance}%:",
              file=sys.stderr)
        for where, key, delta in bad:
            shown = "missing" if delta is None else fmt_delta(delta).strip()
            print(f"  {where}.{key}: {shown}", file=sys.stderr)
        return 1
    print(f"\nOK: all gated values within ±{args.tolerance}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
