#!/usr/bin/env python3
"""Validate BENCH_<name>.json files against the schema in DESIGN.md §5.4.

Stdlib-only on purpose: CI and developer machines run it with a bare
python3.  Exit status 0 iff every file given on the command line is valid.

    python3 tools/bench_json_schema.py BENCH_micro.json baselines/*.json
"""

import json
import sys

SCHEMA_VERSION = 1


def _fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def _is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def _check_counters(path, obj, where):
    """Shared shape of trials[] entries and the totals block."""
    ok = True
    for key in ("wall_time_s", "events", "messages", "bytes"):
        if key not in obj:
            ok = _fail(path, f"{where}: missing '{key}'")
        elif not _is_num(obj[key]) or obj[key] < 0:
            ok = _fail(path, f"{where}: '{key}' must be a non-negative number")
    for key in ("events", "messages", "bytes"):
        if _is_num(obj.get(key)) and obj[key] != int(obj[key]):
            ok = _fail(path, f"{where}: '{key}' must be integral")
    return ok


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return _fail(path, f"unreadable or not JSON: {e}")

    if not isinstance(doc, dict):
        return _fail(path, "top level must be an object")

    ok = True
    if doc.get("schema_version") != SCHEMA_VERSION:
        ok = _fail(path, f"schema_version must be {SCHEMA_VERSION}, "
                         f"got {doc.get('schema_version')!r}")
    for key in ("bench", "scale"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            ok = _fail(path, f"'{key}' must be a non-empty string")
    if not isinstance(doc.get("threads"), int) or doc.get("threads") < 1:
        ok = _fail(path, "'threads' must be an integer >= 1")
    if not isinstance(doc.get("peak_rss_kb"), int) or doc["peak_rss_kb"] < 0:
        ok = _fail(path, "'peak_rss_kb' must be a non-negative integer")
    notes = doc.get("notes")  # optional provenance strings
    if notes is not None and (
        not isinstance(notes, list)
        or not all(isinstance(n, str) for n in notes)
    ):
        ok = _fail(path, "'notes' must be an array of strings when present")

    trials = doc.get("trials")
    if not isinstance(trials, list) or not trials:
        return _fail(path, "'trials' must be a non-empty array")
    names = set()
    for i, t in enumerate(trials):
        where = f"trials[{i}]"
        if not isinstance(t, dict):
            ok = _fail(path, f"{where}: must be an object")
            continue
        if not isinstance(t.get("name"), str) or not t["name"]:
            ok = _fail(path, f"{where}: 'name' must be a non-empty string")
        elif t["name"] in names:
            ok = _fail(path, f"{where}: duplicate trial name {t['name']!r}")
        else:
            names.add(t["name"])
        ok = _check_counters(path, t, where) and ok
        # Optional per-trial peak-RSS growth (KiB); machine-dependent, so it
        # is reported but never gated, and writers omit it when zero.
        rss_delta = t.get("peak_rss_delta_kb")
        if rss_delta is not None and (
            not isinstance(rss_delta, int)
            or isinstance(rss_delta, bool)
            or rss_delta < 0
        ):
            ok = _fail(path, f"{where}: 'peak_rss_delta_kb' must be a "
                             "non-negative integer when present")
        metrics = t.get("metrics")
        if not isinstance(metrics, dict):
            ok = _fail(path, f"{where}: 'metrics' must be an object")
        else:
            for k, v in metrics.items():
                if not _is_num(v):
                    ok = _fail(path, f"{where}: metric {k!r} must be numeric")

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        ok = _fail(path, "'totals' must be an object")
    else:
        ok = _check_counters(path, totals, "totals") and ok
        # totals are computed from the trials; hold the writer to that.
        for key in ("events", "messages", "bytes"):
            if isinstance(totals.get(key), int) and all(
                isinstance(t, dict) and _is_num(t.get(key)) for t in trials
            ):
                expect = sum(int(t[key]) for t in trials)
                if totals[key] != expect:
                    ok = _fail(path, f"totals['{key}'] = {totals[key]} but "
                                     f"trials sum to {expect}")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_ok = True
    for path in argv[1:]:
        if validate(path):
            print(f"{path}: OK")
        else:
            all_ok = False
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
