// Discrete-event simulation core.
//
// The paper prototypes Centaur on DistComm, a session-level BGP simulator on
// the SSFNet code base; neither is available, so this is our equivalent
// substrate.  It reproduces the paper's measurement model exactly:
//   * per-link propagation delays (random 0-5 ms in the experiments),
//   * CPU/processing delay ignored,
//   * convergence = quiescence ("no further update messages are sent"),
//   * message counts observed at delivery.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace centaur::sim {

/// Simulated seconds.
using Time = double;

/// Deterministic event queue: ties in time break by insertion order, so a
/// run is a pure function of its inputs.
class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0).
  void schedule(Time delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (>= now()).
  void schedule_at(Time when, std::function<void()> fn);

  /// Runs events until the queue is empty.  Returns the number of events
  /// processed.  `max_events` guards against livelock in buggy protocols;
  /// exceeding it throws std::runtime_error.
  std::size_t run(std::size_t max_events = 50'000'000);

  /// Runs until the queue is empty or `deadline` is passed (events after
  /// the deadline stay queued).  Returns events processed.
  std::size_t run_until(Time deadline, std::size_t max_events = 50'000'000);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace centaur::sim
