// Discrete-event simulation core.
//
// The paper prototypes Centaur on DistComm, a session-level BGP simulator on
// the SSFNet code base; neither is available, so this is our equivalent
// substrate.  It reproduces the paper's measurement model exactly:
//   * per-link propagation delays (random 0-5 ms in the experiments),
//   * CPU/processing delay ignored,
//   * convergence = quiescence ("no further update messages are sent"),
//   * message counts observed at delivery.
//
// Performance notes (see DESIGN.md §5): events carry a move-only
// UniqueFunction with inline storage, so scheduling a typical delivery
// callback allocates nothing; the binary heap lives in a reservable vector;
// and zero-delay events scheduled for the current timestamp bypass the heap
// through a FIFO burst queue (same-time ties already break by insertion
// order, and every burst event's sequence number is by construction larger
// than any same-time event still in the heap, so the observable order is
// bit-identical to the pure-heap implementation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/unique_function.hpp"

namespace centaur::sim {

/// Simulated seconds.
using Time = double;

/// Deterministic event queue: ties in time break by insertion order, so a
/// run is a pure function of its inputs.
class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0).
  void schedule(Time delay, util::UniqueFunction fn);

  /// Schedules `fn` at an absolute time (>= now()).
  void schedule_at(Time when, util::UniqueFunction fn);

  /// Pre-sizes the event heap (events outstanding at once, not total).
  void reserve(std::size_t events);

  /// Runs events until the queue is empty.  Returns the number of events
  /// processed.  `max_events` guards against livelock in buggy protocols;
  /// exceeding it throws std::runtime_error.
  std::size_t run(std::size_t max_events = 50'000'000);

  /// Runs until the queue is empty or `deadline` is passed (events after
  /// the deadline stay queued).  Returns events processed.
  std::size_t run_until(Time deadline, std::size_t max_events = 50'000'000);

  bool idle() const { return heap_.empty() && burst_head_ >= burst_.size(); }
  std::size_t pending() const {
    return heap_.size() + (burst_.size() - burst_head_);
  }

  /// Total events executed over the simulator's lifetime (all run/run_until
  /// calls) — the per-trial event count the bench reports record.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;
    util::UniqueFunction fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the next event in (time, seq) order into `out`.  Precondition:
  /// !idle().
  void pop_next(Event& out);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Event> heap_;   // binary min-heap via std::push_heap/pop_heap
  std::vector<Event> burst_;  // FIFO of events at exactly now_
  std::size_t burst_head_ = 0;
};

}  // namespace centaur::sim
