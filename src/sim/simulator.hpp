// Discrete-event simulation core.
//
// The paper prototypes Centaur on DistComm, a session-level BGP simulator on
// the SSFNet code base; neither is available, so this is our equivalent
// substrate.  It reproduces the paper's measurement model exactly:
//   * per-link propagation delays (random 0-5 ms in the experiments),
//   * CPU/processing delay ignored,
//   * convergence = quiescence ("no further update messages are sent"),
//   * message counts observed at delivery.
//
// Performance notes (see DESIGN.md §5): events carry a move-only
// UniqueFunction with inline storage, so scheduling a typical delivery
// callback allocates nothing; the binary heap lives in a reservable vector;
// and zero-delay events scheduled for the current timestamp bypass the heap
// through a FIFO burst queue (same-time ties already break by insertion
// order, and every burst event's sequence number is by construction larger
// than any same-time event still in the heap, so the observable order is
// bit-identical to the pure-heap implementation).
//
// Intra-trial parallelism (DESIGN.md §8): events may carry a *node tag* —
// the id of the single protocol node whose private state their callback
// touches.  With set_intra_threads(n > 1), maximal same-instant runs of
// tagged events are partitioned by node across a persistent WorkerPool
// (partition → barrier → ordered commit): callbacks execute concurrently
// (node-local mutation only), while every shared side effect they attempt —
// schedule() calls, and anything a caller routes through defer_commit_op()
// such as Network's counters/sends/analysis hook — is captured into a
// per-event commit queue and replayed on the simulator thread in sequence
// order at the barrier.  Observable state (event seq assignment, message
// order, counters, analyzer reports) is therefore bit-identical to the
// serial execution for any thread count.  Untagged events are barriers:
// batches never extend past them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/unique_function.hpp"

namespace centaur::runner {
class WorkerPool;
}  // namespace centaur::runner

namespace centaur::sim {

/// Simulated seconds.
using Time = double;

/// True while the calling thread is inside the parallel compute phase of a
/// same-instant batch (i.e. running on a WorkerPool lane under
/// Simulator::set_intra_threads > 1).  Shared-state mutations must be
/// deferred through defer_commit_op() while this holds.
bool in_parallel_phase();

/// Appends `op` to the executing event's commit queue; the simulator runs
/// the queues in event sequence order at the batch barrier, on the
/// simulator thread.  Precondition: in_parallel_phase().
void defer_commit_op(util::UniqueFunction op);

/// Deterministic event queue: ties in time break by insertion order, so a
/// run is a pure function of its inputs.
class Simulator {
 public:
  /// Tag for events whose callback may touch shared state (never batched).
  static constexpr std::uint32_t kUntagged = 0xFFFFFFFFu;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0).
  void schedule(Time delay, util::UniqueFunction fn);

  /// Schedules `fn` at an absolute time (>= now()).
  void schedule_at(Time when, util::UniqueFunction fn);

  /// Tagged variants: `node` promises that `fn` only mutates that protocol
  /// node's private state (plus deferred commit ops), which makes the event
  /// eligible for same-instant parallel batching.
  void schedule_tagged(Time delay, std::uint32_t node,
                       util::UniqueFunction fn);
  void schedule_at_tagged(Time when, std::uint32_t node,
                          util::UniqueFunction fn);

  /// Worker-lane count for same-instant batches (CENTAUR_INTRA_THREADS).
  /// 1 (the default) executes everything serially on the calling thread;
  /// the pool is created lazily on the first parallel batch and persists
  /// for the simulator's lifetime.
  void set_intra_threads(std::size_t threads);
  std::size_t intra_threads() const { return intra_threads_; }

  /// Pre-sizes the event heap (events outstanding at once, not total).
  void reserve(std::size_t events);

  /// Runs events until the queue is empty.  Returns the number of events
  /// processed.  `max_events` guards against livelock in buggy protocols;
  /// exceeding it throws std::runtime_error.
  std::size_t run(std::size_t max_events = 50'000'000);

  /// Runs until the queue is empty or `deadline` is passed (events after
  /// the deadline stay queued).  Returns events processed.  An event
  /// executing exactly at `deadline` may schedule same-instant follow-ups;
  /// those drain before the call returns (the burst FIFO is empty whenever
  /// run_until exits, asserted in debug builds).
  std::size_t run_until(Time deadline, std::size_t max_events = 50'000'000);

  bool idle() const { return heap_.empty() && burst_head_ >= burst_.size(); }
  std::size_t pending() const {
    return heap_.size() + (burst_.size() - burst_head_);
  }

  /// Total events executed over the simulator's lifetime (all run/run_until
  /// calls) — the per-trial event count the bench reports record.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;
    std::uint32_t node = kUntagged;
    util::UniqueFunction fn;
  };
  /// Heap element: the ordering key plus a handle into heap_fns_.  Keeping
  /// the ~64-byte UniqueFunction out of the heap makes every sift step a
  /// trivial 24-byte copy instead of an indirect move_to call — pop_heap
  /// was ~10% of fig8 wall time with callables stored inline.
  struct HeapItem {
    Time at = 0;
    std::uint64_t seq = 0;
    std::uint32_t node = kUntagged;
    std::uint32_t slot = 0;  ///< index into heap_fns_
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Parks `fn` in a free heap_fns_ slot and pushes its key onto the heap.
  void heap_push(Time when, std::uint32_t node, util::UniqueFunction fn);
  /// Pops the heap top into `out`, releasing its callable slot.
  void heap_pop_into(Event& out);

  /// Pops the next event in (time, seq) order into `out`.  Precondition:
  /// !idle().
  void pop_next(Event& out);

  /// Moves the maximal run of ready tagged events (all at one timestamp, in
  /// seq order, stopping at the first untagged event or at `limit`) into
  /// `batch`.  Precondition: !idle().  Leaves `batch` empty when the next
  /// event is untagged.
  void collect_batch(std::size_t limit, std::vector<Event>& batch);

  /// Executes `batch` (all events at now_, seq-ascending) with effects
  /// bit-identical to running the events serially in order: node groups run
  /// on the worker pool, commit queues replay in seq order at the barrier.
  void execute_batch(std::vector<Event>& batch);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<HeapItem> heap_;  // binary min-heap via std::push_heap/pop_heap
  // Callables of heap events, owned out-of-band (slot vector + free list;
  // slot assignment never reaches the event order, which is (at, seq) only).
  std::vector<util::UniqueFunction> heap_fns_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Event> burst_;  // FIFO of events at exactly now_
  std::size_t burst_head_ = 0;
  std::size_t intra_threads_ = 1;
  std::unique_ptr<runner::WorkerPool> pool_;
  // Batch scratch, reused across batches to avoid per-batch allocation.
  std::vector<Event> batch_;
  std::vector<std::pair<std::uint32_t, std::size_t>> keyed_;
  std::vector<std::pair<std::size_t, std::size_t>> groups_;
  std::vector<std::vector<util::UniqueFunction>> commit_queues_;
  std::vector<std::exception_ptr> batch_errors_;
};

}  // namespace centaur::sim
