// Discrete-event simulation core.
//
// The paper prototypes Centaur on DistComm, a session-level BGP simulator on
// the SSFNet code base; neither is available, so this is our equivalent
// substrate.  It reproduces the paper's measurement model exactly:
//   * per-link propagation delays (random 0-5 ms in the experiments),
//   * CPU/processing delay ignored,
//   * convergence = quiescence ("no further update messages are sent"),
//   * message counts observed at delivery.
//
// Performance notes (see DESIGN.md §5): events carry a move-only
// UniqueFunction with inline storage, so scheduling a typical delivery
// callback allocates nothing; the binary heap lives in a reservable vector;
// and zero-delay events scheduled for the current timestamp bypass the heap
// through a FIFO burst queue (same-time ties already break by insertion
// order, and every burst event's sequence number is by construction larger
// than any same-time event still in the heap, so the observable order is
// bit-identical to the pure-heap implementation).
//
// Intra-trial parallelism (DESIGN.md §8): events may carry a *node tag* —
// the id of the single protocol node whose private state their callback
// touches.  With set_intra_threads(n > 1), maximal same-instant runs of
// tagged events are partitioned by node across a persistent WorkerPool
// (partition → barrier → ordered commit): callbacks execute concurrently
// (node-local mutation only), while every shared side effect they attempt —
// schedule() calls, and anything a caller routes through defer_commit_op()
// such as Network's counters/sends/analysis hook — is captured into a
// per-event commit queue and replayed on the simulator thread in sequence
// order at the barrier.  Observable state (event seq assignment, message
// order, counters, analyzer reports) is therefore bit-identical to the
// serial execution for any thread count.  Untagged events are barriers:
// batches never extend past them.
//
// Topology sharding (DESIGN.md §13): set_shards(S, shard_of_node) replaces
// the single event queue with S per-shard queues (each heap + burst FIFO)
// plus a driver queue for untagged events, all sharing one global sequence
// counter.  Same-instant batches partition by *shard* instead of by node
// and each shard's sub-batch runs in seq order on one WorkerPool lane;
// shared side effects stream into per-shard op queues, and schedule calls
// targeting another shard stream into per-(src, dst) shard channels — the
// boundary-link message fabric.  The barrier replays both streams merged in
// (event seq, op index) order, which is exactly the serial interleaving, so
// every observable stays bit-identical to the unsharded run for any shard
// count, serial or parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/unique_function.hpp"

namespace centaur::runner {
class WorkerPool;
}  // namespace centaur::runner

namespace centaur::sim {

/// Simulated seconds.
using Time = double;

/// True while the calling thread is inside the parallel compute phase of a
/// same-instant batch (i.e. running on a WorkerPool lane under
/// Simulator::set_intra_threads > 1).  Shared-state mutations must be
/// deferred through defer_commit_op() while this holds.
bool in_parallel_phase();

/// Appends `op` to the executing event's commit queue; the simulator runs
/// the queues in event sequence order at the batch barrier, on the
/// simulator thread.  Precondition: in_parallel_phase().
void defer_commit_op(util::UniqueFunction op);

/// True while the calling thread is a sharded-plane lane (a shard sub-batch
/// under set_shards > 1).  Implies in_parallel_phase().  In a sharded lane,
/// schedule calls may be issued directly — cross-shard ones ride the shard
/// channels and are counted there — whereas other shared side effects must
/// still go through defer_commit_op().
bool in_sharded_lane();

/// Deterministic event queue: ties in time break by insertion order, so a
/// run is a pure function of its inputs.
class Simulator {
 public:
  /// Tag for events whose callback may touch shared state (never batched).
  static constexpr std::uint32_t kUntagged = 0xFFFFFFFFu;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0).
  void schedule(Time delay, util::UniqueFunction fn);

  /// Schedules `fn` at an absolute time (>= now()).
  void schedule_at(Time when, util::UniqueFunction fn);

  /// Tagged variants: `node` promises that `fn` only mutates that protocol
  /// node's private state (plus deferred commit ops), which makes the event
  /// eligible for same-instant parallel batching.
  void schedule_tagged(Time delay, std::uint32_t node,
                       util::UniqueFunction fn);
  void schedule_at_tagged(Time when, std::uint32_t node,
                          util::UniqueFunction fn);

  /// Worker-lane count for same-instant batches (CENTAUR_INTRA_THREADS).
  /// 1 (the default) executes everything serially on the calling thread;
  /// the pool is created lazily on the first parallel batch and persists
  /// for the simulator's lifetime.
  void set_intra_threads(std::size_t threads);
  std::size_t intra_threads() const { return intra_threads_; }

  /// Switches to the sharded event plane (see file header): `count` shard
  /// queues, `shard_of_node[tag]` owning each node tag.  Must be called on
  /// a pristine simulator (nothing scheduled or executed yet); count <= 1
  /// keeps the unsharded plane.  Every shard value must be < count.
  void set_shards(std::size_t count, std::vector<std::uint32_t> shard_of_node);
  std::size_t shards() const { return num_shards_; }

  /// Deterministic per-shard execution tallies (sharded plane only).
  /// `events` counts events executed by the shard — identical for any lane
  /// count; `wall_s` accumulates the shard's lane compute time and is only
  /// populated by parallel batches (intra_threads > 1).
  struct ShardStats {
    std::uint64_t events = 0;
    double wall_s = 0;
  };
  const std::vector<ShardStats>& shard_stats() const { return shard_stats_; }

  /// Messages that crossed the (src, dst) shard channel: schedules issued
  /// by one shard's events targeting a node owned by another (deliveries on
  /// boundary links).  Deterministic — identical for any lane count.
  /// Always 0 on the unsharded plane (there are no channels to cross).
  std::uint64_t channel_messages(std::size_t src, std::size_t dst) const {
    if (num_shards_ <= 1) return 0;
    return channel_total_.at(src * num_shards_ + dst);
  }

  /// Pre-sizes the event heap (events outstanding at once, not total).
  void reserve(std::size_t events);

  /// Runs events until the queue is empty.  Returns the number of events
  /// processed.  `max_events` guards against livelock in buggy protocols;
  /// exceeding it throws std::runtime_error.
  std::size_t run(std::size_t max_events = 50'000'000);

  /// Runs until the queue is empty or `deadline` is passed (events after
  /// the deadline stay queued).  Returns events processed.  An event
  /// executing exactly at `deadline` may schedule same-instant follow-ups;
  /// those drain before the call returns (the burst FIFO is empty whenever
  /// run_until exits, asserted in debug builds).
  std::size_t run_until(Time deadline, std::size_t max_events = 50'000'000);

  bool idle() const {
    if (num_shards_ > 1) return sharded_idle();
    return heap_.empty() && burst_head_ >= burst_.size();
  }
  std::size_t pending() const {
    if (num_shards_ > 1) return sharded_pending();
    return heap_.size() + (burst_.size() - burst_head_);
  }

  /// Total events executed over the simulator's lifetime (all run/run_until
  /// calls) — the per-trial event count the bench reports record.
  std::uint64_t executed() const { return executed_; }

 private:
  /// Lane-side deferral pushes straight into the executing shard's op
  /// stream (sharded plane).
  friend void defer_commit_op(util::UniqueFunction);

  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;
    std::uint32_t node = kUntagged;
    util::UniqueFunction fn;
  };
  /// Heap element: the ordering key plus a handle into heap_fns_.  Keeping
  /// the ~64-byte UniqueFunction out of the heap makes every sift step a
  /// trivial 24-byte copy instead of an indirect move_to call — pop_heap
  /// was ~10% of fig8 wall time with callables stored inline.
  struct HeapItem {
    Time at = 0;
    std::uint64_t seq = 0;
    std::uint32_t node = kUntagged;
    std::uint32_t slot = 0;  ///< index into heap_fns_
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Parks `fn` in a free heap_fns_ slot and pushes its key onto the heap.
  void heap_push(Time when, std::uint32_t node, util::UniqueFunction fn);
  /// Pops the heap top into `out`, releasing its callable slot.
  void heap_pop_into(Event& out);

  /// Pops the next event in (time, seq) order into `out`.  Precondition:
  /// !idle().
  void pop_next(Event& out);

  /// Moves the maximal run of ready tagged events (all at one timestamp, in
  /// seq order, stopping at the first untagged event or at `limit`) into
  /// `batch`.  Precondition: !idle().  Leaves `batch` empty when the next
  /// event is untagged.
  void collect_batch(std::size_t limit, std::vector<Event>& batch);

  /// Executes `batch` (all events at now_, seq-ascending) with effects
  /// bit-identical to running the events serially in order: node groups run
  /// on the worker pool, commit queues replay in seq order at the barrier.
  void execute_batch(std::vector<Event>& batch);

  // --- sharded event plane (set_shards > 1; see file header) ----------------

  /// One shard's private event queue: the same heap + burst FIFO pair as
  /// the unsharded plane, keyed by the shared global (time, seq) order.
  struct ShardQueue {
    std::vector<HeapItem> heap;
    std::vector<util::UniqueFunction> fns;
    std::vector<std::uint32_t> free_slots;
    std::vector<Event> burst;
    std::size_t burst_head = 0;

    bool empty() const { return heap.empty() && burst_head >= burst.size(); }
    std::size_t size() const {
      return heap.size() + (burst.size() - burst_head);
    }
  };
  /// A deferred shared side effect of a lane-executed event, ordered by
  /// (event seq, per-event op index) — the serial interleaving key.
  struct OpEntry {
    std::uint64_t seq = 0;
    std::uint32_t op = 0;
    util::UniqueFunction fn;
  };
  /// A schedule request crossing from one shard's lane to another shard's
  /// queue, carried by the (src, dst) channel until the barrier drains it.
  struct ChannelEntry {
    std::uint64_t seq = 0;  ///< scheduling event's seq
    std::uint32_t op = 0;   ///< its per-event op index
    Time when = 0;
    std::uint32_t node = kUntagged;
    util::UniqueFunction fn;
  };

  std::uint32_t shard_of(std::uint32_t node) const;
  bool sharded_idle() const;
  std::size_t sharded_pending() const;
  /// Pushes onto a shard/driver queue (same burst-vs-heap split and slot
  /// management as the unsharded plane).
  void queue_push(ShardQueue& q, Time when, std::uint32_t node,
                  util::UniqueFunction fn);
  static void queue_pop_into(ShardQueue& q, Event& out);
  /// (time, seq) key of q's next event; false if q is empty.
  static bool queue_next_key(const ShardQueue& q, Time& at, std::uint64_t& seq);
  /// Pops the globally next event in (time, seq) order across every shard
  /// queue and the driver queue; returns the owning shard (or kUntagged
  /// for a driver event).  Precondition: !sharded_idle().
  std::uint32_t sharded_pop_next(Event& out);
  /// Moves the maximal same-instant run of shard events (global seq order,
  /// stopping at the first same-time driver event or `limit`) into `batch`.
  void sharded_collect_batch(std::size_t limit, std::vector<Event>& batch);
  /// Sharded counterpart of execute_batch: shard groups run on lanes, op
  /// streams and channels replay merged by (seq, op) at the barrier.
  void sharded_execute_batch(std::vector<Event>& batch);
  /// Replays one event's deferred ops (local ops + its shard's outgoing
  /// channels) in op-index order, advancing the stream cursors
  /// (shard_ops_head_ / channels_head_).
  void replay_event_ops(std::uint64_t seq, std::uint32_t shard);
  /// Shared main loop for the sharded plane; `bounded` gates on deadline.
  std::size_t run_sharded(bool bounded, Time deadline, std::size_t max_events);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<HeapItem> heap_;  // binary min-heap via std::push_heap/pop_heap
  // Callables of heap events, owned out-of-band (slot vector + free list;
  // slot assignment never reaches the event order, which is (at, seq) only).
  std::vector<util::UniqueFunction> heap_fns_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Event> burst_;  // FIFO of events at exactly now_
  std::size_t burst_head_ = 0;
  std::size_t intra_threads_ = 1;
  std::unique_ptr<runner::WorkerPool> pool_;
  // Batch scratch, reused across batches to avoid per-batch allocation.
  std::vector<Event> batch_;
  std::vector<std::pair<std::uint32_t, std::size_t>> keyed_;
  std::vector<std::pair<std::size_t, std::size_t>> groups_;
  std::vector<std::vector<util::UniqueFunction>> commit_queues_;
  std::vector<std::exception_ptr> batch_errors_;

  // Sharded plane state (unused while num_shards_ == 1).
  std::size_t num_shards_ = 1;
  std::vector<std::uint32_t> shard_of_;  // node tag -> shard
  std::vector<ShardQueue> shardq_;       // one queue per shard
  ShardQueue driverq_;                   // untagged events
  std::vector<std::vector<OpEntry>> shard_ops_;       // per-shard op stream
  std::vector<std::vector<ChannelEntry>> channels_;   // [src * S + dst]
  std::vector<std::size_t> shard_ops_head_;           // replay cursors
  std::vector<std::size_t> channels_head_;
  std::vector<std::uint64_t> channel_total_;          // lifetime counts
  std::vector<ShardStats> shard_stats_;
  // First failure per shard during the lane phase: (event seq, exception).
  std::vector<std::pair<std::uint64_t, std::exception_ptr>> shard_errors_;
  // Shard executing on the simulator thread (serial sharded pops), for
  // cross-shard channel accounting; kUntagged outside shard events.
  std::uint32_t current_shard_ = kUntagged;
};

}  // namespace centaur::sim
