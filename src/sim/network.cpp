#include "sim/network.hpp"

#include <stdexcept>

namespace centaur::sim {

Network::Network(AsGraph& graph, util::Rng& rng, Time min_delay,
                 Time max_delay)
    : graph_(graph), nodes_(graph.num_nodes()) {
  delays_.reserve(graph.num_links());
  for (LinkId l = 0; l < graph.num_links(); ++l) {
    delays_.push_back(rng.uniform(min_delay, max_delay));
  }
  // Flooding protocols keep roughly O(links) deliveries in flight during
  // initialization; pre-sizing the event heap avoids its growth
  // reallocations on the hot path.
  sim_.reserve(2 * graph.num_links() + 16);
}

void Network::attach(NodeId id, std::unique_ptr<Node> node) {
  if (id >= nodes_.size()) throw std::invalid_argument("Network::attach: id");
  node->net_ = this;
  node->self_ = id;
  nodes_.at(id) = std::move(node);
}

std::size_t Network::start_all_and_converge() {
  for (auto& n : nodes_) {
    if (!n) throw std::logic_error("Network: node not attached");
  }
  for (auto& n : nodes_) {
    // start() may send messages; those queue behind the remaining starts,
    // which models all sessions coming up at t=0.
    n->start();
  }
  return run_to_convergence();
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  const auto link = graph_.find_link(from, to);
  if (!link) throw std::invalid_argument("Network::send: not adjacent");
  const std::size_t bytes = msg->byte_size();
  ++window_.messages_sent;
  window_.bytes_sent += bytes;
  ++total_messages_;
  total_bytes_ += bytes;
  if (!graph_.link_up(*link)) {
    ++window_.messages_dropped;
    return;
  }
  const LinkId l = *link;
  sim_.schedule(delays_.at(l), [this, from, to, l, msg = std::move(msg)] {
    if (!graph_.link_up(l)) {
      ++window_.messages_dropped;
      return;
    }
    ++window_.messages_delivered;
    window_.last_delivery = sim_.now();
    nodes_.at(to)->on_message(from, msg);
    if (event_hook_) event_hook_(to);
  });
}

void Network::set_link_state(LinkId link, bool up) {
  const topo::Link& l = graph_.link(link);
  if (graph_.link_up(link) == up) return;
  graph_.set_link_up(link, up);
  // Notify both endpoints via the event queue so that reactions are ordered
  // with in-flight messages.
  sim_.schedule(0, [this, a = l.a, b = l.b, up] {
    nodes_.at(a)->on_link_change(b, up);
    if (event_hook_) event_hook_(a);
    nodes_.at(b)->on_link_change(a, up);
    if (event_hook_) event_hook_(b);
  });
}

std::size_t Network::run_to_convergence() { return sim_.run(); }

void Network::mark() {
  window_ = WindowStats{};
  mark_time_ = sim_.now();
}

Time Network::window_convergence_time() const {
  if (window_.messages_delivered == 0) return 0;
  return window_.last_delivery - mark_time_;
}

}  // namespace centaur::sim
