#include "sim/network.hpp"

#include <stdexcept>
#include <utility>

#include "runner/parallel.hpp"
#include "topology/partition.hpp"

namespace centaur::sim {

Network::Network(AsGraph& graph, util::Rng& rng, Time min_delay,
                 Time max_delay)
    : graph_(graph), nodes_(graph.num_nodes()) {
  delays_.reserve(graph.num_links());
  for (LinkId l = 0; l < graph.num_links(); ++l) {
    delays_.push_back(rng.uniform(min_delay, max_delay));
  }
  // Sharded event plane (DESIGN.md §13): partition the AS graph into
  // CENTAUR_SHARDS contiguous node ranges and give each its own event
  // queue.  Must happen before anything is scheduled; any shard count is
  // bit-identical to the unsharded run.
  const std::size_t shards = runner::shards_from_env();
  if (shards > 1 && graph.num_nodes() > 0) {
    topo::Partition part = topo::partition_contiguous(graph, shards);
    if (part.num_shards > 1) {
      sim_.set_shards(part.num_shards, std::move(part.shard_of_node));
    }
  }
  // Flooding protocols keep roughly O(links) deliveries in flight during
  // initialization; pre-sizing the event heap avoids its growth
  // reallocations on the hot path.
  sim_.reserve(2 * graph.num_links() + 16);
  sim_.set_intra_threads(runner::intra_threads_from_env());
}

void Network::attach(NodeId id, std::unique_ptr<Node> node) {
  if (id >= nodes_.size()) throw std::invalid_argument("Network::attach: id");
  node->net_ = this;
  node->self_ = id;
  nodes_.at(id) = std::move(node);
}

std::size_t Network::start_all_and_converge() {
  for (auto& n : nodes_) {
    if (!n) throw std::logic_error("Network: node not attached");
  }
  for (auto& n : nodes_) {
    // start() may send messages; those queue behind the remaining starts,
    // which models all sessions coming up at t=0.
    n->start();
  }
  return run_to_convergence();
}

void Network::note_drop() {
  if (in_parallel_phase()) {
    defer_commit_op([this] { ++window_.messages_dropped; });
    return;
  }
  ++window_.messages_dropped;
}

void Network::note_delivery() {
  // now_ is frozen for the duration of a batch, so reading it from a worker
  // lane is race-free and equals the value the commit op must record.
  const Time at = sim_.now();
  if (in_parallel_phase()) {
    defer_commit_op([this, at] {
      ++window_.messages_delivered;
      window_.last_delivery = at;
    });
    return;
  }
  ++window_.messages_delivered;
  window_.last_delivery = at;
}

void Network::notify_event_hook(NodeId id) {
  if (!event_hook_) return;
  if (in_parallel_phase()) {
    defer_commit_op([this, id] {
      if (event_hook_) event_hook_(id);
    });
    return;
  }
  event_hook_(id);
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  if (in_parallel_phase() && !in_sharded_lane()) {
    // Unsharded worker lane: counters and event-queue insertion are shared
    // state — replay the whole send at the commit barrier, in the sending
    // event's seq position.  Link state cannot change within a batch
    // (set_link_state is driver-side), so the deferred send sees the same
    // topology the caller did.
    defer_commit_op([this, from, to, msg = std::move(msg)]() mutable {
      send(from, to, std::move(msg));
    });
    return;
  }
  // Serial, or a sharded lane.  In a sharded lane the reads below are all
  // batch-frozen (topology and link state only change through driver
  // events, delays are fixed at construction), counters defer to the commit
  // barrier, and the delivery schedule is issued in-lane so a cross-shard
  // send rides — and is counted on — the (src, dst) shard channel.  The
  // deferred-counter op precedes the schedule in the event's op stream,
  // preserving the serial interleaving.
  const auto link = graph_.find_link(from, to);
  if (!link) throw std::invalid_argument("Network::send: not adjacent");
  const std::size_t bytes = msg->byte_size();
  if (in_sharded_lane()) {
    defer_commit_op([this, bytes] {
      ++window_.messages_sent;
      window_.bytes_sent += bytes;
      ++total_messages_;
      total_bytes_ += bytes;
    });
  } else {
    ++window_.messages_sent;
    window_.bytes_sent += bytes;
    ++total_messages_;
    total_bytes_ += bytes;
  }
  if (!graph_.link_up(*link)) {
    note_drop();
    return;
  }
  const LinkId l = *link;
  // Delivery only touches the receiver's state (plus deferred counters), so
  // it is tagged with `to` and eligible for same-instant batching.
  sim_.schedule_tagged(delays_.at(l), to,
                       [this, from, to, l, msg = std::move(msg)] {
                         if (!graph_.link_up(l)) {
                           note_drop();
                           return;
                         }
                         note_delivery();
                         nodes_.at(to)->on_message(from, msg);
                         notify_event_hook(to);
                       });
}

void Network::set_link_state(LinkId link, bool up) {
  const topo::Link& l = graph_.link(link);
  if (graph_.link_up(link) == up) return;
  graph_.set_link_up(link, up);
  // Notify the endpoints via the event queue so that reactions are ordered
  // with in-flight messages.  Each endpoint gets its own node-tagged event
  // (rather than one event touching both) so that the notification storm of
  // a partition or flap burst can batch-execute; with intra-threads == 1
  // the two events still run back-to-back in seq order.
  sim_.schedule_tagged(0, l.a, [this, a = l.a, b = l.b, up] {
    nodes_.at(a)->on_link_change(b, up);
    notify_event_hook(a);
  });
  sim_.schedule_tagged(0, l.b, [this, a = l.a, b = l.b, up] {
    nodes_.at(b)->on_link_change(a, up);
    notify_event_hook(b);
  });
}

std::size_t Network::run_to_convergence() { return sim_.run(); }

void Network::mark() {
  window_ = WindowStats{};
  mark_time_ = sim_.now();
}

Time Network::window_convergence_time() const {
  if (window_.messages_delivered == 0) return 0;
  return window_.last_delivery - mark_time_;
}

}  // namespace centaur::sim
