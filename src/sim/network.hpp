// Message-passing network binding protocol nodes to a topology.
//
// A Network owns a Simulator, a set of protocol Nodes (one per AsGraph
// node), per-link propagation delays, and the message/byte counters the
// experiments read.  Protocols (BGP / OSPF / Centaur) implement Node and are
// oblivious to measurement concerns.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace centaur::sim {

using topo::AsGraph;
using topo::LinkId;
using topo::NodeId;

/// Base class for protocol messages.  byte_size() feeds the byte counters;
/// implementations should approximate their wire encoding.
class Message {
 public:
  virtual ~Message() = default;
  virtual std::size_t byte_size() const = 0;
  virtual std::string describe() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

class Network;

/// A protocol instance running at one topology node.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once after every node is attached; protocols kick off their
  /// initialization phase here (e.g. announce adjacent links).
  virtual void start() = 0;

  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;

  /// Link to `neighbor` changed state.  Both endpoints are notified at the
  /// moment the change takes effect.
  virtual void on_link_change(NodeId neighbor, bool up) = 0;

 protected:
  Network& net() const { return *net_; }
  NodeId self() const { return self_; }

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId self_ = topo::kInvalidNode;
};

/// Counters over a measurement window (reset by Network::mark()).
struct WindowStats {
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_dropped = 0;  ///< link went down mid-flight
  std::size_t bytes_sent = 0;
  /// Simulated time of the last delivered message in the window;
  /// meaningful only if messages_delivered > 0.
  Time last_delivery = 0;
};

/// Topology-bound message-passing fabric with per-link delays.
class Network {
 public:
  /// Delays are drawn once per link, uniform in [min_delay, max_delay)
  /// (the paper: "set randomly between 0 and 5 milliseconds").
  Network(AsGraph& graph, util::Rng& rng, Time min_delay = 0.0,
          Time max_delay = 0.005);

  /// Installs the protocol instance for `id`.  All nodes must be attached
  /// before run_to_convergence().
  void attach(NodeId id, std::unique_ptr<Node> node);

  /// Calls start() on every node and runs to quiescence.
  /// Returns events processed.
  std::size_t start_all_and_converge();

  /// Sends `msg` from `from` to adjacent node `to`.  The message is counted
  /// as sent immediately; it is delivered after the link delay unless the
  /// link is down at delivery time (then counted as dropped).  Sending on a
  /// link that is already down drops immediately.
  void send(NodeId from, NodeId to, MessagePtr msg);

  /// Changes a link's state now and notifies each endpoint through its own
  /// zero-delay event (two events per flip, node-tagged so same-instant
  /// notification bursts can batch-execute), then (caller) typically runs to
  /// convergence.  Driver-side only: must not be called from inside a node
  /// callback executing in a parallel batch.
  void set_link_state(LinkId link, bool up);

  /// Runs the simulator until quiescence; returns events processed.
  std::size_t run_to_convergence();

  /// Resets the measurement window.
  void mark();

  /// Counters since the last mark().
  const WindowStats& window() const { return window_; }

  /// Convergence time of the last measured window: last delivery time minus
  /// the window mark time (0 if nothing was delivered).
  Time window_convergence_time() const;

  /// Lifetime counters (never reset by mark()) — what the bench JSON
  /// reports record per trial.
  std::size_t total_messages() const { return total_messages_; }
  std::size_t total_bytes() const { return total_bytes_; }
  std::uint64_t events_executed() const { return sim_.executed(); }

  Simulator& simulator() { return sim_; }
  const AsGraph& graph() const { return graph_; }
  Time link_delay(LinkId link) const { return delays_.at(link); }
  Node& node(NodeId id) { return *nodes_.at(id); }

  /// Analysis-mode hook: invoked with a node's id right after that node
  /// processes an event (message delivery or link-change notification), so
  /// an observer can validate its state at every event boundary.  One hook
  /// at a time; pass nullptr to detach.  Hooks must not send messages or
  /// mutate protocol state.  Under intra-trial parallelism the invocation is
  /// deferred to the batch's commit barrier and replayed on the simulator
  /// thread in event order, so the hook always observes fully committed
  /// node states and never runs concurrently with itself.
  void set_event_hook(std::function<void(NodeId)> hook) {
    event_hook_ = std::move(hook);
  }

 private:
  // Shared-side-effect helpers: immediate when serial, deferred to the
  // commit barrier when called from a parallel compute lane.
  void note_drop();
  void note_delivery();
  void notify_event_hook(NodeId id);

  AsGraph& graph_;
  Simulator sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Time> delays_;
  WindowStats window_;
  std::size_t total_messages_ = 0;
  std::size_t total_bytes_ = 0;
  Time mark_time_ = 0;
  std::function<void(NodeId)> event_hook_;
};

}  // namespace centaur::sim
