#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "runner/parallel.hpp"

namespace centaur::sim {

namespace {

/// Commit queue of the batch event the calling thread is executing, or
/// nullptr outside the parallel compute phase.
thread_local std::vector<util::UniqueFunction>* t_commit_queue = nullptr;

}  // namespace

bool in_parallel_phase() { return t_commit_queue != nullptr; }

void defer_commit_op(util::UniqueFunction op) {
  if (t_commit_queue == nullptr) {
    throw std::logic_error(
        "defer_commit_op: called outside a parallel compute phase");
  }
  t_commit_queue->push_back(std::move(op));
}

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void Simulator::schedule(Time delay, util::UniqueFunction fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: delay < 0");
  schedule_at_tagged(now_ + delay, kUntagged, std::move(fn));
}

void Simulator::schedule_at(Time when, util::UniqueFunction fn) {
  schedule_at_tagged(when, kUntagged, std::move(fn));
}

void Simulator::schedule_tagged(Time delay, std::uint32_t node,
                                util::UniqueFunction fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: delay < 0");
  schedule_at_tagged(now_ + delay, node, std::move(fn));
}

void Simulator::schedule_at_tagged(Time when, std::uint32_t node,
                                   util::UniqueFunction fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (in_parallel_phase()) {
    // Worker lane: queue insertion is a shared side effect — defer it to
    // the commit barrier, where it re-enters this function on the simulator
    // thread.  Replay happens in event seq order, so the seq this insert
    // receives is exactly the seq a serial execution would have assigned.
    defer_commit_op([this, when, node, f = std::move(fn)]() mutable {
      schedule_at_tagged(when, node, std::move(f));
    });
    return;
  }
  if (when == now_) {
    // Same-time burst: FIFO order is seq order (seq grows monotonically and
    // every same-time event still in the heap was scheduled earlier, while
    // now_ was smaller, so it carries a smaller seq).
    burst_.push_back(Event{when, next_seq_++, node, std::move(fn)});
    return;
  }
  heap_push(when, node, std::move(fn));
}

void Simulator::heap_push(Time when, std::uint32_t node,
                          util::UniqueFunction fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    heap_fns_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(heap_fns_.size());
    heap_fns_.push_back(std::move(fn));
  }
  heap_.push_back(HeapItem{when, next_seq_++, node, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::heap_pop_into(Event& out) {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapItem item = heap_.back();
  heap_.pop_back();
  out.at = item.at;
  out.seq = item.seq;
  out.node = item.node;
  out.fn = std::move(heap_fns_[item.slot]);
  free_slots_.push_back(item.slot);
}

void Simulator::set_intra_threads(std::size_t threads) {
  const std::size_t want = threads < 1 ? 1 : threads;
  if (want == intra_threads_) return;
  intra_threads_ = want;
  pool_.reset();  // re-created lazily at the next parallel batch
}

void Simulator::reserve(std::size_t events) {
  heap_.reserve(events);
  heap_fns_.reserve(events);
  free_slots_.reserve(events);
}

void Simulator::pop_next(Event& out) {
  // Heap events at the current time precede every burst event (smaller seq);
  // burst events are only valid while now_ has not advanced past them.
  const bool burst_ready = burst_head_ < burst_.size();
  if (!heap_.empty() && (!burst_ready || heap_.front().at <= now_)) {
    heap_pop_into(out);
  } else {
    out = std::move(burst_[burst_head_++]);
    if (burst_head_ >= burst_.size()) {
      burst_.clear();
      burst_head_ = 0;
    }
  }
}

void Simulator::collect_batch(std::size_t limit, std::vector<Event>& batch) {
  batch.clear();
  const bool burst_ready = burst_head_ < burst_.size();
  const Time t = burst_ready ? now_ : heap_.front().at;
  bool blocked = false;  // stopped at an untagged same-time event
  // Heap events at <= t precede every burst event (strictly smaller seq).
  while (batch.size() < limit && !heap_.empty() && heap_.front().at <= t) {
    if (heap_.front().node == kUntagged) {
      blocked = true;
      break;
    }
    batch.emplace_back();
    heap_pop_into(batch.back());
  }
  if (!blocked && burst_ready) {
    while (batch.size() < limit && burst_head_ < burst_.size() &&
           burst_[burst_head_].node != kUntagged) {
      batch.push_back(std::move(burst_[burst_head_++]));
    }
    if (burst_head_ >= burst_.size()) {
      burst_.clear();
      burst_head_ = 0;
    }
  }
}

void Simulator::execute_batch(std::vector<Event>& batch) {
  if (batch.size() == 1) {
    // Singleton — the common case on delivery cascades (continuous link
    // delays rarely coincide).  Identical to the unbatched path, with no
    // partition/commit machinery on the hot path.
    batch[0].fn();
    batch[0].fn.reset();
    return;
  }
  // Partition event indices by node tag; within a node, seq order (== batch
  // order) is preserved, so causally dependent same-node events (a delivery
  // followed by the flush it scheduled) run in order on one lane.
  auto& keyed = keyed_;
  keyed.clear();
  keyed.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    keyed.emplace_back(batch[i].node, i);
  }
  std::sort(keyed.begin(), keyed.end());
  auto& groups = groups_;  // [begin, end) runs of one node's events
  groups.clear();
  for (std::size_t i = 0; i < keyed.size();) {
    std::size_t j = i + 1;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
    groups.emplace_back(i, j);
    i = j;
  }

  // Below this many distinct nodes the barrier costs more than the overlap
  // buys: flooding traffic is full of 2-node coincidences (both directions
  // of a link share one delay, so symmetric A<->B exchanges land at the
  // same instant), and dispatching those pairs to the pool made runs
  // slower, not faster.  The threshold only inspects batch composition, so
  // the execution path — and with it the observable behaviour — stays a
  // pure function of the event sequence.
  constexpr std::size_t kMinPoolGroups = 4;
  if (groups.size() < kMinPoolGroups) {
    // Few nodes (or one event): nothing worth overlapping — run serially
    // with immediate side effects, exactly the unbatched path.
    for (Event& ev : batch) {
      ev.fn();
      ev.fn.reset();
    }
    return;
  }

  if (!pool_) pool_ = std::make_unique<runner::WorkerPool>(intra_threads_);
  commit_queues_.resize(batch.size());
  for (auto& q : commit_queues_) q.clear();
  batch_errors_.assign(batch.size(), nullptr);

  // Parallel compute phase: each lane executes whole node groups; callbacks
  // mutate only their node's private state, and every shared side effect
  // they attempt is deferred into the event's commit queue.
  pool_->parallel_for_deterministic(groups.size(), [&](std::size_t g) {
    const auto [begin, end] = groups[g];
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t idx = keyed[k].second;
      t_commit_queue = &commit_queues_[idx];
      try {
        batch[idx].fn();
        batch[idx].fn.reset();
      } catch (...) {
        batch_errors_[idx] = std::current_exception();
        t_commit_queue = nullptr;
        break;  // same-node successors depend on the failed event
      }
      t_commit_queue = nullptr;
    }
  });

  // Ordered commit: replay side effects in event seq order on this thread.
  // A failed event commits the ops it deferred before throwing (matching
  // the serial partial execution) and then rethrows; queues of later events
  // are dropped, as a serial run would never have executed them.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (util::UniqueFunction& op : commit_queues_[i]) {
      op();
      op.reset();
    }
    commit_queues_[i].clear();
    if (batch_errors_[i]) std::rethrow_exception(batch_errors_[i]);
  }
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t processed = 0;
  Event ev;
  while (!idle()) {
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run: event budget exhausted");
    }
    if (intra_threads_ > 1) {
      collect_batch(max_events - processed, batch_);
      if (!batch_.empty()) {
        now_ = batch_.front().at;
        execute_batch(batch_);
        processed += batch_.size();
        executed_ += batch_.size();
        batch_.clear();
        continue;
      }
    }
    pop_next(ev);
    now_ = ev.at;
    ev.fn();
    ev.fn.reset();
    ++processed;
    ++executed_;
  }
  assert(burst_.empty() && burst_head_ == 0);  // idle() implies drained burst
  return processed;
}

std::size_t Simulator::run_until(Time deadline, std::size_t max_events) {
  std::size_t processed = 0;
  Event ev;
  while (!idle()) {
    // Burst events are at now_ (<= deadline whenever the loop is entered
    // with now_ <= deadline); heap events gate on the deadline.
    const bool burst_ready = burst_head_ < burst_.size();
    const Time next_at = burst_ready ? now_ : heap_.front().at;
    if (next_at > deadline) break;
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run_until: event budget exhausted");
    }
    if (intra_threads_ > 1) {
      collect_batch(max_events - processed, batch_);
      if (!batch_.empty()) {
        now_ = batch_.front().at;
        execute_batch(batch_);
        processed += batch_.size();
        executed_ += batch_.size();
        batch_.clear();
        continue;
      }
    }
    pop_next(ev);
    now_ = ev.at;
    ev.fn();
    ev.fn.reset();
    ++processed;
    ++executed_;
  }
  // Deadline exits can only leave heap events (at > deadline) queued: a
  // burst event sits at now_ <= deadline, so the loop drains every burst —
  // including one scheduled by an event executing exactly at the deadline —
  // before now_ may be advanced to the deadline below.  (A burst can remain
  // only if the caller passed a deadline already in the past.)
  assert(burst_head_ >= burst_.size() || deadline < now_);
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace centaur::sim
