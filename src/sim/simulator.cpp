#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace centaur::sim {

void Simulator::schedule(Time delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: delay < 0");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run: event budget exhausted");
    }
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  return processed;
}

std::size_t Simulator::run_until(Time deadline, std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run_until: event budget exhausted");
    }
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace centaur::sim
