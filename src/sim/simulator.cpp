#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace centaur::sim {

void Simulator::schedule(Time delay, util::UniqueFunction fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: delay < 0");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Time when, util::UniqueFunction fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (when == now_) {
    // Same-time burst: FIFO order is seq order (seq grows monotonically and
    // every same-time event still in the heap was scheduled earlier, while
    // now_ was smaller, so it carries a smaller seq).
    burst_.push_back(Event{when, next_seq_++, std::move(fn)});
    return;
  }
  heap_.push_back(Event{when, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::reserve(std::size_t events) { heap_.reserve(events); }

void Simulator::pop_next(Event& out) {
  // Heap events at the current time precede every burst event (smaller seq);
  // burst events are only valid while now_ has not advanced past them.
  const bool burst_ready = burst_head_ < burst_.size();
  if (!heap_.empty() && (!burst_ready || heap_.front().at <= now_)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    out = std::move(heap_.back());
    heap_.pop_back();
  } else {
    out = std::move(burst_[burst_head_++]);
    if (burst_head_ >= burst_.size()) {
      burst_.clear();
      burst_head_ = 0;
    }
  }
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t processed = 0;
  Event ev;
  while (!idle()) {
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run: event budget exhausted");
    }
    pop_next(ev);
    now_ = ev.at;
    ev.fn();
    ev.fn.reset();
    ++processed;
    ++executed_;
  }
  return processed;
}

std::size_t Simulator::run_until(Time deadline, std::size_t max_events) {
  std::size_t processed = 0;
  Event ev;
  while (!idle()) {
    // Burst events are at now_ (<= deadline whenever the loop is entered
    // with now_ <= deadline); heap events gate on the deadline.
    const bool burst_ready = burst_head_ < burst_.size();
    const Time next_at = burst_ready ? now_ : heap_.front().at;
    if (next_at > deadline) break;
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run_until: event budget exhausted");
    }
    pop_next(ev);
    now_ = ev.at;
    ev.fn();
    ev.fn.reset();
    ++processed;
    ++executed_;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace centaur::sim
