#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "runner/parallel.hpp"

namespace centaur::sim {

namespace {

/// Commit queue of the batch event the calling thread is executing, or
/// nullptr outside the parallel compute phase (unsharded plane).
thread_local std::vector<util::UniqueFunction>* t_commit_queue = nullptr;

/// Sharded-plane lane context: which shard this lane owns and which event
/// (seq) it is executing, with the per-event op counter that orders the
/// event's deferred side effects.  nullptr outside a sharded lane.
struct LaneCtx {
  Simulator* sim = nullptr;
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
  std::uint32_t op = 0;
};
thread_local LaneCtx* t_lane_ctx = nullptr;

}  // namespace

bool in_parallel_phase() {
  return t_commit_queue != nullptr || t_lane_ctx != nullptr;
}

bool in_sharded_lane() { return t_lane_ctx != nullptr; }

void defer_commit_op(util::UniqueFunction op) {
  if (t_lane_ctx != nullptr) {
    // Sharded lane: ops stream into the shard's queue stamped with the
    // (event seq, op index) replay key — per-shard streams are already in
    // that order because one lane executes a shard's events sequentially.
    LaneCtx& ctx = *t_lane_ctx;
    ctx.sim->shard_ops_[ctx.shard].push_back(
        Simulator::OpEntry{ctx.seq, ctx.op++, std::move(op)});
    return;
  }
  if (t_commit_queue == nullptr) {
    throw std::logic_error(
        "defer_commit_op: called outside a parallel compute phase");
  }
  t_commit_queue->push_back(std::move(op));
}

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void Simulator::schedule(Time delay, util::UniqueFunction fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: delay < 0");
  schedule_at_tagged(now_ + delay, kUntagged, std::move(fn));
}

void Simulator::schedule_at(Time when, util::UniqueFunction fn) {
  schedule_at_tagged(when, kUntagged, std::move(fn));
}

void Simulator::schedule_tagged(Time delay, std::uint32_t node,
                                util::UniqueFunction fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: delay < 0");
  schedule_at_tagged(now_ + delay, node, std::move(fn));
}

void Simulator::schedule_at_tagged(Time when, std::uint32_t node,
                                   util::UniqueFunction fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (t_lane_ctx != nullptr) {
    // Sharded lane: a schedule targeting another shard rides the (src, dst)
    // channel; a same-shard or untagged schedule defers like any other
    // shared side effect.  Both streams replay merged by (event seq, op
    // index) at the barrier, on the simulator thread, so the seq each
    // insert receives is exactly the serial assignment.
    LaneCtx& ctx = *t_lane_ctx;
    const std::uint32_t dst = node == kUntagged ? ctx.shard : shard_of(node);
    if (dst != ctx.shard) {
      const std::size_t c = ctx.shard * num_shards_ + dst;
      ++channel_total_[c];
      channels_[c].push_back(
          ChannelEntry{ctx.seq, ctx.op++, when, node, std::move(fn)});
      return;
    }
    defer_commit_op([this, when, node, f = std::move(fn)]() mutable {
      schedule_at_tagged(when, node, std::move(f));
    });
    return;
  }
  if (in_parallel_phase()) {
    // Worker lane: queue insertion is a shared side effect — defer it to
    // the commit barrier, where it re-enters this function on the simulator
    // thread.  Replay happens in event seq order, so the seq this insert
    // receives is exactly the seq a serial execution would have assigned.
    defer_commit_op([this, when, node, f = std::move(fn)]() mutable {
      schedule_at_tagged(when, node, std::move(f));
    });
    return;
  }
  if (num_shards_ > 1) {
    if (node == kUntagged) {
      queue_push(driverq_, when, node, std::move(fn));
      return;
    }
    const std::uint32_t dst = shard_of(node);
    if (current_shard_ != kUntagged && dst != current_shard_) {
      // Serial (or inline-batch) execution of a shard event scheduling into
      // another shard: account the channel crossing so the counts match the
      // lane path bit for bit on every lane count.
      ++channel_total_[current_shard_ * num_shards_ + dst];
    }
    queue_push(shardq_[dst], when, node, std::move(fn));
    return;
  }
  if (when == now_) {
    // Same-time burst: FIFO order is seq order (seq grows monotonically and
    // every same-time event still in the heap was scheduled earlier, while
    // now_ was smaller, so it carries a smaller seq).
    burst_.push_back(Event{when, next_seq_++, node, std::move(fn)});
    return;
  }
  heap_push(when, node, std::move(fn));
}

void Simulator::heap_push(Time when, std::uint32_t node,
                          util::UniqueFunction fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    heap_fns_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(heap_fns_.size());
    heap_fns_.push_back(std::move(fn));
  }
  heap_.push_back(HeapItem{when, next_seq_++, node, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::heap_pop_into(Event& out) {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapItem item = heap_.back();
  heap_.pop_back();
  out.at = item.at;
  out.seq = item.seq;
  out.node = item.node;
  out.fn = std::move(heap_fns_[item.slot]);
  free_slots_.push_back(item.slot);
}

void Simulator::set_intra_threads(std::size_t threads) {
  const std::size_t want = threads < 1 ? 1 : threads;
  if (want == intra_threads_) return;
  intra_threads_ = want;
  pool_.reset();  // re-created lazily at the next parallel batch
}

void Simulator::set_shards(std::size_t count,
                           std::vector<std::uint32_t> shard_of_node) {
  if (next_seq_ != 0 || executed_ != 0 || !idle()) {
    throw std::logic_error(
        "Simulator::set_shards: shard plane must be chosen before any event "
        "is scheduled or executed");
  }
  const std::size_t want = count < 1 ? 1 : count;
  if (want == 1) {
    num_shards_ = 1;
    shard_of_.clear();
    shardq_.clear();
    return;
  }
  for (const std::uint32_t s : shard_of_node) {
    if (s >= want) {
      throw std::invalid_argument("Simulator::set_shards: shard id >= count");
    }
  }
  num_shards_ = want;
  shard_of_ = std::move(shard_of_node);
  shardq_.clear();
  shardq_.resize(want);
  driverq_ = ShardQueue{};
  shard_ops_.clear();
  shard_ops_.resize(want);
  channels_.clear();
  channels_.resize(want * want);
  shard_ops_head_.assign(want, 0);
  channels_head_.assign(want * want, 0);
  channel_total_.assign(want * want, 0);
  shard_stats_.assign(want, ShardStats{});
  shard_errors_.assign(want, {0, nullptr});
}

std::uint32_t Simulator::shard_of(std::uint32_t node) const {
  if (node >= shard_of_.size()) {
    throw std::out_of_range("Simulator: node tag outside the shard map");
  }
  return shard_of_[node];
}

bool Simulator::sharded_idle() const {
  if (!driverq_.empty()) return false;
  for (const ShardQueue& q : shardq_) {
    if (!q.empty()) return false;
  }
  return true;
}

std::size_t Simulator::sharded_pending() const {
  std::size_t total = driverq_.size();
  for (const ShardQueue& q : shardq_) total += q.size();
  return total;
}

void Simulator::queue_push(ShardQueue& q, Time when, std::uint32_t node,
                           util::UniqueFunction fn) {
  if (when == now_) {
    // Same burst invariant as the unsharded plane: every same-time event
    // still in any heap carries a smaller seq, so per-queue FIFO order is
    // seq order.
    q.burst.push_back(Event{when, next_seq_++, node, std::move(fn)});
    return;
  }
  std::uint32_t slot;
  if (!q.free_slots.empty()) {
    slot = q.free_slots.back();
    q.free_slots.pop_back();
    q.fns[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(q.fns.size());
    q.fns.push_back(std::move(fn));
  }
  q.heap.push_back(HeapItem{when, next_seq_++, node, slot});
  std::push_heap(q.heap.begin(), q.heap.end(), Later{});
}

void Simulator::queue_pop_into(ShardQueue& q, Event& out) {
  const bool burst_ready = q.burst_head < q.burst.size();
  bool take_heap = !q.heap.empty();
  if (take_heap && burst_ready) {
    const HeapItem& h = q.heap.front();
    const Event& b = q.burst[q.burst_head];
    take_heap = h.at < b.at || (h.at == b.at && h.seq < b.seq);
  }
  if (take_heap) {
    std::pop_heap(q.heap.begin(), q.heap.end(), Later{});
    const HeapItem item = q.heap.back();
    q.heap.pop_back();
    out.at = item.at;
    out.seq = item.seq;
    out.node = item.node;
    out.fn = std::move(q.fns[item.slot]);
    q.free_slots.push_back(item.slot);
    return;
  }
  out = std::move(q.burst[q.burst_head++]);
  if (q.burst_head >= q.burst.size()) {
    q.burst.clear();
    q.burst_head = 0;
  }
}

bool Simulator::queue_next_key(const ShardQueue& q, Time& at,
                               std::uint64_t& seq) {
  bool have = false;
  if (!q.heap.empty()) {
    at = q.heap.front().at;
    seq = q.heap.front().seq;
    have = true;
  }
  if (q.burst_head < q.burst.size()) {
    const Event& b = q.burst[q.burst_head];
    if (!have || b.at < at || (b.at == at && b.seq < seq)) {
      at = b.at;
      seq = b.seq;
    }
    have = true;
  }
  return have;
}

std::uint32_t Simulator::sharded_pop_next(Event& out) {
  ShardQueue* best = nullptr;
  std::uint32_t best_shard = kUntagged;
  Time best_at = 0;
  std::uint64_t best_seq = 0;
  const auto consider = [&](ShardQueue& q, std::uint32_t shard) {
    Time at;
    std::uint64_t seq;
    if (!queue_next_key(q, at, seq)) return;
    if (best == nullptr || at < best_at || (at == best_at && seq < best_seq)) {
      best = &q;
      best_shard = shard;
      best_at = at;
      best_seq = seq;
    }
  };
  consider(driverq_, kUntagged);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    consider(shardq_[s], static_cast<std::uint32_t>(s));
  }
  assert(best != nullptr);
  queue_pop_into(*best, out);
  return best_shard;
}

void Simulator::sharded_collect_batch(std::size_t limit,
                                      std::vector<Event>& batch) {
  batch.clear();
  // Batch timestamp: the global minimum event time across every queue.
  Time t = 0;
  bool have = false;
  const auto consider_time = [&](const ShardQueue& q) {
    Time at;
    std::uint64_t seq;
    if (queue_next_key(q, at, seq) && (!have || at < t)) {
      t = at;
      have = true;
    }
  };
  consider_time(driverq_);
  for (const ShardQueue& q : shardq_) consider_time(q);
  assert(have);
  // Untagged events are barriers: the batch may only take shard events
  // whose seq precedes the first same-time driver event.
  std::uint64_t barrier = std::numeric_limits<std::uint64_t>::max();
  {
    Time at;
    std::uint64_t seq;
    if (queue_next_key(driverq_, at, seq) && at == t) barrier = seq;
  }
  // Pop shard events at time t in global seq order (S-way min scan); the
  // resulting batch is exactly the run the unsharded plane would collect.
  while (batch.size() < limit) {
    ShardQueue* best = nullptr;
    Time best_at = 0;
    std::uint64_t best_seq = 0;
    for (ShardQueue& q : shardq_) {
      Time at;
      std::uint64_t seq;
      if (!queue_next_key(q, at, seq)) continue;
      if (best == nullptr || at < best_at ||
          (at == best_at && seq < best_seq)) {
        best = &q;
        best_at = at;
        best_seq = seq;
      }
    }
    if (best == nullptr || best_at != t || best_seq >= barrier) break;
    batch.emplace_back();
    queue_pop_into(*best, batch.back());
  }
}

void Simulator::sharded_execute_batch(std::vector<Event>& batch) {
  // Inline execution helper for the fast paths below: immediate side
  // effects on the simulator thread, with the executing shard recorded so
  // cross-shard schedules hit the channel accounting.
  const auto run_inline = [&](Event& ev) {
    const std::uint32_t s = shard_of(ev.node);
    current_shard_ = s;
    try {
      ev.fn();
    } catch (...) {
      current_shard_ = kUntagged;
      throw;
    }
    current_shard_ = kUntagged;
    ev.fn.reset();
    ++shard_stats_[s].events;
  };
  if (batch.size() == 1) {
    run_inline(batch[0]);
    return;
  }

  // Partition event indices by shard; within a shard, seq order (== batch
  // order) is preserved, so one lane executes a shard's events exactly in
  // the order a serial run would.
  auto& keyed = keyed_;
  keyed.clear();
  keyed.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    keyed.emplace_back(shard_of(batch[i].node), i);
  }
  std::sort(keyed.begin(), keyed.end());
  auto& groups = groups_;  // [begin, end) runs of one shard's events
  groups.clear();
  for (std::size_t i = 0; i < keyed.size();) {
    std::size_t j = i + 1;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
    groups.emplace_back(i, j);
    i = j;
  }

  if (groups.size() < 2 || intra_threads_ <= 1) {
    // One shard (or serial lanes): nothing to overlap — run in seq order
    // with immediate effects, exactly the serial sharded path.
    for (Event& ev : batch) run_inline(ev);
    return;
  }

  if (!pool_) pool_ = std::make_unique<runner::WorkerPool>(intra_threads_);
  for (auto& ops : shard_ops_) ops.clear();
  for (auto& ch : channels_) ch.clear();
  shard_ops_head_.assign(num_shards_, 0);
  channels_head_.assign(num_shards_ * num_shards_, 0);
  shard_errors_.assign(num_shards_, {0, nullptr});

  // Parallel compute phase: each lane executes one shard's sub-batch in seq
  // order; callbacks mutate only that shard's node states, and every shared
  // side effect streams into the shard's op queue or an outgoing channel.
  pool_->parallel_for_deterministic(groups.size(), [&](std::size_t g) {
    const auto [begin, end] = groups[g];
    const std::uint32_t s = keyed[begin].first;
    const auto lane_start = std::chrono::steady_clock::now();
    LaneCtx ctx;
    ctx.sim = this;
    ctx.shard = s;
    t_lane_ctx = &ctx;
    for (std::size_t k = begin; k < end; ++k) {
      Event& ev = batch[keyed[k].second];
      ctx.seq = ev.seq;
      ctx.op = 0;
      try {
        ev.fn();
        ev.fn.reset();
      } catch (...) {
        shard_errors_[s] = {ev.seq, std::current_exception()};
        break;  // same-shard successors depend on the failed event
      }
      ++shard_stats_[s].events;
    }
    t_lane_ctx = nullptr;
    shard_stats_[s].wall_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      lane_start)
            .count();
  });

  // Deterministic barrier: walk the batch in seq order, replaying each
  // event's deferred ops and channel sends in op-index order — the serial
  // interleaving.  A failed event replays the ops it deferred before
  // throwing and then rethrows; streams of later events are dropped (they
  // are cleared at the next batch), as a serial run would never have
  // executed them.
  for (const Event& ev : batch) {
    const std::uint32_t s = shard_of(ev.node);
    replay_event_ops(ev.seq, s);
    if (shard_errors_[s].second != nullptr && shard_errors_[s].first == ev.seq) {
      std::rethrow_exception(shard_errors_[s].second);
    }
  }
}

void Simulator::replay_event_ops(std::uint64_t seq, std::uint32_t shard) {
  std::vector<OpEntry>& ops = shard_ops_[shard];
  std::size_t& ops_head = shard_ops_head_[shard];
  const std::size_t row = shard * num_shards_;
  for (;;) {
    // Candidate heads: the shard's local op stream plus its S outgoing
    // channels; every stream is (seq, op)-ascending, so the heads are the
    // only candidates and the minimum op index is the next serial effect.
    int kind = -1;  // 0 = local op, 1 = channel send
    std::uint32_t best_op = 0;
    std::size_t best_channel = 0;
    if (ops_head < ops.size() && ops[ops_head].seq == seq) {
      kind = 0;
      best_op = ops[ops_head].op;
    }
    for (std::size_t d = 0; d < num_shards_; ++d) {
      const std::vector<ChannelEntry>& ch = channels_[row + d];
      const std::size_t head = channels_head_[row + d];
      if (head < ch.size() && ch[head].seq == seq &&
          (kind < 0 || ch[head].op < best_op)) {
        kind = 1;
        best_op = ch[head].op;
        best_channel = row + d;
      }
    }
    if (kind < 0) return;
    if (kind == 0) {
      OpEntry& e = ops[ops_head++];
      e.fn();
      e.fn.reset();
    } else {
      // Drain the channel entry into the destination shard's queue; the
      // insert runs on the simulator thread and takes the next global seq —
      // the seq a serial execution of the scheduling call would assign.
      ChannelEntry& e = channels_[best_channel][channels_head_[best_channel]++];
      schedule_at_tagged(e.when, e.node, std::move(e.fn));
    }
  }
}

std::size_t Simulator::run_sharded(bool bounded, Time deadline,
                                   std::size_t max_events) {
  std::size_t processed = 0;
  Event ev;
  while (!sharded_idle()) {
    if (bounded) {
      Time next_at = 0;
      bool have = false;
      const auto consider = [&](const ShardQueue& q) {
        Time at;
        std::uint64_t seq;
        if (queue_next_key(q, at, seq) && (!have || at < next_at)) {
          next_at = at;
          have = true;
        }
      };
      consider(driverq_);
      for (const ShardQueue& q : shardq_) consider(q);
      if (next_at > deadline) break;
    }
    if (processed >= max_events) {
      throw std::runtime_error(bounded
                                   ? "Simulator::run_until: event budget "
                                     "exhausted"
                                   : "Simulator::run: event budget exhausted");
    }
    if (intra_threads_ > 1) {
      sharded_collect_batch(max_events - processed, batch_);
      if (!batch_.empty()) {
        now_ = batch_.front().at;
        sharded_execute_batch(batch_);
        processed += batch_.size();
        executed_ += batch_.size();
        batch_.clear();
        continue;
      }
    }
    const std::uint32_t s = sharded_pop_next(ev);
    now_ = ev.at;
    if (s != kUntagged) {
      current_shard_ = s;
      try {
        ev.fn();
      } catch (...) {
        current_shard_ = kUntagged;
        throw;
      }
      current_shard_ = kUntagged;
      ++shard_stats_[s].events;
    } else {
      ev.fn();
    }
    ev.fn.reset();
    ++processed;
    ++executed_;
  }
  // Deadline exits can only leave events with at > deadline queued (the
  // next-time gate above breaks before popping anything later), so advancing
  // the clock to the deadline is safe — same invariant as the unsharded
  // plane.
  if (bounded && now_ < deadline) now_ = deadline;
  return processed;
}

void Simulator::reserve(std::size_t events) {
  if (num_shards_ > 1) {
    const std::size_t per = events / num_shards_ + 16;
    for (ShardQueue& q : shardq_) {
      q.heap.reserve(per);
      q.fns.reserve(per);
      q.free_slots.reserve(per);
    }
    return;
  }
  heap_.reserve(events);
  heap_fns_.reserve(events);
  free_slots_.reserve(events);
}

void Simulator::pop_next(Event& out) {
  // Heap events at the current time precede every burst event (smaller seq);
  // burst events are only valid while now_ has not advanced past them.
  const bool burst_ready = burst_head_ < burst_.size();
  if (!heap_.empty() && (!burst_ready || heap_.front().at <= now_)) {
    heap_pop_into(out);
  } else {
    out = std::move(burst_[burst_head_++]);
    if (burst_head_ >= burst_.size()) {
      burst_.clear();
      burst_head_ = 0;
    }
  }
}

void Simulator::collect_batch(std::size_t limit, std::vector<Event>& batch) {
  batch.clear();
  const bool burst_ready = burst_head_ < burst_.size();
  const Time t = burst_ready ? now_ : heap_.front().at;
  bool blocked = false;  // stopped at an untagged same-time event
  // Heap events at <= t precede every burst event (strictly smaller seq).
  while (batch.size() < limit && !heap_.empty() && heap_.front().at <= t) {
    if (heap_.front().node == kUntagged) {
      blocked = true;
      break;
    }
    batch.emplace_back();
    heap_pop_into(batch.back());
  }
  if (!blocked && burst_ready) {
    while (batch.size() < limit && burst_head_ < burst_.size() &&
           burst_[burst_head_].node != kUntagged) {
      batch.push_back(std::move(burst_[burst_head_++]));
    }
    if (burst_head_ >= burst_.size()) {
      burst_.clear();
      burst_head_ = 0;
    }
  }
}

void Simulator::execute_batch(std::vector<Event>& batch) {
  if (batch.size() == 1) {
    // Singleton — the common case on delivery cascades (continuous link
    // delays rarely coincide).  Identical to the unbatched path, with no
    // partition/commit machinery on the hot path.
    batch[0].fn();
    batch[0].fn.reset();
    return;
  }
  // Partition event indices by node tag; within a node, seq order (== batch
  // order) is preserved, so causally dependent same-node events (a delivery
  // followed by the flush it scheduled) run in order on one lane.
  auto& keyed = keyed_;
  keyed.clear();
  keyed.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    keyed.emplace_back(batch[i].node, i);
  }
  std::sort(keyed.begin(), keyed.end());
  auto& groups = groups_;  // [begin, end) runs of one node's events
  groups.clear();
  for (std::size_t i = 0; i < keyed.size();) {
    std::size_t j = i + 1;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
    groups.emplace_back(i, j);
    i = j;
  }

  // Below this many distinct nodes the barrier costs more than the overlap
  // buys: flooding traffic is full of 2-node coincidences (both directions
  // of a link share one delay, so symmetric A<->B exchanges land at the
  // same instant), and dispatching those pairs to the pool made runs
  // slower, not faster.  The threshold only inspects batch composition, so
  // the execution path — and with it the observable behaviour — stays a
  // pure function of the event sequence.
  constexpr std::size_t kMinPoolGroups = 4;
  if (groups.size() < kMinPoolGroups) {
    // Few nodes (or one event): nothing worth overlapping — run serially
    // with immediate side effects, exactly the unbatched path.
    for (Event& ev : batch) {
      ev.fn();
      ev.fn.reset();
    }
    return;
  }

  if (!pool_) pool_ = std::make_unique<runner::WorkerPool>(intra_threads_);
  commit_queues_.resize(batch.size());
  for (auto& q : commit_queues_) q.clear();
  batch_errors_.assign(batch.size(), nullptr);

  // Parallel compute phase: each lane executes whole node groups; callbacks
  // mutate only their node's private state, and every shared side effect
  // they attempt is deferred into the event's commit queue.
  pool_->parallel_for_deterministic(groups.size(), [&](std::size_t g) {
    const auto [begin, end] = groups[g];
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t idx = keyed[k].second;
      t_commit_queue = &commit_queues_[idx];
      try {
        batch[idx].fn();
        batch[idx].fn.reset();
      } catch (...) {
        batch_errors_[idx] = std::current_exception();
        t_commit_queue = nullptr;
        break;  // same-node successors depend on the failed event
      }
      t_commit_queue = nullptr;
    }
  });

  // Ordered commit: replay side effects in event seq order on this thread.
  // A failed event commits the ops it deferred before throwing (matching
  // the serial partial execution) and then rethrows; queues of later events
  // are dropped, as a serial run would never have executed them.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (util::UniqueFunction& op : commit_queues_[i]) {
      op();
      op.reset();
    }
    commit_queues_[i].clear();
    if (batch_errors_[i]) std::rethrow_exception(batch_errors_[i]);
  }
}

std::size_t Simulator::run(std::size_t max_events) {
  if (num_shards_ > 1) {
    return run_sharded(/*bounded=*/false, /*deadline=*/0, max_events);
  }
  std::size_t processed = 0;
  Event ev;
  while (!idle()) {
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run: event budget exhausted");
    }
    if (intra_threads_ > 1) {
      collect_batch(max_events - processed, batch_);
      if (!batch_.empty()) {
        now_ = batch_.front().at;
        execute_batch(batch_);
        processed += batch_.size();
        executed_ += batch_.size();
        batch_.clear();
        continue;
      }
    }
    pop_next(ev);
    now_ = ev.at;
    ev.fn();
    ev.fn.reset();
    ++processed;
    ++executed_;
  }
  assert(burst_.empty() && burst_head_ == 0);  // idle() implies drained burst
  return processed;
}

std::size_t Simulator::run_until(Time deadline, std::size_t max_events) {
  if (num_shards_ > 1) {
    return run_sharded(/*bounded=*/true, deadline, max_events);
  }
  std::size_t processed = 0;
  Event ev;
  while (!idle()) {
    // Burst events are at now_ (<= deadline whenever the loop is entered
    // with now_ <= deadline); heap events gate on the deadline.
    const bool burst_ready = burst_head_ < burst_.size();
    const Time next_at = burst_ready ? now_ : heap_.front().at;
    if (next_at > deadline) break;
    if (processed >= max_events) {
      throw std::runtime_error("Simulator::run_until: event budget exhausted");
    }
    if (intra_threads_ > 1) {
      collect_batch(max_events - processed, batch_);
      if (!batch_.empty()) {
        now_ = batch_.front().at;
        execute_batch(batch_);
        processed += batch_.size();
        executed_ += batch_.size();
        batch_.clear();
        continue;
      }
    }
    pop_next(ev);
    now_ = ev.at;
    ev.fn();
    ev.fn.reset();
    ++processed;
    ++executed_;
  }
  // Deadline exits can only leave heap events (at > deadline) queued: a
  // burst event sits at now_ <= deadline, so the loop drains every burst —
  // including one scheduled by an event executing exactly at the deadline —
  // before now_ may be advanced to the deadline below.  (A burst can remain
  // only if the caller passed a deadline already in the past.)
  assert(burst_head_ >= burst_.size() || deadline < now_);
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace centaur::sim
