// Gao-Rexford routing policies: import/export rules and route ranking.
//
// Centaur (S1) targets "basic routing policies, i.e., route filtering and
// ranking, under standard customer/provider/peering business relationships".
// This module is the single source of truth for those rules; the static
// solver, the BGP baseline, and the Centaur protocol all consult it, which
// is what makes the cross-protocol equivalence property tests meaningful.
//
// Sibling links (a fraction of a percent of real topologies) are treated as
// mutual-customer links: routes cross them freely in either direction and
// sibling-learned routes rank with customer-learned ones.
#pragma once

#include <cstdint>
#include <functional>

#include "topology/types.hpp"

namespace centaur::policy {

using topo::NodeId;
using topo::Path;
using topo::Relationship;

/// Where a route was learned from, which determines both its preference
/// class and to whom it may be re-exported.
enum class RouteSource : std::uint8_t {
  kSelf = 0,      ///< the destination itself (origin route)
  kCustomer = 1,  ///< learned from a customer
  kSibling = 2,   ///< learned from a sibling (ranks with customer)
  kPeer = 3,      ///< learned from a peer
  kProvider = 4,  ///< learned from a provider
};

const char* to_string(RouteSource s);

/// Maps the relationship of the announcing neighbor to a route source.
RouteSource source_from_rel(Relationship rel_of_neighbor);

/// Gao-Rexford preference class: lower is preferred.
/// self(0) < customer/sibling(1) < peer(2) < provider(3).
int preference_class(RouteSource s);

/// Gao-Rexford export rule: may a route learned from `source` be announced
/// to a neighbor whose role (relative to us) is `to_neighbor`?
/// Everything goes to customers and siblings; peers and providers only hear
/// routes we originated or learned from customers/siblings.
bool may_export(RouteSource source, Relationship to_neighbor);

/// A candidate route during best-path selection.
struct Candidate {
  RouteSource source = RouteSource::kProvider;
  std::uint32_t length = 0;     ///< hop count (AS-path length)
  NodeId next_hop = topo::kInvalidNode;
};

/// Standard ranking: preference class, then shortest path, then lowest
/// next-hop id (deterministic tie-break).  Returns true if `a` is strictly
/// preferred over `b`.
bool better(const Candidate& a, const Candidate& b);

/// Per-node policy hook overriding the default ranking.  Returning true
/// means `a` is strictly preferred.  Used by examples reproducing the
/// paper's Figures 2-4, where a node deliberately deviates from
/// shortest-valley-free (e.g. C prefers <C,A,B,D> over <C,D>).
using RankingOverride =
    std::function<bool(const Candidate& a, const Path& path_a,
                       const Candidate& b, const Path& path_b)>;

}  // namespace centaur::policy
