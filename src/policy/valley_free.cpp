#include "policy/valley_free.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace centaur::policy {
namespace {

using topo::AsGraph;
using topo::Neighbor;
using topo::Relationship;
using topo::kInvalidNode;

/// Monotone Dial (bucket) queue for unit-weight multi-source shortest paths
/// with heterogeneous source distances and (length, tie-break key)
/// lexicographic settling.
class BucketQueue {
 public:
  explicit BucketQueue(std::size_t max_len) : buckets_(max_len + 2) {}

  void push(std::uint32_t len, NodeId node) {
    buckets_.at(len).push_back(node);
  }

  /// Visits nodes in non-decreasing length order.  `visit(len, node)` is
  /// called for every pushed entry (caller does stale-checking).
  template <typename Fn>
  void drain(Fn&& visit) {
    for (std::uint32_t len = 0; len < buckets_.size(); ++len) {
      // visit() may push into later buckets; index-based loop stays valid.
      for (std::size_t i = 0; i < buckets_[len].size(); ++i) {
        visit(len, buckets_[len][i]);
      }
    }
  }

 private:
  std::vector<std::vector<NodeId>> buckets_;
};

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

struct Stage {
  std::vector<std::uint32_t> len;
  std::vector<NodeId> next;
  // Tie-break salt; 0 => strict lowest-next-hop mode.
  std::uint64_t tie_salt;

  Stage(std::size_t n, std::uint64_t salt)
      : len(n, kUnreachableLen), next(n, kInvalidNode), tie_salt(salt) {}

  bool set(NodeId v) const { return len[v] != kUnreachableLen; }

  std::uint64_t key(NodeId v, NodeId nh) const {
    if (tie_salt == 0) return nh;
    if (nh == kInvalidNode) return ~0ULL;
    return mix64(tie_salt ^ (std::uint64_t{v} << 32) ^ nh);
  }

  /// Lexicographic improve on (len, tie-break key).  Returns true if updated.
  bool improve(NodeId v, std::uint32_t l, NodeId nh) {
    if (l < len[v] || (l == len[v] && key(v, nh) < key(v, next[v]))) {
      len[v] = l;
      next[v] = nh;
      return true;
    }
    return false;
  }
};

/// The three-stage fixed point (see header): s1 = customer-class routes,
/// s2 = peer-class, s3 = provider-class; each with sibling extensions.
struct Stages {
  Stage s1, s2, s3;
  NodeId dest;

  Stages(std::size_t n, NodeId d, std::uint64_t salt)
      : s1(n, salt), s2(n, salt), s3(n, salt), dest(d) {}

  std::uint32_t selected_len(NodeId v) const {
    if (v == dest) return 0;
    if (s1.set(v)) return s1.len[v];
    if (s2.set(v)) return s2.len[v];
    return s3.len[v];  // may be kUnreachableLen
  }

  /// 1, 2 or 3 for routed nodes; 0 for the destination; -1 unreachable.
  int selected_stage(NodeId v) const {
    if (v == dest) return 0;
    if (s1.set(v)) return 1;
    if (s2.set(v)) return 2;
    if (s3.set(v)) return 3;
    return -1;
  }
};

Stages compute_stages(const AsGraph& g, NodeId dest, std::uint64_t salt) {
  const std::size_t n = g.num_nodes();
  Stages st(n, dest, salt);
  auto link_ok = [&g](const Neighbor& nb) { return g.link_up(nb.link); };

  // ---- Stage 1: descending ("customer-class") routes --------------------
  // Paths matching (down|sibling)*: BFS from dest expanding u -> w where w
  // is u's provider or sibling (so the route hop w->u goes down/sibling).
  Stage& s1 = st.s1;
  s1.len[dest] = 0;
  {
    BucketQueue q(n);
    q.push(0, dest);
    q.drain([&](std::uint32_t len, NodeId u) {
      if (s1.len[u] != len) return;  // stale entry
      for (const Neighbor& nb : g.neighbors(u)) {
        if (!link_ok(nb)) continue;
        if (nb.rel != Relationship::kProvider &&
            nb.rel != Relationship::kSibling) {
          continue;
        }
        const NodeId w = nb.node;
        if (s1.improve(w, len + 1, u) && s1.len[w] == len + 1 &&
            s1.next[w] == u) {
          q.push(len + 1, w);
        }
      }
    });
  }

  // ---- Stage 2: peer routes ----------------------------------------------
  // One peer hop onto a node whose *selected* route is customer-class
  // (exactly "has a stage-1 route", since class 1 dominates), then
  // extension across sibling links between nodes lacking customer routes.
  Stage& s2 = st.s2;
  {
    BucketQueue q(2 * n + 2);
    for (NodeId w = 0; w < n; ++w) {
      if (w == dest || s1.set(w)) continue;  // class 1 dominates
      for (const Neighbor& nb : g.neighbors(w)) {
        if (!link_ok(nb) || nb.rel != Relationship::kPeer) continue;
        if (!s1.set(nb.node)) continue;
        s2.improve(w, s1.len[nb.node] + 1, nb.node);
      }
      if (s2.set(w)) q.push(s2.len[w], w);
    }
    q.drain([&](std::uint32_t len, NodeId u) {
      if (s2.len[u] != len || s1.set(u)) return;
      // u's selected route is this class-2 route; export it to siblings.
      for (const Neighbor& nb : g.neighbors(u)) {
        if (!link_ok(nb) || nb.rel != Relationship::kSibling) continue;
        const NodeId w = nb.node;
        if (w == dest || s1.set(w)) continue;
        if (s2.improve(w, len + 1, u) && s2.len[w] == len + 1 &&
            s2.next[w] == u) {
          q.push(len + 1, w);
        }
      }
    });
  }

  // ---- Stage 3: provider routes ------------------------------------------
  // Every routed node announces its selected route to its customers; a
  // node whose selected route is provider-class additionally shares it with
  // siblings.  Dial's algorithm with heterogeneous source distances.
  Stage& s3 = st.s3;
  {
    BucketQueue q(2 * n + 2);
    for (NodeId v = 0; v < n; ++v) {
      if (v == dest || s1.set(v) || s2.set(v)) {
        q.push(st.selected_len(v), v);
      }
    }
    q.drain([&](std::uint32_t len, NodeId u) {
      const bool settled_non3 = (u == dest) || s1.set(u) || s2.set(u);
      if (settled_non3) {
        if (st.selected_len(u) != len) return;
      } else if (s3.len[u] != len) {
        return;  // stale
      }
      const bool selected_is_class3 = !settled_non3;
      for (const Neighbor& nb : g.neighbors(u)) {
        if (!link_ok(nb)) continue;
        const bool down = nb.rel == Relationship::kCustomer;
        const bool sib = nb.rel == Relationship::kSibling;
        if (!down && !(sib && selected_is_class3)) continue;
        const NodeId w = nb.node;
        if (w == dest || s1.set(w) || s2.set(w)) continue;  // never selected
        if (s3.improve(w, len + 1, u) && s3.len[w] == len + 1 &&
            s3.next[w] == u) {
          q.push(len + 1, w);
        }
      }
    });
  }
  return st;
}

}  // namespace

ValleyFreeRoutes ValleyFreeRoutes::compute(const AsGraph& g, NodeId dest,
                                           TieBreak tie_break,
                                           std::uint64_t tie_seed) {
  const std::size_t n = g.num_nodes();
  if (dest >= n) throw std::invalid_argument("ValleyFreeRoutes: bad dest");
  const std::uint64_t salt =
      tie_break == TieBreak::kLowestNextHop
          ? 0
          : (mix64(tie_seed ^ 0x9e3779b97f4a7c15ULL ^ dest) | 1);
  const Stages st = compute_stages(g, dest, salt);

  ValleyFreeRoutes out(dest, n);
  for (NodeId v = 0; v < n; ++v) {
    RouteEntry& e = out.entries_[v];
    switch (st.selected_stage(v)) {
      case 0:
        e = RouteEntry{kInvalidNode, RouteSource::kSelf, 0};
        break;
      case 1: {
        const Relationship first = g.rel(v, st.s1.next[v]);
        e = RouteEntry{st.s1.next[v],
                       first == Relationship::kSibling
                           ? RouteSource::kSibling
                           : RouteSource::kCustomer,
                       st.s1.len[v]};
        break;
      }
      case 2:
        e = RouteEntry{st.s2.next[v], RouteSource::kPeer, st.s2.len[v]};
        break;
      case 3:
        e = RouteEntry{st.s3.next[v], RouteSource::kProvider, st.s3.len[v]};
        break;
      default:
        break;  // unreachable: default entry
    }
  }
  return out;
}

MultipathRoutes MultipathRoutes::compute(const AsGraph& g, NodeId dest) {
  const std::size_t n = g.num_nodes();
  if (dest >= n) throw std::invalid_argument("MultipathRoutes: bad dest");
  const Stages st = compute_stages(g, dest, /*salt=*/0);

  MultipathRoutes out(dest, n);
  for (NodeId v = 0; v < n; ++v) {
    MultipathEntry& e = out.entries_[v];
    const int stage = st.selected_stage(v);
    if (stage < 0) continue;
    if (stage == 0) {
      e.source = RouteSource::kSelf;
      e.length = 0;
      continue;
    }
    const std::uint32_t len = st.selected_len(v);
    e.length = len;
    e.source = stage == 1   ? RouteSource::kCustomer
               : stage == 2 ? RouteSource::kPeer
                            : RouteSource::kProvider;
    // Enumerate every neighbor that yields a co-optimal route of the
    // selected class — exactly the candidates the stage relaxations allow.
    for (const Neighbor& nb : g.neighbors(v)) {
      if (!g.link_up(nb.link)) continue;
      const NodeId u = nb.node;
      bool ok = false;
      switch (stage) {
        case 1:
          // Hop v->u goes down or across a sibling onto a class-1 chain.
          ok = (nb.rel == Relationship::kCustomer ||
                nb.rel == Relationship::kSibling) &&
               st.s1.set(u) && st.s1.len[u] + 1 == len;
          break;
        case 2:
          // Peer hop onto a customer-class route, or sibling hop onto a
          // node whose own selected route is class 2.
          ok = (nb.rel == Relationship::kPeer && st.s1.set(u) &&
                st.s1.len[u] + 1 == len) ||
               (nb.rel == Relationship::kSibling && u != dest &&
                !st.s1.set(u) && st.s2.set(u) && st.s2.len[u] + 1 == len);
          break;
        case 3:
          // Up onto any routed provider, or sibling hop onto a node whose
          // own selected route is class 3.
          ok = (nb.rel == Relationship::kProvider &&
                st.selected_stage(u) >= 0 && st.selected_len(u) + 1 == len) ||
               (nb.rel == Relationship::kSibling && u != dest &&
                !st.s1.set(u) && !st.s2.set(u) && st.s3.set(u) &&
                st.s3.len[u] + 1 == len);
          break;
        default:
          break;
      }
      if (ok) e.next_hops.push_back(u);
    }
    std::sort(e.next_hops.begin(), e.next_hops.end());
  }
  return out;
}

Path ValleyFreeRoutes::path_from(NodeId src) const {
  Path path;
  if (src >= entries_.size()) return path;
  if (src == dest_) return {dest_};
  if (!entries_[src].reachable()) return path;
  NodeId cur = src;
  path.push_back(cur);
  std::size_t steps = 0;
  while (cur != dest_) {
    cur = entries_[cur].next_hop;
    if (cur == kInvalidNode || ++steps > entries_.size()) {
      // Inconsistent next-hop chain: the source looked reachable but the
      // walk dead-ends or loops.  This happens mid-campaign when the graph
      // is partitioned or rewired under the solver; treat it like an
      // unreachable source instead of aborting the analysis.
      path.clear();
      return path;
    }
    path.push_back(cur);
  }
  return path;
}

std::size_t ValleyFreeRoutes::reachable_count() const {
  std::size_t c = 0;
  for (const RouteEntry& e : entries_) {
    if (e.reachable()) ++c;
  }
  return c;
}

bool is_valley_free(const topo::AsGraph& g, const Path& path) {
  if (path.empty()) return false;
  // Phase 0: still ascending (up hops allowed, one peer hop allowed).
  // Phase 1: descending only.
  int phase = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // A hop between non-adjacent nodes (fabricated by an interception
    // adversary) is never valley-free.
    const std::optional<Relationship> maybe = g.maybe_rel(path[i], path[i + 1]);
    if (!maybe) return false;
    const Relationship rel = *maybe;
    switch (rel) {
      case Relationship::kSibling:
        break;  // transparent
      case Relationship::kProvider:  // up hop
        if (phase != 0) return false;
        break;
      case Relationship::kPeer:
        if (phase != 0) return false;
        phase = 1;
        break;
      case Relationship::kCustomer:  // down hop
        phase = 1;
        break;
    }
  }
  return true;
}

RouteSource classify_path(const topo::AsGraph& g, const Path& path) {
  if (path.empty()) throw std::invalid_argument("classify_path: empty path");
  if (path.size() == 1) return RouteSource::kSelf;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // Paths crossing a fabricated (non-adjacent) hop classify as
    // provider-learned — the least preferred class — so honest nodes that
    // received an intercepted route keep working without aborting.
    const std::optional<Relationship> rel = g.maybe_rel(path[i], path[i + 1]);
    if (!rel) return RouteSource::kProvider;
    if (*rel != Relationship::kSibling) return source_from_rel(*rel);
  }
  return RouteSource::kSibling;
}

}  // namespace centaur::policy
