// Read-only cross-protocol view of a node's selected routes.
//
// Protocol nodes that keep full AS paths (BGP, Centaur) implement this so
// the route audit (src/check) and the blast-radius sweep (src/eval) can walk
// selected routes without depending on concrete node types.  OSPF keeps a
// next-hop LSDB only and does not implement it; auditors skip nodes whose
// dynamic_cast fails.
#pragma once

#include <functional>

#include "topology/types.hpp"

namespace centaur::policy {

class RouteView {
 public:
  virtual ~RouteView() = default;

  /// Invokes `fn(dest, path)` for every currently selected route, in
  /// ascending destination order.  `path` runs self..dest; the self-route is
  /// included.  Must be called from driver/commit context only — the
  /// iteration reads protocol state that handlers mutate.
  virtual void for_each_selected_route(
      const std::function<void(topo::NodeId dest, const topo::Path& path)>&
          fn) const = 0;
};

}  // namespace centaur::policy
