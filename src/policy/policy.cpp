#include "policy/policy.hpp"

namespace centaur::policy {

const char* to_string(RouteSource s) {
  switch (s) {
    case RouteSource::kSelf:
      return "self";
    case RouteSource::kCustomer:
      return "customer";
    case RouteSource::kSibling:
      return "sibling";
    case RouteSource::kPeer:
      return "peer";
    case RouteSource::kProvider:
      return "provider";
  }
  return "?";
}

RouteSource source_from_rel(Relationship rel_of_neighbor) {
  switch (rel_of_neighbor) {
    case Relationship::kCustomer:
      return RouteSource::kCustomer;
    case Relationship::kSibling:
      return RouteSource::kSibling;
    case Relationship::kPeer:
      return RouteSource::kPeer;
    case Relationship::kProvider:
      return RouteSource::kProvider;
  }
  return RouteSource::kProvider;
}

int preference_class(RouteSource s) {
  switch (s) {
    case RouteSource::kSelf:
      return 0;
    case RouteSource::kCustomer:
    case RouteSource::kSibling:
      return 1;
    case RouteSource::kPeer:
      return 2;
    case RouteSource::kProvider:
      return 3;
  }
  return 3;
}

bool may_export(RouteSource source, Relationship to_neighbor) {
  if (to_neighbor == Relationship::kCustomer ||
      to_neighbor == Relationship::kSibling) {
    return true;
  }
  switch (source) {
    case RouteSource::kSelf:
    case RouteSource::kCustomer:
    case RouteSource::kSibling:
      return true;
    case RouteSource::kPeer:
    case RouteSource::kProvider:
      return false;
  }
  return false;
}

bool better(const Candidate& a, const Candidate& b) {
  const int ca = preference_class(a.source);
  const int cb = preference_class(b.source);
  if (ca != cb) return ca < cb;
  if (a.length != b.length) return a.length < b.length;
  return a.next_hop < b.next_hop;
}

}  // namespace centaur::policy
