// Static valley-free best-path solver.
//
// Computes, for one destination, every node's Gao-Rexford best route in
// O(E log V) — the ground truth against which the BGP and Centaur protocol
// implementations are property-tested, and the engine behind the offline
// evaluation pipeline (Tables 4/5, Fig 5).
//
// A valley-free path is up* [peer] down*, where "up" is customer->provider,
// "down" is provider->customer, and sibling hops are transparent.  The
// classic three-stage computation applies:
//   stage 1: descending ("customer") routes, BFS from the destination
//            upwards along provider direction;
//   stage 2: peer routes — one peer hop onto a descending route;
//   stage 3: provider routes — each routed node announces its *selected*
//            route down to its customers (Dijkstra with unit edges and
//            non-uniform source distances).
// Within a class, shorter paths win; ties break to the lowest next-hop id,
// making the selected path set unique and next-hop-consistent (following
// next hops reproduces exactly the selected path).
#pragma once

#include <cstdint>
#include <vector>

#include "policy/policy.hpp"
#include "topology/as_graph.hpp"

namespace centaur::policy {

inline constexpr std::uint32_t kUnreachableLen = ~0u;

/// One node's best route toward the solver's destination.
struct RouteEntry {
  NodeId next_hop = topo::kInvalidNode;  ///< kInvalidNode at dest/unreachable
  RouteSource source = RouteSource::kProvider;
  std::uint32_t length = kUnreachableLen;  ///< hops to destination

  bool reachable() const { return length != kUnreachableLen; }
};

/// How equal-(class, length) candidates are resolved.
///
/// kLowestNextHop is the strict deterministic rule shared with the BGP and
/// Centaur protocol implementations (lowest next-hop id), used for the
/// cross-protocol equivalence properties.  kPerDestRandom breaks each
/// (node, destination) tie by a seeded hash — modelling real BGP's
/// effectively arbitrary per-prefix tie-breakers (route age, IGP cost,
/// router id), which is what gives measured P-graphs their multi-homing
/// (paper Tables 4/5: ~1.5 links per node).  Both modes stay next-hop
/// consistent per destination, so paths remain loop-free and valley-free.
enum class TieBreak { kLowestNextHop, kPerDestRandom };

/// Best valley-free routes of *all* nodes toward one destination.
class ValleyFreeRoutes {
 public:
  /// Runs the three-stage computation over up links of `g`.  `tie_seed`
  /// only matters for TieBreak::kPerDestRandom.
  static ValleyFreeRoutes compute(const topo::AsGraph& g, NodeId dest,
                                  TieBreak tie_break = TieBreak::kLowestNextHop,
                                  std::uint64_t tie_seed = 0);

  NodeId dest() const { return dest_; }
  const RouteEntry& at(NodeId n) const { return entries_.at(n); }
  std::size_t size() const { return entries_.size(); }

  /// The selected path src..dest by following next hops; empty if
  /// unreachable.  For src == dest returns {dest}.
  Path path_from(NodeId src) const;

  /// Number of nodes with a route (including the destination itself).
  std::size_t reachable_count() const;

 private:
  ValleyFreeRoutes(NodeId dest, std::size_t n) : dest_(dest), entries_(n) {}

  NodeId dest_;
  std::vector<RouteEntry> entries_;
};

/// One node's *complete* best-route set toward a destination: every
/// co-optimal next hop under the Gao-Rexford ranking (same preference
/// class, same minimal length).  The union of all maximally-preferred paths
/// is the "complete path set" the paper's static evaluation (S5.2) derives
/// per node; following any sequence of next hops from these sets yields a
/// valid maximally-preferred valley-free path.
struct MultipathEntry {
  RouteSource source = RouteSource::kProvider;
  std::uint32_t length = kUnreachableLen;
  std::vector<NodeId> next_hops;  ///< ascending; empty at dest/unreachable

  bool reachable() const { return length != kUnreachableLen; }
};

/// All-co-optimal-routes variant of ValleyFreeRoutes.
class MultipathRoutes {
 public:
  static MultipathRoutes compute(const topo::AsGraph& g, NodeId dest);

  NodeId dest() const { return dest_; }
  const MultipathEntry& at(NodeId n) const { return entries_.at(n); }
  std::size_t size() const { return entries_.size(); }

 private:
  MultipathRoutes(NodeId dest, std::size_t n) : dest_(dest), entries_(n) {}

  NodeId dest_;
  std::vector<MultipathEntry> entries_;
};

/// True if `path` (source..dest order) is valley-free in `g`.
/// Precondition: consecutive nodes are adjacent.
bool is_valley_free(const topo::AsGraph& g, const Path& path);

/// Classifies a path from its owner's perspective: kSelf for the trivial
/// path, otherwise the relationship of the first non-sibling hop (kSibling
/// if every hop is a sibling hop).  This is the classification BGP, Centaur,
/// and the solver all use for ranking and export decisions, so sibling hops
/// are transparent consistently everywhere.
/// Precondition: path.size() >= 1 and consecutive nodes are adjacent.
RouteSource classify_path(const topo::AsGraph& g, const Path& path);

}  // namespace centaur::policy
