// BGP-style path-vector baseline, with an optional BGP-RCN mode.
//
// A session-level model of eBGP with Gao-Rexford policies, the comparison
// protocol in the paper's Figures 5, 6 and 8.  Each node originates one
// prefix (itself).  UPDATE messages carry a single NLRI — one announcement
// with its full AS path, or one withdrawal — which is the unit the paper's
// message counts use (link-level Centaur updates vs per-destination
// path-vector updates is exactly the asymmetry Figure 5 measures).
//
// Faithfully path-vector: no root-cause information, so after a failure
// nodes explore alternative stale paths (Labovitz et al.'s slow-convergence
// behaviour) until withdrawals propagate.  An optional per-neighbor MRAI
// timer batches updates like real BGP speakers.
//
// Config::root_cause_notification enables a BGP-RCN mode (Pei et al., the
// piggy-backed link-level failure information the paper contrasts Centaur
// with in S1/S7): withdrawals triggered by a link failure carry the failed
// link, and receivers immediately stop using — and stop exploring — any
// RIB path that crosses it.  Routes learned after the failure notice
// supersede it (our stand-in for RCN's per-link sequence numbers).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "policy/policy.hpp"
#include "policy/route_view.hpp"
#include "policy/valley_free.hpp"
#include "sim/network.hpp"

namespace centaur::bgp {

using policy::RankingOverride;
using topo::NodeId;
using topo::Path;

/// An undirected AS adjacency, normalised so a <= b.
struct AsLink {
  NodeId a = topo::kInvalidNode;
  NodeId b = topo::kInvalidNode;

  static AsLink of(NodeId x, NodeId y) {
    return x < y ? AsLink{x, y} : AsLink{y, x};
  }
  auto operator<=>(const AsLink&) const = default;
};

/// True if consecutive nodes of `path` traverse `link` (either direction).
bool path_crosses(const Path& path, const AsLink& link);

/// One UPDATE: announce (dest, path) or withdraw (dest), optionally
/// carrying the root-cause failed link (BGP-RCN mode).
class BgpUpdate : public sim::Message {
 public:
  static BgpUpdate announce(NodeId dest, Path path) {
    return BgpUpdate(dest, std::move(path), false, std::nullopt);
  }
  static BgpUpdate withdraw(NodeId dest,
                            std::optional<AsLink> cause = std::nullopt) {
    return BgpUpdate(dest, {}, true, cause);
  }

  NodeId dest() const { return dest_; }
  bool is_withdraw() const { return withdraw_; }
  /// Announced path, sender..dest order.
  const Path& path() const { return path_; }
  const std::optional<AsLink>& cause() const { return cause_; }

  std::size_t byte_size() const override {
    // 19-byte BGP header + 4 bytes NLRI + 4 bytes per AS-path element
    // (+ 8 bytes root-cause attribute in RCN mode).
    return 23 + 4 * path_.size() + (cause_ ? 8 : 0);
  }
  std::string describe() const override;

 private:
  BgpUpdate(NodeId dest, Path path, bool withdraw, std::optional<AsLink> cause)
      : dest_(dest), path_(std::move(path)), withdraw_(withdraw),
        cause_(cause) {}

  NodeId dest_;
  Path path_;
  bool withdraw_;
  std::optional<AsLink> cause_;
};

class BgpNode : public sim::Node, public policy::RouteView {
 public:
  struct Config {
    bool originate_prefix = true;
    /// When non-zero, only nodes with id < originate_limit originate (see
    /// CentaurNode::Config::originate_limit — the two must match for
    /// cross-protocol comparisons on destination-limited scale runs).
    topo::NodeId originate_limit = 0;
    /// Minimum Route Advertisement Interval per neighbor, seconds.
    /// 0 disables batching (the paper's prototype measures raw convergence
    /// with link delays only).
    sim::Time mrai = 0.0;
    /// BGP-RCN mode: attach root-cause links to failure-triggered
    /// withdrawals and prune RIB paths crossing a notified failed link
    /// (see file header).  Off for the plain path-vector baseline.
    bool root_cause_notification = false;
    /// Optional local ranking override (same semantics as CentaurNode's).
    RankingOverride ranking;
  };

  explicit BgpNode(const topo::AsGraph& graph);
  BgpNode(const topo::AsGraph& graph, Config config);

  void start() override;
  void on_message(NodeId from, const sim::MessagePtr& msg) override;
  void on_link_change(NodeId neighbor, bool up) override;

  // --- adversarial fault hooks (DESIGN.md §15; driver context only) -------
  /// Route leak: while enabled, the Gao-Rexford export filter is bypassed —
  /// every selected route is announced to every neighbor (split horizon
  /// still applies).  Toggling re-sends current state; the Adj-RIB-Out
  /// dedup turns that into exactly the announce/withdraw diff.
  void set_route_leak(bool enabled);
  /// Interception: while enabled, this node claims `victim` as a directly
  /// attached customer destination and announces the fabricated path
  /// {self, victim} (a blackhole; the hop is not a real adjacency).
  void set_intercept(NodeId victim, bool enabled);
  /// Installs (or clears, when null) a runtime ranking override and
  /// re-decides every known destination (the local-pref flip).
  void set_ranking_override(RankingOverride ranking);
  /// Re-decides every known destination and refreshes exports after the
  /// driver rewired a link's business relationship (AsGraph::set_rel).
  void relationships_changed();

  // policy::RouteView (route audit / blast-radius sweeps, driver context).
  void for_each_selected_route(
      const std::function<void(NodeId dest, const Path& path)>& fn)
      const override;

  // --- inspection ---------------------------------------------------------
  /// Selected path self..dest, if any.
  std::optional<Path> selected_path(NodeId dest) const;
  const std::map<NodeId, Path>& loc_rib() const { return loc_rib_; }

 private:
  /// A route in Adj-RIB-In, stamped with its arrival time so RCN can tell
  /// pre-failure state from post-failure re-announcements.
  struct RouteIn {
    Path path;
    sim::Time received = 0;
  };

  void redecide(NodeId dest);
  /// Re-decides every destination known from Loc-RIB or any Adj-RIB-In.
  void redecide_all();
  void export_route(NodeId dest);
  void enqueue_or_send(NodeId neighbor, NodeId dest);
  void arm_mrai(NodeId neighbor);
  void flush_pending(NodeId neighbor);
  void send_current(NodeId neighbor, NodeId dest);
  bool neighbor_usable(NodeId neighbor) const;
  /// True when this node announces its own prefix (originate_prefix gated
  /// by the optional low-id originate_limit).
  bool originates() const {
    return config_.originate_prefix &&
           (config_.originate_limit == 0 || self() < config_.originate_limit);
  }
  /// RCN: is this RIB entry invalidated by a notified link failure?
  bool rcn_invalidated(const RouteIn& route) const;
  /// RCN: record a failure notice and redecide every destination whose
  /// candidate paths cross the link.
  void rcn_record_failure(const AsLink& link);

  const topo::AsGraph& graph_;
  Config config_;
  std::map<NodeId, std::map<NodeId, RouteIn>> rib_in_;  // nbr -> dest -> rte
  std::map<NodeId, std::map<NodeId, Path>> rib_out_;    // nbr -> dest -> path
  std::map<NodeId, Path> loc_rib_;                      // dest -> selected
  std::map<NodeId, bool> session_up_;
  // MRAI state: dests with deferred updates and timer status per neighbor.
  std::map<NodeId, std::set<NodeId>> pending_;
  std::map<NodeId, bool> mrai_armed_;
  // RCN state: most recent failure notice per link, and the cause (if any)
  // of the event currently being processed — withdrawals emitted while
  // handling a caused event inherit it.
  std::map<AsLink, sim::Time> failed_links_;
  std::optional<AsLink> active_cause_;
  // Adversarial state (driver-toggled; see the fault hooks above).
  bool leak_all_ = false;
  std::set<NodeId> intercepted_;  // victim set
};

}  // namespace centaur::bgp
