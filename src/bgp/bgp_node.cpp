#include "bgp/bgp_node.hpp"

#include <algorithm>

namespace centaur::bgp {

using policy::Candidate;
using policy::classify_path;
using policy::may_export;

bool path_crosses(const Path& path, const AsLink& link) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (AsLink::of(path[i], path[i + 1]) == link) return true;
  }
  return false;
}

std::string BgpUpdate::describe() const {
  if (withdraw_) {
    return "bgp-withdraw(dest=" + std::to_string(dest_) +
           (cause_ ? ", cause=" + std::to_string(cause_->a) + "-" +
                         std::to_string(cause_->b)
                   : "") +
           ")";
  }
  return "bgp-announce(dest=" + std::to_string(dest_) +
         ", len=" + std::to_string(path_.size() - 1) + ")";
}

BgpNode::BgpNode(const topo::AsGraph& graph) : BgpNode(graph, Config()) {}

BgpNode::BgpNode(const topo::AsGraph& graph, Config config)
    : graph_(graph), config_(std::move(config)) {}

bool BgpNode::neighbor_usable(NodeId neighbor) const {
  const auto it = session_up_.find(neighbor);
  return it != session_up_.end() && it->second;
}

void BgpNode::start() {
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    session_up_[nb.node] = graph_.link_up(nb.link);
  }
  if (originates()) {
    loc_rib_[self()] = Path{self()};
    export_route(self());
  }
}

void BgpNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  const auto* update = dynamic_cast<const BgpUpdate*>(msg.get());
  if (update == nullptr || !neighbor_usable(from)) return;

  const NodeId dest = update->dest();
  auto& from_rib = rib_in_[from];
  if (update->is_withdraw()) {
    const bool had = from_rib.erase(dest) > 0;
    if (config_.root_cause_notification && update->cause()) {
      // The root cause invalidates every RIB path crossing the link, not
      // just this destination — that is exactly the path-exploration
      // suppression RCN buys.
      active_cause_ = update->cause();
      rcn_record_failure(*update->cause());
      if (had) redecide(dest);
      active_cause_.reset();
      return;
    }
    if (!had) return;
  } else {
    const Path& p = update->path();
    // Sanity: the announced path must run from..dest.
    if (p.empty() || p.front() != from || p.back() != dest) return;
    // AS-path loop detection: a path already containing us is unusable and
    // replaces (poisons) any previous route from this neighbor.
    if (std::find(p.begin(), p.end(), self()) != p.end()) {
      if (from_rib.erase(dest) == 0) return;
    } else {
      const RouteIn route{p, net().simulator().now()};
      auto [it, inserted] = from_rib.try_emplace(dest, route);
      if (!inserted) {
        if (it->second.path == p) return;  // duplicate
        it->second = route;
      }
    }
  }
  redecide(dest);
}

bool BgpNode::rcn_invalidated(const RouteIn& route) const {
  if (!config_.root_cause_notification || failed_links_.empty()) return false;
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    const auto it =
        failed_links_.find(AsLink::of(route.path[i], route.path[i + 1]));
    // A route learned after the failure notice supersedes it (stand-in for
    // RCN's per-link sequence numbers).
    if (it != failed_links_.end() && route.received <= it->second) {
      return true;
    }
  }
  return false;
}

void BgpNode::rcn_record_failure(const AsLink& link) {
  failed_links_[link] = net().simulator().now();
  std::set<NodeId> affected;
  for (const auto& [nbr, rib] : rib_in_) {
    for (const auto& [dest, route] : rib) {
      if (path_crosses(route.path, link)) affected.insert(dest);
    }
  }
  for (const NodeId dest : affected) redecide(dest);
}

void BgpNode::on_link_change(NodeId neighbor, bool up) {
  session_up_[neighbor] = up;
  if (!up) {
    std::set<NodeId> affected;
    const auto rit = rib_in_.find(neighbor);
    if (rit != rib_in_.end()) {
      for (const auto& [dest, route] : rit->second) affected.insert(dest);
      rib_in_.erase(rit);
    }
    rib_out_.erase(neighbor);
    pending_.erase(neighbor);
    if (config_.root_cause_notification) {
      // We are an endpoint of the failed link: originate the root cause.
      active_cause_ = AsLink::of(self(), neighbor);
      rcn_record_failure(*active_cause_);
      for (NodeId dest : affected) redecide(dest);
      active_cause_.reset();
      return;
    }
    for (NodeId dest : affected) redecide(dest);
    return;
  }
  // Session (re)establishment: full table exchange toward the neighbor.
  rib_out_[neighbor].clear();
  for (const auto& [dest, path] : loc_rib_) {
    enqueue_or_send(neighbor, dest);
  }
}

void BgpNode::redecide(NodeId dest) {
  std::optional<Path> best_path;
  Candidate best{};
  if (intercepted_.count(dest) > 0) {
    // Interception pins a fabricated customer route to the victim; it never
    // goes through classification (the hop is not an adjacency) and
    // outranks every real candidate, so the RIB scan is skipped.
    best_path = Path{self(), dest};
    best = Candidate{policy::RouteSource::kCustomer, 1, topo::kInvalidNode};
    const auto cur = loc_rib_.find(dest);
    if (cur != loc_rib_.end() && cur->second == *best_path) return;
    loc_rib_[dest] = std::move(*best_path);
    export_route(dest);
    return;
  }
  if (dest == self() && originates()) {
    best_path = Path{self()};
    best = Candidate{policy::RouteSource::kSelf, 0, topo::kInvalidNode};
  }
  for (const auto& [nbr, rib] : rib_in_) {
    if (!neighbor_usable(nbr)) continue;
    const auto it = rib.find(dest);
    if (it == rib.end()) continue;
    if (rcn_invalidated(it->second)) continue;
    Path full;
    full.reserve(it->second.path.size() + 1);
    full.push_back(self());
    full.insert(full.end(), it->second.path.begin(), it->second.path.end());
    const Candidate cand{classify_path(graph_, full),
                         static_cast<std::uint32_t>(full.size() - 1), nbr};
    bool adopt;
    if (!best_path) {
      adopt = true;
    } else if (config_.ranking) {
      if (config_.ranking(cand, full, best, *best_path)) {
        adopt = true;
      } else if (config_.ranking(best, *best_path, cand, full)) {
        adopt = false;
      } else {
        adopt = policy::better(cand, best);
      }
    } else {
      adopt = policy::better(cand, best);
    }
    if (adopt) {
      best = cand;
      best_path = std::move(full);
    }
  }

  const auto cur = loc_rib_.find(dest);
  const bool had = cur != loc_rib_.end();
  if (best_path) {
    if (had && cur->second == *best_path) return;  // no change
    loc_rib_[dest] = std::move(*best_path);
  } else {
    if (!had) return;
    loc_rib_.erase(cur);
  }
  export_route(dest);
}

void BgpNode::export_route(NodeId dest) {
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    if (!neighbor_usable(nb.node)) continue;
    enqueue_or_send(nb.node, dest);
  }
}

void BgpNode::enqueue_or_send(NodeId neighbor, NodeId dest) {
  if (config_.mrai <= 0) {
    send_current(neighbor, dest);
    return;
  }
  pending_[neighbor].insert(dest);
  if (!mrai_armed_[neighbor]) {
    // First change: send immediately, then hold further updates for mrai.
    flush_pending(neighbor);
    arm_mrai(neighbor);
  }
}

void BgpNode::arm_mrai(NodeId neighbor) {
  mrai_armed_[neighbor] = true;
  // Tagged with self(): the timer only touches this node's MRAI state (its
  // sends defer through the network when the batch executor is parallel).
  net().simulator().schedule_tagged(config_.mrai, self(), [this, neighbor] {
    mrai_armed_[neighbor] = false;
    if (!pending_[neighbor].empty() && neighbor_usable(neighbor)) {
      flush_pending(neighbor);
      arm_mrai(neighbor);
    }
  });
}

void BgpNode::flush_pending(NodeId neighbor) {
  auto& dests = pending_[neighbor];
  for (NodeId dest : dests) send_current(neighbor, dest);
  dests.clear();
}

void BgpNode::send_current(NodeId neighbor, NodeId dest) {
  auto& out = rib_out_[neighbor];
  const auto it = loc_rib_.find(dest);
  bool allowed = it != loc_rib_.end();
  if (allowed) {
    const Path& path = it->second;
    const NodeId next_hop = path.size() > 1 ? path[1] : topo::kInvalidNode;
    // A leaking node bypasses the export rule wholesale; an intercepted
    // destination is announced everywhere (and never classified — its
    // first hop is fabricated).  Split horizon applies regardless.
    allowed = next_hop != neighbor &&
              (leak_all_ || intercepted_.count(dest) > 0 ||
               may_export(classify_path(graph_, path),
                          graph_.rel(self(), neighbor)));
  }
  const auto oit = out.find(dest);
  if (allowed) {
    if (oit != out.end() && oit->second == it->second) return;  // duplicate
    out[dest] = it->second;
    net().send(self(), neighbor,
               std::make_shared<BgpUpdate>(BgpUpdate::announce(dest, it->second)));
  } else {
    if (oit == out.end()) return;  // never announced; nothing to withdraw
    out.erase(oit);
    net().send(self(), neighbor,
               std::make_shared<BgpUpdate>(BgpUpdate::withdraw(
                   dest, config_.root_cause_notification
                             ? active_cause_
                             : std::nullopt)));
  }
}

// ------------------------------------------------- adversarial fault hooks --

void BgpNode::set_route_leak(bool enabled) {
  if (leak_all_ == enabled) return;
  leak_all_ = enabled;
  for (const auto& [dest, path] : loc_rib_) export_route(dest);
}

void BgpNode::set_intercept(NodeId victim, bool enabled) {
  if (enabled == (intercepted_.count(victim) > 0)) return;
  if (enabled) {
    intercepted_.insert(victim);
  } else {
    intercepted_.erase(victim);
  }
  redecide(victim);
}

void BgpNode::set_ranking_override(RankingOverride ranking) {
  config_.ranking = std::move(ranking);
  redecide_all();
}

void BgpNode::relationships_changed() {
  redecide_all();
  // Export permissions depend on relationships too: refresh the Adj-RIB-Out
  // even for destinations whose selection did not change (send_current
  // dedups, so this emits exactly the announce/withdraw diff).
  for (const auto& [dest, path] : loc_rib_) export_route(dest);
}

void BgpNode::redecide_all() {
  std::set<NodeId> dests;
  for (const auto& [dest, path] : loc_rib_) dests.insert(dest);
  for (const auto& [nbr, rib] : rib_in_) {
    for (const auto& [dest, route] : rib) dests.insert(dest);
  }
  for (const NodeId dest : dests) redecide(dest);
}

void BgpNode::for_each_selected_route(
    const std::function<void(NodeId dest, const Path& path)>& fn) const {
  for (const auto& [dest, path] : loc_rib_) fn(dest, path);
}

std::optional<Path> BgpNode::selected_path(NodeId dest) const {
  const auto it = loc_rib_.find(dest);
  if (it == loc_rib_.end()) return std::nullopt;
  return it->second;
}

}  // namespace centaur::bgp
