// OSPF-style link-state baseline.
//
// The paper's Figure 7 compares Centaur's convergence load against OSPF:
// a traditional link-state protocol with reliable flooding and Dijkstra
// SPF, and *no* policy support — every link-state change is flooded over
// every link in the network.  This model keeps the parts that determine
// message counts and convergence: sequence-numbered LSAs, flood-on-newer,
// database exchange on adjacency (re)establishment, and SPF over the LSDB.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace centaur::linkstate {

using topo::NodeId;
using topo::Path;

/// Link State Advertisement: one router's current adjacency list.
struct Lsa {
  NodeId origin = topo::kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<NodeId> up_neighbors;  // ascending
};

class LsaMessage : public sim::Message {
 public:
  explicit LsaMessage(Lsa lsa) : lsa_(std::move(lsa)) {}
  const Lsa& lsa() const { return lsa_; }
  std::size_t byte_size() const override {
    return 24 + 4 * lsa_.up_neighbors.size();
  }
  std::string describe() const override {
    return "lsa(origin=" + std::to_string(lsa_.origin) +
           ", seq=" + std::to_string(lsa_.seq) + ")";
  }

 private:
  Lsa lsa_;
};

class OspfNode : public sim::Node {
 public:
  explicit OspfNode(const topo::AsGraph& graph) : graph_(graph) {}

  void start() override;
  void on_message(NodeId from, const sim::MessagePtr& msg) override;
  void on_link_change(NodeId neighbor, bool up) override;

  // --- inspection ---------------------------------------------------------
  const std::map<NodeId, Lsa>& lsdb() const { return lsdb_; }

  /// Dijkstra over the LSDB (a link counts when both endpoints advertise
  /// each other).  Returns hop distances and next hops; unreachable nodes
  /// get distance kUnreachable.
  struct SpfResult {
    std::vector<std::size_t> distance;
    std::vector<NodeId> next_hop;
  };
  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
  SpfResult spf() const;

  /// Path self..dest from the current SPF, empty if unreachable.
  Path shortest_path(NodeId dest) const;

 private:
  void originate();
  void flood(const Lsa& lsa, NodeId except);

  const topo::AsGraph& graph_;
  std::map<NodeId, Lsa> lsdb_;
  std::uint64_t own_seq_ = 0;
};

}  // namespace centaur::linkstate
