#include "linkstate/ospf_node.hpp"

#include <algorithm>
#include <deque>

namespace centaur::linkstate {

void OspfNode::start() { originate(); }

void OspfNode::originate() {
  Lsa lsa;
  lsa.origin = self();
  lsa.seq = ++own_seq_;
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    if (graph_.link_up(nb.link)) lsa.up_neighbors.push_back(nb.node);
  }
  std::sort(lsa.up_neighbors.begin(), lsa.up_neighbors.end());
  lsdb_[self()] = lsa;
  flood(lsa, topo::kInvalidNode);
}

void OspfNode::flood(const Lsa& lsa, NodeId except) {
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    if (nb.node == except || !graph_.link_up(nb.link)) continue;
    net().send(self(), nb.node, std::make_shared<LsaMessage>(lsa));
  }
}

void OspfNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  const auto* m = dynamic_cast<const LsaMessage*>(msg.get());
  if (m == nullptr) return;
  const Lsa& lsa = m->lsa();
  const auto it = lsdb_.find(lsa.origin);
  if (it != lsdb_.end() && it->second.seq >= lsa.seq) return;  // stale
  lsdb_[lsa.origin] = lsa;
  flood(lsa, from);
}

void OspfNode::on_link_change(NodeId neighbor, bool up) {
  // Re-originate our own LSA with the new adjacency set.
  originate();
  if (up) {
    // Database exchange with the new adjacency: push our whole LSDB.
    for (const auto& [origin, lsa] : lsdb_) {
      if (origin == self()) continue;  // already flooded by originate()
      net().send(self(), neighbor, std::make_shared<LsaMessage>(lsa));
    }
  }
}

OspfNode::SpfResult OspfNode::spf() const {
  const std::size_t n = graph_.num_nodes();
  SpfResult r;
  r.distance.assign(n, kUnreachable);
  r.next_hop.assign(n, topo::kInvalidNode);

  auto adjacent = [this](NodeId a, NodeId b) {
    const auto ia = lsdb_.find(a);
    const auto ib = lsdb_.find(b);
    if (ia == lsdb_.end() || ib == lsdb_.end()) return false;
    const auto& an = ia->second.up_neighbors;
    const auto& bn = ib->second.up_neighbors;
    return std::binary_search(an.begin(), an.end(), b) &&
           std::binary_search(bn.begin(), bn.end(), a);
  };

  std::deque<NodeId> queue;
  r.distance[self()] = 0;
  queue.push_back(self());
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const auto it = lsdb_.find(v);
    if (it == lsdb_.end()) continue;
    for (NodeId w : it->second.up_neighbors) {
      if (w >= n || !adjacent(v, w)) continue;
      const std::size_t cand = r.distance[v] + 1;
      const NodeId cand_next = v == self() ? w : r.next_hop[v];
      if (cand < r.distance[w]) {
        if (r.distance[w] == kUnreachable) queue.push_back(w);
        r.distance[w] = cand;
        r.next_hop[w] = cand_next;
      } else if (cand == r.distance[w] && cand_next < r.next_hop[w]) {
        r.next_hop[w] = cand_next;  // deterministic equal-cost tie-break
      }
    }
  }
  return r;
}

Path OspfNode::shortest_path(NodeId dest) const {
  const SpfResult r = spf();
  if (dest >= r.distance.size() || r.distance[dest] == kUnreachable) return {};
  // Rebuild by walking distances backwards from dest toward self.
  Path reversed{dest};
  NodeId cur = dest;
  while (cur != self()) {
    const auto it = lsdb_.find(cur);
    if (it == lsdb_.end()) return {};
    NodeId best = topo::kInvalidNode;
    for (NodeId w : it->second.up_neighbors) {
      if (w < r.distance.size() && r.distance[w] + 1 == r.distance[cur] &&
          (best == topo::kInvalidNode || w < best)) {
        best = w;
      }
    }
    if (best == topo::kInvalidNode) return {};
    reversed.push_back(best);
    cur = best;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

}  // namespace centaur::linkstate
