#include "centaur/permission_list.hpp"

#include <algorithm>

namespace centaur::core {

std::size_t PermissionList::remove_dest(NodeId dest) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    if (pair_dest(pairs_[i]) != dest) pairs_[kept++] = pairs_[i];
  }
  const std::size_t removed = pairs_.size() - kept;
  while (pairs_.size() > kept) pairs_.pop_back();
  return removed;
}

std::size_t PermissionList::entry_count() const {
  std::size_t groups = 0;
  NodeId prev = kNoNextHop;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const NodeId next = pair_next(pairs_[i]);
    if (i == 0 || next != prev) ++groups;
    prev = next;
  }
  return groups;
}

std::vector<PermissionList::Entry> PermissionList::entries() const {
  std::vector<Entry> out;
  for (const std::uint64_t pair : pairs_) {
    const NodeId next = pair_next(pair);
    if (out.empty() || out.back().next_hop != next) {
      out.push_back(Entry{next, {}});
    }
    out.back().dests.push_back(pair_dest(pair));
  }
  return out;
}

PermissionList PermissionList::filtered(
    const std::function<bool(NodeId dest)>& keep_dest) const {
  PermissionList out;
  for (const std::uint64_t pair : pairs_) {
    if (keep_dest(pair_dest(pair))) out.pairs_.push_back(pair);
  }
  return out;
}

std::size_t PermissionList::byte_size(bool bloom_compressed) const {
  std::size_t bytes = 0;
  std::size_t i = 0;
  while (i < pairs_.size()) {
    const NodeId next = pair_next(pairs_[i]);
    std::size_t dests = 0;
    while (i < pairs_.size() && pair_next(pairs_[i]) == next) {
      ++dests;
      ++i;
    }
    bytes += 4;  // next-hop id
    if (bloom_compressed) {
      const util::BloomFilter f(dests, 0.01);
      bytes += f.byte_size();
    } else {
      bytes += 4 * dests;
    }
  }
  return bytes;
}

util::BloomFilter PermissionList::compress_dests(
    const std::vector<NodeId>& dests, double fp_rate) {
  util::BloomFilter f(dests.size(), fp_rate);
  for (NodeId d : dests) f.insert(d);
  return f;
}

void ExhaustivePermissionList::add(const Path& path) { paths_.insert(path); }

bool ExhaustivePermissionList::permits(const Path& path) const {
  return paths_.count(path) > 0;
}

std::size_t ExhaustivePermissionList::byte_size() const {
  std::size_t bytes = 0;
  for (const Path& p : paths_) bytes += 4 * p.size() + 2;  // ids + length tag
  return bytes;
}

}  // namespace centaur::core
