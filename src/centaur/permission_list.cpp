#include "centaur/permission_list.hpp"

#include <algorithm>

namespace centaur::core {

void PermissionList::add(NodeId dest, NodeId next_hop) {
  by_next_[next_hop].insert(dest);
}

bool PermissionList::remove(NodeId dest, NodeId next_hop) {
  const auto it = by_next_.find(next_hop);
  if (it == by_next_.end()) return false;
  const bool erased = it->second.erase(dest) > 0;
  if (it->second.empty()) by_next_.erase(it);
  return erased;
}

std::size_t PermissionList::remove_dest(NodeId dest) {
  std::size_t removed = 0;
  for (auto it = by_next_.begin(); it != by_next_.end();) {
    removed += it->second.erase(dest);
    if (it->second.empty()) {
      it = by_next_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

bool PermissionList::permits(NodeId dest, NodeId next_hop) const {
  const auto it = by_next_.find(next_hop);
  return it != by_next_.end() && it->second.count(dest) > 0;
}

std::size_t PermissionList::dest_count() const {
  std::size_t c = 0;
  for (const auto& [next, dests] : by_next_) c += dests.size();
  return c;
}

std::vector<PermissionList::Entry> PermissionList::entries() const {
  std::vector<Entry> out;
  out.reserve(by_next_.size());
  for (const auto& [next, dests] : by_next_) {
    out.push_back(Entry{next, std::vector<NodeId>(dests.begin(), dests.end())});
  }
  return out;
}

PermissionList PermissionList::filtered(
    const std::function<bool(NodeId dest)>& keep_dest) const {
  PermissionList out;
  for (const auto& [next, dests] : by_next_) {
    for (NodeId d : dests) {
      if (keep_dest(d)) out.by_next_[next].insert(d);
    }
  }
  return out;
}

std::size_t PermissionList::byte_size(bool bloom_compressed) const {
  std::size_t bytes = 0;
  for (const auto& [next, dests] : by_next_) {
    bytes += 4;  // next-hop id
    if (bloom_compressed) {
      const util::BloomFilter f(dests.size(), 0.01);
      bytes += f.byte_size();
    } else {
      bytes += 4 * dests.size();
    }
  }
  return bytes;
}

util::BloomFilter PermissionList::compress_dests(
    const std::vector<NodeId>& dests, double fp_rate) {
  util::BloomFilter f(dests.size(), fp_rate);
  for (NodeId d : dests) f.insert(d);
  return f;
}

void ExhaustivePermissionList::add(const Path& path) { paths_.insert(path); }

bool ExhaustivePermissionList::permits(const Path& path) const {
  return paths_.count(path) > 0;
}

std::size_t ExhaustivePermissionList::byte_size() const {
  std::size_t bytes = 0;
  for (const Path& p : paths_) bytes += 4 * p.size() + 2;  // ids + length tag
  return bytes;
}

}  // namespace centaur::core
