// P-graph (policy graph) — Centaur's network data model (paper S3.2.2).
//
// A P-graph is a directed graph of downstream links rooted at its creator.
// Each node stores one P-graph per neighbor (assembled from that neighbor's
// downstream-link announcements) plus its own local P-graph built from its
// selected path set.  Links whose head is multi-homed carry Permission
// Lists; destination nodes are explicitly marked (prefixes in practice).
//
// The two operations the paper defines are provided here and in
// build_graph.hpp:
//   * DerivePath (Table 1) — backtrack from a destination to the root under
//     Permission-List restrictions; yields the unique policy-compliant path.
//   * BuildGraph (Table 2) — construct a local P-graph (links, counters,
//     Permission Lists) from a selected path set.
//
// Storage (DESIGN.md §5): links live in a flat open-addressing table keyed
// by the packed 64-bit DirectedLink; adjacency lists are small-vectors
// inside flat maps keyed by NodeId.  Hot call sites should prefer the
// combined accessors (find_link_data, ensure_link) over has_link +
// link_data pairs — one probe instead of two.
//
// Note on pseudocode fidelity: Table 1 writes Permit(D, currentNode); the
// Permission-List definition in S4.1 keys entries by the *next hop of the
// multi-homed node on the permitted path*, which during backtracking is the
// node we arrived from (kNoNextHop when the multi-homed node is the
// destination itself).  derive_path implements that definition.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "centaur/permission_list.hpp"
#include "topology/types.hpp"
#include "util/flat_map.hpp"
#include "util/node_map.hpp"
#include "util/small_vec.hpp"

namespace centaur::core {

/// Directed link identifier within a P-graph.
struct DirectedLink {
  NodeId from = topo::kInvalidNode;
  NodeId to = topo::kInvalidNode;

  auto operator<=>(const DirectedLink&) const = default;
};

/// Packs a directed link into the 64-bit key the flat link table uses.
/// kInvalidNode->kInvalidNode packs to the reserved empty sentinel, which is
/// fine: self-loops are rejected at insertion.
constexpr std::uint64_t pack_link(NodeId from, NodeId to) {
  return (std::uint64_t{from} << 32) | std::uint64_t{to};
}

constexpr DirectedLink unpack_link(std::uint64_t key) {
  return DirectedLink{static_cast<NodeId>(key >> 32),
                      static_cast<NodeId>(key & 0xFFFFFFFFULL)};
}

struct DirectedLinkHash {
  std::size_t operator()(const DirectedLink& l) const {
    std::uint64_t x = pack_link(l.from, l.to);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return static_cast<std::size_t>(x);
  }
};

/// Per-link P-graph payload.
struct LinkData {
  /// Permission entries for paths through this link.  Kept for every link
  /// (BuildGraph records them as paths are inserted); they are *active* —
  /// i.e. consulted by DerivePath and included in announcements — only
  /// while the link head is multi-homed, per S4.1/S4.3.2.
  PermissionList plist;
  /// Number of selected paths traversing this link (paper S4.3.2: the link
  /// is withdrawn when this drops to zero).
  std::uint32_t counter = 0;
};

class PGraph {
 public:
  /// Adjacency list: sorted ascending, inline up to 4 entries (the common
  /// case — most P-graph nodes have a single parent).
  using AdjList = util::SmallVec<NodeId, 4>;
  /// Adjacency storage: dual-mode NodeMap.  Below util::kNodeMapDenseLimit
  /// it is the direct-indexed array the hot paths want (DerivePath does one
  /// parents() lookup per hop; an array index beats a hash probe on that
  /// path by ~3x).  At 100k+ ids it switches to a content-sized map — each
  /// node keeps one P-graph per neighbor, and an O(max-id) array per graph
  /// is what made such topologies infeasible.  An absent or empty slot
  /// means "no neighbors".
  using AdjVec = util::NodeMap<AdjList>;

  /// Flat link storage; iteration yields { DirectedLink-packed key, data }
  /// items via LinkView below.
  using LinkMap = util::FlatMap<std::uint64_t, LinkData>;

  /// Read-only iteration adapter over the link table that presents packed
  /// keys as DirectedLink, so `for (const auto& [link, data] : g.links())`
  /// keeps working.
  class LinkView {
   public:
    struct Item {
      DirectedLink first;
      const LinkData& second;
    };
    class const_iterator {
     public:
      explicit const_iterator(LinkMap::const_iterator it) : it_(it) {}
      Item operator*() const {
        const auto item = *it_;
        return Item{unpack_link(item.first), item.second};
      }
      const_iterator& operator++() {
        ++it_;
        return *this;
      }
      bool operator==(const const_iterator& o) const { return it_ == o.it_; }
      bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

     private:
      LinkMap::const_iterator it_;
    };
    explicit LinkView(const LinkMap& map) : map_(&map) {}
    const_iterator begin() const { return const_iterator(map_->begin()); }
    const_iterator end() const { return const_iterator(map_->end()); }
    std::size_t size() const { return map_->size(); }

   private:
    const LinkMap* map_;
  };

  PGraph() = default;
  explicit PGraph(NodeId root) : root_(root) {}

  NodeId root() const { return root_; }
  void reset(NodeId root);

  /// Pre-sizes the link and adjacency tables for a graph of roughly
  /// `links` links over `nodes` nodes, so assembly (cold start, session
  /// resets) does not pay a rehash cascade while the tables grow.
  void reserve(std::size_t nodes, std::size_t links) {
    links_.reserve(links);
    parents_.reserve_ids(nodes);
    children_.reserve_ids(nodes);
  }

  // --- structure ---------------------------------------------------------

  /// Inserts from->to.  Returns true if the link was new.
  bool add_link(NodeId from, NodeId to) {
    bool added = false;
    ensure_link(from, to, added);
    return added;
  }

  /// Inserts from->to if absent and returns its payload in either case —
  /// the single-probe fusion of add_link + link_data.  `added` reports
  /// whether the link was new.
  LinkData& ensure_link(NodeId from, NodeId to, bool& added);

  /// Removes from->to and its payload.  Returns true if present.
  bool remove_link(NodeId from, NodeId to);

  bool has_link(NodeId from, NodeId to) const {
    return links_.count(pack_link(from, to)) > 0;
  }

  std::size_t num_links() const { return links_.size(); }

  std::size_t in_degree(NodeId n) const {
    const AdjList* p = parents_.find(n);
    return p != nullptr ? p->size() : 0;
  }

  /// "Multi-homed": more than one parent in this P-graph (S3.2.4).
  bool multi_homed(NodeId n) const { return in_degree(n) > 1; }

  /// Parents of `n` in ascending order (empty if none).
  const AdjList& parents(NodeId n) const;

  /// Children of `n` in ascending order (empty if none).
  const AdjList& children(NodeId n) const;

  /// True if `n` is the root or appears as an endpoint of some link.
  bool contains(NodeId n) const {
    if (n == root_) return true;
    const AdjList* p = parents_.find(n);
    if (p != nullptr && !p->empty()) return true;
    const AdjList* c = children_.find(n);
    return c != nullptr && !c->empty();
  }

  // --- destinations -------------------------------------------------------

  /// Destination marks, sorted ascending (iteration order matches the former
  /// std::set storage).
  using DestList = util::SmallVec<NodeId, 8>;

  void mark_destination(NodeId d) { util::sorted_insert(destinations_, d); }
  bool unmark_destination(NodeId d) {
    return util::sorted_erase(destinations_, d);
  }
  bool is_destination(NodeId d) const {
    return util::sorted_contains(destinations_, d);
  }
  const DestList& destinations() const { return destinations_; }

  // --- per-link payload ----------------------------------------------------

  /// Payload pointer, or nullptr when the link is absent — the single-probe
  /// replacement for has_link + link_data call pairs.
  LinkData* find_link_data(NodeId from, NodeId to) {
    return links_.find(pack_link(from, to));
  }
  const LinkData* find_link_data(NodeId from, NodeId to) const {
    return links_.find(pack_link(from, to));
  }

  /// Payload accessors; the link must exist (throws std::out_of_range).
  LinkData& link_data(NodeId from, NodeId to);
  const LinkData& link_data(NodeId from, NodeId to) const;

  /// A link's Permission List is active iff its head is multi-homed.
  bool plist_active(NodeId from, NodeId to) const {
    if (!multi_homed(to)) return false;
    const LinkData* data = find_link_data(from, to);
    return data != nullptr && !data->plist.empty();
  }

  /// Number of links with an active Permission List (Table 4 metric).
  std::size_t active_plist_count() const;

  // --- DerivePath (Table 1) -------------------------------------------------

  /// DEPRECATED (kept as a thin wrapper so existing callers and the seed
  /// tests compile unchanged): prefer `core::query_path` in
  /// centaur/query.hpp — the consolidated PathQuery/PathResult surface.
  /// See DESIGN.md §14.3 for the migration guide.
  ///
  /// Derives the unique policy-compliant path root..dest, or nullopt if no
  /// permitted parent chain reaches the root.  For dest == root returns
  /// {root} (the unified self-destination contract shared by every query
  /// entry point).  Throws std::logic_error if the backtrace cycles
  /// (corrupt graph).
  ///
  /// If `visited` is non-null it receives every node the backtracking walk
  /// examined (including `dest` and, on failure, the blocking node).  The
  /// walk's outcome is a pure function of the in-links of these nodes, so
  /// callers can use the set for precise invalidation: a graph change that
  /// touches none of them cannot change this derivation.
  std::optional<Path> derive_path(NodeId dest,
                                  std::vector<NodeId>* visited = nullptr) const;

  /// DEPRECATED (thin wrapper, same contract as derive_path): prefer
  /// `core::query_path_into` in centaur/query.hpp.
  ///
  /// Allocation-free derive_path: writes the path into `out` (reusing its
  /// capacity) and returns true, or returns false leaving `out` empty.
  /// Refresh loops call this once per dirty destination, so the fresh-Path
  /// allocation of the optional-returning form is the dominant cost there.
  bool derive_path_into(NodeId dest, Path& out,
                        std::vector<NodeId>* visited = nullptr) const;

  // --- iteration -----------------------------------------------------------

  /// All links with their payloads (unordered; sort keys if a canonical
  /// order is needed).
  LinkView links() const { return LinkView(links_); }

  /// Whole adjacency storage, keyed by NodeId, values sorted ascending;
  /// absent/empty slots are nodes with no neighbors on that side (iterate
  /// with AdjVec::for_each — ascending id order in both NodeMap modes).
  /// Exposed for the invariant checker (src/check), which cross-validates
  /// them against links(); protocol code should use parents()/children().
  const AdjVec& parent_map() const { return parents_; }
  const AdjVec& child_map() const { return children_; }

  /// Equality of structure, destination marks, and Permission Lists
  /// (counters are local bookkeeping and excluded).
  bool operator==(const PGraph& other) const;

 private:
  // Test-only backdoor (tests/invariants_test.cpp) that seeds the structural
  // corruption the public API refuses to produce, so the invariant checker
  // can be exercised against broken graphs.
  friend struct PGraphCorruptor;

  NodeId root_ = topo::kInvalidNode;
  LinkMap links_;
  AdjVec parents_;   // sorted values, keyed by NodeId
  AdjVec children_;  // sorted values, keyed by NodeId
  DestList destinations_;  // sorted ascending
};

namespace pgraph_detail {
/// Shared empty adjacency list for absent nodes.  A namespace-scope inline
/// variable avoids the per-call thread-safe-init guard a function-local
/// static would re-check on every parents()/children() miss.
inline const PGraph::AdjList kEmptyAdjList{};
[[noreturn]] void throw_missing_link(NodeId from, NodeId to);
}  // namespace pgraph_detail

// Hot-path accessors are defined here (not in pgraph.cpp) so the builds
// without LTO can still inline them into DerivePath/BuildGraph loops.
inline const PGraph::AdjList& PGraph::parents(NodeId n) const {
  const AdjList* p = parents_.find(n);
  return p != nullptr ? *p : pgraph_detail::kEmptyAdjList;
}

inline const PGraph::AdjList& PGraph::children(NodeId n) const {
  const AdjList* c = children_.find(n);
  return c != nullptr ? *c : pgraph_detail::kEmptyAdjList;
}

inline LinkData& PGraph::ensure_link(NodeId from, NodeId to, bool& added) {
  if (from == to) throw std::invalid_argument("PGraph::add_link: self-loop");
  LinkData& data = links_.ensure(pack_link(from, to), added);
  if (added) {
    util::sorted_insert(parents_.ensure(to), from);
    util::sorted_insert(children_.ensure(from), to);
  }
  return data;
}

inline LinkData& PGraph::link_data(NodeId from, NodeId to) {
  LinkData* data = find_link_data(from, to);
  if (data == nullptr) pgraph_detail::throw_missing_link(from, to);
  return *data;
}

inline const LinkData& PGraph::link_data(NodeId from, NodeId to) const {
  const LinkData* data = find_link_data(from, to);
  if (data == nullptr) pgraph_detail::throw_missing_link(from, to);
  return *data;
}

}  // namespace centaur::core
