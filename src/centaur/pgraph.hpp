// P-graph (policy graph) — Centaur's network data model (paper S3.2.2).
//
// A P-graph is a directed graph of downstream links rooted at its creator.
// Each node stores one P-graph per neighbor (assembled from that neighbor's
// downstream-link announcements) plus its own local P-graph built from its
// selected path set.  Links whose head is multi-homed carry Permission
// Lists; destination nodes are explicitly marked (prefixes in practice).
//
// The two operations the paper defines are provided here and in
// build_graph.hpp:
//   * DerivePath (Table 1) — backtrack from a destination to the root under
//     Permission-List restrictions; yields the unique policy-compliant path.
//   * BuildGraph (Table 2) — construct a local P-graph (links, counters,
//     Permission Lists) from a selected path set.
//
// Note on pseudocode fidelity: Table 1 writes Permit(D, currentNode); the
// Permission-List definition in S4.1 keys entries by the *next hop of the
// multi-homed node on the permitted path*, which during backtracking is the
// node we arrived from (kNoNextHop when the multi-homed node is the
// destination itself).  derive_path implements that definition.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "centaur/permission_list.hpp"
#include "topology/types.hpp"

namespace centaur::core {

/// Directed link identifier within a P-graph.
struct DirectedLink {
  NodeId from = topo::kInvalidNode;
  NodeId to = topo::kInvalidNode;

  auto operator<=>(const DirectedLink&) const = default;
};

struct DirectedLinkHash {
  std::size_t operator()(const DirectedLink& l) const {
    std::uint64_t x = (std::uint64_t{l.from} << 32) | l.to;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return static_cast<std::size_t>(x);
  }
};

/// Per-link P-graph payload.
struct LinkData {
  /// Permission entries for paths through this link.  Kept for every link
  /// (BuildGraph records them as paths are inserted); they are *active* —
  /// i.e. consulted by DerivePath and included in announcements — only
  /// while the link head is multi-homed, per S4.1/S4.3.2.
  PermissionList plist;
  /// Number of selected paths traversing this link (paper S4.3.2: the link
  /// is withdrawn when this drops to zero).
  std::uint32_t counter = 0;
};

class PGraph {
 public:
  PGraph() = default;
  explicit PGraph(NodeId root) : root_(root) {}

  NodeId root() const { return root_; }
  void reset(NodeId root);

  // --- structure ---------------------------------------------------------

  /// Inserts from->to.  Returns true if the link was new.
  bool add_link(NodeId from, NodeId to);

  /// Removes from->to and its payload.  Returns true if present.
  bool remove_link(NodeId from, NodeId to);

  bool has_link(NodeId from, NodeId to) const {
    return links_.count({from, to}) > 0;
  }

  std::size_t num_links() const { return links_.size(); }

  std::size_t in_degree(NodeId n) const;

  /// "Multi-homed": more than one parent in this P-graph (S3.2.4).
  bool multi_homed(NodeId n) const { return in_degree(n) > 1; }

  /// Parents of `n` in ascending order (empty if none).
  const std::vector<NodeId>& parents(NodeId n) const;

  /// Children of `n` in ascending order (empty if none).
  const std::vector<NodeId>& children(NodeId n) const;

  /// True if `n` is the root or appears as an endpoint of some link.
  bool contains(NodeId n) const;

  // --- destinations -------------------------------------------------------

  void mark_destination(NodeId d) { destinations_.insert(d); }
  bool unmark_destination(NodeId d) { return destinations_.erase(d) > 0; }
  bool is_destination(NodeId d) const { return destinations_.count(d) > 0; }
  const std::set<NodeId>& destinations() const { return destinations_; }

  // --- per-link payload ----------------------------------------------------

  /// Payload accessors; the mutable overload creates the link if absent is
  /// NOT provided — the link must exist (throws std::out_of_range).
  LinkData& link_data(NodeId from, NodeId to);
  const LinkData& link_data(NodeId from, NodeId to) const;

  /// A link's Permission List is active iff its head is multi-homed.
  bool plist_active(NodeId from, NodeId to) const {
    return multi_homed(to) && !link_data(from, to).plist.empty();
  }

  /// Number of links with an active Permission List (Table 4 metric).
  std::size_t active_plist_count() const;

  // --- DerivePath (Table 1) -------------------------------------------------

  /// Derives the unique policy-compliant path root..dest, or nullopt if no
  /// permitted parent chain reaches the root.  For dest == root returns
  /// {root}.  Throws std::logic_error if the backtrace cycles (corrupt
  /// graph).
  ///
  /// If `visited` is non-null it receives every node the backtracking walk
  /// examined (including `dest` and, on failure, the blocking node).  The
  /// walk's outcome is a pure function of the in-links of these nodes, so
  /// callers can use the set for precise invalidation: a graph change that
  /// touches none of them cannot change this derivation.
  std::optional<Path> derive_path(NodeId dest,
                                  std::vector<NodeId>* visited = nullptr) const;

  // --- iteration -----------------------------------------------------------

  /// All links with their payloads (unordered; sort keys if a canonical
  /// order is needed).
  const std::unordered_map<DirectedLink, LinkData, DirectedLinkHash>& links()
      const {
    return links_;
  }

  /// Whole-map adjacency views, values sorted ascending.  Exposed for the
  /// invariant checker (src/check), which cross-validates them against
  /// links(); protocol code should use parents()/children() instead.
  const std::unordered_map<NodeId, std::vector<NodeId>>& parent_map() const {
    return parents_;
  }
  const std::unordered_map<NodeId, std::vector<NodeId>>& child_map() const {
    return children_;
  }

  /// Equality of structure, destination marks, and Permission Lists
  /// (counters are local bookkeeping and excluded).
  bool operator==(const PGraph& other) const;

 private:
  // Test-only backdoor (tests/invariants_test.cpp) that seeds the structural
  // corruption the public API refuses to produce, so the invariant checker
  // can be exercised against broken graphs.
  friend struct PGraphCorruptor;

  NodeId root_ = topo::kInvalidNode;
  std::unordered_map<DirectedLink, LinkData, DirectedLinkHash> links_;
  std::unordered_map<NodeId, std::vector<NodeId>> parents_;   // sorted values
  std::unordered_map<NodeId, std::vector<NodeId>> children_;  // sorted values
  std::set<NodeId> destinations_;
};

}  // namespace centaur::core
