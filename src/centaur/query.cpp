#include "centaur/query.hpp"

namespace centaur::core {

PathStatus query_path_into(const PGraph& g, const PathQuery& q, Path& out) {
  // Fast reject before the walk: an id the graph has never seen derives to
  // nothing, and PGraph::contains is one probe (the walk would discover the
  // same through an empty parents() list — this just skips the setup).
  if (q.dest != g.root() && !g.contains(q.dest)) {
    out.clear();
    if (q.visited != nullptr) q.visited->assign(1, q.dest);
    return PathStatus::kUnreachable;
  }
  return query_path_over(PGraphView{&g}, q, out);
}

PathResult query_path(const PGraph& g, const PathQuery& q) {
  PathResult result;
  result.status = query_path_into(g, q, result.path);
  return result;
}

}  // namespace centaur::core
