// Unified path-query API over P-graphs (DESIGN.md §14.3).
//
// Before this header, callers picked between `PGraph::derive_path`
// (allocating, std::optional) and `PGraph::derive_path_into` (buffer reuse)
// and re-implemented the usability test ("does the derived path loop
// through me?") at every call site.  PathQuery/PathResult consolidate that
// surface:
//
//   * query_path_into — buffer-reuse form (the hot refresh loops).
//   * query_path      — allocating convenience form.
//   * path_uses       — the shared usability predicate (Observation 1).
//   * query_k_paths / disjoint_path_count — multi-path enumeration for the
//     serving plane (k policy-compliant paths, path-diversity metric).
//
// Everything is templated over a *graph view* so the same walk serves both
// a live PGraph and an immutable serve-plane PGraphSnapshot:
//
//   View requirements:
//     NodeId root() const;
//     const PGraph::AdjList& parents(NodeId n) const;  // ascending; empty
//                                                      // when n is unknown
//     const PermissionList* plist(NodeId from, NodeId to) const;
//                                      // nullptr == no entries recorded
//
// Contract (uniform across every entry point — the old pair of functions
// is now a thin wrapper over this walk):
//   * dest == root()  ->  kFound with the trivial one-node path {root}.
//   * unreachable / ambiguous-fallback -> kUnreachable, `out` left empty.
//   * a backtrace cycle throws std::logic_error (corrupt graph).
//   * `visited` (optional) receives every node the walk examined; the
//     outcome is a pure function of the in-links of these nodes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "centaur/pgraph.hpp"
#include "topology/types.hpp"

namespace centaur::core {

/// One (destination, options) query against a P-graph view.
struct PathQuery {
  NodeId dest = topo::kInvalidNode;
  /// Optional walk capture: receives every node the backtracking walk
  /// examined (including `dest` and, on failure, the blocking node).
  /// Callers use the set for precise invalidation (DESIGN.md §12).
  std::vector<NodeId>* visited = nullptr;
};

enum class PathStatus : std::uint8_t {
  kFound,        ///< the unique policy-compliant path was derived
  kUnreachable,  ///< no permitted parent chain reaches the root
};

/// The shared usability predicate (paper Observation 1): a downstream path
/// that already contains `node` must not be extended through it.
inline bool path_uses(const Path& path, NodeId node) {
  return std::find(path.begin(), path.end(), node) != path.end();
}

/// Allocating query result.
struct PathResult {
  PathStatus status = PathStatus::kUnreachable;
  Path path;  ///< root..dest when found, empty otherwise

  bool found() const { return status == PathStatus::kFound; }
  explicit operator bool() const { return found(); }
  /// Usability helper: true if the found path traverses `node`.
  bool uses(NodeId node) const { return path_uses(path, node); }
};

/// Read-only view adapter presenting a PGraph to the generic walk.
struct PGraphView {
  const PGraph* graph = nullptr;

  NodeId root() const { return graph->root(); }
  const PGraph::AdjList& parents(NodeId n) const { return graph->parents(n); }
  const PermissionList* plist(NodeId from, NodeId to) const {
    const LinkData* data = graph->find_link_data(from, to);
    return data != nullptr ? &data->plist : nullptr;
  }
};

/// DerivePath (paper Table 1) over any graph view.  Buffer-reuse form:
/// writes the path into `out` (reusing its capacity) and returns kFound, or
/// returns kUnreachable leaving `out` empty.
template <typename View>
PathStatus query_path_over(const View& g, const PathQuery& q, Path& out) {
  out.clear();
  const NodeId root = g.root();
  if (root == topo::kInvalidNode) {
    throw std::logic_error("query_path: graph has no root");
  }
  if (q.dest == root) {
    if (q.visited != nullptr) q.visited->assign(1, q.dest);
    out.push_back(root);
    return PathStatus::kFound;
  }

  // The walked-node set IS the partial path (dest-first): one buffer serves
  // as path accumulator, cycle guard, and visited report.
  Path& reversed = out;
  reversed.push_back(q.dest);
  NodeId current = q.dest;
  // Next hop of `current` toward `dest` during backtracking — the node we
  // arrived from; kNoNextHop while current == dest (S4.1 per-dest-next
  // semantics; see pgraph.hpp's note on Table 1).
  NodeId came_from = kNoNextHop;
  const auto fail = [&]() {
    if (q.visited != nullptr) {
      q.visited->assign(reversed.begin(), reversed.end());
    }
    out.clear();
    return PathStatus::kUnreachable;
  };

  while (current != root) {
    const PGraph::AdjList& ps = g.parents(current);
    if (ps.empty()) return fail();
    NodeId parent = topo::kInvalidNode;
    if (ps.size() == 1) {
      parent = ps.front();  // Table 1 lines 3-5: single-homed, follow up
    } else {
      // Table 1 lines 6-11: multi-homed, consult Permission Lists.
      // Links with entries are explicit permissions; if none permits, an
      // in-link *without* a Permission List acts as the default (the
      // paper's Figure 4(c) lists only the exceptional link C->D and
      // leaves B->D unlisted).  More than one unlisted in-link would be
      // ambiguous, so derivation fails then.
      NodeId fallback = topo::kInvalidNode;
      bool fallback_ambiguous = false;
      for (const NodeId p : ps) {
        const PermissionList* plist = g.plist(p, current);
        if (plist == nullptr || plist->empty()) {
          if (fallback == topo::kInvalidNode) {
            fallback = p;
          } else {
            fallback_ambiguous = true;
          }
          continue;
        }
        if (plist->permits(q.dest, came_from)) {
          parent = p;
          break;
        }
      }
      if (parent == topo::kInvalidNode && !fallback_ambiguous) {
        parent = fallback;
      }
      if (parent == topo::kInvalidNode) return fail();
    }
    // Cycle guard: paths are short, so a linear scan beats a node set.
    if (std::find(reversed.begin(), reversed.end(), parent) !=
        reversed.end()) {
      throw std::logic_error("query_path: backtrace cycle (corrupt graph)");
    }
    reversed.push_back(parent);
    came_from = current;
    current = parent;
  }
  if (q.visited != nullptr) {
    q.visited->assign(reversed.begin(), reversed.end());
  }
  std::reverse(reversed.begin(), reversed.end());
  return PathStatus::kFound;
}

/// Buffer-reuse query against a PGraph (the hot refresh-loop form).
PathStatus query_path_into(const PGraph& g, const PathQuery& q, Path& out);

/// Allocating query against a PGraph.
PathResult query_path(const PGraph& g, const PathQuery& q);

// ---------------------------------------------------------------- k paths --
//
// Multi-path enumeration for the serving plane (DESIGN.md §14.4).  A
// DerivePath walk is deterministic because every branch point picks one
// parent; enumeration explores *all* policy-compliant parents instead:
// every explicitly-permitting in-link, plus the unique unlisted in-link
// (the paper's default) when exactly one exists.  Loops are skipped rather
// than fatal — an alternate branch revisiting a node is simply not a path.

/// Result of a k-path enumeration.
struct KPathResult {
  /// paths[0], when present, is exactly the DerivePath result (the
  /// canonical policy-compliant path); the alternates follow sorted by
  /// (length, lexicographic node sequence).  No duplicates.
  std::vector<Path> paths;
  /// True when the expansion budget was exhausted before the branch space:
  /// the list is a best-effort prefix, not the complete enumeration.
  bool truncated = false;
};

namespace query_detail {

/// Depth-first enumeration of policy-compliant paths root..dest in
/// *canonical-first* order: at each branch point the explicitly-permitting
/// parents are visited ascending, then the unlisted default — so the first
/// leaf reached is exactly the DerivePath choice chain.
template <typename View, typename Emit>
void enumerate_paths(const View& g, NodeId dest, std::size_t max_expansions,
                     bool& truncated, const Emit& emit) {
  const NodeId root = g.root();
  if (root == topo::kInvalidNode) {
    throw std::logic_error("query_k_paths: graph has no root");
  }
  if (dest == root) {
    emit(Path{root});
    return;
  }

  // Explicit DFS stack: reversed partial path + per-level candidate lists.
  // Candidate lists are tiny (in-degree of one node), so a per-level
  // SmallVec keeps the whole walk allocation-light.
  struct Level {
    util::SmallVec<NodeId, 4> candidates;
    std::size_t next = 0;
  };
  Path reversed{dest};
  std::vector<Level> stack;
  std::size_t expansions = 0;

  const auto candidates_for = [&](NodeId current,
                                  NodeId came_from) -> Level {
    Level level;
    const PGraph::AdjList& ps = g.parents(current);
    if (ps.empty()) return level;
    if (ps.size() == 1) {
      level.candidates.push_back(ps.front());
      return level;
    }
    NodeId fallback = topo::kInvalidNode;
    bool fallback_ambiguous = false;
    for (const NodeId p : ps) {
      const PermissionList* plist = g.plist(p, current);
      if (plist == nullptr || plist->empty()) {
        if (fallback == topo::kInvalidNode) {
          fallback = p;
        } else {
          fallback_ambiguous = true;
        }
        continue;
      }
      if (plist->permits(dest, came_from)) level.candidates.push_back(p);
    }
    // The unlisted default ranks after every explicit permission: DerivePath
    // only falls back to it when no entry permits, so canonical-first DFS
    // order must try it last.
    if (fallback != topo::kInvalidNode && !fallback_ambiguous) {
      level.candidates.push_back(fallback);
    }
    return level;
  };

  stack.push_back(candidates_for(dest, kNoNextHop));
  while (!stack.empty()) {
    Level& level = stack.back();
    if (level.next >= level.candidates.size()) {
      stack.pop_back();
      reversed.pop_back();
      continue;
    }
    if (++expansions > max_expansions) {
      truncated = true;
      return;
    }
    const NodeId parent = level.candidates[level.next++];
    // Loop: this branch revisits a node on the partial path — skip it
    // (alternate branches may legally cross; only the canonical chain
    // treats a cycle as corruption).
    if (path_uses(reversed, parent)) continue;
    reversed.push_back(parent);
    if (parent == root) {
      Path found(reversed.rbegin(), reversed.rend());
      emit(std::move(found));
      reversed.pop_back();
      continue;
    }
    stack.push_back(candidates_for(parent, reversed[reversed.size() - 2]));
  }
}

}  // namespace query_detail

/// Enumerates up to `k` policy-compliant paths root..dest.  paths[0] is the
/// canonical DerivePath result; alternates follow sorted by (length,
/// lexicographic).  `max_expansions` bounds the branch walk so adversarial
/// graphs cannot go exponential; hitting it sets `truncated`.
template <typename View>
KPathResult query_k_paths(const View& g, NodeId dest, std::size_t k,
                          std::size_t max_expansions = 4096) {
  KPathResult result;
  if (k == 0) return result;
  query_detail::enumerate_paths(
      g, dest, max_expansions, result.truncated,
      [&](Path&& p) { result.paths.push_back(std::move(p)); });
  if (result.paths.empty()) return result;
  // Canonical path stays first; alternates sort by (length, lex).
  std::sort(result.paths.begin() + 1, result.paths.end(),
            [](const Path& a, const Path& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  // Distinct branch chains yield distinct node sequences, so duplicates
  // should be impossible; drop any defensively to keep the contract hard.
  result.paths.erase(
      std::unique(result.paths.begin() + 1, result.paths.end()),
      result.paths.end());
  if (result.paths.size() > k) result.paths.resize(k);
  return result;
}

/// Path-diversity metric: a greedy lower bound on the number of mutually
/// interior-node-disjoint policy-compliant paths root..dest (endpoints may
/// be shared).  Paths are considered canonical-first then (length, lex), so
/// the count is deterministic.  Returns 0 when dest is unreachable, 1 for
/// dest == root.
template <typename View>
std::size_t disjoint_path_count(const View& g, NodeId dest,
                                std::size_t max_expansions = 4096) {
  const KPathResult all =
      query_k_paths(g, dest, static_cast<std::size_t>(-1), max_expansions);
  std::size_t count = 0;
  std::vector<NodeId> used;  // interior nodes of accepted paths
  for (const Path& p : all.paths) {
    bool clash = false;
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      if (std::find(used.begin(), used.end(), p[i]) != used.end()) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    ++count;
    for (std::size_t i = 1; i + 1 < p.size(); ++i) used.push_back(p[i]);
  }
  return count;
}

// ------------------------------------------------------------ serve hook --

/// Snapshot export hook (serving plane, src/serve): a CentaurNode invokes
/// its configured sink after every selection commit that changed the local
/// P-graph, *before* the flood-scratch dirty sets are consumed.  The dirty
/// sets may contain duplicates; `touched_links` covers every link whose
/// payload or wire form may have changed and `changed_dests` every
/// destination whose selection changed, so a delta-proportional publisher
/// only has to copy those.  Called from handler context: the callee must
/// not block, must not touch other nodes' state, and must confine shared
/// side effects to its own single-writer cells (DESIGN.md §14.2).
using SnapshotSink = std::function<void(
    NodeId self, const PGraph& local, const std::vector<NodeId>& changed_dests,
    const std::vector<DirectedLink>& touched_links)>;

}  // namespace centaur::core
