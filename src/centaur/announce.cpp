#include "centaur/announce.hpp"

namespace centaur::core {

std::size_t GraphDelta::byte_size(bool bloom_compressed) const {
  std::size_t bytes = 16;  // header
  for (const auto& [link, plist] : upserts) {
    bytes += 8 + plist.byte_size(bloom_compressed);
  }
  bytes += 8 * removes.size();
  bytes += 4 * (dest_adds.size() + dest_removes.size());
  return bytes;
}

ExportedView make_export_view(const PGraph& local,
                              const DestFilter& dest_allowed,
                              const LinkFilter& link_allowed) {
  ExportedView view;
  for (NodeId d : local.destinations()) {
    if (!dest_allowed || dest_allowed(d)) view.destinations.insert(d);
  }
  for (const auto& [link, data] : local.links()) {
    if (link_allowed && !link_allowed(link.from, link.to)) continue;
    // BuildGraph records, in the (always-populated) permission entries, the
    // exact destination set routed through each link; the link is exported
    // iff an allowed destination uses it.  Only multi-homed heads carry
    // Permission Lists on the wire (S4.1).
    const bool multi_homed = local.multi_homed(link.to);
    if (!dest_allowed) {
      view.links.emplace(link,
                         multi_homed ? data.plist : PermissionList{});
      continue;
    }
    if (multi_homed) {
      PermissionList filtered = data.plist.filtered(dest_allowed);
      if (filtered.empty()) continue;  // no allowed destination uses it
      view.links.emplace(link, std::move(filtered));
    } else {
      if (!data.plist.any_dest(dest_allowed)) continue;
      view.links.emplace(link, PermissionList{});
    }
  }
  return view;
}

GraphDelta diff_views(const ExportedView& before, const ExportedView& after) {
  GraphDelta delta;
  // Links: ordered-map merge walk.
  auto a = before.links.begin();
  auto b = after.links.begin();
  while (a != before.links.end() || b != after.links.end()) {
    if (b == after.links.end() ||
        (a != before.links.end() && a->first < b->first)) {
      delta.removes.push_back(a->first);
      ++a;
    } else if (a == before.links.end() || b->first < a->first) {
      delta.upserts.emplace_back(b->first, b->second);
      ++b;
    } else {
      if (!(a->second == b->second)) {
        delta.upserts.emplace_back(b->first, b->second);  // plist changed
      }
      ++a;
      ++b;
    }
  }
  // Destination marks.
  for (NodeId d : after.destinations) {
    if (!before.destinations.count(d)) delta.dest_adds.push_back(d);
  }
  for (NodeId d : before.destinations) {
    if (!after.destinations.count(d)) delta.dest_removes.push_back(d);
  }
  return delta;
}

bool apply_delta(PGraph& g, const GraphDelta& delta, NodeId self,
                 const LinkFilter& import_allowed) {
  bool changed = false;
  if (delta.reset) {
    changed = g.num_links() > 0 || !g.destinations().empty();
    g.reset(g.root());
  }
  for (const DirectedLink& link : delta.removes) {
    changed |= g.remove_link(link.from, link.to);
  }
  for (NodeId d : delta.dest_removes) {
    changed |= g.unmark_destination(d);
  }
  for (const auto& [link, plist] : delta.upserts) {
    if (link.to == self) continue;  // loop elimination (Step 2)
    if (import_allowed && !import_allowed(link.from, link.to)) continue;
    bool added = false;
    LinkData& data = g.ensure_link(link.from, link.to, added);
    if (added || !(data.plist == plist)) {
      data.plist = plist;
      changed = true;
    }
  }
  for (NodeId d : delta.dest_adds) {
    if (!g.is_destination(d)) {
      g.mark_destination(d);
      changed = true;
    }
  }
  return changed;
}

}  // namespace centaur::core
