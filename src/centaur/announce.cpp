#include "centaur/announce.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

namespace centaur::core {

bool ExportedView::operator==(const ExportedView& other) const {
  if (!(destinations == other.destinations)) return false;
  if (links.size() != other.links.size()) return false;
  for (const auto& [key, plist] : links) {
    const PermissionList* theirs = other.links.find(key);
    if (theirs == nullptr || !(*theirs == plist)) return false;
  }
  return true;
}

ExportedView make_export_view(const PGraph& local,
                              const DestFilter& dest_allowed,
                              const LinkFilter& link_allowed) {
  ExportedView view;
  for (NodeId d : local.destinations()) {
    if (!dest_allowed || dest_allowed(d)) view.destinations.push_back(d);
  }
  view.links.reserve(local.num_links());
  for (const auto& [link, data] : local.links()) {
    if (link_allowed && !link_allowed(link.from, link.to)) continue;
    const std::uint64_t key = pack_link(link.from, link.to);
    // BuildGraph records, in the (always-populated) permission entries, the
    // exact destination set routed through each link; the link is exported
    // iff an allowed destination uses it.  Only multi-homed heads carry
    // Permission Lists on the wire (S4.1).
    const bool multi_homed = local.multi_homed(link.to);
    if (!dest_allowed) {
      view.links[key] = multi_homed ? data.plist : PermissionList{};
      continue;
    }
    if (multi_homed) {
      PermissionList filtered = data.plist.filtered(dest_allowed);
      if (filtered.empty()) continue;  // no allowed destination uses it
      view.links[key] = std::move(filtered);
    } else {
      if (!data.plist.any_dest(dest_allowed)) continue;
      view.links[key] = PermissionList{};
    }
  }
  return view;
}

GraphDelta diff_views(const ExportedView& before, const ExportedView& after) {
  GraphDelta delta;
  for (const auto& [key, plist] : after.links) {
    const PermissionList* old = before.links.find(key);
    if (old == nullptr || !(*old == plist)) {
      delta.upserts.emplace_back(unpack_link(key), plist);
    }
  }
  for (const auto& [key, plist] : before.links) {
    if (after.links.count(key) == 0) delta.removes.push_back(unpack_link(key));
  }
  // Hash-order walks above; canonicalize (sorted ascending, the wire order).
  std::sort(delta.upserts.begin(), delta.upserts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(delta.removes.begin(), delta.removes.end());
  // Destination marks: both sides sorted ascending already.
  std::set_difference(after.destinations.begin(), after.destinations.end(),
                      before.destinations.begin(), before.destinations.end(),
                      std::back_inserter(delta.dest_adds));
  std::set_difference(before.destinations.begin(), before.destinations.end(),
                      after.destinations.begin(), after.destinations.end(),
                      std::back_inserter(delta.dest_removes));
  return delta;
}

bool apply_delta(PGraph& g, const GraphDelta& delta, NodeId self,
                 const LinkFilter& import_allowed) {
  bool changed = false;
  if (delta.reset) {
    changed = g.num_links() > 0 || !g.destinations().empty();
    g.reset(g.root());
  }
  for (const DirectedLink& link : delta.removes) {
    changed |= g.remove_link(link.from, link.to);
  }
  for (NodeId d : delta.dest_removes) {
    changed |= g.unmark_destination(d);
  }
  for (const auto& [link, plist] : delta.upserts) {
    if (link.to == self) continue;  // loop elimination (Step 2)
    if (import_allowed && !import_allowed(link.from, link.to)) continue;
    bool added = false;
    LinkData& data = g.ensure_link(link.from, link.to, added);
    if (added || !(data.plist == plist)) {
      data.plist = plist;
      changed = true;
    }
  }
  for (NodeId d : delta.dest_adds) {
    if (!g.is_destination(d)) {
      g.mark_destination(d);
      changed = true;
    }
  }
  return changed;
}

// ------------------------------------------ incremental view maintenance --

void apply_link_transition(ExportedView& view, PendingDelta& pending,
                           const DirectedLink& link,
                           const PermissionList* now) {
  const std::uint64_t key = pack_link(link.from, link.to);
  PermissionList* cur = view.links.find(key);
  if (now != nullptr) {
    if (cur == nullptr) {
      pending.record_upsert(link, *now, /*receiver_has_link=*/false);
      view.links[key] = *now;
    } else if (!(*cur == *now)) {
      pending.record_upsert(link, *now, /*receiver_has_link=*/true);
      *cur = *now;
    }
  } else if (cur != nullptr) {
    pending.record_remove(link);
    view.links.erase(key);
  }
}

void apply_dest_transition(ExportedView& view, PendingDelta& pending,
                           NodeId dest, bool now) {
  if (now) {
    if (util::sorted_insert(view.destinations, dest)) {
      pending.record_dest_add(dest);
    }
  } else if (util::sorted_erase(view.destinations, dest)) {
    pending.record_dest_remove(dest);
  }
}

void record_view_transitions(ExportedView& view, PendingDelta& pending,
                             const ExportedView& now) {
  const GraphDelta delta = diff_views(view, now);
  for (const auto& [link, plist] : delta.upserts) {
    pending.record_upsert(link, plist,
                          /*receiver_has_link=*/view.has_link(link.from,
                                                              link.to));
  }
  for (const DirectedLink& link : delta.removes) pending.record_remove(link);
  for (const NodeId dest : delta.dest_adds) pending.record_dest_add(dest);
  for (const NodeId dest : delta.dest_removes) {
    pending.record_dest_remove(dest);
  }
  view = now;
}

// ------------------------------------------------------------ coalescing --

void PendingDelta::record_upsert(const DirectedLink& link,
                                 const PermissionList& plist,
                                 bool receiver_has_link) {
  bool inserted = false;
  LinkSlot& slot = links_.ensure(pack_link(link.from, link.to), inserted);
  if (inserted) {
    slot.op = receiver_has_link ? LinkOp::kChange : LinkOp::kAdd;
  } else if (slot.op == LinkOp::kRemove) {
    // Removed then re-added within the burst: the receiver still holds the
    // link, so the net effect is a Permission-List change.
    slot.op = LinkOp::kChange;
  }
  slot.plist = plist;
}

void PendingDelta::record_remove(const DirectedLink& link) {
  const std::uint64_t key = pack_link(link.from, link.to);
  bool inserted = false;
  LinkSlot& slot = links_.ensure(key, inserted);
  if (!inserted && slot.op == LinkOp::kAdd) {
    links_.erase(key);  // added and removed in one burst: nothing happened
    return;
  }
  slot.op = LinkOp::kRemove;
  slot.plist = PermissionList{};
}

void PendingDelta::record_dest_add(NodeId dest) {
  bool inserted = false;
  std::uint8_t& op = dests_.ensure(dest, inserted);
  if (!inserted && op == kDestRemove) {
    dests_.erase(dest);  // remove + add cancels
    return;
  }
  op = kDestAdd;
}

void PendingDelta::record_dest_remove(NodeId dest) {
  bool inserted = false;
  std::uint8_t& op = dests_.ensure(dest, inserted);
  if (!inserted && op == kDestAdd) {
    dests_.erase(dest);  // add + remove cancels
    return;
  }
  op = kDestRemove;
}

GraphDelta PendingDelta::take() {
  GraphDelta out;
  std::vector<std::uint64_t> keys;
  keys.reserve(links_.size());
  for (const auto& [key, slot] : links_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    LinkSlot* slot = links_.find(key);
    if (slot->op == LinkOp::kRemove) {
      out.removes.push_back(unpack_link(key));
    } else {
      out.upserts.emplace_back(unpack_link(key), std::move(slot->plist));
    }
  }
  for (const auto& [dest, op] : dests_) {
    (op == kDestRemove ? out.dest_removes : out.dest_adds).push_back(dest);
  }
  std::sort(out.dest_adds.begin(), out.dest_adds.end());
  std::sort(out.dest_removes.begin(), out.dest_removes.end());
  clear();
  return out;
}

}  // namespace centaur::core
