#include "centaur/build_graph.hpp"

#include <algorithm>
#include <tuple>
#include <stdexcept>
#include <vector>

namespace centaur::core {

void add_path_to_pgraph(PGraph& g, const Path& path) {
  if (path.empty() || path.front() != g.root()) {
    throw std::invalid_argument("add_path_to_pgraph: path must start at root");
  }
  const NodeId dest = path.back();
  g.mark_destination(dest);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId a = path[i];
    const NodeId b = path[i + 1];
    bool added = false;
    LinkData& data = g.ensure_link(a, b, added);
    ++data.counter;
    // Next hop of B toward dest (kNoNextHop when B is the destination).
    const NodeId next = (i + 2 < path.size()) ? path[i + 2] : kNoNextHop;
    data.plist.add(dest, next);
  }
}

void remove_path_from_pgraph(PGraph& g, const Path& path) {
  if (path.empty() || path.front() != g.root()) {
    throw std::invalid_argument(
        "remove_path_from_pgraph: path must start at root");
  }
  const NodeId dest = path.back();
  g.unmark_destination(dest);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId a = path[i];
    const NodeId b = path[i + 1];
    LinkData& data = g.link_data(a, b);
    if (data.counter == 0) {
      throw std::logic_error("remove_path_from_pgraph: counter underflow");
    }
    const NodeId next = (i + 2 < path.size()) ? path[i + 2] : kNoNextHop;
    data.plist.remove(dest, next);
    if (--data.counter == 0) {
      g.remove_link(a, b);
    }
  }
}

namespace {

// Per-head body of the minimal scheme; reads and writes only b's in-links.
std::size_t minimize_head(PGraph& g, NodeId b) {
  // Default link: the in-link whose permissions include b itself as the
  // destination (so DerivePath(b)'s fallback lands on the right parent);
  // ties, and heads never appearing as destinations, resolve to the
  // in-link carrying the most destinations, then the lowest parent id.
  NodeId best_parent = topo::kInvalidNode;
  bool best_sentinel = false;
  std::size_t best_count = 0;
  for (NodeId a : g.parents(b)) {
    const PermissionList& plist = g.link_data(a, b).plist;
    const bool sentinel = plist.permits(b, kNoNextHop);
    const std::size_t count = plist.dest_count();
    const bool better = best_parent == topo::kInvalidNode ||
                        std::tuple(sentinel, count) >
                            std::tuple(best_sentinel, best_count);
    if (better) {
      best_parent = a;
      best_sentinel = sentinel;
      best_count = count;
    }
  }
  std::size_t cleared = 0;
  for (NodeId a : g.parents(b)) {
    PermissionList& plist = g.link_data(a, b).plist;
    if (a == best_parent) {
      if (!plist.empty()) ++cleared;
      plist = PermissionList{};
    } else {
      // The head-as-destination case is handled by the default link;
      // other in-links only need entries for traffic crossing the head
      // (redundant co-optimal sentinel entries would double-resolve).
      plist.remove(b, kNoNextHop);
    }
  }
  return cleared;
}

}  // namespace

std::size_t minimize_permission_lists(PGraph& g) {
  // Collect multi-homed heads first (mutating payloads below does not
  // change the link structure, but keep the walk simple).
  std::vector<NodeId> heads;
  for (const auto& [link, data] : g.links()) {
    if (g.multi_homed(link.to)) heads.push_back(link.to);
  }
  std::sort(heads.begin(), heads.end());
  heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  std::size_t cleared = 0;
  for (NodeId b : heads) cleared += minimize_head(g, b);
  return cleared;
}

std::size_t minimize_permission_lists_at(PGraph& g,
                                         std::vector<NodeId> heads) {
  std::sort(heads.begin(), heads.end());
  heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  std::size_t cleared = 0;
  for (NodeId b : heads) {
    if (g.multi_homed(b)) cleared += minimize_head(g, b);
  }
  return cleared;
}

}  // namespace centaur::core
