#include "centaur/centaur_node.hpp"

#include <algorithm>

namespace centaur::core {

using policy::Candidate;
using policy::classify_path;
using policy::may_export;
using topo::NodeId;

namespace {

/// Is a route of this class exportable to peers/providers (the cone view)?
bool cone_exportable(policy::RouteSource source) {
  return may_export(source, topo::Relationship::kPeer);
}

}  // namespace

std::string CentaurUpdate::describe() const {
  return "centaur-update(+" + std::to_string(delta_.upserts.size()) +
         " links, -" + std::to_string(delta_.removes.size()) + " links, +" +
         std::to_string(delta_.dest_adds.size()) + " dests, -" +
         std::to_string(delta_.dest_removes.size()) + " dests" +
         (delta_.reset ? ", reset)" : ")");
}

CentaurNode::CentaurNode(const topo::AsGraph& graph)
    : CentaurNode(graph, Config()) {}

CentaurNode::CentaurNode(const topo::AsGraph& graph, Config config)
    : graph_(graph), config_(std::move(config)) {}

bool CentaurNode::neighbor_usable(NodeId neighbor) const {
  const auto it = session_up_.find(neighbor);
  return it != session_up_.end() && it->second;
}

void CentaurNode::start() {
  local_.reset(self());
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    session_up_[nb.node] = graph_.link_up(nb.link);
  }
  if (config_.originate_prefix) {
    selected_[self()] = Path{self()};
    selected_class_[self()] = policy::RouteSource::kSelf;
    add_path_to_pgraph(local_, Path{self()});
    cone_dests_[self()] = 1;
    changed_dests_.push_back(self());
  }
  flood();
}

// --------------------------------------------------------------- derive ---

std::set<NodeId> CentaurNode::refresh_derived(NeighborState& state,
                                              const std::set<NodeId>& dests) {
  std::set<NodeId> changed;
  std::vector<NodeId> visited;
  for (const NodeId dest : dests) {
    const bool marked = state.graph.is_destination(dest);
    std::optional<Path> fresh;
    visited.clear();
    if (marked) {
      fresh = state.graph.derive_path(dest, &visited);
    }

    // Re-index the walk if it changed (failed walks are indexed too: their
    // outcome can only flip when an in-link of a walked node changes).
    std::vector<NodeId>* chain = state.chains.find(dest);
    if (chain == nullptr || *chain != visited) {
      if (chain != nullptr) {
        for (const NodeId node : *chain) {
          auto* idx = state.chain_index.find(node);
          if (idx != nullptr) {
            util::sorted_erase(*idx, dest);
            if (idx->empty()) state.chain_index.erase(node);
          }
        }
      }
      if (marked) {
        for (const NodeId node : visited) {
          util::sorted_insert(state.chain_index[node], dest);
        }
        state.chains[dest] = visited;
      } else if (chain != nullptr) {
        state.chains.erase(dest);
      }
    }

    // Report only selection-relevant changes (path appeared/changed/gone).
    Path* old_path = state.derived.find(dest);
    if (fresh) {
      if (old_path != nullptr && *fresh == *old_path) continue;
      state.derived[dest] = std::move(*fresh);
    } else {
      if (old_path == nullptr) continue;
      state.derived.erase(dest);
    }
    changed.insert(dest);
  }
  return changed;
}

// ------------------------------------------------------------- selection --

void CentaurNode::note_path_removed(NodeId dest, const Path& path,
                                    bool cone_class) {
  changed_dests_.push_back(dest);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const DirectedLink link{path[i], path[i + 1]};
    touched_links_.push_back(link);
    if (cone_class) {
      const std::uint64_t key = pack_link(link.from, link.to);
      PermissionList* entry = cone_entries_.find(key);
      if (entry != nullptr) {
        const NodeId next = (i + 2 < path.size()) ? path[i + 2] : kNoNextHop;
        entry->remove(dest, next);
        if (entry->empty()) cone_entries_.erase(key);
      }
    }
  }
  // In-degree changes flip other in-links' wire form (a Permission List is
  // only on the wire while the head is multi-homed); touch every current
  // in-link of the path's nodes.  Called before the P-graph mutation, so
  // parents() still includes the path's own links.
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const NodeId p : local_.parents(path[i])) {
      touched_links_.push_back(DirectedLink{p, path[i]});
    }
  }
}

void CentaurNode::note_path_added(NodeId dest, const Path& path,
                                  bool cone_class) {
  changed_dests_.push_back(dest);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const DirectedLink link{path[i], path[i + 1]};
    touched_links_.push_back(link);
    if (cone_class) {
      const NodeId next = (i + 2 < path.size()) ? path[i + 2] : kNoNextHop;
      cone_entries_[pack_link(link.from, link.to)].add(dest, next);
    }
  }
  // Called after the P-graph mutation: parents() includes the new links.
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const NodeId p : local_.parents(path[i])) {
      touched_links_.push_back(DirectedLink{p, path[i]});
    }
  }
}

bool CentaurNode::reselect(const std::set<NodeId>& dests) {
  bool any_change = false;
  for (const NodeId dest : dests) {
    if (dest == self()) continue;  // the origin route is fixed
    std::optional<Path> best_path;
    Candidate best{};
    for (const auto& [nbr, state] : rib_) {
      if (!neighbor_usable(nbr)) continue;
      const Path* derived = state.derived.find(dest);
      if (derived == nullptr) continue;
      const Path& sub = *derived;
      // Loop detection (Observation 1): discard downstream paths that
      // already contain this node.
      if (std::find(sub.begin(), sub.end(), self()) != sub.end()) continue;
      Path full;
      full.reserve(sub.size() + 1);
      full.push_back(self());
      full.insert(full.end(), sub.begin(), sub.end());
      const Candidate cand{classify_path(graph_, full),
                           static_cast<std::uint32_t>(full.size() - 1), nbr};
      bool adopt;
      if (!best_path) {
        adopt = true;
      } else if (config_.ranking) {
        if (config_.ranking(cand, full, best, *best_path)) {
          adopt = true;
        } else if (config_.ranking(best, *best_path, cand, full)) {
          adopt = false;
        } else {
          adopt = policy::better(cand, best);
        }
      } else {
        adopt = policy::better(cand, best);
      }
      if (adopt) {
        best = cand;
        best_path = std::move(full);
      }
    }

    const auto cur = selected_.find(dest);
    const bool had = cur != selected_.end();
    if (best_path && had && cur->second == *best_path) continue;
    if (had) {
      const bool old_cone = cone_exportable(selected_class_.at(dest));
      note_path_removed(dest, cur->second, old_cone);
      remove_path_from_pgraph(local_, cur->second);
      if (old_cone) cone_dests_.erase(dest);
    }
    if (best_path) {
      const bool new_cone = cone_exportable(best.source);
      add_path_to_pgraph(local_, *best_path);
      note_path_added(dest, *best_path, new_cone);
      if (new_cone) cone_dests_[dest] = 1;
      selected_[dest] = std::move(*best_path);
      selected_class_[dest] = best.source;
    } else if (had) {
      selected_.erase(dest);
      selected_class_.erase(dest);
    } else {
      continue;  // still no route
    }
    any_change = true;
  }
  return any_change;
}

// ----------------------------------------------------------------- export --

ExportedView CentaurNode::view_for(NodeId neighbor) const {
  const topo::Relationship rel_to = graph_.rel(self(), neighbor);
  DestFilter dest_allowed = [this, rel_to](NodeId dest) {
    const auto it = selected_class_.find(dest);
    if (it == selected_class_.end()) return false;
    return may_export(it->second, rel_to);
  };
  LinkFilter link_allowed;
  if (config_.export_link_filter) {
    link_allowed = [this, neighbor](NodeId a, NodeId b) {
      return config_.export_link_filter(neighbor, a, b);
    };
  }
  return make_export_view(local_, dest_allowed, link_allowed);
}

void CentaurNode::flood() {
  if (config_.export_link_filter) {
    // Legacy per-neighbor path: a custom link filter breaks the two-view
    // sharing, so recompute each neighbor's view in full (used by the
    // link-hiding examples; fine at example scale).
    touched_links_.clear();
    changed_dests_.clear();
    for (const topo::Neighbor& nb : graph_.neighbors(self())) {
      if (!neighbor_usable(nb.node)) continue;
      const ExportedView view = view_for(nb.node);
      auto [it, inserted] = exported_custom_.try_emplace(nb.node);
      GraphDelta delta = diff_views(it->second, view);
      if (inserted) delta.reset = true;
      if (delta.empty()) continue;
      it->second = view;
      net().send(self(), nb.node,
                 std::make_shared<CentaurUpdate>(std::move(delta),
                                                 config_.bloom_plists));
    }
    return;
  }

  // Incrementally update the two category views from the flood scratch,
  // recording every view transition in the per-category pending deltas.
  // A key has no pending slot iff receivers already match the view, so
  // `receiver_has_link` on a fresh slot is exactly "the view had the link".
  auto update_link = [](ExportedView& exp, PendingDelta& pending,
                        const DirectedLink& link,
                        std::optional<PermissionList> now) {
    const std::uint64_t key = pack_link(link.from, link.to);
    PermissionList* cur = exp.links.find(key);
    if (now) {
      if (cur == nullptr) {
        pending.record_upsert(link, *now, /*receiver_has_link=*/false);
        exp.links[key] = std::move(*now);
      } else if (!(*cur == *now)) {
        pending.record_upsert(link, *now, /*receiver_has_link=*/true);
        *cur = std::move(*now);
      }
    } else if (cur != nullptr) {
      pending.record_remove(link);
      exp.links.erase(key);
    }
  };
  std::sort(touched_links_.begin(), touched_links_.end());
  touched_links_.erase(
      std::unique(touched_links_.begin(), touched_links_.end()),
      touched_links_.end());
  for (const DirectedLink& link : touched_links_) {
    // Full view: every link of the local P-graph, Permission List on the
    // wire only while the head is multi-homed.  One probe resolves both
    // presence and payload (find_link_data; the seed did has_link +
    // link_data).
    std::optional<PermissionList> full_now;
    const LinkData* data = local_.find_link_data(link.from, link.to);
    const bool present = data != nullptr;
    const bool multi = present && local_.multi_homed(link.to);
    if (present) {
      full_now = multi ? data->plist : PermissionList{};
    }
    update_link(exported_full_, pending_full_, link, std::move(full_now));

    // Cone view: only links carrying cone-class destinations, with the
    // Permission List filtered to those destinations (cone_entries_ keeps
    // exactly that).
    std::optional<PermissionList> cone_now;
    const PermissionList* ce = cone_entries_.find(pack_link(link.from, link.to));
    if (present && ce != nullptr && !ce->empty()) {
      cone_now = multi ? *ce : PermissionList{};
    }
    update_link(exported_cone_, pending_cone_, link, std::move(cone_now));
  }
  std::sort(changed_dests_.begin(), changed_dests_.end());
  changed_dests_.erase(
      std::unique(changed_dests_.begin(), changed_dests_.end()),
      changed_dests_.end());
  for (const NodeId dest : changed_dests_) {
    const bool full_now = selected_.count(dest) > 0;
    const bool cone_now = full_now && cone_dests_.count(dest) > 0;
    auto update_dest = [dest](ExportedView& exp, PendingDelta& pending,
                              bool now) {
      if (now) {
        if (util::sorted_insert(exp.destinations, dest)) {
          pending.record_dest_add(dest);
        }
      } else if (util::sorted_erase(exp.destinations, dest)) {
        pending.record_dest_remove(dest);
      }
    };
    update_dest(exported_full_, pending_full_, full_now);
    update_dest(exported_cone_, pending_cone_, cone_now);
  }
  touched_links_.clear();
  changed_dests_.clear();
  dispatch_updates();
}

void CentaurNode::dispatch_updates() {
  if (!config_.coalesce_updates) {
    flush_pending();
    return;
  }
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // Zero-delay: runs within the current instant's burst, after every event
  // already queued for it — deltas from same-instant floods merge, link
  // delays still start from the same simulated time.  Tagged with self():
  // the flush only reads/writes this node's pending deltas, so it can
  // batch-execute alongside other nodes' same-instant work.
  net().simulator().schedule_tagged(0, self(), [this] {
    flush_scheduled_ = false;
    flush_pending();
  });
}

void CentaurNode::flush_pending() {
  GraphDelta full_delta = pending_full_.take();
  GraphDelta cone_delta = pending_cone_.take();
  std::shared_ptr<const CentaurUpdate> full_msg, cone_msg;
  if (!full_delta.empty()) {
    full_msg = std::make_shared<CentaurUpdate>(std::move(full_delta),
                                               config_.bloom_plists);
  }
  if (!cone_delta.empty()) {
    cone_msg = std::make_shared<CentaurUpdate>(std::move(cone_delta),
                                               config_.bloom_plists);
  }
  // Baseline snapshots are shared per category too (built lazily: most
  // flushes have no uninitialized neighbor).
  std::shared_ptr<const CentaurUpdate> full_snap, cone_snap;
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    if (!neighbor_usable(nb.node)) continue;
    const bool cone_nbr = nb.rel == topo::Relationship::kPeer ||
                          nb.rel == topo::Relationship::kProvider;
    bool first = false;
    initialized_nbrs_.ensure(nb.node, first);
    if (first) {
      // First contact (or session restart): baseline snapshot — a reset
      // delta against the empty view, always sent (the reset itself is the
      // signal even when the view is empty).
      auto& snap = cone_nbr ? cone_snap : full_snap;
      if (!snap) {
        GraphDelta snapshot = diff_views(
            ExportedView{}, cone_nbr ? exported_cone_ : exported_full_);
        snapshot.reset = true;
        snap = std::make_shared<CentaurUpdate>(std::move(snapshot),
                                               config_.bloom_plists);
      }
      net().send(self(), nb.node, snap);
    } else {
      const auto& msg = cone_nbr ? cone_msg : full_msg;
      if (msg) net().send(self(), nb.node, msg);
    }
  }
}

// ----------------------------------------------------------------- events --

void CentaurNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  const auto* update = dynamic_cast<const CentaurUpdate*>(msg.get());
  if (update == nullptr || !neighbor_usable(from)) return;
  const GraphDelta& delta = update->delta();

  auto [it, inserted] = rib_.try_emplace(from, NeighborState(from));
  NeighborState& state = it->second;
  if (delta.reset && !inserted) {
    // Session restart: every previously derived destination is suspect.
    state.derived.clear();
    state.chains.clear();
    state.chain_index.clear();
  }

  LinkFilter import_filter;
  if (config_.import_link_filter) {
    import_filter = [this, from](NodeId a, NodeId b) {
      return config_.import_link_filter(from, a, b);
    };
  }
  const bool changed = apply_delta(state.graph, delta, self(), import_filter);
  if (!changed && !inserted) return;

  // Dirty destinations: a delta touching node X only affects derivations
  // whose backtracking chain visits X, plus destination-mark changes, plus
  // (whenever the link set or permissions changed) the destinations that
  // were underivable so far.
  std::set<NodeId> dirty;
  if (delta.reset) {
    dirty = state.graph.destinations();
    for (const auto& [dest, path] : state.derived) dirty.insert(dest);
  } else {
    auto touch = [&](NodeId node) {
      const auto* idx = state.chain_index.find(node);
      if (idx != nullptr) {
        dirty.insert(idx->begin(), idx->end());
      }
    };
    for (const auto& [link, plist] : delta.upserts) touch(link.to);
    for (const DirectedLink& link : delta.removes) touch(link.to);
    for (const NodeId d : delta.dest_adds) dirty.insert(d);
    for (const NodeId d : delta.dest_removes) dirty.insert(d);
  }

  const std::set<NodeId> derived_changed = refresh_derived(state, dirty);
  if (derived_changed.empty()) return;
  if (reselect(derived_changed)) flood();
}

void CentaurNode::on_link_change(NodeId neighbor, bool up) {
  session_up_[neighbor] = up;
  if (!up) {
    std::set<NodeId> affected;
    const auto it = rib_.find(neighbor);
    if (it != rib_.end()) {
      for (const auto& [dest, path] : it->second.derived) {
        affected.insert(dest);
      }
      rib_.erase(it);
    }
    initialized_nbrs_.erase(neighbor);
    exported_custom_.erase(neighbor);
    if (reselect(affected)) flood();
    return;
  }
  // Session (re)establishment: send a baseline snapshot; the neighbor
  // cleared its state for us symmetrically and does the same.
  if (config_.export_link_filter) {
    const ExportedView view = view_for(neighbor);
    GraphDelta snapshot = diff_views(ExportedView{}, view);
    snapshot.reset = true;
    exported_custom_[neighbor] = view;
    if (!snapshot.empty()) {
      net().send(self(), neighbor,
                 std::make_shared<CentaurUpdate>(std::move(snapshot),
                                                 config_.bloom_plists));
    }
    return;
  }
  // Standard path: the flush notices the (now usable, uninitialized)
  // neighbor and owes it a baseline snapshot of its category view; going
  // through dispatch lets a same-instant snapshot share the flush event.
  dispatch_updates();
}

void CentaurNode::policy_changed() {
  if (reselect(known_dests())) flood();
}

std::set<NodeId> CentaurNode::known_dests() const {
  std::set<NodeId> dests;
  for (const auto& [nbr, state] : rib_) {
    dests.insert(state.graph.destinations().begin(),
                 state.graph.destinations().end());
  }
  for (const auto& [dest, path] : selected_) dests.insert(dest);
  return dests;
}

const PGraph* CentaurNode::neighbor_pgraph(NodeId neighbor) const {
  const auto it = rib_.find(neighbor);
  return it == rib_.end() ? nullptr : &it->second.graph;
}

std::vector<NodeId> CentaurNode::rib_neighbors() const {
  std::vector<NodeId> out;
  out.reserve(rib_.size());
  for (const auto& [nbr, state] : rib_) out.push_back(nbr);
  return out;
}

const CentaurNode::PathCache* CentaurNode::neighbor_derived(
    NodeId neighbor) const {
  const auto it = rib_.find(neighbor);
  return it == rib_.end() ? nullptr : &it->second.derived;
}

std::optional<Path> CentaurNode::selected_path(NodeId dest) const {
  const auto it = selected_.find(dest);
  if (it == selected_.end()) return std::nullopt;
  return it->second;
}

}  // namespace centaur::core
