#include "centaur/centaur_node.hpp"

#include <algorithm>

#include "wire/wire_format.hpp"

namespace centaur::core {

using policy::Candidate;
using policy::classify_path;
using policy::may_export;
using topo::NodeId;

namespace {

/// Is a route of this class exportable to peers/providers (the cone view)?
bool cone_exportable(policy::RouteSource source) {
  return may_export(source, topo::Relationship::kPeer);
}

/// classify_path(g, {self} + sub) without materializing the joined path:
/// the class is the relationship of the first non-sibling hop starting at
/// self (all-sibling paths classify as sibling).
policy::RouteSource classify_sub(const topo::AsGraph& g, NodeId self,
                                 const Path& sub) {
  NodeId prev = self;
  for (const NodeId hop : sub) {
    // Like classify_path: a fabricated (non-adjacent) hop injected by an
    // interception adversary classifies the path as provider-learned, the
    // least preferred class, instead of aborting.
    const std::optional<topo::Relationship> rel = g.maybe_rel(prev, hop);
    if (!rel) return policy::RouteSource::kProvider;
    if (*rel != topo::Relationship::kSibling) {
      return policy::source_from_rel(*rel);
    }
    prev = hop;
  }
  return policy::RouteSource::kSibling;
}

}  // namespace

std::string CentaurUpdate::describe() const {
  return "centaur-update(+" + std::to_string(delta_.upserts.size()) +
         " links, -" + std::to_string(delta_.removes.size()) + " links, +" +
         std::to_string(delta_.dest_adds.size()) + " dests, -" +
         std::to_string(delta_.dest_removes.size()) + " dests" +
         (delta_.reset ? ", reset)" : ")");
}

CentaurBatchUpdate::CentaurBatchUpdate(
    std::vector<std::shared_ptr<const CentaurUpdate>> updates,
    bool bloom_compressed)
    : updates_(std::move(updates)), bloom_(bloom_compressed) {
  std::vector<const GraphDelta*> deltas;
  deltas.reserve(updates_.size());
  for (const auto& u : updates_) deltas.push_back(&u->delta());
  byte_size_ = wire::encoded_batch_size(
      deltas, bloom_ ? wire::PlistEncoding::kBloom
                     : wire::PlistEncoding::kExplicit);
}

std::string CentaurBatchUpdate::describe() const {
  return "centaur-batch(" + std::to_string(updates_.size()) + " updates)";
}

CentaurNode::CentaurNode(const topo::AsGraph& graph)
    : CentaurNode(graph, Config()) {}

CentaurNode::CentaurNode(const topo::AsGraph& graph, Config config)
    : graph_(graph), config_(std::move(config)) {}

bool CentaurNode::neighbor_usable(NodeId neighbor) const {
  const bool* up = session_up_.find(neighbor);
  return up != nullptr && *up;
}

void CentaurNode::start() {
  local_.reset(self());
  // Below the dense limit, presize for the steady-state footprint (rehash-
  // free assembly).  At 100k+ nodes every per-node table must instead stay
  // proportional to content — O(n) reservations per node are quadratic in
  // aggregate memory (see util/node_map.hpp).
  const std::size_t n = graph_.num_nodes();
  local_.reserve(n, n < util::kNodeMapDenseLimit ? 2 * n : 0);
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    session_up_[nb.node] = graph_.link_up(nb.link);
  }
  if (originates()) {
    selected_[self()] = Path{self()};
    selected_class_[self()] = policy::RouteSource::kSelf;
    add_path_to_pgraph(local_, Path{self()});
    cone_dests_[self()] = 1;
    changed_dests_.push_back(self());
  }
  flood();
}

// --------------------------------------------------------------- derive ---

std::vector<NodeId> CentaurNode::refresh_derived(
    NeighborState& state, const std::vector<NodeId>& dests) {
  std::vector<NodeId> changed;  // ascending: dests arrives sorted
  std::vector<NodeId>& visited = visited_scratch_;
  Path& fresh = path_scratch_;  // reused across dests — no per-walk alloc
  for (const NodeId dest : dests) {
    const bool marked = state.graph.is_destination(dest);
    bool derivable = false;
    visited.clear();
    fresh.clear();
    if (marked) {
      derivable = query_path_into(state.graph, PathQuery{dest, &visited},
                                  fresh) == PathStatus::kFound;
    }

    // The indexed walk chain of `e` is reverse(path) for a successful
    // derivation and fail_chain for a failed one; de-index it.
    const auto erase_walk = [&state](const DestState& e, NodeId d) {
      const auto de_index = [&state, d](NodeId node) {
        // Indexed nodes always have a slot (ensure() created it), but an
        // absent find is harmless: nothing to erase.
        if (auto* idx = state.chain_index.find(node)) {
          util::sorted_erase(*idx, d);
        }
      };
      if (!e.path.empty()) {
        for (auto it = e.path.rbegin(); it != e.path.rend(); ++it) {
          de_index(*it);
        }
      } else {
        for (const NodeId node : e.fail_chain) de_index(node);
      }
    };

    DestState* entry = state.dests.find(dest);
    if (!marked) {
      // Unmarked: drop the whole cache slot (walk index included).
      if (entry == nullptr) continue;
      erase_walk(*entry, dest);
      const bool had_path = !entry->path.empty();
      state.dests.erase(dest);
      if (had_path) changed.push_back(dest);
      continue;
    }

    if (entry == nullptr) {
      bool inserted = false;
      entry = &state.dests.ensure(dest, inserted);
    }

    // Re-index the walk if it changed (failed walks are indexed too: their
    // outcome can only flip when an in-link of a walked node changes).
    const bool was_derived = !entry->path.empty();
    const bool chain_same =
        was_derived
            ? entry->path.size() == visited.size() &&
                  std::equal(visited.begin(), visited.end(),
                             entry->path.rbegin())
            : entry->fail_chain == visited;
    if (!chain_same) {
      erase_walk(*entry, dest);
      for (const NodeId node : visited) {
        util::sorted_insert(state.chain_index.ensure(node), dest);
      }
    }

    // Report only selection-relevant changes (path appeared/changed/gone);
    // the candidate summary is refreshed in lockstep so reselect() can rank
    // without touching the path itself.
    if (derivable) {
      entry->fail_chain.clear();
      if (was_derived && fresh == entry->path) continue;
      CandEntry& cand = entry->cand;
      cand.length = static_cast<std::uint32_t>(fresh.size());
      cand.usable = !path_uses(fresh, self());
      if (cand.usable) cand.source = classify_sub(graph_, self(), fresh);
      entry->path = fresh;  // assignment reuses the slot's capacity
    } else {
      // Keep the failed walk indexed and recorded, whether the previous
      // state was a live path (now gone) or an older failed walk.
      if (!chain_same || was_derived) {
        entry->fail_chain.assign(visited.begin(), visited.end());
      }
      if (!was_derived) continue;
      entry->path.clear();
    }
    changed.push_back(dest);
  }
  return changed;
}

// ------------------------------------------------------------- selection --

void CentaurNode::note_path_removed(NodeId dest, const Path& path,
                                    bool cone_class) {
  changed_dests_.push_back(dest);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const DirectedLink link{path[i], path[i + 1]};
    touched_links_.push_back(link);
    if (cone_class) {
      const std::uint64_t key = pack_link(link.from, link.to);
      PermissionList* entry = cone_entries_.find(key);
      if (entry != nullptr) {
        const NodeId next = (i + 2 < path.size()) ? path[i + 2] : kNoNextHop;
        entry->remove(dest, next);
        if (entry->empty()) cone_entries_.erase(key);
      }
    }
  }
  // In-degree changes flip other in-links' wire form (a Permission List is
  // only on the wire while the head is multi-homed); touch every current
  // in-link of the path's nodes.  Called before the P-graph mutation, so
  // parents() still includes the path's own links.
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const NodeId p : local_.parents(path[i])) {
      touched_links_.push_back(DirectedLink{p, path[i]});
    }
  }
}

void CentaurNode::note_path_added(NodeId dest, const Path& path,
                                  bool cone_class) {
  changed_dests_.push_back(dest);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const DirectedLink link{path[i], path[i + 1]};
    touched_links_.push_back(link);
    if (cone_class) {
      const NodeId next = (i + 2 < path.size()) ? path[i + 2] : kNoNextHop;
      cone_entries_[pack_link(link.from, link.to)].add(dest, next);
    }
  }
  // Called after the P-graph mutation: parents() includes the new links.
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const NodeId p : local_.parents(path[i])) {
      touched_links_.push_back(DirectedLink{p, path[i]});
    }
  }
}

std::optional<Path> CentaurNode::best_candidate_cached(
    NodeId dest, Candidate& best) const {
  // Rank-merge over the cached per-neighbor summaries, ascending by
  // neighbor id (VecMap order) — the same scan order and the same strict
  // adoption test as the scratch reference, so the winner is identical; the
  // full path is materialized once, for the winner only.
  const DestState* win = nullptr;
  for (const auto& [nbr, state] : rib_) {
    if (!neighbor_usable(nbr)) continue;
    const DestState* entry = state.dests.find(dest);
    if (entry == nullptr || entry->path.empty() || !entry->cand.usable) {
      continue;
    }
    const Candidate cand{entry->cand.source, entry->cand.length, nbr};
    if (win == nullptr || policy::better(cand, best)) {
      best = cand;
      win = entry;
    }
  }
  if (win == nullptr) return std::nullopt;
  const Path& sub = win->path;
  Path full;
  full.reserve(sub.size() + 1);
  full.push_back(self());
  full.insert(full.end(), sub.begin(), sub.end());
  return full;
}

std::optional<Path> CentaurNode::best_candidate_scratch(
    NodeId dest, Candidate& best) const {
  std::optional<Path> best_path;
  for (const auto& [nbr, state] : rib_) {
    if (!neighbor_usable(nbr)) continue;
    const DestState* derived = state.dests.find(dest);
    if (derived == nullptr || derived->path.empty()) continue;
    const Path& sub = derived->path;
    // Loop detection (Observation 1): discard downstream paths that
    // already contain this node.
    if (path_uses(sub, self())) continue;
    Path full;
    full.reserve(sub.size() + 1);
    full.push_back(self());
    full.insert(full.end(), sub.begin(), sub.end());
    const Candidate cand{classify_path(graph_, full),
                         static_cast<std::uint32_t>(full.size() - 1), nbr};
    bool adopt;
    if (!best_path) {
      adopt = true;
    } else if (config_.ranking) {
      if (config_.ranking(cand, full, best, *best_path)) {
        adopt = true;
      } else if (config_.ranking(best, *best_path, cand, full)) {
        adopt = false;
      } else {
        adopt = policy::better(cand, best);
      }
    } else {
      adopt = policy::better(cand, best);
    }
    if (adopt) {
      best = cand;
      best_path = std::move(full);
    }
  }
  return best_path;
}

bool CentaurNode::reselect(const std::vector<NodeId>& dests) {
  const bool use_cache = config_.incremental && !config_.ranking;
  bool any_change = false;
  for (const NodeId dest : dests) {
    if (dest == self()) continue;  // the origin route is fixed
    Candidate best{};
    std::optional<Path> best_path;
    if (intercepting(dest)) {
      // Interception pins a fabricated customer route to the victim; it
      // never goes through classification (the hop is not an adjacency) and
      // stays stable under any churn of real candidates.
      best = Candidate{policy::RouteSource::kCustomer, 1, dest};
      best_path = Path{self(), dest};
    } else {
      best_path = use_cache ? best_candidate_cached(dest, best)
                            : best_candidate_scratch(dest, best);
    }

    const Path* cur = selected_.find(dest);
    const bool had = cur != nullptr;
    if (best_path && had && *cur == *best_path) continue;
    if (had) {
      const bool old_cone = cone_exportable(*selected_class_.find(dest));
      note_path_removed(dest, *cur, old_cone);
      remove_path_from_pgraph(local_, *cur);
      if (old_cone) cone_dests_.erase(dest);
    }
    if (best_path) {
      const bool new_cone = cone_exportable(best.source);
      add_path_to_pgraph(local_, *best_path);
      note_path_added(dest, *best_path, new_cone);
      if (new_cone) cone_dests_[dest] = 1;
      selected_[dest] = std::move(*best_path);
      selected_class_[dest] = best.source;
    } else if (had) {
      selected_.erase(dest);
      selected_class_.erase(dest);
    } else {
      continue;  // still no route
    }
    any_change = true;
  }
  return any_change;
}

// ----------------------------------------------------------------- export --

ExportedView CentaurNode::view_for(NodeId neighbor) const {
  const topo::Relationship rel_to = graph_.rel(self(), neighbor);
  DestFilter dest_allowed = [this, rel_to](NodeId dest) {
    const policy::RouteSource* source = selected_class_.find(dest);
    return source != nullptr && may_export(*source, rel_to);
  };
  LinkFilter link_allowed;
  if (config_.export_link_filter) {
    link_allowed = [this, neighbor](NodeId a, NodeId b) {
      return config_.export_link_filter(neighbor, a, b);
    };
  }
  return make_export_view(local_, dest_allowed, link_allowed);
}

void CentaurNode::flood() {
  if (config_.snapshot_sink &&
      (!changed_dests_.empty() || !touched_links_.empty())) {
    // Serving-plane publish (DESIGN.md §14.2): hand the dirty sets to the
    // snapshot sink before any flood branch consumes or clears them.  Runs
    // in handler context — the sink writes only this node's single-writer
    // snapshot cell, so lane-parallel floods stay race-free.
    config_.snapshot_sink(self(), local_, changed_dests_, touched_links_);
  }
  if (config_.export_link_filter) {
    // Legacy per-neighbor path: a custom link filter breaks the two-view
    // sharing, so recompute each neighbor's view in full (used by the
    // link-hiding examples; fine at example scale).
    touched_links_.clear();
    changed_dests_.clear();
    for (const topo::Neighbor& nb : graph_.neighbors(self())) {
      if (!neighbor_usable(nb.node)) continue;
      const ExportedView view = view_for(nb.node);
      bool first = false;
      ExportedView& stored = exported_custom_.ensure(nb.node, first);
      GraphDelta delta = diff_views(stored, view);
      if (first) delta.reset = true;
      if (delta.empty()) continue;
      stored = view;
      send_update(nb.node, std::make_shared<CentaurUpdate>(
                               std::move(delta), config_.bloom_plists));
    }
    return;
  }

  if (!config_.incremental) {
    // Scratch reference (CENTAUR_INCREMENTAL=0): rebuild both category
    // views in full and diff against the stored copies, ignoring the flood
    // scratch.  The transitions feed the same pending machinery as the
    // incremental path, so the wire stream is bit-identical.
    touched_links_.clear();
    changed_dests_.clear();
    const DestFilter cone_allowed = [this](NodeId dest) {
      const policy::RouteSource* source = selected_class_.find(dest);
      return source != nullptr && cone_exportable(*source);
    };
    record_view_transitions(exported_full_, pending_full_,
                            make_export_view(local_, nullptr));
    record_view_transitions(exported_cone_, pending_cone_,
                            make_export_view(local_, cone_allowed));
    dispatch_updates();
    return;
  }

  // Incrementally update the two category views from the flood scratch,
  // recording every view transition in the per-category pending deltas
  // (apply_link_transition / apply_dest_transition in announce.cpp hold
  // the per-key state machines).
  static const PermissionList kEmptyPlist;
  std::sort(touched_links_.begin(), touched_links_.end());
  touched_links_.erase(
      std::unique(touched_links_.begin(), touched_links_.end()),
      touched_links_.end());
  for (const DirectedLink& link : touched_links_) {
    // Full view: every link of the local P-graph, Permission List on the
    // wire only while the head is multi-homed.  One probe resolves both
    // presence and payload (find_link_data; the seed did has_link +
    // link_data).
    const PermissionList* full_now = nullptr;
    const LinkData* data = local_.find_link_data(link.from, link.to);
    const bool present = data != nullptr;
    const bool multi = present && local_.multi_homed(link.to);
    if (present) {
      full_now = multi ? &data->plist : &kEmptyPlist;
    }
    apply_link_transition(exported_full_, pending_full_, link, full_now);

    // Cone view: only links carrying cone-class destinations, with the
    // Permission List filtered to those destinations (cone_entries_ keeps
    // exactly that).
    const PermissionList* cone_now = nullptr;
    const PermissionList* ce = cone_entries_.find(pack_link(link.from, link.to));
    if (present && ce != nullptr && !ce->empty()) {
      cone_now = multi ? ce : &kEmptyPlist;
    }
    apply_link_transition(exported_cone_, pending_cone_, link, cone_now);
  }
  std::sort(changed_dests_.begin(), changed_dests_.end());
  changed_dests_.erase(
      std::unique(changed_dests_.begin(), changed_dests_.end()),
      changed_dests_.end());
  for (const NodeId dest : changed_dests_) {
    const bool full_now = selected_.count(dest) > 0;
    const bool cone_now = full_now && cone_dests_.count(dest) > 0;
    apply_dest_transition(exported_full_, pending_full_, dest, full_now);
    apply_dest_transition(exported_cone_, pending_cone_, dest, cone_now);
  }
  touched_links_.clear();
  changed_dests_.clear();
  dispatch_updates();
}

void CentaurNode::send_update(NodeId neighbor,
                              std::shared_ptr<const CentaurUpdate> msg) {
  if (!config_.batch_datagrams) {
    net().send(self(), neighbor, std::move(msg));
    return;
  }
  auto slot = std::find_if(outbox_.begin(), outbox_.end(),
                           [&](const auto& e) { return e.first == neighbor; });
  if (slot == outbox_.end()) {
    outbox_.emplace_back(neighbor,
                         std::vector<std::shared_ptr<const CentaurUpdate>>{});
    slot = std::prev(outbox_.end());
  }
  slot->second.push_back(std::move(msg));
  if (outbox_flush_scheduled_) return;
  outbox_flush_scheduled_ = true;
  // Zero-delay, like the coalescing flush: the batch leaves within the same
  // instant its members were emitted, so link delays (and thus arrival
  // times) are unchanged; tagged with self() because it only touches this
  // node's outbox.
  net().simulator().schedule_tagged(0, self(), [this] { flush_outbox(); });
}

void CentaurNode::flush_outbox() {
  outbox_flush_scheduled_ = false;
  for (auto& [neighbor, updates] : outbox_) {
    if (updates.size() == 1) {
      // A lone update keeps the single-delta framing: batching must never
      // cost bytes when there is nothing to batch.
      net().send(self(), neighbor, std::move(updates.front()));
    } else {
      net().send(self(), neighbor,
                 std::make_shared<CentaurBatchUpdate>(std::move(updates),
                                                      config_.bloom_plists));
    }
  }
  outbox_.clear();
}

void CentaurNode::dispatch_updates() {
  if (!config_.coalesce_updates) {
    flush_pending();
    return;
  }
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // Zero-delay: runs within the current instant's burst, after every event
  // already queued for it — deltas from same-instant floods merge, link
  // delays still start from the same simulated time.  Tagged with self():
  // the flush only reads/writes this node's pending deltas, so it can
  // batch-execute alongside other nodes' same-instant work.
  net().simulator().schedule_tagged(0, self(), [this] {
    flush_scheduled_ = false;
    flush_pending();
  });
}

void CentaurNode::flush_pending() {
  GraphDelta full_delta = pending_full_.take();
  GraphDelta cone_delta = pending_cone_.take();
  std::shared_ptr<const CentaurUpdate> full_msg, cone_msg;
  if (!full_delta.empty()) {
    full_msg = std::make_shared<CentaurUpdate>(std::move(full_delta),
                                               config_.bloom_plists);
  }
  if (!cone_delta.empty()) {
    cone_msg = std::make_shared<CentaurUpdate>(std::move(cone_delta),
                                               config_.bloom_plists);
  }
  // Baseline snapshots are shared per category too (built lazily: most
  // flushes have no uninitialized neighbor).
  std::shared_ptr<const CentaurUpdate> full_snap, cone_snap;
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    if (!neighbor_usable(nb.node)) continue;
    // A leaking node serves everyone the full view (the Gao-Rexford
    // violation under test); set_route_leak re-baselined the affected
    // sessions when it flipped the flag.
    const bool cone_nbr = !leak_all_ &&
                          (nb.rel == topo::Relationship::kPeer ||
                           nb.rel == topo::Relationship::kProvider);
    bool first = false;
    initialized_nbrs_.ensure(nb.node, first);
    if (first) {
      // First contact (or session restart): baseline snapshot — a reset
      // delta against the empty view, always sent (the reset itself is the
      // signal even when the view is empty).
      auto& snap = cone_nbr ? cone_snap : full_snap;
      if (!snap) {
        GraphDelta snapshot = diff_views(
            ExportedView{}, cone_nbr ? exported_cone_ : exported_full_);
        snapshot.reset = true;
        snap = std::make_shared<CentaurUpdate>(std::move(snapshot),
                                               config_.bloom_plists);
      }
      send_update(nb.node, snap);
    } else {
      const auto& msg = cone_nbr ? cone_msg : full_msg;
      if (msg) send_update(nb.node, msg);
    }
  }
}

// ----------------------------------------------------------------- events --

void CentaurNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (!neighbor_usable(from)) return;
  if (const auto* batch = dynamic_cast<const CentaurBatchUpdate*>(msg.get())) {
    // Members apply in send order; each is processed exactly as if it had
    // arrived in its own datagram.
    for (const auto& update : batch->updates()) process_delta(from, *update);
    return;
  }
  const auto* update = dynamic_cast<const CentaurUpdate*>(msg.get());
  if (update != nullptr) process_delta(from, *update);
}

void CentaurNode::process_delta(NodeId from, const CentaurUpdate& update) {
  const GraphDelta& delta = update.delta();

  bool inserted = false;
  NeighborState& state = rib_.ensure(from, inserted);
  if (inserted) {
    state.graph.reset(from);
    // Pre-size for the steady-state footprint (one entry per reachable
    // node/destination) so cold-start assembly avoids rehash cascades —
    // but only below the dense limit; at 100k+ nodes per-neighbor state
    // must stay content-sized (see util/node_map.hpp).
    const std::size_t n = graph_.num_nodes();
    state.graph.reserve(n, n < util::kNodeMapDenseLimit ? 2 * n : 0);
    if (n < util::kNodeMapDenseLimit) state.dests.reserve(n);
    state.chain_index.reserve_ids(n);
  }
  // A reset on a *live* session (re-baseline after an export-category
  // change, e.g. a route leak starting or stopping) keeps the derived
  // cache: the dirty union below re-walks every previously derived
  // destination against the rebuilt view, and refresh_derived() retires —
  // and de-indexes — the ones the new view no longer supports.  Clearing
  // the cache here instead would silently orphan selected paths whose
  // destination vanished with the reset (they would never re-enter the
  // dirty set, so reselect() would never run for them).

  LinkFilter import_filter;
  if (config_.import_link_filter) {
    import_filter = [this, from](NodeId a, NodeId b) {
      return config_.import_link_filter(from, a, b);
    };
  }
  const bool changed = apply_delta(state.graph, delta, self(), import_filter);
  if (!changed && !inserted) return;

  // Dirty destinations: a delta touching node X only affects derivations
  // whose backtracking chain visits X (failed walks are indexed too, so
  // formerly-underivable destinations are invalidated just as precisely),
  // plus destination-mark changes.
  std::vector<NodeId>& dirty = dirty_scratch_;
  dirty.clear();
  if (delta.reset || !config_.incremental) {
    // Session restart — or the scratch reference plane, which re-walks
    // every marked or previously derived destination on every delta
    // instead of consulting the chain index.
    dirty.assign(state.graph.destinations().begin(),
                 state.graph.destinations().end());
    for (const auto& [dest, ds] : state.dests) dirty.push_back(dest);
  } else {
    auto touch = [&](NodeId node) {
      if (const auto* idx = state.chain_index.find(node)) {
        dirty.insert(dirty.end(), idx->begin(), idx->end());
      }
    };
    for (const auto& [link, plist] : delta.upserts) touch(link.to);
    for (const DirectedLink& link : delta.removes) touch(link.to);
    for (const NodeId d : delta.dest_adds) dirty.push_back(d);
    for (const NodeId d : delta.dest_removes) dirty.push_back(d);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  const std::vector<NodeId> derived_changed = refresh_derived(state, dirty);
  if (derived_changed.empty()) return;
  if (reselect(derived_changed)) flood();
}

void CentaurNode::on_link_change(NodeId neighbor, bool up) {
  session_up_[neighbor] = up;
  if (!up) {
    std::vector<NodeId> affected;
    NeighborState* state = rib_.find(neighbor);
    if (state != nullptr) {
      for (const auto& [dest, ds] : state->dests) {
        if (!ds.path.empty()) affected.push_back(dest);
      }
      rib_.erase(neighbor);
    }
    // The derived cache iterates in hash-layout order; sort so reselect
    // walks destinations ascending like every other call site.
    std::sort(affected.begin(), affected.end());
    initialized_nbrs_.erase(neighbor);
    exported_custom_.erase(neighbor);
    if (reselect(affected)) flood();
    return;
  }
  // Session (re)establishment: send a baseline snapshot; the neighbor
  // cleared its state for us symmetrically and does the same.
  if (config_.export_link_filter) {
    const ExportedView view = view_for(neighbor);
    GraphDelta snapshot = diff_views(ExportedView{}, view);
    snapshot.reset = true;
    exported_custom_[neighbor] = view;
    if (!snapshot.empty()) {
      send_update(neighbor, std::make_shared<CentaurUpdate>(
                                std::move(snapshot), config_.bloom_plists));
    }
    return;
  }
  // Standard path: the flush notices the (now usable, uninitialized)
  // neighbor and owes it a baseline snapshot of its category view; going
  // through dispatch lets a same-instant snapshot share the flush event.
  dispatch_updates();
}

void CentaurNode::policy_changed() {
  if (reselect(known_dests())) flood();
}

// ------------------------------------------------- adversarial fault hooks --

void CentaurNode::set_route_leak(bool enabled) {
  if (leak_all_ == enabled) return;
  leak_all_ = enabled;
  // Peers and providers flip category view (cone <-> full): drop their
  // session baseline so the next flush re-sends a reset snapshot of the new
  // view.  Both category views are maintained regardless of the flag, so
  // the snapshot is always current.
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    if (nb.rel == topo::Relationship::kPeer ||
        nb.rel == topo::Relationship::kProvider) {
      initialized_nbrs_.erase(nb.node);
    }
  }
  dispatch_updates();
}

void CentaurNode::set_intercept(NodeId victim, bool enabled) {
  if (enabled == intercepting(victim)) return;
  if (enabled) {
    intercepted_[victim] = 1;
  } else {
    intercepted_.erase(victim);
  }
  if (reselect({victim})) flood();
}

void CentaurNode::set_ranking_override(policy::RankingOverride ranking) {
  config_.ranking = std::move(ranking);
  policy_changed();
}

void CentaurNode::relationships_changed() {
  // 1. The candidate summaries cache each derived path's classification;
  //    the relationships changed under them, so re-classify in place.
  //    (Flat containers expose const iteration only — collect keys first,
  //    then mutate through find().)
  std::vector<NodeId> nbrs;
  for (const auto& [nbr, state] : rib_) nbrs.push_back(nbr);
  for (const NodeId nbr : nbrs) {
    NeighborState* state = rib_.find(nbr);
    std::vector<NodeId>& dests = dirty_scratch_;
    dests.clear();
    for (const auto& [dest, ds] : state->dests) dests.push_back(dest);
    for (const NodeId dest : dests) {
      DestState* entry = state->dests.find(dest);
      if (!entry->path.empty() && entry->cand.usable) {
        entry->cand.source = classify_sub(graph_, self(), entry->path);
      }
    }
  }

  // 2. Rebuild the class cache and the cone bookkeeping wholesale for the
  //    current selections, so the removal half of any reselect below works
  //    against entries consistent with the new relationships.
  cone_entries_.clear();
  cone_dests_.clear();
  std::vector<NodeId> cur_dests;
  for (const auto& [dest, path] : selected_) cur_dests.push_back(dest);
  for (const NodeId dest : cur_dests) {
    const Path& path = *selected_.find(dest);
    policy::RouteSource source;
    if (dest == self()) {
      source = policy::RouteSource::kSelf;
    } else if (intercepting(dest)) {
      source = policy::RouteSource::kCustomer;
    } else {
      source = classify_path(graph_, path);
    }
    selected_class_[dest] = source;
    if (!cone_exportable(source)) continue;
    cone_dests_[dest] = 1;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const NodeId next = (i + 2 < path.size()) ? path[i + 2] : kNoNextHop;
      cone_entries_[pack_link(path[i], path[i + 1])].add(dest, next);
    }
  }

  // 3. Re-rank everything under the new preference classes.
  reselect(known_dests());

  // 4. Neighbor export categories may have flipped (a peer became a
  //    customer), and view content changes even for unchanged selections.
  //    Re-baseline every session against full-view rebuilds: the scratch
  //    reference flood diffs both category views in full, and the flush
  //    owes each (now uninitialized) neighbor a reset snapshot of its new
  //    category view.
  if (config_.export_link_filter) {
    flood();  // legacy per-neighbor views are recomputed in full anyway
    return;
  }
  for (const topo::Neighbor& nb : graph_.neighbors(self())) {
    initialized_nbrs_.erase(nb.node);
  }
  const bool incremental = config_.incremental;
  config_.incremental = false;
  flood();
  config_.incremental = incremental;
}

void CentaurNode::for_each_selected_route(
    const std::function<void(NodeId dest, const Path& path)>& fn) const {
  for (const auto& [dest, path] : selected_) fn(dest, path);
}

std::vector<NodeId> CentaurNode::known_dests() const {
  std::vector<NodeId> dests;
  for (const auto& [nbr, state] : rib_) {
    dests.insert(dests.end(), state.graph.destinations().begin(),
                 state.graph.destinations().end());
  }
  for (const auto& [dest, path] : selected_) dests.push_back(dest);
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  return dests;
}

const PGraph* CentaurNode::neighbor_pgraph(NodeId neighbor) const {
  const NeighborState* state = rib_.find(neighbor);
  return state == nullptr ? nullptr : &state->graph;
}

std::vector<NodeId> CentaurNode::rib_neighbors() const {
  std::vector<NodeId> out;
  out.reserve(rib_.size());
  for (const auto& [nbr, state] : rib_) out.push_back(nbr);
  return out;
}

const CentaurNode::DestCache* CentaurNode::neighbor_derived(
    NodeId neighbor) const {
  const NeighborState* state = rib_.find(neighbor);
  return state == nullptr ? nullptr : &state->dests;
}

std::optional<Path> CentaurNode::selected_path(NodeId dest) const {
  const Path* path = selected_.find(dest);
  if (path == nullptr) return std::nullopt;
  return *path;
}

}  // namespace centaur::core
