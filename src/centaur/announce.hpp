// Downstream link announcements (paper S3.2.1, S4.3).
//
// Centaur nodes exchange *directed downstream links* — never full paths.
// This module defines:
//   * ExportedView — the subgraph of a local P-graph that one neighbor is
//     allowed to see after export filtering (Exp in the protocol flow);
//   * GraphDelta — the incremental per-link update message body (Step 5):
//     link upserts (with Permission Lists), link removes (root-cause
//     withdrawals), and destination-mark changes;
//   * diff_views — computes the delta between two exported views (the
//     paper's counter mechanism produces exactly this set: a link leaves
//     the view when no selected exported path contains it any longer);
//   * apply_delta — the import side (Imp): drops links pointing at the
//     importer, applies the import filter, and merges into the stored
//     per-neighbor P-graph (the G'_{B->A} equation of S4.3.2).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "centaur/pgraph.hpp"

namespace centaur::core {

/// Filter deciding whether a directed link may cross a boundary.
using LinkFilter = std::function<bool(NodeId from, NodeId to)>;

/// Filter deciding whether a destination may be announced.
using DestFilter = std::function<bool(NodeId dest)>;

/// What one neighbor sees of a local P-graph: announced links with their
/// (active, destination-filtered) Permission Lists, plus destination marks.
struct ExportedView {
  std::map<DirectedLink, PermissionList> links;
  std::set<NodeId> destinations;

  bool operator==(const ExportedView&) const = default;
  bool empty() const { return links.empty() && destinations.empty(); }
};

/// Incremental update message body.  `upserts` carries new links and links
/// whose Permission List changed (the new list is authoritative);
/// `removes` carries root-cause link withdrawals.
struct GraphDelta {
  bool reset = false;  ///< session (re)start: clear the stored graph first
  std::vector<std::pair<DirectedLink, PermissionList>> upserts;
  std::vector<DirectedLink> removes;
  std::vector<NodeId> dest_adds;
  std::vector<NodeId> dest_removes;

  bool empty() const {
    return !reset && upserts.empty() && removes.empty() &&
           dest_adds.empty() && dest_removes.empty();
  }

  /// Approximate wire size; `bloom_compressed` selects the Permission-List
  /// encoding (S4.1).
  std::size_t byte_size(bool bloom_compressed) const;
};

/// Export side: the view of `local` a neighbor may see.
///
/// A link is announced iff (a) at least one destination permitted by
/// `dest_allowed` routes through it (the destination sets recorded by
/// BuildGraph tell us which), and (b) `link_allowed` accepts it.  Announced
/// links whose head is multi-homed in `local` carry their Permission List
/// filtered to the allowed destinations.  Destination marks are the local
/// marks that pass `dest_allowed`.
ExportedView make_export_view(const PGraph& local,
                              const DestFilter& dest_allowed,
                              const LinkFilter& link_allowed = nullptr);

/// The incremental update turning `before` into `after`.
GraphDelta diff_views(const ExportedView& before, const ExportedView& after);

/// Import side: merges `delta` (received from the owner of `g`) into the
/// stored per-neighbor P-graph.  Links pointing at `self` are removed for
/// loop elimination (Step 2), then `import_allowed` (if set) filters the
/// rest.  Returns true if anything changed.
bool apply_delta(PGraph& g, const GraphDelta& delta, NodeId self,
                 const LinkFilter& import_allowed = nullptr);

}  // namespace centaur::core
