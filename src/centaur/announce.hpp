// Downstream link announcements (paper S3.2.1, S4.3).
//
// Centaur nodes exchange *directed downstream links* — never full paths.
// This module defines:
//   * ExportedView — the subgraph of a local P-graph that one neighbor is
//     allowed to see after export filtering (Exp in the protocol flow);
//   * GraphDelta — the incremental per-link update message body (Step 5):
//     link upserts (with Permission Lists), link removes (root-cause
//     withdrawals), and destination-mark changes;
//   * diff_views — computes the delta between two exported views (the
//     paper's counter mechanism produces exactly this set: a link leaves
//     the view when no selected exported path contains it any longer);
//   * apply_delta — the import side (Imp): drops links pointing at the
//     importer, applies the import filter, and merges into the stored
//     per-neighbor P-graph (the G'_{B->A} equation of S4.3.2);
//   * PendingDelta — the outbound coalescing slot: merges every change
//     recorded within one simulated instant into one net delta, with
//     counter-style cancellation (an added link that is removed again in
//     the same burst vanishes from the wire entirely).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "centaur/pgraph.hpp"
#include "util/flat_map.hpp"
#include "util/small_vec.hpp"

namespace centaur::core {

/// Filter deciding whether a directed link may cross a boundary.
using LinkFilter = std::function<bool(NodeId from, NodeId to)>;

/// Filter deciding whether a destination may be announced.
using DestFilter = std::function<bool(NodeId dest)>;

/// What one neighbor sees of a local P-graph: announced links with their
/// (active, destination-filtered) Permission Lists, plus destination marks.
/// Links live in a flat hash table keyed by the packed (from,to) u64;
/// destination marks in a sorted small-vector (DESIGN.md §5.1).
struct ExportedView {
  util::FlatMap<std::uint64_t, PermissionList> links;
  util::SmallVec<NodeId, 8> destinations;  // sorted ascending

  bool empty() const { return links.empty() && destinations.empty(); }
  const PermissionList* find_link(NodeId from, NodeId to) const {
    return links.find(pack_link(from, to));
  }
  bool has_link(NodeId from, NodeId to) const {
    return links.count(pack_link(from, to)) > 0;
  }
  bool has_dest(NodeId dest) const {
    return util::sorted_contains(destinations, dest);
  }

  /// Content equality; link iteration order is irrelevant.
  bool operator==(const ExportedView& other) const;
};

/// Incremental update message body.  `upserts` carries new links and links
/// whose Permission List changed (the new list is authoritative);
/// `removes` carries root-cause link withdrawals.
struct GraphDelta {
  bool reset = false;  ///< session (re)start: clear the stored graph first
  std::vector<std::pair<DirectedLink, PermissionList>> upserts;
  std::vector<DirectedLink> removes;
  std::vector<NodeId> dest_adds;
  std::vector<NodeId> dest_removes;

  bool empty() const {
    return !reset && upserts.empty() && removes.empty() &&
           dest_adds.empty() && dest_removes.empty();
  }

  /// Exact wire size: the length wire::encode() produces for this delta;
  /// `bloom_compressed` selects the Permission-List encoding (S4.1).
  std::size_t byte_size(bool bloom_compressed) const;
};

/// Export side: the view of `local` a neighbor may see.
///
/// A link is announced iff (a) at least one destination permitted by
/// `dest_allowed` routes through it (the destination sets recorded by
/// BuildGraph tell us which), and (b) `link_allowed` accepts it.  Announced
/// links whose head is multi-homed in `local` carry their Permission List
/// filtered to the allowed destinations.  Destination marks are the local
/// marks that pass `dest_allowed`.
ExportedView make_export_view(const PGraph& local,
                              const DestFilter& dest_allowed,
                              const LinkFilter& link_allowed = nullptr);

/// The incremental update turning `before` into `after`.  Sections come out
/// sorted ascending (by packed link key / node id) — the codec's canonical
/// order.
GraphDelta diff_views(const ExportedView& before, const ExportedView& after);

/// Import side: merges `delta` (received from the owner of `g`) into the
/// stored per-neighbor P-graph.  Links pointing at `self` are removed for
/// loop elimination (Step 2), then `import_allowed` (if set) filters the
/// rest.  Returns true if anything changed.
bool apply_delta(PGraph& g, const GraphDelta& delta, NodeId self,
                 const LinkFilter& import_allowed = nullptr);

class PendingDelta;

/// Incremental export maintenance: applies one link transition to `view`
/// and records it in `pending`.  `now` points at the link's exported
/// Permission List after the change; nullptr means the link leaves the
/// view.  A key has no pending slot iff receivers already match the view,
/// so `receiver_has_link` on a fresh slot is exactly "the view had the
/// link".  Pointer semantics keep the common no-change probe copy-free —
/// the Permission List is only copied when the view actually edits.
void apply_link_transition(ExportedView& view, PendingDelta& pending,
                           const DirectedLink& link,
                           const PermissionList* now);

/// Destination-mark counterpart: `now` says whether `dest` belongs to the
/// view after the change; no-ops (and records nothing) when the view
/// already agrees.
void apply_dest_transition(ExportedView& view, PendingDelta& pending,
                           NodeId dest, bool now);

/// Scratch reference for the incremental export plane: replaces `view`
/// with `now`, feeding every transition between them through the same
/// per-key recording machinery the incremental path uses — the resulting
/// wire deltas are bit-identical (CENTAUR_INCREMENTAL=0 floods use this).
void record_view_transitions(ExportedView& view, PendingDelta& pending,
                             const ExportedView& now);

/// Outbound coalescing slot: accumulates the view changes recorded since the
/// last flush and yields their *net* effect as one canonical delta.
///
/// The recording node guarantees stream consistency (each record describes a
/// real transition of its exported view), which makes merging a per-key
/// state machine:
///   * a link added and removed in the same burst cancels to nothing;
///   * a plist change followed by a remove collapses to the remove;
///   * a remove followed by a re-add becomes a plist change (the receiver
///     still holds the link, so it must not be double-counted as new);
///   * destination add+remove (either order) cancels.
/// Invariant: a key has no slot here iff the receiver's copy already matches
/// the sender's current view for that key.
class PendingDelta {
 public:
  /// Records a link upsert; `receiver_has_link` says whether the receivers
  /// already hold the link (i.e. this is a Permission-List change, not a new
  /// link) — only consulted when the link has no pending slot yet.
  void record_upsert(const DirectedLink& link, const PermissionList& plist,
                     bool receiver_has_link);
  void record_remove(const DirectedLink& link);
  void record_dest_add(NodeId dest);
  void record_dest_remove(NodeId dest);

  bool empty() const { return links_.empty() && dests_.empty(); }
  void clear() {
    links_.clear();
    dests_.clear();
  }

  /// The net delta, sections sorted ascending; leaves the slot empty.
  GraphDelta take();

 private:
  enum class LinkOp : std::uint8_t { kAdd, kChange, kRemove };
  struct LinkSlot {
    LinkOp op = LinkOp::kAdd;
    PermissionList plist;
  };
  enum : std::uint8_t { kDestAdd = 0, kDestRemove = 1 };

  util::FlatMap<std::uint64_t, LinkSlot> links_;
  util::FlatMap<NodeId, std::uint8_t> dests_;
};

}  // namespace centaur::core
