// BuildGraph (paper S4.2, Table 2): construct a local P-graph, with
// Permission Lists and per-link path counters, from a selected path set.
#pragma once

#include <stdexcept>

#include "centaur/pgraph.hpp"

namespace centaur::core {

/// Incremental form of BuildGraph's inner loop: merges one selected path
/// (root..dest) into `g` — links, counters, and permission entries.
/// Precondition: path runs g.root()..dest.
void add_path_to_pgraph(PGraph& g, const Path& path);

/// Inverse of add_path_to_pgraph: decrements counters, removes the path's
/// permission entries, unmarks the destination, and drops links whose
/// counter reaches zero (S4.3.2's counter rule).  Precondition: the exact
/// path was previously added and not yet removed.
void remove_path_from_pgraph(PGraph& g, const Path& path);

/// Builds the local P-graph of `root` from its selected paths.
///
/// `selected` is any container iterable as (destination, path) pairs — the
/// node's own selected-path table or an ad-hoc vector of pairs; every path
/// must start at `root` and end at its destination (std::invalid_argument
/// otherwise).  The trivial path {root} marks `root` itself as a
/// destination.
///
/// Per Table 2, for every link A->B on the path for destination D a
/// permission entry (D, nextHop(B)) is recorded; entries are *active* (shown
/// to DerivePath and announcements) only while B is multi-homed, which also
/// realises S4.3.2's rule that Permission Lists appear when a node becomes
/// multi-homed and disappear when it reverts to single-homed.  Link counters
/// are set to the number of selected paths traversing each link.
template <typename SelectedPaths>
PGraph build_local_pgraph(NodeId root, const SelectedPaths& selected) {
  PGraph g(root);
  for (const auto& [dest, path] : selected) {
    if (path.empty() || path.front() != root || path.back() != dest) {
      throw std::invalid_argument("build_local_pgraph: path must run root..dest");
    }
    add_path_to_pgraph(g, path);
  }
  return g;
}

/// Minimal Permission-List scheme (the paper's Figure 4(c)): for every
/// multi-homed node, the in-link carrying the most destinations becomes the
/// unlisted *default* link (ties to the lowest parent id); the other
/// in-links keep their explicit entries.  DerivePath resolves a multi-homed
/// node by explicit permission first and falls back to the single unlisted
/// link, so derived paths are unchanged — this purely shrinks announcement
/// state (Table 4 counts one Permission List per *extra* in-link under this
/// scheme).  Returns the number of lists cleared.
std::size_t minimize_permission_lists(PGraph& g);

/// Incremental form: re-runs the per-head minimization only for the listed
/// candidate heads (non-multi-homed entries are skipped; duplicates within
/// one call are deduplicated).  Each head's minimization reads and writes
/// only that head's in-links, so partitioning the heads across calls in any
/// order equals one full pass.  Precondition: every listed head carries
/// canonical (not yet minimized) permission entries — minimization is not
/// idempotent (a cleared default link would demote itself on a re-run), so
/// a head must appear in at most one batch between graph edits that touch
/// its in-links.  Returns the number of lists cleared.
std::size_t minimize_permission_lists_at(PGraph& g,
                                         std::vector<NodeId> heads);

}  // namespace centaur::core
