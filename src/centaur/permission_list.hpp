// Permission Lists (paper S4.1) — the key Centaur data structure.
//
// A Permission List is attached to a link A->B when B is multi-homed (has
// more than one parent) in a P-graph.  It enumerates exactly the
// policy-compliant paths that may traverse A->B, in the compact
// "per-dest-next" encoding: each entry is a (destination set, next hop of B)
// pair; destinations sharing B's next hop are grouped into one entry.  The
// destination where B itself is the target uses the kNoNextHop sentinel
// (B has no next hop on that path).
//
// The theoretically-equivalent "exhaustive per-path" encoding (used in the
// paper's expressiveness proof, Claim 1) is also provided for the ablation
// benches, together with an optional Bloom-compressed destination-set view
// for size accounting (S4.1 suggests Bloom filters; Table 5 sizes assume
// them).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "topology/types.hpp"
#include "util/bloom.hpp"

namespace centaur::core {

using topo::NodeId;
using topo::Path;

/// Sentinel "next hop" used when the multi-homed node is itself the
/// destination of the permitted path.
inline constexpr NodeId kNoNextHop = topo::kInvalidNode;

/// Per-dest-next Permission List.
class PermissionList {
 public:
  /// Permits destination `dest` via `next_hop` (the next hop of the
  /// multi-homed link head on the permitted path; kNoNextHop when the head
  /// is the destination).  Idempotent.
  void add(NodeId dest, NodeId next_hop);

  /// Revokes a permission.  Returns true if the pair was present.
  bool remove(NodeId dest, NodeId next_hop);

  /// Drops every permission for `dest` regardless of next hop.
  /// Returns the number of pairs removed.
  std::size_t remove_dest(NodeId dest);

  /// The Permit(D, next) predicate of the DerivePath algorithm (Table 1).
  bool permits(NodeId dest, NodeId next_hop) const;

  /// Number of (destination-list, next-hop) pair entries — the quantity
  /// whose distribution the paper reports in Table 5.
  std::size_t entry_count() const { return by_next_.size(); }

  /// Total destinations across all entries.
  std::size_t dest_count() const;

  bool empty() const { return by_next_.empty(); }

  /// One encoded entry: a next hop and its grouped destination list.
  struct Entry {
    NodeId next_hop;
    std::vector<NodeId> dests;  // ascending
  };

  /// Entries in ascending next-hop order (deterministic wire order).
  std::vector<Entry> entries() const;

  /// Copy retaining only destinations accepted by `keep_dest` (export
  /// filtering prunes permissions for destinations not announced).
  PermissionList filtered(
      const std::function<bool(NodeId dest)>& keep_dest) const;

  /// True if any recorded destination satisfies `pred` — an allocation-free
  /// "would filtered() be non-empty" test for export decisions.
  template <typename Pred>
  bool any_dest(Pred&& pred) const {
    for (const auto& [next, dests] : by_next_) {
      for (NodeId d : dests) {
        if (pred(d)) return true;
      }
    }
    return false;
  }

  /// Approximate wire size in bytes.  Uncompressed: 4 bytes per next hop +
  /// 4 per destination.  Bloom-compressed (paper S4.1): 4 bytes per next
  /// hop + one fixed-size filter per entry sized for its destination count
  /// at 1% false positives.
  std::size_t byte_size(bool bloom_compressed) const;

  /// Builds the Bloom-compressed representation of one entry's destination
  /// list (used by the ablation bench to measure real FP behaviour).
  static util::BloomFilter compress_dests(const std::vector<NodeId>& dests,
                                          double fp_rate = 0.01);

  bool operator==(const PermissionList& other) const {
    return by_next_ == other.by_next_;
  }

 private:
  // next hop -> destination set; std::map for deterministic iteration.
  std::map<NodeId, std::set<NodeId>> by_next_;
};

/// Exhaustive per-path encoding (paper S4.1, S6.1): one full path per
/// permitted traversal.  Used only for the expressiveness/ablation
/// comparison — per-dest-next is what the protocol ships.
class ExhaustivePermissionList {
 public:
  void add(const Path& path);
  bool permits(const Path& path) const;
  std::size_t path_count() const { return paths_.size(); }
  std::size_t byte_size() const;

 private:
  std::set<Path> paths_;
};

}  // namespace centaur::core
