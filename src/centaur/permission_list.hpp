// Permission Lists (paper S4.1) — the key Centaur data structure.
//
// A Permission List is attached to a link A->B when B is multi-homed (has
// more than one parent) in a P-graph.  It enumerates exactly the
// policy-compliant paths that may traverse A->B, in the compact
// "per-dest-next" encoding: each entry is a (destination set, next hop of B)
// pair; destinations sharing B's next hop are grouped into one entry.  The
// destination where B itself is the target uses the kNoNextHop sentinel
// (B has no next hop on that path).
//
// The theoretically-equivalent "exhaustive per-path" encoding (used in the
// paper's expressiveness proof, Claim 1) is also provided for the ablation
// benches, together with an optional Bloom-compressed destination-set view
// for size accounting (S4.1 suggests Bloom filters; Table 5 sizes assume
// them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "topology/types.hpp"
#include "util/bloom.hpp"
#include "util/small_vec.hpp"

namespace centaur::core {

using topo::NodeId;
using topo::Path;

/// Sentinel "next hop" used when the multi-homed node is itself the
/// destination of the permitted path.
inline constexpr NodeId kNoNextHop = topo::kInvalidNode;

/// Per-dest-next Permission List.
///
/// Storage (DESIGN.md §5.1): one sorted small-vector of packed
/// (next_hop << 32 | dest) entries.  The hot node path copies Permission
/// Lists constantly — into exported views, pending deltas, and per-neighbor
/// graphs — so the former std::map<NodeId, std::set<NodeId>> representation
/// paid an allocation per destination per copy; the packed vector copies
/// with one memcpy and keeps the identical deterministic order (next hop
/// ascending with kNoNextHop last, destinations ascending within a next
/// hop), so announcements and wire bytes are unchanged.
class PermissionList {
 public:
  /// Permits destination `dest` via `next_hop` (the next hop of the
  /// multi-homed link head on the permitted path; kNoNextHop when the head
  /// is the destination).  Idempotent.
  void add(NodeId dest, NodeId next_hop) {
    util::sorted_insert(pairs_, pack_pair(next_hop, dest));
  }

  /// Revokes a permission.  Returns true if the pair was present.
  bool remove(NodeId dest, NodeId next_hop) {
    return util::sorted_erase(pairs_, pack_pair(next_hop, dest));
  }

  /// Drops every permission for `dest` regardless of next hop.
  /// Returns the number of pairs removed.
  std::size_t remove_dest(NodeId dest);

  /// The Permit(D, next) predicate of the DerivePath algorithm (Table 1).
  /// Inline: called ~10x per multi-homed hop of every derivation.
  bool permits(NodeId dest, NodeId next_hop) const {
    return util::sorted_contains(pairs_, pack_pair(next_hop, dest));
  }

  /// Number of (destination-list, next-hop) pair entries — the quantity
  /// whose distribution the paper reports in Table 5.
  std::size_t entry_count() const;

  /// Total destinations across all entries.
  std::size_t dest_count() const { return pairs_.size(); }

  bool empty() const { return pairs_.empty(); }

  /// One encoded entry: a next hop and its grouped destination list.
  struct Entry {
    NodeId next_hop;
    std::vector<NodeId> dests;  // ascending
  };

  /// Entries in ascending next-hop order (deterministic wire order).
  std::vector<Entry> entries() const;

  /// Copy retaining only destinations accepted by `keep_dest` (export
  /// filtering prunes permissions for destinations not announced).
  PermissionList filtered(
      const std::function<bool(NodeId dest)>& keep_dest) const;

  /// True if any recorded destination satisfies `pred` — an allocation-free
  /// "would filtered() be non-empty" test for export decisions.
  template <typename Pred>
  bool any_dest(Pred&& pred) const {
    for (const std::uint64_t pair : pairs_) {
      if (pred(pair_dest(pair))) return true;
    }
    return false;
  }

  /// Approximate wire size in bytes.  Uncompressed: 4 bytes per next hop +
  /// 4 per destination.  Bloom-compressed (paper S4.1): 4 bytes per next
  /// hop + one fixed-size filter per entry sized for its destination count
  /// at 1% false positives.
  std::size_t byte_size(bool bloom_compressed) const;

  /// Builds the Bloom-compressed representation of one entry's destination
  /// list (used by the ablation bench to measure real FP behaviour).
  static util::BloomFilter compress_dests(const std::vector<NodeId>& dests,
                                          double fp_rate = 0.01);

  bool operator==(const PermissionList& other) const {
    return pairs_ == other.pairs_;
  }

 private:
  static constexpr std::uint64_t pack_pair(NodeId next_hop, NodeId dest) {
    return (std::uint64_t{next_hop} << 32) | std::uint64_t{dest};
  }
  static constexpr NodeId pair_next(std::uint64_t pair) {
    return static_cast<NodeId>(pair >> 32);
  }
  static constexpr NodeId pair_dest(std::uint64_t pair) {
    return static_cast<NodeId>(pair & 0xFFFFFFFFULL);
  }

  // Packed (next_hop, dest) permissions, sorted ascending; most lists hold
  // a handful of pairs, so they stay inline inside LinkData.
  util::SmallVec<std::uint64_t, 3> pairs_;
};

/// Exhaustive per-path encoding (paper S4.1, S6.1): one full path per
/// permitted traversal.  Used only for the expressiveness/ablation
/// comparison — per-dest-next is what the protocol ships.
class ExhaustivePermissionList {
 public:
  void add(const Path& path);
  bool permits(const Path& path) const;
  std::size_t path_count() const { return paths_.size(); }
  std::size_t byte_size() const;

 private:
  std::set<Path> paths_;
};

}  // namespace centaur::core
