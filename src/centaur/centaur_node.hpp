// The Centaur protocol node (paper S4.3): one instance per AS, running on
// the discrete-event simulator.
//
// Protocol flow implemented here:
//   Initialization (Steps 1-4): on start() each node originates itself as a
//   destination and announces export-filtered views of its local P-graph to
//   every neighbor; on receiving announcements it assembles per-neighbor
//   P-graphs in its RIB, runs the local solver (derive candidate paths via
//   DerivePath, rank them under Gao-Rexford preferences plus any local
//   ranking override), rebuilds its local P-graph with BuildGraph, and
//   re-announces.
//   Steady phase (Step 5): every state change is flooded as an incremental
//   per-link GraphDelta; a failed adjacent link leaves the selected path
//   set, so its withdrawal (the root cause) propagates as a single link
//   remove per neighbor instead of per-destination withdrawals.
//
// The paper computes deltas with per-link counters that hit zero when no
// selected path uses a link; we rebuild the local P-graph (counters
// included) and diff consecutive exported views, which yields exactly the
// same delta with less mutable state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "centaur/announce.hpp"
#include "centaur/build_graph.hpp"
#include "policy/policy.hpp"
#include "policy/valley_free.hpp"
#include "sim/network.hpp"
#include "util/flat_map.hpp"
#include "util/small_vec.hpp"

namespace centaur::core {

/// Wire message: one incremental update (Step 5) or initial announcement
/// (Steps 1/4, a delta against the empty view with reset set).
///
/// Immutable once constructed, so one instance is shared (by shared_ptr)
/// across every neighbor of an export class; the exact encoded length is
/// computed once here instead of per byte_size() query per receiver.
class CentaurUpdate : public sim::Message {
 public:
  CentaurUpdate(GraphDelta delta, bool bloom_compressed)
      : delta_(std::move(delta)),
        bloom_(bloom_compressed),
        byte_size_(delta_.byte_size(bloom_compressed)) {}

  const GraphDelta& delta() const { return delta_; }
  bool bloom_compressed() const { return bloom_; }
  std::size_t byte_size() const override { return byte_size_; }
  std::string describe() const override;

 private:
  GraphDelta delta_;
  bool bloom_;
  std::size_t byte_size_;
};

class CentaurNode : public sim::Node {
 public:
  struct Config {
    /// Announce the node's own prefix (true for all experiment nodes).
    bool originate_prefix = true;
    /// Account Permission-List bytes as Bloom-compressed (S4.1).
    bool bloom_plists = false;
    /// Merge every delta emitted within one simulated instant into a single
    /// net update per neighbor before sending (flushed through a zero-delay
    /// event, so arrival times are unchanged).  Off: send inline per flood,
    /// the seed behavior.
    bool coalesce_updates = true;
    /// Extra export-side link filter: may link from->to be announced to
    /// `neighbor`?  Applied on top of the Gao-Rexford destination-based
    /// export rule.  Null means allow.
    std::function<bool(topo::NodeId neighbor, NodeId from, NodeId to)>
        export_link_filter;
    /// Import-side link filter (Imp in S4.3); null means allow.
    std::function<bool(topo::NodeId neighbor, NodeId from, NodeId to)>
        import_link_filter;
    /// Optional local ranking override (e.g. the paper's Fig 4 scenario
    /// where C prefers <C,A,B,D> over <C,D>).  Falls back to the standard
    /// Gao-Rexford ranking when null or when it reports no preference both
    /// ways.
    policy::RankingOverride ranking;
  };

  explicit CentaurNode(const topo::AsGraph& graph);
  CentaurNode(const topo::AsGraph& graph, Config config);

  void start() override;
  void on_message(topo::NodeId from, const sim::MessagePtr& msg) override;
  void on_link_change(topo::NodeId neighbor, bool up) override;

  /// Re-runs selection and floods any resulting deltas — used to inject
  /// policy changes (S4.3.2 treats those like link-state changes).
  void policy_changed();

  /// Derived-path cache: flat hash map dest -> path (DESIGN.md §5).
  using PathCache = util::FlatMap<NodeId, Path>;

  // --- inspection (tests, experiments, invariant checker) -----------------
  const PGraph& local_pgraph() const { return local_; }
  /// The assembled P-graph received from `neighbor`, if any.
  const PGraph* neighbor_pgraph(topo::NodeId neighbor) const;
  std::optional<Path> selected_path(NodeId dest) const;
  const std::map<NodeId, Path>& selected_paths() const { return selected_; }
  /// Neighbors with assembled RIB state, ascending.
  std::vector<topo::NodeId> rib_neighbors() const;
  /// The derived-path cache kept for `neighbor`'s P-graph (successful
  /// derivations only), or nullptr if there is no RIB state for it.
  const PathCache* neighbor_derived(topo::NodeId neighbor) const;

 private:
  /// Per-neighbor RIB state: the assembled P-graph plus caches that make
  /// steady-phase processing incremental — the derived path per marked
  /// destination, an index from chain nodes to the destinations whose
  /// derived walk visits them (a delta touching node X can only change
  /// derivations walking through X), and the set of marked-but-underivable
  /// destinations (rechecked whenever links appear).
  /// All three caches are flat hash maps (the seed used node-based
  /// std::map); chain-index destination sets are sorted small-vectors.
  struct NeighborState {
    explicit NeighborState(topo::NodeId root) : graph(root) {}
    PGraph graph;       // G_{B->self}
    PathCache derived;  // dest -> path B..dest (successes)
    /// Nodes examined by each destination's derivation walk — recorded for
    /// failed walks too (the outcome can only change when an in-link of a
    /// walked node changes, so this is a precise invalidation set).
    util::FlatMap<NodeId, std::vector<NodeId>> chains;
    /// node -> dests whose walk visits it (sorted ascending).
    util::FlatMap<NodeId, util::SmallVec<NodeId, 4>> chain_index;
  };

  ExportedView view_for(topo::NodeId neighbor) const;
  bool neighbor_usable(topo::NodeId neighbor) const;
  /// Re-derives `dests` in `state`, returning those whose result changed.
  std::set<NodeId> refresh_derived(NeighborState& state,
                                   const std::set<NodeId>& dests);
  /// Re-selects routes for `dests`; updates selected_/local_, the class
  /// cache, the cone-entry side map, and the flood scratch (touched links +
  /// changed destinations).  Returns true if any selection changed.
  bool reselect(const std::set<NodeId>& dests);
  /// Applies the flood scratch to the two category views, records the
  /// resulting changes in the pending per-category deltas, and dispatches.
  /// Always call after reselect() so the category views never go stale.
  void flood();
  /// Sends pending updates: inline when coalescing is off, else through one
  /// zero-delay flush event per node per instant (same-burst deltas merge).
  void dispatch_updates();
  /// Materializes at most two shared payloads (full/cone) from the pending
  /// deltas and fans them out; uninitialized usable neighbors get a shared
  /// baseline snapshot of their category view instead.
  void flush_pending();
  /// Records a changed selection for dest (old path out, new path in) in
  /// the flood scratch and cone-entry map.
  void note_path_removed(NodeId dest, const Path& path, bool cone_class);
  void note_path_added(NodeId dest, const Path& path, bool cone_class);
  /// All destinations any neighbor currently derives or marks.
  std::set<NodeId> known_dests() const;

  const topo::AsGraph& graph_;
  Config config_;
  std::map<topo::NodeId, NeighborState> rib_;
  std::map<topo::NodeId, bool> session_up_;  // adjacency/session state
  PGraph local_;                             // G_self
  std::map<NodeId, Path> selected_;
  std::map<NodeId, policy::RouteSource> selected_class_;  // classify cache

  // Export machinery.  Under Gao-Rexford there are exactly two distinct
  // exported views: customers/siblings see every selected route ("full"),
  // peers/providers see only self/customer/sibling-class routes ("cone").
  // Both views are maintained incrementally from the flood scratch, so a
  // steady-phase update costs O(touched links), not O(P-graph).
  // cone_entries_ mirrors local_'s permission entries restricted to
  // cone-class destinations (it tells both which links the cone view
  // carries and with which filtered Permission List); all side state is on
  // flat containers (DESIGN.md §5.1), keyed by packed links / node ids.
  ExportedView exported_full_;
  ExportedView exported_cone_;
  util::FlatMap<std::uint64_t, PermissionList> cone_entries_;
  util::FlatMap<NodeId, std::uint8_t> cone_dests_;          // used as a set
  util::FlatMap<topo::NodeId, std::uint8_t> initialized_nbrs_;  // got snapshot
  // Flood scratch, filled by reselect(); duplicates fine, flood() dedups.
  std::vector<DirectedLink> touched_links_;
  std::vector<NodeId> changed_dests_;
  // Outbound coalescing (Step 5 batching): per-category net deltas pending
  // since the last flush, plus whether a flush event is already queued for
  // the current instant.
  PendingDelta pending_full_;
  PendingDelta pending_cone_;
  bool flush_scheduled_ = false;
  // Legacy per-neighbor views, used only with a custom export_link_filter.
  std::map<topo::NodeId, ExportedView> exported_custom_;
};

}  // namespace centaur::core
