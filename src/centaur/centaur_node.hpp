// The Centaur protocol node (paper S4.3): one instance per AS, running on
// the discrete-event simulator.
//
// Protocol flow implemented here:
//   Initialization (Steps 1-4): on start() each node originates itself as a
//   destination and announces export-filtered views of its local P-graph to
//   every neighbor; on receiving announcements it assembles per-neighbor
//   P-graphs in its RIB, runs the local solver (derive candidate paths via
//   DerivePath, rank them under Gao-Rexford preferences plus any local
//   ranking override), rebuilds its local P-graph with BuildGraph, and
//   re-announces.
//   Steady phase (Step 5): every state change is flooded as an incremental
//   per-link GraphDelta; a failed adjacent link leaves the selected path
//   set, so its withdrawal (the root cause) propagates as a single link
//   remove per neighbor instead of per-destination withdrawals.
//
// The paper computes deltas with per-link counters that hit zero when no
// selected path uses a link; we rebuild the local P-graph (counters
// included) and diff consecutive exported views, which yields exactly the
// same delta with less mutable state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "centaur/announce.hpp"
#include "centaur/build_graph.hpp"
#include "centaur/query.hpp"
#include "policy/policy.hpp"
#include "policy/route_view.hpp"
#include "policy/valley_free.hpp"
#include "sim/network.hpp"
#include "util/dense_map.hpp"
#include "util/flat_map.hpp"
#include "util/node_map.hpp"
#include "util/small_vec.hpp"
#include "util/vec_map.hpp"

namespace centaur::core {

/// Wire message: one incremental update (Step 5) or initial announcement
/// (Steps 1/4, a delta against the empty view with reset set).
///
/// Immutable once constructed, so one instance is shared (by shared_ptr)
/// across every neighbor of an export class; the exact encoded length is
/// computed once here instead of per byte_size() query per receiver.
class CentaurUpdate : public sim::Message {
 public:
  CentaurUpdate(GraphDelta delta, bool bloom_compressed)
      : delta_(std::move(delta)),
        bloom_(bloom_compressed),
        byte_size_(delta_.byte_size(bloom_compressed)) {}

  const GraphDelta& delta() const { return delta_; }
  bool bloom_compressed() const { return bloom_; }
  std::size_t byte_size() const override { return byte_size_; }
  std::string describe() const override;

 private:
  GraphDelta delta_;
  bool bloom_;
  std::size_t byte_size_;
};

/// Wire message: several same-neighbor updates coalesced into one batch
/// datagram (Config::batch_datagrams; wire batch framing, kBatchVersion).
/// Receivers apply the member deltas in order, exactly as if each had
/// arrived in its own datagram — only the datagram count (and the few
/// framing bytes) changes.  Member payloads stay shared with the
/// per-neighbor CentaurUpdate instances, so batching adds no delta copies.
class CentaurBatchUpdate : public sim::Message {
 public:
  CentaurBatchUpdate(std::vector<std::shared_ptr<const CentaurUpdate>> updates,
                     bool bloom_compressed);

  const std::vector<std::shared_ptr<const CentaurUpdate>>& updates() const {
    return updates_;
  }
  bool bloom_compressed() const { return bloom_; }
  std::size_t byte_size() const override { return byte_size_; }
  std::string describe() const override;

 private:
  std::vector<std::shared_ptr<const CentaurUpdate>> updates_;
  bool bloom_;
  std::size_t byte_size_;
};

class CentaurNode : public sim::Node, public policy::RouteView {
 public:
  struct Config {
    /// Announce the node's own prefix (true for all experiment nodes).
    bool originate_prefix = true;
    /// When non-zero, only nodes with id < originate_limit originate
    /// (destination-limited workloads for 100k+-node scale runs; routing
    /// for the originated set is unchanged).  Low ids are the topology
    /// generators' core tiers, so limited destinations stay well-connected
    /// — and per-node destination caches stay small.
    topo::NodeId originate_limit = 0;
    /// Account Permission-List bytes as Bloom-compressed (S4.1).
    bool bloom_plists = false;
    /// Merge every delta emitted within one simulated instant into a single
    /// net update per neighbor before sending (flushed through a zero-delay
    /// event, so arrival times are unchanged).  Off: send inline per flood,
    /// the seed behavior.
    bool coalesce_updates = true;
    /// Coalesce every datagram bound for the same neighbor within one
    /// simulated instant into a single CentaurBatchUpdate (flushed through
    /// a zero-delay event, so arrival times are unchanged; a lone update
    /// still goes out as a plain CentaurUpdate with identical bytes).
    /// Mostly pays with coalesce_updates off, where each flood otherwise
    /// emits its own datagram per neighbor.  Off: the baseline framing.
    bool batch_datagrams = false;
    /// Use the incremental recompute plane (DESIGN.md §12): reselect()
    /// rank-merges the per-(neighbor, destination) candidate cache
    /// maintained by refresh_derived() and materializes only the winning
    /// path; deltas invalidate destinations through the walk-chain index;
    /// floods update the two category export views from the touched-link /
    /// changed-destination scratch.  Off: the from-scratch reference —
    /// re-derive every destination per delta, re-classify every candidate
    /// per reselect, and rebuild + diff full export views per flood.  Both
    /// produce bit-identical selections, floods, and counters (the
    /// equivalence suite proves it); nodes with a ranking override always
    /// take the reference reselect (overrides rank full paths, which the
    /// cache does not store).
    bool incremental = true;
    /// Extra export-side link filter: may link from->to be announced to
    /// `neighbor`?  Applied on top of the Gao-Rexford destination-based
    /// export rule.  Null means allow.
    std::function<bool(topo::NodeId neighbor, NodeId from, NodeId to)>
        export_link_filter;
    /// Import-side link filter (Imp in S4.3); null means allow.
    std::function<bool(topo::NodeId neighbor, NodeId from, NodeId to)>
        import_link_filter;
    /// Optional local ranking override (e.g. the paper's Fig 4 scenario
    /// where C prefers <C,A,B,D> over <C,D>).  Falls back to the standard
    /// Gao-Rexford ranking when null or when it reports no preference both
    /// ways.
    policy::RankingOverride ranking;
    /// Serving-plane snapshot export hook (DESIGN.md §14.2): invoked at the
    /// top of every flood whose selection commit changed the local P-graph,
    /// with the flood-scratch dirty sets (possibly duplicated entries)
    /// before they are consumed — a publisher copies only the dirty
    /// adjacency.  Null means off; see core::SnapshotSink for the
    /// handler-context rules the callee must follow.
    SnapshotSink snapshot_sink;
  };

  explicit CentaurNode(const topo::AsGraph& graph);
  CentaurNode(const topo::AsGraph& graph, Config config);

  void start() override;
  void on_message(topo::NodeId from, const sim::MessagePtr& msg) override;
  void on_link_change(topo::NodeId neighbor, bool up) override;

  /// Re-runs selection and floods any resulting deltas — used to inject
  /// policy changes (S4.3.2 treats those like link-state changes).
  void policy_changed();

  // --- adversarial fault hooks (DESIGN.md §15) ----------------------------
  // Driver/commit context only (the campaign engine applies them between
  // batches); they must never run from a message handler.

  /// Route leak: while enabled, peers and providers are served the full
  /// exported view instead of the customer-cone view, violating the
  /// Gao-Rexford export rule.  Toggling re-baselines the affected sessions
  /// (they get a reset snapshot of their new category view).
  void set_route_leak(bool enabled);
  /// Interception: while enabled, this node claims `victim` as a directly
  /// attached customer destination — selection pins the fabricated path
  /// {self, victim} and floods it like any other route (a blackhole; the
  /// fabricated hop is not a real adjacency).
  void set_intercept(topo::NodeId victim, bool enabled);
  /// Installs (or clears, when null) a runtime ranking override and re-runs
  /// selection — the local-pref flip of the policy-churn scenarios.
  void set_ranking_override(policy::RankingOverride ranking);
  /// Recomputes every relationship-derived cache after the driver rewired a
  /// link's business relationship (AsGraph::set_rel): candidate classes,
  /// selection, cone bookkeeping, export views.  Every session is
  /// re-baselined, because neighbor export categories may have flipped.
  void relationships_changed();

  // policy::RouteView (route audit / blast-radius sweeps, driver context).
  void for_each_selected_route(
      const std::function<void(topo::NodeId dest, const Path& path)>& fn)
      const override;

  /// Ranking-relevant summary of one neighbor's derived path for one
  /// destination, refreshed whenever the derived path changes.  Lets
  /// reselect() rank candidates without materializing or re-classifying
  /// full paths: classification depends only on the static AS relationships
  /// along the path, so it is computed once per derived-path change instead
  /// of once per (dirty destination x neighbor) scan.
  struct CandEntry {
    policy::RouteSource source = policy::RouteSource::kProvider;
    std::uint32_t length = 0;  ///< full-path hop count (== derived size)
    bool usable = false;       ///< false: derived path loops through self
  };

  /// Everything the node caches about one (neighbor graph, destination)
  /// pair, fused into a single slot so the refresh loop pays one lookup per
  /// dirty destination instead of one per cache.
  ///
  /// The walk-chain invalidation set (every node the derivation walk
  /// examined — the outcome can only change when an in-link of a walked
  /// node changes) is not stored separately: for a successful derivation it
  /// is exactly `path` reversed, and only failed walks record it in
  /// `fail_chain`.
  struct DestState {
    Path path;  ///< derived path B..dest; empty = marked but underivable
    /// Nodes examined by a FAILED derivation walk (dest-first, ending at
    /// the blocking node); empty while `path` is non-empty.
    std::vector<NodeId> fail_chain;
    CandEntry cand;  ///< summary of `path`; valid iff path is non-empty

    /// Resets to the fresh-entry state, keeping buffer capacity
    /// (DenseMap slot-recycling hook).
    void clear() {
      path.clear();
      fail_chain.clear();
      cand = CandEntry{};
    }
  };

  /// Derived-path cache: direct-indexed dest -> DestState (DESIGN.md §5).
  using DestCache = util::DenseMap<DestState>;

  // --- inspection (tests, experiments, invariant checker) -----------------
  const PGraph& local_pgraph() const { return local_; }
  /// The assembled P-graph received from `neighbor`, if any.
  const PGraph* neighbor_pgraph(topo::NodeId neighbor) const;
  std::optional<Path> selected_path(NodeId dest) const;
  /// Selected path per destination, ascending (sorted flat storage; the
  /// iteration order matches the former std::map exactly).
  const util::VecMap<NodeId, Path>& selected_paths() const {
    return selected_;
  }
  /// Neighbors with assembled RIB state, ascending.
  std::vector<topo::NodeId> rib_neighbors() const;
  /// The per-destination cache kept for `neighbor`'s P-graph (derived
  /// paths, walk chains, candidate summaries), or nullptr if there is no
  /// RIB state for it.  Entries with an empty `path` are marked-but-
  /// underivable destinations whose failed walk is indexed for re-checks.
  const DestCache* neighbor_derived(topo::NodeId neighbor) const;

 private:
  /// Per-neighbor RIB state: the assembled P-graph plus caches that make
  /// steady-phase processing incremental — one DestState per marked
  /// destination and an index from chain nodes to the destinations whose
  /// derived walk visits them (a delta touching node X can only change
  /// derivations walking through X).
  /// Both caches are direct-indexed by dense node id (the seed used
  /// node-based std::map); chain-index destination sets are sorted
  /// small-vectors.
  struct NeighborState {
    NeighborState() = default;
    explicit NeighborState(topo::NodeId root) : graph(root) {}
    PGraph graph;     // G_{B->self}
    DestCache dests;  // dest -> derived path + walk chain + summary
    /// node -> dests whose walk visits it (sorted ascending).  NodeMap:
    /// direct-indexed below util::kNodeMapDenseLimit, content-sized above
    /// it; absent/empty slot = no walks.
    util::NodeMap<util::SmallVec<NodeId, 4>> chain_index;
  };

  ExportedView view_for(topo::NodeId neighbor) const;
  bool neighbor_usable(topo::NodeId neighbor) const;
  /// True when this node announces its own prefix (originate_prefix gated
  /// by the optional low-id originate_limit).
  bool originates() const {
    return config_.originate_prefix &&
           (config_.originate_limit == 0 || self() < config_.originate_limit);
  }
  /// Re-derives `dests` (sorted ascending, duplicate-free) in `state`,
  /// returning those whose result changed, ascending.  Also refreshes the
  /// per-destination candidate summaries.
  std::vector<NodeId> refresh_derived(NeighborState& state,
                                      const std::vector<NodeId>& dests);
  /// Re-selects routes for `dests` (sorted ascending, duplicate-free);
  /// updates selected_/local_, the class cache, the cone-entry side map,
  /// and the flood scratch (touched links + changed destinations).
  /// Returns true if any selection changed.
  bool reselect(const std::vector<NodeId>& dests);
  /// Best candidate for `dest` by rank-merging the cached summaries; the
  /// winning path is materialized lazily at the end (incremental plane).
  std::optional<Path> best_candidate_cached(NodeId dest,
                                            policy::Candidate& best) const;
  /// Reference implementation: re-classify every usable neighbor's derived
  /// path from scratch (also the only path that can consult a ranking
  /// override, which ranks full paths).
  std::optional<Path> best_candidate_scratch(NodeId dest,
                                             policy::Candidate& best) const;
  /// Applies the flood scratch to the two category views, records the
  /// resulting changes in the pending per-category deltas, and dispatches.
  /// Always call after reselect() so the category views never go stale.
  void flood();
  /// Sends pending updates: inline when coalescing is off, else through one
  /// zero-delay flush event per node per instant (same-burst deltas merge).
  void dispatch_updates();
  /// Materializes at most two shared payloads (full/cone) from the pending
  /// deltas and fans them out; uninitialized usable neighbors get a shared
  /// baseline snapshot of their category view instead.
  void flush_pending();
  /// Applies one update's delta from `from`: assemble into the RIB,
  /// invalidate dirty destinations, re-derive, re-select, flood.  The body
  /// of message handling; on_message calls it once per plain update and
  /// once per member of a batch.
  void process_delta(topo::NodeId from, const CentaurUpdate& update);
  /// All outbound updates funnel through here: sends immediately, or (with
  /// batch_datagrams) queues into the per-neighbor outbox and schedules the
  /// end-of-instant batch flush.
  void send_update(topo::NodeId neighbor,
                   std::shared_ptr<const CentaurUpdate> msg);
  /// Emits each neighbor's queued updates as one datagram (a batch when
  /// there is more than one).
  void flush_outbox();
  /// Records a changed selection for dest (old path out, new path in) in
  /// the flood scratch and cone-entry map.
  void note_path_removed(NodeId dest, const Path& path, bool cone_class);
  void note_path_added(NodeId dest, const Path& path, bool cone_class);
  /// All destinations any neighbor currently derives or marks, ascending.
  std::vector<NodeId> known_dests() const;
  /// Is `dest` currently claimed by an interception (set_intercept)?
  bool intercepting(NodeId dest) const {
    return intercepted_.find(dest) != nullptr;
  }

  const topo::AsGraph& graph_;
  Config config_;
  // Hot node state lives on sorted flat containers (util::VecMap): the
  // former std::map storage paid a node allocation per entry and a pointer
  // chase per iteration step on every reselect/flood.  Iteration stays
  // ascending by key, bit-identical to std::map.
  util::VecMap<topo::NodeId, NeighborState> rib_;
  util::FlatMap<topo::NodeId, bool> session_up_;  // adjacency/session state
  PGraph local_;                                  // G_self
  util::VecMap<NodeId, Path> selected_;
  util::VecMap<NodeId, policy::RouteSource> selected_class_;  // classify cache

  // Export machinery.  Under Gao-Rexford there are exactly two distinct
  // exported views: customers/siblings see every selected route ("full"),
  // peers/providers see only self/customer/sibling-class routes ("cone").
  // Both views are maintained incrementally from the flood scratch, so a
  // steady-phase update costs O(touched links), not O(P-graph).
  // cone_entries_ mirrors local_'s permission entries restricted to
  // cone-class destinations (it tells both which links the cone view
  // carries and with which filtered Permission List); all side state is on
  // flat containers (DESIGN.md §5.1), keyed by packed links / node ids.
  ExportedView exported_full_;
  ExportedView exported_cone_;
  util::FlatMap<std::uint64_t, PermissionList> cone_entries_;
  util::FlatMap<NodeId, std::uint8_t> cone_dests_;          // used as a set
  util::FlatMap<topo::NodeId, std::uint8_t> initialized_nbrs_;  // got snapshot
  // Flood scratch, filled by reselect(); duplicates fine, flood() dedups.
  std::vector<DirectedLink> touched_links_;
  std::vector<NodeId> changed_dests_;
  // Outbound coalescing (Step 5 batching): per-category net deltas pending
  // since the last flush, plus whether a flush event is already queued for
  // the current instant.
  PendingDelta pending_full_;
  PendingDelta pending_cone_;
  bool flush_scheduled_ = false;
  // Datagram batching (batch_datagrams): updates queued this instant, per
  // neighbor in first-send order (deterministic; neighbor counts are small
  // enough that the linear scan beats a map).
  std::vector<std::pair<topo::NodeId,
                        std::vector<std::shared_ptr<const CentaurUpdate>>>>
      outbox_;
  bool outbox_flush_scheduled_ = false;
  // Legacy per-neighbor views, used only with a custom export_link_filter.
  util::VecMap<topo::NodeId, ExportedView> exported_custom_;
  // Adversarial state (driver-toggled; see the fault hooks above).
  bool leak_all_ = false;
  util::FlatMap<NodeId, std::uint8_t> intercepted_;  // victim set
  // Reusable hot-path scratch (nodes process one message at a time): the
  // per-message dirty set and the derivation walk/path buffers.  Keeping
  // them as members removes three allocation/free pairs per delivery.
  std::vector<NodeId> dirty_scratch_;
  std::vector<NodeId> visited_scratch_;
  Path path_scratch_;
};

}  // namespace centaur::core
