#include "centaur/pgraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace centaur::core {

namespace pgraph_detail {

[[noreturn]] void throw_missing_link(NodeId from, NodeId to) {
  throw std::out_of_range("PGraph::link_data: no link " +
                          std::to_string(from) + "->" + std::to_string(to));
}

}  // namespace pgraph_detail

void PGraph::reset(NodeId root) {
  root_ = root;
  links_.clear();
  // Keep the dense slots (and their SmallVec spill capacity): resets happen
  // on session restarts, where the graph re-grows to the same node range.
  parents_.clear_values();
  children_.clear_values();
  destinations_.clear();
}

bool PGraph::remove_link(NodeId from, NodeId to) {
  if (!links_.erase(pack_link(from, to))) return false;
  // The adjacency slots exist whenever the link did (ensure_link created
  // them), so the finds cannot miss on this path.
  util::sorted_erase(*parents_.find(to), from);
  util::sorted_erase(*children_.find(from), to);
  return true;
}

std::size_t PGraph::active_plist_count() const {
  std::size_t c = 0;
  for (const auto& [key, data] : links_) {
    if (multi_homed(unpack_link(key).to) && !data.plist.empty()) ++c;
  }
  return c;
}

std::optional<Path> PGraph::derive_path(NodeId dest,
                                        std::vector<NodeId>* visited_out) const {
  Path out;
  if (!derive_path_into(dest, out, visited_out)) return std::nullopt;
  return out;
}

bool PGraph::derive_path_into(NodeId dest, Path& out,
                              std::vector<NodeId>* visited_out) const {
  out.clear();
  if (root_ == topo::kInvalidNode) {
    throw std::logic_error("PGraph::derive_path: graph has no root");
  }
  if (dest == root_) {
    if (visited_out) visited_out->assign(1, dest);
    out.push_back(root_);
    return true;
  }
  if (!contains(dest)) {
    if (visited_out) visited_out->assign(1, dest);
    return false;
  }

  // The walked-node set IS the partial path (dest-first): one buffer serves
  // as path accumulator, cycle guard, and visited report.
  Path& reversed = out;
  reversed.push_back(dest);
  NodeId current = dest;
  // Next hop of `current` toward `dest` during backtracking — the node we
  // arrived from; kNoNextHop while current == dest (S4.1 per-dest-next
  // semantics; see header note on Table 1).
  NodeId came_from = kNoNextHop;
  const auto fail = [&]() {
    if (visited_out) visited_out->assign(reversed.begin(), reversed.end());
    out.clear();
    return false;
  };

  while (current != root_) {
    const AdjList& ps = parents(current);
    if (ps.empty()) return fail();
    NodeId parent = topo::kInvalidNode;
    if (ps.size() == 1) {
      parent = ps.front();  // Table 1 lines 3-5: single-homed, follow up
    } else {
      // Table 1 lines 6-11: multi-homed, consult Permission Lists.
      // Links with entries are explicit permissions; if none permits, an
      // in-link *without* a Permission List acts as the default (the
      // paper's Figure 4(c) lists only the exceptional link C->D and
      // leaves B->D unlisted).  More than one unlisted in-link would be
      // ambiguous, so derivation fails then.
      NodeId fallback = topo::kInvalidNode;
      bool fallback_ambiguous = false;
      for (NodeId p : ps) {
        const PermissionList& plist = link_data(p, current).plist;
        if (plist.empty()) {
          if (fallback == topo::kInvalidNode) {
            fallback = p;
          } else {
            fallback_ambiguous = true;
          }
          continue;
        }
        if (plist.permits(dest, came_from)) {
          parent = p;
          break;
        }
      }
      if (parent == topo::kInvalidNode && !fallback_ambiguous) {
        parent = fallback;
      }
      if (parent == topo::kInvalidNode) return fail();
    }
    // Cycle guard: paths are short, so a linear scan beats a node set.
    if (std::find(reversed.begin(), reversed.end(), parent) !=
        reversed.end()) {
      throw std::logic_error("PGraph::derive_path: backtrace cycle");
    }
    reversed.push_back(parent);
    came_from = current;
    current = parent;
  }
  if (visited_out) visited_out->assign(reversed.begin(), reversed.end());
  std::reverse(reversed.begin(), reversed.end());
  return true;
}

bool PGraph::operator==(const PGraph& other) const {
  if (root_ != other.root_ || destinations_ != other.destinations_ ||
      links_.size() != other.links_.size()) {
    return false;
  }
  for (const auto& [key, data] : links_) {
    const LinkData* theirs = other.links_.find(key);
    if (theirs == nullptr || !(data.plist == theirs->plist)) {
      return false;
    }
  }
  return true;
}

}  // namespace centaur::core
