#include "centaur/pgraph.hpp"

#include "centaur/query.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace centaur::core {

namespace pgraph_detail {

[[noreturn]] void throw_missing_link(NodeId from, NodeId to) {
  throw std::out_of_range("PGraph::link_data: no link " +
                          std::to_string(from) + "->" + std::to_string(to));
}

}  // namespace pgraph_detail

void PGraph::reset(NodeId root) {
  root_ = root;
  links_.clear();
  // Keep the dense slots (and their SmallVec spill capacity): resets happen
  // on session restarts, where the graph re-grows to the same node range.
  parents_.clear_values();
  children_.clear_values();
  destinations_.clear();
}

bool PGraph::remove_link(NodeId from, NodeId to) {
  if (!links_.erase(pack_link(from, to))) return false;
  // The adjacency slots exist whenever the link did (ensure_link created
  // them), so the finds cannot miss on this path.
  util::sorted_erase(*parents_.find(to), from);
  util::sorted_erase(*children_.find(from), to);
  return true;
}

std::size_t PGraph::active_plist_count() const {
  std::size_t c = 0;
  for (const auto& [key, data] : links_) {
    if (multi_homed(unpack_link(key).to) && !data.plist.empty()) ++c;
  }
  return c;
}

std::optional<Path> PGraph::derive_path(NodeId dest,
                                        std::vector<NodeId>* visited_out) const {
  Path out;
  if (!derive_path_into(dest, out, visited_out)) return std::nullopt;
  return out;
}

bool PGraph::derive_path_into(NodeId dest, Path& out,
                              std::vector<NodeId>* visited_out) const {
  // Deprecated wrapper: the walk lives in centaur/query.hpp now (the
  // unified PathQuery/PathResult surface); both legacy entry points share
  // its contract, including dest == root() => {root}.
  return query_path_into(*this, PathQuery{dest, visited_out}, out) ==
         PathStatus::kFound;
}

bool PGraph::operator==(const PGraph& other) const {
  if (root_ != other.root_ || destinations_ != other.destinations_ ||
      links_.size() != other.links_.size()) {
    return false;
  }
  for (const auto& [key, data] : links_) {
    const LinkData* theirs = other.links_.find(key);
    if (theirs == nullptr || !(data.plist == theirs->plist)) {
      return false;
    }
  }
  return true;
}

}  // namespace centaur::core
