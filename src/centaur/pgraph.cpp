#include "centaur/pgraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace centaur::core {
namespace {

const PGraph::AdjList& empty_adjlist() {
  static const PGraph::AdjList kEmpty;
  return kEmpty;
}

[[noreturn]] void throw_missing_link(NodeId from, NodeId to) {
  throw std::out_of_range("PGraph::link_data: no link " +
                          std::to_string(from) + "->" + std::to_string(to));
}

}  // namespace

void PGraph::reset(NodeId root) {
  root_ = root;
  links_.clear();
  parents_.clear();
  children_.clear();
  destinations_.clear();
}

bool PGraph::add_link(NodeId from, NodeId to) {
  bool added = false;
  ensure_link(from, to, added);
  return added;
}

LinkData& PGraph::ensure_link(NodeId from, NodeId to, bool& added) {
  if (from == to) throw std::invalid_argument("PGraph::add_link: self-loop");
  LinkData& data = links_.ensure(pack_link(from, to), added);
  if (added) {
    bool fresh = false;
    util::sorted_insert(parents_.ensure(to, fresh), from);
    util::sorted_insert(children_.ensure(from, fresh), to);
  }
  return data;
}

bool PGraph::remove_link(NodeId from, NodeId to) {
  if (!links_.erase(pack_link(from, to))) return false;
  AdjList* ps = parents_.find(to);
  util::sorted_erase(*ps, from);
  if (ps->empty()) parents_.erase(to);
  AdjList* cs = children_.find(from);
  util::sorted_erase(*cs, to);
  if (cs->empty()) children_.erase(from);
  return true;
}

std::size_t PGraph::in_degree(NodeId n) const {
  const AdjList* adj = parents_.find(n);
  return adj == nullptr ? 0 : adj->size();
}

const PGraph::AdjList& PGraph::parents(NodeId n) const {
  const AdjList* adj = parents_.find(n);
  return adj == nullptr ? empty_adjlist() : *adj;
}

const PGraph::AdjList& PGraph::children(NodeId n) const {
  const AdjList* adj = children_.find(n);
  return adj == nullptr ? empty_adjlist() : *adj;
}

bool PGraph::contains(NodeId n) const {
  return n == root_ || parents_.count(n) > 0 || children_.count(n) > 0;
}

LinkData& PGraph::link_data(NodeId from, NodeId to) {
  LinkData* data = find_link_data(from, to);
  if (data == nullptr) throw_missing_link(from, to);
  return *data;
}

const LinkData& PGraph::link_data(NodeId from, NodeId to) const {
  const LinkData* data = find_link_data(from, to);
  if (data == nullptr) throw_missing_link(from, to);
  return *data;
}

std::size_t PGraph::active_plist_count() const {
  std::size_t c = 0;
  for (const auto& [key, data] : links_) {
    if (multi_homed(unpack_link(key).to) && !data.plist.empty()) ++c;
  }
  return c;
}

std::optional<Path> PGraph::derive_path(NodeId dest,
                                        std::vector<NodeId>* visited_out) const {
  if (root_ == topo::kInvalidNode) {
    throw std::logic_error("PGraph::derive_path: graph has no root");
  }
  if (visited_out) {
    visited_out->clear();
    visited_out->push_back(dest);
  }
  if (dest == root_) return Path{root_};
  if (!contains(dest)) return std::nullopt;

  Path reversed{dest};
  NodeId current = dest;
  // Next hop of `current` toward `dest` during backtracking — the node we
  // arrived from; kNoNextHop while current == dest (S4.1 per-dest-next
  // semantics; see header note on Table 1).
  NodeId came_from = kNoNextHop;
  // Cycle guard: paths are short, so a linear scan over an inline vector
  // beats a node-based set (no allocation on the derivation hot path).
  util::SmallVec<NodeId, 16> visited;
  visited.push_back(dest);

  while (current != root_) {
    const AdjList& ps = parents(current);
    if (ps.empty()) return std::nullopt;
    NodeId parent = topo::kInvalidNode;
    if (ps.size() == 1) {
      parent = ps.front();  // Table 1 lines 3-5: single-homed, follow up
    } else {
      // Table 1 lines 6-11: multi-homed, consult Permission Lists.
      // Links with entries are explicit permissions; if none permits, an
      // in-link *without* a Permission List acts as the default (the
      // paper's Figure 4(c) lists only the exceptional link C->D and
      // leaves B->D unlisted).  More than one unlisted in-link would be
      // ambiguous, so derivation fails then.
      NodeId fallback = topo::kInvalidNode;
      bool fallback_ambiguous = false;
      for (NodeId p : ps) {
        const PermissionList& plist = link_data(p, current).plist;
        if (plist.empty()) {
          if (fallback == topo::kInvalidNode) {
            fallback = p;
          } else {
            fallback_ambiguous = true;
          }
          continue;
        }
        if (plist.permits(dest, came_from)) {
          parent = p;
          break;
        }
      }
      if (parent == topo::kInvalidNode && !fallback_ambiguous) {
        parent = fallback;
      }
      if (parent == topo::kInvalidNode) return std::nullopt;
    }
    if (std::find(visited.begin(), visited.end(), parent) != visited.end()) {
      throw std::logic_error("PGraph::derive_path: backtrace cycle");
    }
    visited.push_back(parent);
    if (visited_out) visited_out->push_back(parent);
    reversed.push_back(parent);
    came_from = current;
    current = parent;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

bool PGraph::operator==(const PGraph& other) const {
  if (root_ != other.root_ || destinations_ != other.destinations_ ||
      links_.size() != other.links_.size()) {
    return false;
  }
  for (const auto& [key, data] : links_) {
    const LinkData* theirs = other.links_.find(key);
    if (theirs == nullptr || !(data.plist == theirs->plist)) {
      return false;
    }
  }
  return true;
}

}  // namespace centaur::core
