#include "centaur/pgraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace centaur::core {
namespace {

const std::vector<NodeId>& empty_vector() {
  static const std::vector<NodeId> kEmpty;
  return kEmpty;
}

/// Sorted-vector insert; returns false if already present.
bool sorted_insert(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Sorted-vector erase; returns false if absent.
bool sorted_erase(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

[[noreturn]] void throw_missing_link(NodeId from, NodeId to) {
  throw std::out_of_range("PGraph::link_data: no link " +
                          std::to_string(from) + "->" + std::to_string(to));
}

}  // namespace

void PGraph::reset(NodeId root) {
  root_ = root;
  links_.clear();
  parents_.clear();
  children_.clear();
  destinations_.clear();
}

bool PGraph::add_link(NodeId from, NodeId to) {
  if (from == to) throw std::invalid_argument("PGraph::add_link: self-loop");
  const auto [it, inserted] = links_.try_emplace(DirectedLink{from, to});
  if (!inserted) return false;
  sorted_insert(parents_[to], from);
  sorted_insert(children_[from], to);
  return true;
}

bool PGraph::remove_link(NodeId from, NodeId to) {
  if (links_.erase(DirectedLink{from, to}) == 0) return false;
  auto pit = parents_.find(to);
  sorted_erase(pit->second, from);
  if (pit->second.empty()) parents_.erase(pit);
  auto cit = children_.find(from);
  sorted_erase(cit->second, to);
  if (cit->second.empty()) children_.erase(cit);
  return true;
}

std::size_t PGraph::in_degree(NodeId n) const {
  const auto it = parents_.find(n);
  return it == parents_.end() ? 0 : it->second.size();
}

const std::vector<NodeId>& PGraph::parents(NodeId n) const {
  const auto it = parents_.find(n);
  return it == parents_.end() ? empty_vector() : it->second;
}

const std::vector<NodeId>& PGraph::children(NodeId n) const {
  const auto it = children_.find(n);
  return it == children_.end() ? empty_vector() : it->second;
}

bool PGraph::contains(NodeId n) const {
  return n == root_ || parents_.count(n) > 0 || children_.count(n) > 0;
}

LinkData& PGraph::link_data(NodeId from, NodeId to) {
  const auto it = links_.find(DirectedLink{from, to});
  if (it == links_.end()) throw_missing_link(from, to);
  return it->second;
}

const LinkData& PGraph::link_data(NodeId from, NodeId to) const {
  const auto it = links_.find(DirectedLink{from, to});
  if (it == links_.end()) throw_missing_link(from, to);
  return it->second;
}

std::size_t PGraph::active_plist_count() const {
  std::size_t c = 0;
  for (const auto& [key, data] : links_) {
    if (multi_homed(key.to) && !data.plist.empty()) ++c;
  }
  return c;
}

std::optional<Path> PGraph::derive_path(NodeId dest,
                                        std::vector<NodeId>* visited_out) const {
  if (root_ == topo::kInvalidNode) {
    throw std::logic_error("PGraph::derive_path: graph has no root");
  }
  if (visited_out) {
    visited_out->clear();
    visited_out->push_back(dest);
  }
  if (dest == root_) return Path{root_};
  if (!contains(dest)) return std::nullopt;

  Path reversed{dest};
  NodeId current = dest;
  // Next hop of `current` toward `dest` during backtracking — the node we
  // arrived from; kNoNextHop while current == dest (S4.1 per-dest-next
  // semantics; see header note on Table 1).
  NodeId came_from = kNoNextHop;
  std::set<NodeId> visited{dest};

  while (current != root_) {
    const std::vector<NodeId>& ps = parents(current);
    if (ps.empty()) return std::nullopt;
    NodeId parent = topo::kInvalidNode;
    if (ps.size() == 1) {
      parent = ps.front();  // Table 1 lines 3-5: single-homed, follow up
    } else {
      // Table 1 lines 6-11: multi-homed, consult Permission Lists.
      // Links with entries are explicit permissions; if none permits, an
      // in-link *without* a Permission List acts as the default (the
      // paper's Figure 4(c) lists only the exceptional link C->D and
      // leaves B->D unlisted).  More than one unlisted in-link would be
      // ambiguous, so derivation fails then.
      NodeId fallback = topo::kInvalidNode;
      bool fallback_ambiguous = false;
      for (NodeId p : ps) {
        const PermissionList& plist = link_data(p, current).plist;
        if (plist.empty()) {
          if (fallback == topo::kInvalidNode) {
            fallback = p;
          } else {
            fallback_ambiguous = true;
          }
          continue;
        }
        if (plist.permits(dest, came_from)) {
          parent = p;
          break;
        }
      }
      if (parent == topo::kInvalidNode && !fallback_ambiguous) {
        parent = fallback;
      }
      if (parent == topo::kInvalidNode) return std::nullopt;
    }
    if (!visited.insert(parent).second) {
      throw std::logic_error("PGraph::derive_path: backtrace cycle");
    }
    if (visited_out) visited_out->push_back(parent);
    reversed.push_back(parent);
    came_from = current;
    current = parent;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

bool PGraph::operator==(const PGraph& other) const {
  if (root_ != other.root_ || destinations_ != other.destinations_ ||
      links_.size() != other.links_.size()) {
    return false;
  }
  for (const auto& [key, data] : links_) {
    const auto it = other.links_.find(key);
    if (it == other.links_.end() || !(data.plist == it->second.plist)) {
      return false;
    }
  }
  return true;
}

}  // namespace centaur::core
