// Query-file format for `centaur serve` (DESIGN.md §14.4).
//
// A queries file is a small strict-JSON document listing the (src, dst, k)
// path queries to evaluate against the converged run:
//
//   {
//     "queries": [
//       {"src": 0, "dst": 5},
//       {"src": 3, "dst": 5, "k": 8}
//     ]
//   }
//
// "k" is optional; 0 / absent means the engine default (CENTAUR_QUERY_K /
// ServeOptions::query_k).  Unknown keys are rejected, as in scenario files.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topology/types.hpp"

namespace centaur::serve {

struct QuerySpec {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  std::size_t k = 0;  ///< 0 = engine default
};

/// Parses a queries document from JSON text.  Throws std::runtime_error
/// naming the offending key/line on malformed input.
std::vector<QuerySpec> parse_queries_json(const std::string& text);

/// Reads and parses a queries file.  Throws std::runtime_error when the
/// file cannot be read.
std::vector<QuerySpec> load_queries(const std::string& path);

}  // namespace centaur::serve
