// Immutable P-graph snapshots for the serving plane (DESIGN.md §14.1).
//
// A PGraphSnapshot is a frozen, self-contained view of one node's local
// P-graph at a commit point: per-node in-link lists with their Permission
// Lists, plus the destination marks.  Readers traverse it with the generic
// walk in centaur/query.hpp (it satisfies the View requirements), so a
// query answered from a snapshot is bit-identical to DerivePath on the live
// graph it was taken from.
//
// Publish cost is the design constraint: the protocol hands the publisher
// the flood-scratch dirty sets (PR 7's changed_dests_/touched_links_), so a
// delta snapshot copies *only the dirty nodes' in-links* and overlays its
// predecessor — an immutable chain with structural sharing.  The chain is
// collapsed geometrically (flatten when the accumulated overlay volume
// reaches the size of the last full level), keeping amortised publish cost
// proportional to the delta while bounding lookup depth.
//
// Thread model: a snapshot is immutable after construction and safe to read
// from any thread; SnapshotBuilder is single-writer per node (the owning
// CentaurNode's handler lane — per-node cells is what makes lane-parallel
// floods race-free, DESIGN.md §14.2).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "centaur/pgraph.hpp"
#include "eval/protocol_config.hpp"
#include "util/small_vec.hpp"
#include "util/vec_map.hpp"

namespace centaur::serve {

using core::DirectedLink;
using core::PGraph;
using topo::NodeId;

/// Frozen in-link state of one node: parents ascending, Permission Lists
/// parallel to them.  An entry with no parents shadows the node as
/// "currently link-less" in overlay levels.
struct SnapNode {
  PGraph::AdjList parents;
  std::vector<core::PermissionList> plists;  // parallel to parents
};

class PGraphSnapshot {
 public:
  NodeId root() const { return root_; }
  /// Per-node publish sequence number (1 = first publish).  Deterministic:
  /// it counts this node's commits, independent of thread interleaving.
  std::uint64_t version() const { return version_; }
  /// Overlay chain length under this snapshot (1 = full/flattened).
  std::size_t depth() const { return depth_; }
  bool full() const { return full_; }
  /// Nodes materialised at this level only (the delta size for overlays).
  std::size_t level_nodes() const { return nodes_.size(); }

  /// In-link state of `n`, or nullptr when `n` has no in-links.  Walks the
  /// overlay chain: the first level that materialised `n` wins.
  const SnapNode* in_links(NodeId n) const {
    for (const PGraphSnapshot* level = this; level != nullptr;
         level = level->base_.get()) {
      if (const SnapNode* sn = level->nodes_.find(n)) {
        return sn->parents.empty() ? nullptr : sn;
      }
      if (level->full_) break;
    }
    return nullptr;
  }

  bool is_destination(NodeId d) const {
    for (const PGraphSnapshot* level = this; level != nullptr;
         level = level->base_.get()) {
      if (level->full_) return util::sorted_contains(level->dests_, d);
      if (const std::uint8_t* mark = level->marks_.find(d)) {
        return *mark != 0;
      }
    }
    return false;
  }

  // --- View interface for the centaur/query.hpp walk templates ----------

  const PGraph::AdjList& parents(NodeId n) const {
    const SnapNode* sn = in_links(n);
    return sn != nullptr ? sn->parents : kEmptyAdj;
  }

  const core::PermissionList* plist(NodeId from, NodeId to) const {
    const SnapNode* sn = in_links(to);
    if (sn == nullptr) return nullptr;
    const auto it =
        std::lower_bound(sn->parents.begin(), sn->parents.end(), from);
    if (it == sn->parents.end() || *it != from) return nullptr;
    return &sn->plists[static_cast<std::size_t>(it - sn->parents.begin())];
  }

 private:
  friend class SnapshotBuilder;

  static const PGraph::AdjList kEmptyAdj;

  std::shared_ptr<const PGraphSnapshot> base_;    // null at a full level
  util::VecMap<NodeId, SnapNode> nodes_;          // this level's materialised nodes
  util::VecMap<NodeId, std::uint8_t> marks_;      // overlay mark flips
  PGraph::DestList dests_;                        // full level: complete set
  NodeId root_ = topo::kInvalidNode;
  std::uint64_t version_ = 0;
  std::size_t depth_ = 1;
  bool full_ = false;
};

/// Single-writer snapshot publisher for one node.  publish() turns the
/// current local P-graph plus the flood-scratch dirty sets into the next
/// immutable snapshot; under SnapshotPolicy::kDelta it materialises only
/// the dirty nodes and collapses the chain geometrically, under kFull every
/// publish is a complete copy (the ablation reference).
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(eval::SnapshotPolicy policy =
                               eval::SnapshotPolicy::kDelta)
      : policy_(policy) {}

  /// Builds the successor snapshot.  `changed_dests` / `touched_links` may
  /// contain duplicates (they are the raw flood scratch).
  std::shared_ptr<const PGraphSnapshot> publish(
      const PGraph& local, const std::vector<NodeId>& changed_dests,
      const std::vector<DirectedLink>& touched_links);

  /// Full snapshots built so far (collapses + kFull publishes) — the
  /// publish-cost observable the delta-vs-full tests assert on.
  std::uint64_t full_builds() const { return full_builds_; }

 private:
  std::shared_ptr<const PGraphSnapshot> build_full(const PGraph& local);

  eval::SnapshotPolicy policy_;
  std::shared_ptr<const PGraphSnapshot> prev_;
  std::uint64_t next_version_ = 1;
  std::uint64_t full_builds_ = 0;
  /// Overlay volume accumulated since the last full level; a flatten is due
  /// when it reaches the full level's size (geometric collapse).
  std::size_t overlay_accum_ = 0;
  std::size_t full_nodes_ = 0;
  std::vector<NodeId> dirty_scratch_;
};

}  // namespace centaur::serve
