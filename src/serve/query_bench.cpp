#include "serve/query_bench.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>

#include "eval/experiments.hpp"
#include "runner/parallel.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace centaur::serve {

namespace {

using topo::NodeId;

/// Nearest-rank percentile over an unsorted sample vector.
double percentile(std::vector<float>& samples, double p) {
  if (samples.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return static_cast<double>(samples[rank]);
}

void accumulate(EvalTotals& totals, const QueryEngine::QueryResult& r) {
  switch (r.status) {
    case QueryEngine::QueryStatus::kOk:
      ++totals.found;
      break;
    case QueryEngine::QueryStatus::kUnreachable:
      ++totals.unreachable;
      break;
    case QueryEngine::QueryStatus::kNotDestination:
      ++totals.not_destination;
      break;
    case QueryEngine::QueryStatus::kNoSnapshot:
      ++totals.no_snapshot;
      break;
  }
  totals.paths_returned += r.paths.size();
  for (const topo::Path& p : r.paths) totals.total_hops += p.size();
  if (r.truncated) ++totals.truncated;
  if (r.status == QueryEngine::QueryStatus::kOk) {
    if (r.disjoint <= 1) {
      ++totals.disjoint_1;
    } else if (r.disjoint == 2) {
      ++totals.disjoint_2;
    } else {
      ++totals.disjoint_3plus;
    }
  }
}

}  // namespace

std::vector<QuerySpec> canonical_queries(std::size_t nodes,
                                         std::uint64_t seed,
                                         std::size_t count) {
  util::Rng rng(util::derive_seed(seed, 0xC0DE));
  std::vector<QuerySpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QuerySpec spec;
    spec.src = static_cast<NodeId>(rng.index(nodes));
    // Every 16th query probes the self-destination contract (§14.3).
    spec.dst = (i % 16 == 15) ? spec.src
                              : static_cast<NodeId>(rng.index(nodes));
    specs.push_back(spec);
  }
  return specs;
}

std::string format_result(const QueryEngine::QueryResult& result) {
  std::string out = to_string(result.status);
  out += " v" + std::to_string(result.version);
  out += " disjoint=" + std::to_string(result.disjoint);
  if (result.truncated) out += " truncated";
  out += " paths=[";
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    if (i > 0) out += '|';
    const topo::Path& p = result.paths[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (j > 0) out += '>';
      out += std::to_string(p[j]);
    }
  }
  out += ']';
  return out;
}

std::vector<std::string> evaluate_queries(const QueryEngine& engine,
                                          const std::vector<QuerySpec>& specs,
                                          std::size_t threads,
                                          EvalTotals* totals) {
  std::vector<QueryEngine::QueryResult> results(specs.size());
  runner::WorkerPool pool(threads);
  pool.parallel_for_deterministic(specs.size(), [&](std::size_t i) {
    results[i] = engine.query(specs[i].src, specs[i].dst, specs[i].k);
  });
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const QueryEngine::QueryResult& r : results) {
    if (totals != nullptr) accumulate(*totals, r);
    out.push_back(format_result(r));
  }
  return out;
}

QueryBenchResult run_query_bench(const QueryBenchConfig& config) {
  util::Rng topo_rng(config.seed);
  const topo::AsGraph graph = topo::brite_like(
      config.nodes, 2, std::max<std::size_t>(4, config.nodes / 40), topo_rng);

  QueryEngine engine(config.nodes, config.serve);
  eval::RunOptions options;
  options.centaur_snapshot_sink = engine.make_sink();

  QueryBenchResult bench;

  // ---- live phase: query lanes race cold start + link flips ------------
  const std::size_t lanes = config.serve.query_threads;
  std::vector<std::vector<float>> lane_latency(lanes);
  std::optional<eval::ProtocolRun> run;
  std::exception_ptr protocol_error;

  const runner::Stopwatch live_wall;
  std::thread protocol([&] {
    try {
      util::Rng run_rng(util::derive_seed(config.seed, 1));
      run.emplace(graph, eval::Protocol::kCentaur, run_rng, options);
      util::Rng flip_rng(util::derive_seed(config.seed, 2));
      for (std::size_t f = 0; f < config.flip_sample; ++f) {
        const auto link =
            static_cast<topo::LinkId>(flip_rng.index(graph.num_links()));
        run->flip(link, false);
        run->flip(link, true);
      }
    } catch (...) {
      protocol_error = std::current_exception();
    }
  });
  {
    runner::WorkerPool pool(lanes);
    pool.parallel_for_deterministic(lanes, [&](std::size_t lane) {
      util::Rng rng(util::derive_seed(config.seed, 100 + lane));
      std::vector<float>& latency = lane_latency[lane];
      latency.reserve(config.live_iters);
      for (std::size_t i = 0; i < config.live_iters; ++i) {
        const auto src = static_cast<NodeId>(rng.index(config.nodes));
        const auto dst = static_cast<NodeId>(rng.index(config.nodes));
        const auto t0 = std::chrono::steady_clock::now();
        const QueryEngine::QueryResult r = engine.query(src, dst);
        const auto t1 = std::chrono::steady_clock::now();
        (void)r;
        latency.push_back(
            std::chrono::duration<float, std::micro>(t1 - t0).count());
      }
    });
  }
  protocol.join();
  const double live_s = live_wall.seconds();
  if (protocol_error) std::rethrow_exception(protocol_error);

  const QueryEngine::PublishStats publish = engine.publish_stats();
  std::vector<float> all_latency;
  for (std::vector<float>& lane : lane_latency) {
    all_latency.insert(all_latency.end(), lane.begin(), lane.end());
  }
  bench.live.name = "live";
  bench.live.wall_time_s = live_s;
  bench.live.events = run->network().events_executed();
  bench.live.messages = run->network().total_messages();
  bench.live.bytes = run->network().total_bytes();
  bench.live.metrics.emplace_back(
      "queries_issued", static_cast<double>(lanes * config.live_iters));
  bench.live.metrics.emplace_back(
      "qps", live_s > 0
                 ? static_cast<double>(lanes * config.live_iters) / live_s
                 : 0);
  bench.live.metrics.emplace_back("query_p50_us",
                                  percentile(all_latency, 0.50));
  bench.live.metrics.emplace_back("query_p99_us",
                                  percentile(all_latency, 0.99));
  bench.live.metrics.emplace_back("publish_p50_us", publish.p50_us);
  bench.live.metrics.emplace_back("publish_p99_us", publish.p99_us);

  // ---- steady phase: deterministic answers, gated counters -------------
  const runner::Stopwatch steady_wall;
  const std::vector<QuerySpec> specs =
      canonical_queries(config.nodes, config.seed, config.query_sample);
  EvalTotals totals;
  const std::vector<std::string> serial =
      evaluate_queries(engine, specs, 1, &totals);
  const std::vector<std::string> threaded =
      evaluate_queries(engine, specs, lanes, nullptr);
  if (serial != threaded) {
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (serial[i] != threaded[i]) {
        throw std::runtime_error(
            "querybench: answers diverged across thread counts at query " +
            std::to_string(i) + ": serial '" + serial[i] + "' vs threaded '" +
            threaded[i] + "'");
      }
    }
  }

  bench.steady.name = "steady";
  bench.steady.wall_time_s = steady_wall.seconds();
  auto metric = [&](const char* key, std::uint64_t value) {
    bench.steady.metrics.emplace_back(key, static_cast<double>(value));
  };
  metric("found", totals.found);
  metric("unreachable", totals.unreachable);
  metric("not_destination", totals.not_destination);
  metric("no_snapshot", totals.no_snapshot);
  metric("paths_returned", totals.paths_returned);
  metric("total_hops", totals.total_hops);
  metric("truncated", totals.truncated);
  metric("disjoint_1", totals.disjoint_1);
  metric("disjoint_2", totals.disjoint_2);
  metric("disjoint_3plus", totals.disjoint_3plus);
  metric("publishes", publish.publishes);
  metric("full_builds", publish.full_builds);
  metric("cells_live", publish.cells_live);
  metric("identity_checked", 1);
  return bench;
}

}  // namespace centaur::serve
