#include "serve/snapshot.hpp"

#include <algorithm>
#include <utility>

namespace centaur::serve {

const PGraph::AdjList PGraphSnapshot::kEmptyAdj{};

namespace {

/// Copies one node's live in-link state out of `local`.
SnapNode freeze_node(const PGraph& local, NodeId n) {
  SnapNode sn;
  const PGraph::AdjList& ps = local.parents(n);
  sn.parents = ps;
  sn.plists.reserve(ps.size());
  for (const NodeId p : ps) {
    const core::LinkData* data = local.find_link_data(p, n);
    sn.plists.push_back(data != nullptr ? data->plist
                                        : core::PermissionList{});
  }
  return sn;
}

/// Bounds the overlay-chain length even when deltas are tiny relative to
/// the graph: lookup cost is O(depth), so a hard cap keeps the read path
/// flat while the geometric rule keeps publishes delta-proportional.
constexpr std::size_t kMaxDepth = 64;

}  // namespace

std::shared_ptr<const PGraphSnapshot> SnapshotBuilder::build_full(
    const PGraph& local) {
  auto snap = std::make_shared<PGraphSnapshot>();
  snap->root_ = local.root();
  snap->version_ = next_version_++;
  snap->full_ = true;
  snap->depth_ = 1;
  // Distinct link heads == the nodes with in-links.  LinkView iteration is
  // hash order; VecMap::operator[] inserts sorted, so the snapshot content
  // is order-independent (and compared as such by the equivalence tests).
  for (const auto& [link, data] : local.links()) {
    (void)data;
    bool inserted = false;
    SnapNode& sn = snap->nodes_.ensure(link.to, inserted);
    if (inserted) sn = freeze_node(local, link.to);
  }
  snap->dests_ = local.destinations();
  ++full_builds_;
  full_nodes_ = snap->nodes_.size();
  overlay_accum_ = 0;
  prev_ = snap;
  return snap;
}

std::shared_ptr<const PGraphSnapshot> SnapshotBuilder::publish(
    const PGraph& local, const std::vector<NodeId>& changed_dests,
    const std::vector<DirectedLink>& touched_links) {
  if (policy_ == eval::SnapshotPolicy::kFull || prev_ == nullptr) {
    return build_full(local);
  }

  // Dirty node set: every touched link's head (in-link owner).  Destination
  // mark flips ride along from changed_dests.
  dirty_scratch_.clear();
  dirty_scratch_.reserve(touched_links.size());
  for (const DirectedLink& link : touched_links) {
    dirty_scratch_.push_back(link.to);
  }
  std::sort(dirty_scratch_.begin(), dirty_scratch_.end());
  dirty_scratch_.erase(
      std::unique(dirty_scratch_.begin(), dirty_scratch_.end()),
      dirty_scratch_.end());

  const std::size_t depth = prev_->depth_ + 1;
  overlay_accum_ += dirty_scratch_.size();
  if (depth > kMaxDepth ||
      overlay_accum_ >= std::max<std::size_t>(full_nodes_, 16)) {
    return build_full(local);
  }

  auto snap = std::make_shared<PGraphSnapshot>();
  snap->root_ = local.root();
  snap->version_ = next_version_++;
  snap->full_ = false;
  snap->depth_ = depth;
  snap->base_ = prev_;
  for (const NodeId n : dirty_scratch_) {
    snap->nodes_[n] = freeze_node(local, n);
  }
  for (const NodeId d : changed_dests) {
    snap->marks_[d] = local.is_destination(d) ? 1 : 0;
  }
  prev_ = snap;
  return snap;
}

}  // namespace centaur::serve
