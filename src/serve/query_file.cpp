#include "serve/query_file.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace centaur::serve {

namespace {

using util::json::JsonValue;

[[noreturn]] void spec_fail(const std::string& where,
                            const std::string& what) {
  throw std::runtime_error("queries JSON: " + where + ": " + what);
}

void reject_unknown_keys(const JsonValue& obj, const std::string& where,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.object) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) spec_fail(where, "unknown key \"" + key + "\"");
  }
}

std::uint64_t get_id(const JsonValue& obj, const std::string& where,
                     const char* key, bool required, std::uint64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) spec_fail(where, std::string("missing \"") + key + "\"");
    return fallback;
  }
  if (v->type != JsonValue::Type::kNumber) {
    spec_fail(where, std::string("\"") + key + "\" must be a number");
  }
  const double d = v->number;
  if (d < 0 || d != std::floor(d)) {
    spec_fail(where,
              std::string("\"") + key + "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

std::vector<QuerySpec> parse_queries_json(const std::string& text) {
  const JsonValue doc = util::json::parse_json(text, "queries JSON");
  if (doc.type != JsonValue::Type::kObject) {
    spec_fail("top level", "must be an object");
  }
  reject_unknown_keys(doc, "top level", {"queries"});
  const JsonValue* queries = doc.find("queries");
  if (queries == nullptr) spec_fail("top level", "missing \"queries\"");
  if (queries->type != JsonValue::Type::kArray) {
    spec_fail("queries", "must be an array");
  }

  std::vector<QuerySpec> out;
  out.reserve(queries->array.size());
  for (std::size_t i = 0; i < queries->array.size(); ++i) {
    const std::string where = "queries[" + std::to_string(i) + "]";
    const JsonValue& entry = queries->array[i];
    if (entry.type != JsonValue::Type::kObject) {
      spec_fail(where, "must be an object");
    }
    reject_unknown_keys(entry, where, {"src", "dst", "k"});
    QuerySpec spec;
    spec.src = static_cast<topo::NodeId>(get_id(entry, where, "src", true, 0));
    spec.dst = static_cast<topo::NodeId>(get_id(entry, where, "dst", true, 0));
    spec.k = static_cast<std::size_t>(get_id(entry, where, "k", false, 0));
    out.push_back(spec);
  }
  return out;
}

std::vector<QuerySpec> load_queries(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("queries JSON: cannot read file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_queries_json(buf.str());
}

}  // namespace centaur::serve
