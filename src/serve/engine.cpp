#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace centaur::serve {

namespace {

/// Percentile over a writer-side latency sample vector (nearest-rank).
double percentile_us(std::vector<float>& samples, double p) {
  if (samples.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return static_cast<double>(samples[rank]);
}

}  // namespace

QueryEngine::QueryEngine(std::size_t num_nodes,
                         const eval::ServeOptions& opts)
    : opts_(opts),
      num_nodes_(num_nodes),
      // Query threads plus headroom for the driver / main thread so a full
      // complement of readers never spins on slot acquisition.
      registry_(opts.query_threads + 2),
      cells_(new Cell[num_nodes]) {
  for (std::size_t i = 0; i < num_nodes; ++i) {
    cells_[i].builder = SnapshotBuilder(opts.snapshot_policy);
  }
}

core::SnapshotSink QueryEngine::make_sink() {
  return [this](NodeId self, const PGraph& local,
                const std::vector<NodeId>& changed_dests,
                const std::vector<DirectedLink>& touched_links) {
    publish(self, local, changed_dests, touched_links);
  };
}

void QueryEngine::publish(NodeId node, const PGraph& local,
                          const std::vector<NodeId>& changed_dests,
                          const std::vector<DirectedLink>& touched_links) {
  if (static_cast<std::size_t>(node) >= num_nodes_) return;
  Cell& cell = cells_[node];
  const auto t0 = std::chrono::steady_clock::now();
  auto snap = cell.builder.publish(local, changed_dests, touched_links);
  cell.cell.publish(std::move(snap), registry_);
  const auto t1 = std::chrono::steady_clock::now();
  ++cell.publishes;
  cell.publish_us.push_back(
      std::chrono::duration<float, std::micro>(t1 - t0).count());
}

QueryEngine::QueryResult QueryEngine::query(NodeId src, NodeId dst,
                                            std::size_t k) const {
  QueryResult result;
  if (k == 0) k = opts_.query_k;
  if (static_cast<std::size_t>(src) >= num_nodes_) return result;

  ReadPin pin(registry_);
  const PGraphSnapshot* snap = cells_[src].cell.current();
  if (snap == nullptr) return result;
  result.version = snap->version();

  if (dst == snap->root()) {
    // Self-destination: unified contract (DESIGN.md §14.3) — the trivial
    // path {src}, exactly one of it, trivially disjoint.
    result.status = QueryStatus::kOk;
    result.paths.push_back(Path{src});
    result.disjoint = 1;
    return result;
  }
  if (!snap->is_destination(dst)) {
    result.status = QueryStatus::kNotDestination;
    return result;
  }

  core::KPathResult kp = core::query_k_paths(*snap, dst, k);
  result.truncated = kp.truncated;
  if (kp.paths.empty()) {
    result.status = QueryStatus::kUnreachable;
    return result;
  }
  result.status = QueryStatus::kOk;
  result.paths = std::move(kp.paths);
  result.disjoint = core::disjoint_path_count(*snap, dst);
  return result;
}

QueryEngine::PublishStats QueryEngine::publish_stats() const {
  PublishStats stats;
  std::vector<float> all;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const Cell& cell = cells_[i];
    stats.publishes += cell.publishes;
    stats.full_builds += cell.builder.full_builds();
    if (cell.publishes > 0) ++stats.cells_live;
    all.insert(all.end(), cell.publish_us.begin(), cell.publish_us.end());
  }
  for (const float us : all) stats.total_us += static_cast<double>(us);
  stats.p50_us = percentile_us(all, 0.50);
  stats.p99_us = percentile_us(all, 0.99);
  return stats;
}

const char* to_string(QueryEngine::QueryStatus s) {
  switch (s) {
    case QueryEngine::QueryStatus::kOk:
      return "ok";
    case QueryEngine::QueryStatus::kNoSnapshot:
      return "no_snapshot";
    case QueryEngine::QueryStatus::kNotDestination:
      return "not_destination";
    case QueryEngine::QueryStatus::kUnreachable:
      return "unreachable";
  }
  return "unknown";
}

}  // namespace centaur::serve
