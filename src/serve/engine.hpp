// Read-mostly query engine over converged P-graphs (DESIGN.md §14).
//
// One QueryEngine serves (src, dst, k) path queries against per-node
// PGraphSnapshots while the protocol keeps running.  Concurrency design:
//
//   * Writers (protocol handlers): each CentaurNode publishes through its
//     own cell — single-writer by construction, so publishes from
//     lane-parallel floods never contend.  A publish builds the immutable
//     successor snapshot, swaps one raw atomic pointer, and retires the
//     predecessor; it never blocks and never takes a lock, so serving
//     cannot stall convergence.
//   * Readers (query threads): zero locks and zero reference-count traffic
//     on the read path.  A reader pins the current epoch in a private slot
//     (one CAS + one store), loads the cell pointer, walks the immutable
//     snapshot, and unpins.  `std::atomic<shared_ptr>` would silently fall
//     back to a spinlock pool in libstdc++ — the hand-rolled epoch scheme
//     is what makes "readers never take a lock" literally true.
//
// Reclamation: retiring writers tag the old snapshot with the pre-bump
// epoch E and free retired snapshots whose E is below every pinned slot
// value — purely opportunistic (try, never wait), so a slow reader delays
// frees but blocks nobody.  Safety argument (all operations seq_cst): a
// reader's slot store precedes its pointer load in the total order; a
// writer's pointer swap precedes its epoch bump and slot scan.  If the
// reader obtained pointer P, its slot held an epoch value <= P's retire
// epoch when any scan that could free P ran, so P is retained.
//
// Ordering vs the §8 commit barrier: publishes happen in handler context,
// so *within one simulated instant* readers may observe node A post-delta
// and node B pre-delta — per-cell monotonic consistency, not cross-node
// atomicity (queries read one cell).  Each cell's snapshot sequence is
// deterministic: content and version depend only on the event history,
// never on lane interleaving.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "centaur/query.hpp"
#include "eval/protocol_config.hpp"
#include "serve/snapshot.hpp"
#include "topology/types.hpp"

namespace centaur::serve {

using topo::Path;

/// Fixed array of per-reader epoch slots shared by an engine's cells.
/// Slot value 0 = quiescent; otherwise the epoch the reader pinned.
class ReaderRegistry {
 public:
  explicit ReaderRegistry(std::size_t slots)
      : slots_(new Slot[slots]), count_(slots) {}

  std::uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Writer side: bumps the global epoch, returning the pre-bump value
  /// (the retire tag of whatever was just unpublished).
  std::uint64_t advance_epoch() {
    return epoch_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Writer side: smallest pinned epoch across the slots, or UINT64_MAX
  /// when every reader is quiescent.  Retired snapshots tagged strictly
  /// below this are unreachable.
  std::uint64_t min_pinned() const {
    std::uint64_t min = UINT64_MAX;
    for (std::size_t i = 0; i < count_; ++i) {
      const std::uint64_t v = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (v != 0 && v < min) min = v;
    }
    return min;
  }

  std::size_t slot_count() const { return count_; }

 private:
  friend class ReadPin;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t count_;
  alignas(64) std::atomic<std::uint64_t> epoch_{1};  // 0 is "quiescent"
};

/// RAII read-side critical section: claims a free slot (bounded CAS scan —
/// the registry is sized for the maximum concurrent readers, so a pass
/// finds one) and pins the current epoch until destruction.  Everything
/// loaded from a SnapshotCell while pinned stays alive until unpin.
class ReadPin {
 public:
  explicit ReadPin(ReaderRegistry& reg) : reg_(&reg) {
    const std::uint64_t e = reg.current_epoch();
    for (std::size_t i = 0;; i = (i + 1) % reg.count_) {
      std::uint64_t expected = 0;
      if (reg.slots_[i].epoch.compare_exchange_strong(
              expected, e, std::memory_order_seq_cst)) {
        slot_ = i;
        return;
      }
    }
  }
  ~ReadPin() {
    reg_->slots_[slot_].epoch.store(0, std::memory_order_seq_cst);
  }
  ReadPin(const ReadPin&) = delete;
  ReadPin& operator=(const ReadPin&) = delete;

 private:
  ReaderRegistry* reg_;
  std::size_t slot_ = 0;
};

/// One node's published-snapshot cell: a raw atomic pointer for readers,
/// writer-side ownership and a retire list for reclamation.
class SnapshotCell {
 public:
  /// Read side (must hold a ReadPin): the current snapshot, or nullptr
  /// before the first publish.
  const PGraphSnapshot* current() const {
    return cur_.load(std::memory_order_seq_cst);
  }

  /// Write side (single writer per cell): swaps in `snap`, retires the
  /// predecessor, and opportunistically frees retired snapshots no pinned
  /// reader can still reach.
  void publish(std::shared_ptr<const PGraphSnapshot> snap,
               ReaderRegistry& reg) {
    cur_.store(snap.get(), std::memory_order_seq_cst);
    if (live_ != nullptr) {
      retired_.push_back(Retired{reg.advance_epoch(), std::move(live_)});
    }
    live_ = std::move(snap);
    const std::uint64_t min_pinned = reg.min_pinned();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].epoch >= min_pinned) {
        retired_[keep++] = std::move(retired_[i]);
      }
    }
    retired_.resize(keep);
  }

  /// Writer-side observable for tests: retired snapshots not yet freed.
  std::size_t retired_count() const { return retired_.size(); }

 private:
  struct Retired {
    std::uint64_t epoch;
    std::shared_ptr<const PGraphSnapshot> snap;
  };

  std::atomic<const PGraphSnapshot*> cur_{nullptr};
  std::shared_ptr<const PGraphSnapshot> live_;  // owns *cur_
  std::vector<Retired> retired_;                // single-writer
};

/// The serving plane: per-node snapshot cells fed by the protocol's
/// snapshot sink, queried concurrently by reader threads.
class QueryEngine {
 public:
  /// `num_nodes` sizes the cell array (topology node count); reader slots
  /// come from `opts.query_threads` plus headroom for a driver thread.
  QueryEngine(std::size_t num_nodes, const eval::ServeOptions& opts);

  const eval::ServeOptions& options() const { return opts_; }
  std::size_t num_nodes() const { return num_nodes_; }

  /// The CentaurNode snapshot hook, bound to this engine — assign to
  /// RunOptions::centaur_snapshot_sink before constructing the run.
  core::SnapshotSink make_sink();

  /// Writer side (handler context, single writer per `node`).
  void publish(NodeId node, const PGraph& local,
               const std::vector<NodeId>& changed_dests,
               const std::vector<DirectedLink>& touched_links);

  enum class QueryStatus : std::uint8_t {
    kOk,              ///< paths found (paths[0] = canonical DerivePath)
    kNoSnapshot,      ///< src has not published yet (or id out of range)
    kNotDestination,  ///< dst is not a marked destination at src
    kUnreachable,     ///< dst marked but no policy-compliant path derives
  };

  struct QueryResult {
    QueryStatus status = QueryStatus::kNoSnapshot;
    std::vector<Path> paths;     ///< up to k, canonical first
    std::size_t disjoint = 0;    ///< interior-node-disjoint path count
    std::uint64_t version = 0;   ///< snapshot version that answered
    bool truncated = false;      ///< enumeration hit its expansion budget
  };

  /// Read side: answers from src's current snapshot under a ReadPin; lock-
  /// free, safe to call from any thread concurrently with publishes.
  /// k == 0 uses the engine default (ServeOptions::query_k).
  QueryResult query(NodeId src, NodeId dst, std::size_t k = 0) const;

  /// Writer-side aggregates; call only while publishers are quiescent
  /// (after a run joined / between campaign phases).
  struct PublishStats {
    std::uint64_t publishes = 0;    ///< snapshot swaps across all cells
    std::uint64_t full_builds = 0;  ///< full materialisations among them
    std::uint64_t cells_live = 0;   ///< nodes that have published
    double total_us = 0;            ///< summed publish latency
    double p50_us = 0;
    double p99_us = 0;
  };
  PublishStats publish_stats() const;

 private:
  struct Cell {
    SnapshotCell cell;
    SnapshotBuilder builder;
    std::uint64_t publishes = 0;
    std::vector<float> publish_us;  // writer-side latency samples
  };

  eval::ServeOptions opts_;
  std::size_t num_nodes_;
  mutable ReaderRegistry registry_;
  std::unique_ptr<Cell[]> cells_;
};

const char* to_string(QueryEngine::QueryStatus s);

}  // namespace centaur::serve
