// Shared driver for `centaur querybench` and bench/bench_query.cpp
// (DESIGN.md §14.5).
//
// Two phases over one brite-like topology:
//
//   * live — query lanes (runner::WorkerPool) hammer the engine while the
//     protocol cold-starts and flips links on another thread, so reads race
//     publishes (the TSan target).  Query *counts* are fixed per lane, so
//     queries_issued is gated; latency/QPS depend on the race and are
//     reported but never gated.
//   * steady — after convergence the canonical query set is evaluated at
//     1 thread and at ServeOptions::query_threads; the two answer vectors
//     must be bit-identical (throws otherwise), and the resulting counters
//     (statuses, hops, disjoint histogram, publish counts) are the gated
//     datapoints of BENCH_query.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/protocol_config.hpp"
#include "runner/bench_report.hpp"
#include "serve/engine.hpp"
#include "serve/query_file.hpp"

namespace centaur::serve {

struct QueryBenchConfig {
  std::size_t nodes = 96;
  std::uint64_t seed = 0x5E62E;
  eval::ServeOptions serve;
  std::size_t live_iters = 64;    ///< live-phase queries per lane
  std::size_t flip_sample = 4;    ///< links flipped (down+up) during live
  std::size_t query_sample = 64;  ///< canonical steady-phase query count
};

/// Deterministic canonical query set: `count` (src, dst) pairs drawn from
/// Rng(seed), including a self-destination probe (the §14.3 contract).
std::vector<QuerySpec> canonical_queries(std::size_t nodes,
                                         std::uint64_t seed,
                                         std::size_t count);

/// Deterministic-phase counters (all gated at tolerance 0).
struct EvalTotals {
  std::uint64_t found = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t not_destination = 0;
  std::uint64_t no_snapshot = 0;
  std::uint64_t paths_returned = 0;
  std::uint64_t total_hops = 0;  ///< path vertices across all returned paths
  std::uint64_t truncated = 0;
  std::uint64_t disjoint_1 = 0;      ///< answers with exactly 1 disjoint path
  std::uint64_t disjoint_2 = 0;      ///< exactly 2
  std::uint64_t disjoint_3plus = 0;  ///< 3 or more
};

/// One answer rendered canonically ("ok v3 disjoint=2 paths=[0>4>7|0>2>7]")
/// — the unit of the cross-thread-count bit-identity check and the `serve`
/// output format.
std::string format_result(const QueryEngine::QueryResult& result);

/// Evaluates `specs` against `engine` on `threads` WorkerPool lanes and
/// returns the formatted answers in spec order.  Pure reads: results are
/// bit-identical for any thread count.  `totals` (optional) accumulates the
/// gated counters.
std::vector<std::string> evaluate_queries(const QueryEngine& engine,
                                          const std::vector<QuerySpec>& specs,
                                          std::size_t threads,
                                          EvalTotals* totals);

struct QueryBenchResult {
  runner::TrialResult live;    ///< protocol totals + ungated latency metrics
  runner::TrialResult steady;  ///< gated deterministic counters
};

/// Runs both phases.  Throws std::runtime_error if the steady-phase answers
/// differ between 1 and query_threads lanes.
QueryBenchResult run_query_bench(const QueryBenchConfig& config);

}  // namespace centaur::serve
