#include "eval/protocol_config.hpp"

#include <cstdlib>
#include <stdexcept>

#include "bgp/bgp_node.hpp"
#include "centaur/centaur_node.hpp"
#include "linkstate/ospf_node.hpp"
#include "util/env.hpp"

namespace centaur::eval {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kBgp:
      return "BGP";
    case Protocol::kBgpRcn:
      return "BGP-RCN";
    case Protocol::kCentaur:
      return "Centaur";
    case Protocol::kOspf:
      return "OSPF";
  }
  return "?";
}

Protocol protocol_from_string(const std::string& name) {
  if (name == "centaur") return Protocol::kCentaur;
  if (name == "bgp") return Protocol::kBgp;
  if (name == "bgp-rcn") return Protocol::kBgpRcn;
  if (name == "ospf") return Protocol::kOspf;
  throw std::invalid_argument("unknown protocol '" + name +
                              "' (want centaur|bgp|bgp-rcn|ospf)");
}

std::unique_ptr<sim::Node> make_protocol_node(Protocol p,
                                              const topo::AsGraph& graph,
                                              const RunOptions& options) {
  switch (p) {
    case Protocol::kBgp: {
      bgp::BgpNode::Config cfg;
      cfg.mrai = options.bgp_mrai;
      cfg.originate_limit = options.origin_limit;
      return std::make_unique<bgp::BgpNode>(graph, cfg);
    }
    case Protocol::kBgpRcn: {
      bgp::BgpNode::Config cfg;
      cfg.mrai = options.bgp_mrai;
      cfg.originate_limit = options.origin_limit;
      cfg.root_cause_notification = true;
      return std::make_unique<bgp::BgpNode>(graph, cfg);
    }
    case Protocol::kCentaur: {
      core::CentaurNode::Config cfg;
      cfg.coalesce_updates = util::env_flag_strict("CENTAUR_COALESCE", true);
      cfg.batch_datagrams =
          util::env_flag_strict("CENTAUR_BATCH_DATAGRAMS", false);
      cfg.bloom_plists = util::env_flag_strict("CENTAUR_BLOOM_PLISTS", false);
      cfg.incremental = util::env_flag_strict("CENTAUR_INCREMENTAL", true);
      cfg.originate_limit = options.origin_limit;
      cfg.snapshot_sink = options.centaur_snapshot_sink;
      return std::make_unique<core::CentaurNode>(graph, cfg);
    }
    case Protocol::kOspf:
      return std::make_unique<linkstate::OspfNode>(graph);
  }
  return nullptr;
}

const char* to_string(SnapshotPolicy p) {
  switch (p) {
    case SnapshotPolicy::kDelta:
      return "delta";
    case SnapshotPolicy::kFull:
      return "full";
  }
  return "?";
}

ServeOptions serve_options_from_env() {
  ServeOptions opts;
  opts.query_k = util::env_size_t("CENTAUR_QUERY_K", opts.query_k);
  opts.query_threads =
      util::env_size_t("CENTAUR_SERVE_THREADS", opts.query_threads);
  const std::string policy = util::env_enum_strict(
      "CENTAUR_SNAPSHOT_POLICY", {"delta", "full"}, "delta");
  opts.snapshot_policy =
      policy == "full" ? SnapshotPolicy::kFull : SnapshotPolicy::kDelta;
  return opts;
}

AnalysisMode analysis_from_env(AnalysisMode fallback) {
  const std::optional<std::string> env = util::env_string("CENTAUR_CHECK");
  if (!env) return fallback;
  const std::string& v = *env;
  if (v.empty() || v == "0" || v == "off" || v == "false" || v == "no") {
    return AnalysisMode::kOff;
  }
  if (v == "assert") return AnalysisMode::kAssert;
  if (v == "1" || v == "on" || v == "true" || v == "yes" || v == "collect") {
    return AnalysisMode::kCollect;
  }
  util::warn_once("CENTAUR_CHECK",
                  "CENTAUR_CHECK='" + v +
                      "' is not a recognised mode (off/collect/assert); "
                      "using default");
  return fallback;
}

}  // namespace centaur::eval
