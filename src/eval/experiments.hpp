// Event-driven protocol experiments (paper S5.3).
//
// Shared harness for the prototype measurements: cold-start convergence and
// the link-flip experiment ("sequentially flip each link ... first remove
// the link and wait till the routing protocol converges; then bring the
// link back up and wait for the convergence again; after each flip we
// measure the total count of messages sent and the duration required to
// re-stabilize").
//
// This header is the compatibility surface of the pre-ScenarioSpec API:
// protocol/option types live in eval/protocol_config.hpp (re-exported
// here), generic fault campaigns in src/faults/.  run_link_flips() is kept
// as a thin wrapper over the campaign engine so existing benches compile
// unchanged and emit identical numbers.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/analyzer.hpp"
#include "eval/protocol_config.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace centaur::eval {

/// A network with one protocol instance per node, started and converged.
/// Owns a private copy of the topology (link flips mutate it) for its whole
/// lifetime — campaigns that need a fresh cold start reuse it via reset()
/// instead of re-copying the AS graph.
class ProtocolRun {
 public:
  /// Builds nodes, runs the initialization phase to quiescence.
  ProtocolRun(const topo::AsGraph& graph, Protocol protocol, util::Rng& rng,
              const RunOptions& options = RunOptions());

  /// Re-runs the cold start in place: restores every link to its initial
  /// up/down state, rebuilds the network (fresh per-link delays drawn from
  /// `rng`) and all protocol nodes, and converges again.  The topology copy
  /// made at construction is reused — no AS-graph re-copy — which is what
  /// makes repeated campaign phases / cold-start reference runs cheap on
  /// large topologies (see bench_fig8_scalability's reuse measurement).
  void reset(util::Rng& rng);

  /// Messages/bytes/time of the (latest) initialization phase.
  const sim::WindowStats& cold_start() const { return cold_start_; }
  sim::Time cold_start_time() const { return cold_start_time_; }

  /// One measured transition: flip `link` to `up` and run to convergence.
  struct Transition {
    std::size_t messages = 0;
    std::size_t bytes = 0;
    sim::Time convergence_time = 0;
  };
  Transition flip(topo::LinkId link, bool up);

  sim::Network& network() { return *net_; }
  topo::AsGraph& graph() { return graph_; }
  Protocol protocol() const { return protocol_; }
  const RunOptions& options() const { return options_; }

  /// The analyzer attached to this run, or nullptr when analysis is off.
  const check::Analyzer* analyzer() const { return analyzer_.get(); }
  /// Mutable access for drivers that configure the route audit / reset its
  /// measurement window (the campaign engine).
  check::Analyzer* analyzer() { return analyzer_.get(); }

  /// Quiescence sweep + kAssert enforcement; no-op when analysis is off.
  /// The campaign engine calls this after every phase reconverges.
  void analyze_quiescent();

 private:
  /// Builds net_/analyzer_/nodes from the current graph_ state and runs the
  /// initialization phase (shared by the constructor and reset()).
  void build_and_converge(util::Rng& rng);

  topo::AsGraph graph_;
  std::vector<char> initial_link_up_;  // snapshot for reset()
  util::Rng delay_rng_;
  std::optional<sim::Network> net_;
  Protocol protocol_;
  RunOptions options_;
  AnalysisMode analysis_ = AnalysisMode::kOff;
  std::unique_ptr<check::Analyzer> analyzer_;
  sim::WindowStats cold_start_;
  sim::Time cold_start_time_ = 0;
};

/// Full link-flip experiment: cold start, then down+up for each chosen link.
struct FlipSeries {
  std::vector<double> convergence_times;  // seconds, one per transition
  std::vector<double> message_counts;     // one per transition
  sim::WindowStats cold_start;
  sim::Time cold_start_time = 0;
  /// Whole-series totals (cold start + every flip) for the bench JSON
  /// reports (src/runner/bench_report.hpp).
  std::uint64_t events = 0;
  std::size_t total_messages = 0;
  std::size_t total_bytes = 0;
  /// Invariant analysis outcome (empty/clean unless RunOptions::analysis
  /// was enabled).
  check::AnalysisReport analysis;
};

/// Flips `flip_sample` deterministically chosen links (both directions each)
/// and records every transition.  Links whose removal is measured are chosen
/// with the given rng; pass equal-seeded rngs to compare protocols on
/// identical flip sequences.
///
/// Deprecated wrapper: defined in src/faults/campaign.cpp — each transition
/// becomes a one-action phase of a fault campaign, so the scripted engine is
/// the single execution path.  Targets calling it must link centaur_faults.
FlipSeries run_link_flips(const topo::AsGraph& graph, Protocol protocol,
                          std::size_t flip_sample, util::Rng rng,
                          const RunOptions& options = RunOptions());

}  // namespace centaur::eval
