// Event-driven protocol experiments (paper S5.3).
//
// Shared harness for the prototype measurements: cold-start convergence and
// the link-flip experiment ("sequentially flip each link ... first remove
// the link and wait till the routing protocol converges; then bring the
// link back up and wait for the convergence again; after each flip we
// measure the total count of messages sent and the duration required to
// re-stabilize").
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "check/analyzer.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace centaur::eval {

enum class Protocol { kBgp, kBgpRcn, kCentaur, kOspf };

const char* to_string(Protocol p);

/// Invariant analysis while a run executes (src/check).
enum class AnalysisMode {
  kOff,      ///< no checking (measurement runs; checks distort nothing but
             ///< cost time)
  kCollect,  ///< record violations into the run's AnalysisReport
  kAssert,   ///< like kCollect, but throw std::logic_error at the first
             ///< quiescence sweep that finds the report non-clean
};

/// Analysis mode requested via the CENTAUR_CHECK environment variable at
/// *runtime* (any build type): unset/"0"/"off" -> `fallback`, "1"/"collect"
/// -> kCollect, "assert" -> kAssert.  Lets release-build benches and the
/// parallel trial driver run with the invariant checker attached.
AnalysisMode analysis_from_env(AnalysisMode fallback = AnalysisMode::kOff);

/// Per-run protocol options.
struct RunOptions {
  /// BGP Minimum Route Advertisement Interval, seconds.  The paper's
  /// DistComm prototype sits on the SSFNet code base, whose BGP uses the
  /// standard 30 s eBGP MRAI — the dominant term in its Fig 6 convergence
  /// times.  0 disables batching (propagation-limited BGP).
  sim::Time bgp_mrai = 0.0;
  /// Invariant analysis mode.  kOff is upgraded to kAssert for Centaur runs
  /// in CENTAUR_CHECK (Debug) builds, so every tier-1 simulation doubles as
  /// an invariant test.
  AnalysisMode analysis = AnalysisMode::kOff;
};

/// A network with one protocol instance per node, started and converged.
/// Owns a private copy of the topology (link flips mutate it).
class ProtocolRun {
 public:
  /// Builds nodes, runs the initialization phase to quiescence.
  ProtocolRun(const topo::AsGraph& graph, Protocol protocol, util::Rng& rng,
              const RunOptions& options = RunOptions());

  /// Messages/bytes/time of the initialization phase.
  const sim::WindowStats& cold_start() const { return cold_start_; }
  sim::Time cold_start_time() const { return cold_start_time_; }

  /// One measured transition: flip `link` to `up` and run to convergence.
  struct Transition {
    std::size_t messages = 0;
    std::size_t bytes = 0;
    sim::Time convergence_time = 0;
  };
  Transition flip(topo::LinkId link, bool up);

  sim::Network& network() { return net_; }
  topo::AsGraph& graph() { return graph_; }
  Protocol protocol() const { return protocol_; }

  /// The analyzer attached to this run, or nullptr when analysis is off.
  const check::Analyzer* analyzer() const { return analyzer_.get(); }

 private:
  /// Quiescence sweep + kAssert enforcement; no-op when analysis is off.
  void analyze_quiescent();

  topo::AsGraph graph_;
  util::Rng delay_rng_;
  sim::Network net_;
  Protocol protocol_;
  AnalysisMode analysis_ = AnalysisMode::kOff;
  std::unique_ptr<check::Analyzer> analyzer_;
  sim::WindowStats cold_start_;
  sim::Time cold_start_time_ = 0;
};

/// Full link-flip experiment: cold start, then down+up for each chosen link.
struct FlipSeries {
  std::vector<double> convergence_times;  // seconds, one per transition
  std::vector<double> message_counts;     // one per transition
  sim::WindowStats cold_start;
  sim::Time cold_start_time = 0;
  /// Whole-series totals (cold start + every flip) for the bench JSON
  /// reports (src/runner/bench_report.hpp).
  std::uint64_t events = 0;
  std::size_t total_messages = 0;
  std::size_t total_bytes = 0;
  /// Invariant analysis outcome (empty/clean unless RunOptions::analysis
  /// was enabled).
  check::AnalysisReport analysis;
};

/// Flips `flip_sample` deterministically chosen links (both directions each)
/// and records every transition.  Links whose removal is measured are chosen
/// with the given rng; pass equal-seeded rngs to compare protocols on
/// identical flip sequences.
FlipSeries run_link_flips(const topo::AsGraph& graph, Protocol protocol,
                          std::size_t flip_sample, util::Rng rng,
                          const RunOptions& options = RunOptions());

}  // namespace centaur::eval
