#include "eval/static_eval.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "centaur/announce.hpp"
#include "centaur/build_graph.hpp"
#include "centaur/query.hpp"
#include "policy/policy.hpp"
#include "policy/valley_free.hpp"

namespace centaur::eval {

using core::PGraph;
using policy::RouteEntry;
using policy::ValleyFreeRoutes;
using topo::Path;

namespace {

/// Merges destination `dest`'s complete co-optimal path DAG (as seen from
/// the P-graph root) into `pg`: every link on any maximally-preferred path,
/// counters, and the per-dest-next permission entries of Table 2
/// generalised to path sets (one entry per co-optimal next hop of the link
/// head).
void add_dag_to_pgraph(PGraph& pg, const policy::MultipathRoutes& mp,
                       NodeId dest) {
  const NodeId root = pg.root();
  pg.mark_destination(dest);
  if (root == dest) return;
  std::vector<NodeId> stack{root};
  std::set<NodeId> visited{root};
  while (!stack.empty()) {
    const NodeId b = stack.back();
    stack.pop_back();
    for (NodeId nh : mp.at(b).next_hops) {
      pg.add_link(b, nh);
      core::LinkData& data = pg.link_data(b, nh);
      ++data.counter;
      if (nh == dest) {
        data.plist.add(dest, core::kNoNextHop);
      } else {
        for (NodeId onward : mp.at(nh).next_hops) {
          data.plist.add(dest, onward);
        }
      }
      if (nh != dest && visited.insert(nh).second) stack.push_back(nh);
    }
  }
}

}  // namespace

PGraphStats compute_pgraph_stats(const AsGraph& g, std::size_t vantage_count,
                                 util::Rng& rng, PathSetMode mode,
                                 PlistScheme scheme,
                                 policy::TieBreak tie_break) {
  const std::size_t n = g.num_nodes();
  vantage_count = std::min(vantage_count, n);
  const std::vector<std::size_t> vantage =
      rng.sample_without_replacement(n, vantage_count);
  const std::uint64_t tie_seed = rng.next();

  // Accumulate each vantage node's path set destination-by-destination:
  // one solver run per destination serves every vantage.
  std::vector<PGraph> pgraphs;
  pgraphs.reserve(vantage.size());
  for (const std::size_t v : vantage) {
    pgraphs.emplace_back(static_cast<NodeId>(v));
  }
  PGraphStats stats;
  stats.vantage_count = vantage.size();

  for (NodeId dest = 0; dest < n; ++dest) {
    if (mode == PathSetMode::kMultipath) {
      const policy::MultipathRoutes mp = policy::MultipathRoutes::compute(g, dest);
      for (std::size_t i = 0; i < vantage.size(); ++i) {
        const NodeId v = static_cast<NodeId>(vantage[i]);
        if (v != dest && !mp.at(v).reachable()) {
          ++stats.unreachable_pairs;
          continue;
        }
        if (v != dest) {
          stats.path_length.add(static_cast<double>(mp.at(v).length));
        }
        add_dag_to_pgraph(pgraphs[i], mp, dest);
      }
    } else {
      const ValleyFreeRoutes routes =
          ValleyFreeRoutes::compute(g, dest, tie_break, tie_seed);
      for (std::size_t i = 0; i < vantage.size(); ++i) {
        const NodeId v = static_cast<NodeId>(vantage[i]);
        if (v == dest) {
          pgraphs[i].mark_destination(dest);
          continue;
        }
        if (!routes.at(v).reachable()) {
          ++stats.unreachable_pairs;
          continue;
        }
        const Path p = routes.path_from(v);
        stats.path_length.add(static_cast<double>(p.size() - 1));
        core::add_path_to_pgraph(pgraphs[i], p);
      }
    }
  }

  // Read off Table 4 / Table 5 metrics.
  std::size_t e1 = 0, e2 = 0, e3 = 0, egt3 = 0;
  double links_sum = 0, plists_sum = 0;
  for (std::size_t i = 0; i < vantage.size(); ++i) {
    PGraph& pg = pgraphs[i];
    if (scheme == PlistScheme::kMinimal) {
      core::minimize_permission_lists(pg);
    }
    links_sum += static_cast<double>(pg.num_links());
    std::size_t plists = 0;
    for (const auto& [link, data] : pg.links()) {
      if (!pg.multi_homed(link.to) || data.plist.empty()) continue;
      ++plists;
      const std::size_t entries = data.plist.entry_count();
      if (entries == 1) {
        ++e1;
      } else if (entries == 2) {
        ++e2;
      } else if (entries == 3) {
        ++e3;
      } else {
        ++egt3;
      }
      stats.plist_bytes_raw.add(
          static_cast<double>(data.plist.byte_size(false)));
      stats.plist_bytes_bloom.add(
          static_cast<double>(data.plist.byte_size(true)));
    }
    plists_sum += static_cast<double>(plists);

    // Path diversity over a deterministic destination sample, read through
    // the unified query API so the offline numbers match what the serving
    // plane answers (DESIGN.md §14.3).
    const core::PGraphView view{&pg};
    const PGraph::DestList& dests = pg.destinations();
    const std::size_t stride = std::max<std::size_t>(1, dests.size() / 32);
    for (std::size_t d = 0; d < dests.size(); d += stride) {
      const NodeId dest = dests[d];
      if (dest == pg.root()) continue;
      const core::KPathResult kp = core::query_k_paths(view, dest, 4);
      stats.k_paths_per_dest.add(static_cast<double>(kp.paths.size()));
      stats.disjoint_paths.add(
          static_cast<double>(core::disjoint_path_count(view, dest)));
    }
  }

  if (!vantage.empty()) {
    stats.avg_links = links_sum / static_cast<double>(vantage.size());
    stats.avg_plists = plists_sum / static_cast<double>(vantage.size());
  }
  stats.plists_total = e1 + e2 + e3 + egt3;
  if (stats.plists_total > 0) {
    const double t = static_cast<double>(stats.plists_total);
    stats.frac_entries_1 = static_cast<double>(e1) / t;
    stats.frac_entries_2 = static_cast<double>(e2) / t;
    stats.frac_entries_3 = static_cast<double>(e3) / t;
    stats.frac_entries_gt3 = static_cast<double>(egt3) / t;
  }
  return stats;
}

PGraph build_node_pgraph(const AsGraph& g, NodeId vantage,
                         policy::TieBreak tie_break, std::uint64_t tie_seed) {
  std::map<NodeId, Path> selected;
  for (NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    if (dest == vantage) {
      selected[dest] = Path{vantage};
      continue;
    }
    const ValleyFreeRoutes routes =
        ValleyFreeRoutes::compute(g, dest, tie_break, tie_seed);
    if (routes.at(vantage).reachable()) {
      selected[dest] = routes.path_from(vantage);
    }
  }
  return core::build_local_pgraph(vantage, selected);
}

MultipathDissemination multipath_dissemination_cost(const AsGraph& g,
                                                    NodeId vantage) {
  MultipathDissemination out;
  PGraph pg(vantage);
  for (NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    if (dest == vantage) continue;
    const policy::MultipathRoutes mp = policy::MultipathRoutes::compute(g, dest);
    if (!mp.at(vantage).reachable()) continue;
    ++out.destinations;
    add_dag_to_pgraph(pg, mp, dest);

    // Count co-optimal paths and their total length by DP over the DAG
    // (lengths strictly decrease along next hops, so memo on node works).
    std::map<NodeId, std::pair<double, double>> memo;  // node -> (cnt, lenSum)
    auto dp = [&](auto&& self_fn, NodeId x) -> std::pair<double, double> {
      if (x == dest) return {1.0, 0.0};
      const auto it = memo.find(x);
      if (it != memo.end()) return it->second;
      double cnt = 0, len_sum = 0;
      for (const NodeId nh : mp.at(x).next_hops) {
        const auto [c, l] = self_fn(self_fn, nh);
        cnt += c;
        len_sum += l + c;  // every sub-path grows by the hop x->nh
      }
      return memo[x] = {cnt, len_sum};
    };
    const auto [cnt, len_sum] = dp(dp, vantage);
    out.total_paths += cnt;
    out.max_paths_per_dest = std::max(out.max_paths_per_dest, cnt);
    // One path-vector announcement per path: 23-byte update + 4 bytes per
    // AS on the path (path node count = hop count + 1).
    out.path_vector_bytes += 23.0 * cnt + 4.0 * (len_sum + cnt);
  }
  out.centaur_links = pg.num_links();
  const core::ExportedView view = core::make_export_view(pg, nullptr);
  out.centaur_bytes =
      core::diff_views(core::ExportedView{}, view).byte_size(false);
  return out;
}

FailureOverhead immediate_failure_overhead(const AsGraph& g,
                                           std::size_t link_sample,
                                           util::Rng& rng,
                                           policy::TieBreak tie_break) {
  const std::size_t n = g.num_nodes();
  link_sample = std::min(link_sample, g.num_links());
  const std::vector<std::size_t> sampled =
      rng.sample_without_replacement(g.num_links(), link_sample);
  const std::uint64_t tie_seed = rng.next();

  struct PerLink {
    std::size_t bgp = 0;
    // Neighbors (of either endpoint) whose exported view contains the link;
    // each gets exactly one Centaur link withdrawal.
    std::set<std::pair<NodeId, NodeId>> centaur_notify;
  };
  std::vector<PerLink> per_link(sampled.size());

  // One pass per destination, shared across all sampled links.
  for (NodeId dest = 0; dest < n; ++dest) {
    const ValleyFreeRoutes routes =
        ValleyFreeRoutes::compute(g, dest, tie_break, tie_seed);
    for (std::size_t i = 0; i < sampled.size(); ++i) {
      const topo::Link& l = g.link(static_cast<LinkId>(sampled[i]));
      for (const auto& [endpoint, other] :
           {std::pair{l.a, l.b}, std::pair{l.b, l.a}}) {
        const RouteEntry& e = routes.at(endpoint);
        if (!e.reachable() || e.next_hop != other) continue;
        // `endpoint` selected this link as its first hop for `dest`:
        // it must update every neighbor it had exported the route to.
        for (const topo::Neighbor& nb : g.neighbors(endpoint)) {
          if (nb.node == other) continue;  // split horizon
          if (!policy::may_export(e.source, nb.rel)) continue;
          ++per_link[i].bgp;  // per-destination withdrawal (path vector)
          per_link[i].centaur_notify.emplace(endpoint, nb.node);
        }
      }
    }
  }

  FailureOverhead out;
  out.links_sampled = sampled.size();
  for (const PerLink& pl : per_link) {
    out.bgp_messages.add(static_cast<double>(pl.bgp));
    out.centaur_messages.add(static_cast<double>(pl.centaur_notify.size()));
  }
  return out;
}

}  // namespace centaur::eval
