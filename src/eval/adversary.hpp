// Protocol-agnostic dispatch for the adversarial fault actions (DESIGN.md
// §15): the campaign engine speaks FaultScript actions, and these helpers
// translate them onto whichever node type a protocol arm runs.  BGP and
// Centaur implement the hooks; OSPF (and the DeadNode crash stub) have no
// policy layer to misbehave against, so dispatch is a no-op there — the
// OSPF arm doubles as the "adversary has no effect" control.
//
// Everything here runs in driver context only (between batches), exactly
// like Network::set_link_state.
#pragma once

#include <cstddef>
#include <vector>

#include "policy/policy.hpp"
#include "sim/network.hpp"
#include "topology/types.hpp"

namespace centaur::eval {

/// Applies (or clears) the route-leak misbehavior on one node.  Returns
/// true when the node type supports the hook (BGP/Centaur).
bool set_route_leak(sim::Node& node, bool enabled);

/// Applies (or clears) an interception of `victim` on one node.
bool set_intercept(sim::Node& node, topo::NodeId victim, bool enabled);

/// Installs (or clears, when `enabled` is false) the local-pref-flip
/// ranking override on one node.
bool set_local_pref_flip(sim::Node& node, bool enabled);

/// Notifies one node that link relationships changed under it
/// (AsGraph::set_rel); no-op for nodes without a policy layer.
void relationships_changed(sim::Node& node);

/// Notifies every node, ascending by id — the deterministic fan-out the
/// campaign engine uses after a rel_change action.
void relationships_changed_all(sim::Network& net, std::size_t num_nodes);

/// The local-pref flip of the policy-churn pack: swaps the peer and
/// provider preference classes (customer routes stay on top), with ties
/// falling through to the standard ranking.  A strict partial order, so
/// both protocols' override contracts hold.
policy::RankingOverride local_pref_flip_ranking();

/// Blast radius (DESIGN.md §15): the number of non-adversary nodes with at
/// least one selected route that *transits* a node in `targets` (sorted
/// ascending) — the target appears as an intermediate hop, or as the
/// terminal hop of a route for a different destination (a fabricated
/// interception edge).  Routes *to* a target do not count.  Nodes without
/// a RouteView (OSPF) contribute zero.
std::size_t blast_radius(sim::Network& net, std::size_t num_nodes,
                         const std::vector<topo::NodeId>& targets);

}  // namespace centaur::eval
