#include "eval/adversary.hpp"

#include <algorithm>

#include "bgp/bgp_node.hpp"
#include "centaur/centaur_node.hpp"
#include "policy/route_view.hpp"

namespace centaur::eval {

using topo::NodeId;

bool set_route_leak(sim::Node& node, bool enabled) {
  if (auto* c = dynamic_cast<core::CentaurNode*>(&node)) {
    c->set_route_leak(enabled);
    return true;
  }
  if (auto* b = dynamic_cast<bgp::BgpNode*>(&node)) {
    b->set_route_leak(enabled);
    return true;
  }
  return false;
}

bool set_intercept(sim::Node& node, NodeId victim, bool enabled) {
  if (auto* c = dynamic_cast<core::CentaurNode*>(&node)) {
    c->set_intercept(victim, enabled);
    return true;
  }
  if (auto* b = dynamic_cast<bgp::BgpNode*>(&node)) {
    b->set_intercept(victim, enabled);
    return true;
  }
  return false;
}

bool set_local_pref_flip(sim::Node& node, bool enabled) {
  policy::RankingOverride ranking =
      enabled ? local_pref_flip_ranking() : policy::RankingOverride{};
  if (auto* c = dynamic_cast<core::CentaurNode*>(&node)) {
    c->set_ranking_override(std::move(ranking));
    return true;
  }
  if (auto* b = dynamic_cast<bgp::BgpNode*>(&node)) {
    b->set_ranking_override(std::move(ranking));
    return true;
  }
  return false;
}

void relationships_changed(sim::Node& node) {
  if (auto* c = dynamic_cast<core::CentaurNode*>(&node)) {
    c->relationships_changed();
    return;
  }
  if (auto* b = dynamic_cast<bgp::BgpNode*>(&node)) {
    b->relationships_changed();
  }
}

void relationships_changed_all(sim::Network& net, std::size_t num_nodes) {
  for (NodeId id = 0; id < num_nodes; ++id) {
    relationships_changed(net.node(id));
  }
}

policy::RankingOverride local_pref_flip_ranking() {
  // Swap the peer(2) and provider(3) classes; report a strict preference
  // only across distinct flipped classes so equal-class comparisons fall
  // through to the standard ranking (class, length, next hop).
  const auto flipped_class = [](policy::RouteSource s) {
    const int c = policy::preference_class(s);
    if (c == 2) return 3;
    if (c == 3) return 2;
    return c;
  };
  return [flipped_class](const policy::Candidate& a, const topo::Path&,
                         const policy::Candidate& b, const topo::Path&) {
    return flipped_class(a.source) < flipped_class(b.source);
  };
}

std::size_t blast_radius(sim::Network& net, std::size_t num_nodes,
                         const std::vector<NodeId>& targets) {
  if (targets.empty()) return 0;
  const auto is_target = [&targets](NodeId id) {
    return std::binary_search(targets.begin(), targets.end(), id);
  };
  std::size_t count = 0;
  for (NodeId id = 0; id < num_nodes; ++id) {
    if (is_target(id)) continue;  // the misbehaving AS itself never counts
    const auto* view = dynamic_cast<const policy::RouteView*>(&net.node(id));
    if (view == nullptr) continue;
    bool transits = false;
    view->for_each_selected_route(
        [&](NodeId dest, const topo::Path& path) {
          if (transits) return;
          for (std::size_t i = 1; i < path.size(); ++i) {
            const bool terminal = i + 1 == path.size();
            if (is_target(path[i]) && (!terminal || path[i] != dest)) {
              transits = true;
              return;
            }
          }
        });
    if (transits) ++count;
  }
  return count;
}

}  // namespace centaur::eval
