#include "eval/experiments.hpp"

#include <cstdlib>
#include <memory>
#include <string>

#include "bgp/bgp_node.hpp"
#include "centaur/centaur_node.hpp"
#include "linkstate/ospf_node.hpp"

namespace centaur::eval {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kBgp:
      return "BGP";
    case Protocol::kBgpRcn:
      return "BGP-RCN";
    case Protocol::kCentaur:
      return "Centaur";
    case Protocol::kOspf:
      return "OSPF";
  }
  return "?";
}

namespace {

// Boolean env toggle: unset -> fallback; "", "0", "off", "false" -> false;
// anything else -> true.
bool env_flag(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const std::string v(env);
  return !(v.empty() || v == "0" || v == "off" || v == "false");
}

std::unique_ptr<sim::Node> make_node(Protocol p, const topo::AsGraph& g,
                                     const RunOptions& options) {
  switch (p) {
    case Protocol::kBgp: {
      bgp::BgpNode::Config cfg;
      cfg.mrai = options.bgp_mrai;
      return std::make_unique<bgp::BgpNode>(g, cfg);
    }
    case Protocol::kBgpRcn: {
      bgp::BgpNode::Config cfg;
      cfg.mrai = options.bgp_mrai;
      cfg.root_cause_notification = true;
      return std::make_unique<bgp::BgpNode>(g, cfg);
    }
    case Protocol::kCentaur: {
      core::CentaurNode::Config cfg;
      cfg.coalesce_updates = env_flag("CENTAUR_COALESCE", true);
      cfg.bloom_plists = env_flag("CENTAUR_BLOOM_PLISTS", false);
      return std::make_unique<core::CentaurNode>(g, cfg);
    }
    case Protocol::kOspf:
      return std::make_unique<linkstate::OspfNode>(g);
  }
  return nullptr;
}

}  // namespace

ProtocolRun::ProtocolRun(const topo::AsGraph& graph, Protocol protocol,
                         util::Rng& rng, const RunOptions& options)
    : graph_(graph),
      delay_rng_(rng.next()),
      net_(graph_, delay_rng_),
      protocol_(protocol),
      analysis_(options.analysis) {
#ifdef CENTAUR_CHECK
  // Debug builds promote every Centaur run into an invariant test.
  if (analysis_ == AnalysisMode::kOff && protocol == Protocol::kCentaur) {
    analysis_ = AnalysisMode::kAssert;
  }
#endif
  if (analysis_ != AnalysisMode::kOff) {
    analyzer_ = std::make_unique<check::Analyzer>(net_);
  }
  for (topo::NodeId v = 0; v < graph_.num_nodes(); ++v) {
    net_.attach(v, make_node(protocol, graph_, options));
  }
  net_.mark();
  net_.start_all_and_converge();
  analyze_quiescent();
  cold_start_ = net_.window();
  cold_start_time_ = net_.window_convergence_time();
}

void ProtocolRun::analyze_quiescent() {
  if (!analyzer_) return;
  analyzer_->check_all();
  if (analysis_ == AnalysisMode::kAssert) analyzer_->expect_clean();
}

ProtocolRun::Transition ProtocolRun::flip(topo::LinkId link, bool up) {
  net_.mark();
  net_.set_link_state(link, up);
  net_.run_to_convergence();
  analyze_quiescent();
  Transition t;
  t.messages = net_.window().messages_sent;
  t.bytes = net_.window().bytes_sent;
  t.convergence_time = net_.window_convergence_time();
  return t;
}

FlipSeries run_link_flips(const topo::AsGraph& graph, Protocol protocol,
                          std::size_t flip_sample, util::Rng rng,
                          const RunOptions& options) {
  ProtocolRun run(graph, protocol, rng, options);
  FlipSeries series;
  series.cold_start = run.cold_start();
  series.cold_start_time = run.cold_start_time();

  flip_sample = std::min<std::size_t>(flip_sample, graph.num_links());
  const std::vector<std::size_t> links =
      rng.sample_without_replacement(graph.num_links(), flip_sample);

  for (std::size_t raw : links) {
    const auto link = static_cast<topo::LinkId>(raw);
    for (const bool up : {false, true}) {
      const ProtocolRun::Transition t = run.flip(link, up);
      series.convergence_times.push_back(t.convergence_time);
      series.message_counts.push_back(static_cast<double>(t.messages));
    }
  }
  series.events = run.network().events_executed();
  series.total_messages = run.network().total_messages();
  series.total_bytes = run.network().total_bytes();
  if (run.analyzer()) series.analysis = run.analyzer()->report();
  return series;
}

AnalysisMode analysis_from_env(AnalysisMode fallback) {
  const char* env = std::getenv("CENTAUR_CHECK");
  if (env == nullptr) return fallback;
  const std::string v(env);
  if (v.empty() || v == "0" || v == "off") return fallback;
  if (v == "assert") return AnalysisMode::kAssert;
  return AnalysisMode::kCollect;  // "1", "collect", anything else truthy
}

}  // namespace centaur::eval
