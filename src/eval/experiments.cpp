#include "eval/experiments.hpp"

namespace centaur::eval {

ProtocolRun::ProtocolRun(const topo::AsGraph& graph, Protocol protocol,
                         util::Rng& rng, const RunOptions& options)
    : graph_(graph),
      delay_rng_(rng.next()),
      protocol_(protocol),
      options_(options),
      analysis_(options.analysis) {
#ifdef CENTAUR_CHECK
  // Debug builds promote every Centaur run into an invariant test.
  if (analysis_ == AnalysisMode::kOff && protocol == Protocol::kCentaur) {
    analysis_ = AnalysisMode::kAssert;
  }
#endif
  initial_link_up_.reserve(graph_.num_links());
  for (topo::LinkId l = 0; l < graph_.num_links(); ++l) {
    initial_link_up_.push_back(graph_.link_up(l) ? 1 : 0);
  }
  build_and_converge(delay_rng_);
}

void ProtocolRun::reset(util::Rng& rng) {
  // The analyzer hooks into the network being torn down; detach it first.
  analyzer_.reset();
  for (topo::LinkId l = 0; l < graph_.num_links(); ++l) {
    graph_.set_link_up(l, initial_link_up_[l] != 0);
  }
  delay_rng_ = util::Rng(rng.next());
  build_and_converge(delay_rng_);
}

void ProtocolRun::build_and_converge(util::Rng& rng) {
  net_.emplace(graph_, rng);
  if (analysis_ != AnalysisMode::kOff) {
    analyzer_ = std::make_unique<check::Analyzer>(*net_);
  }
  for (topo::NodeId v = 0; v < graph_.num_nodes(); ++v) {
    net_->attach(v, make_protocol_node(protocol_, graph_, options_));
  }
  net_->mark();
  net_->start_all_and_converge();
  analyze_quiescent();
  cold_start_ = net_->window();
  cold_start_time_ = net_->window_convergence_time();
}

void ProtocolRun::analyze_quiescent() {
  if (!analyzer_) return;
  analyzer_->check_all();
  if (analysis_ == AnalysisMode::kAssert) analyzer_->expect_clean();
}

ProtocolRun::Transition ProtocolRun::flip(topo::LinkId link, bool up) {
  net_->mark();
  net_->set_link_state(link, up);
  net_->run_to_convergence();
  analyze_quiescent();
  Transition t;
  t.messages = net_->window().messages_sent;
  t.bytes = net_->window().bytes_sent;
  t.convergence_time = net_->window_convergence_time();
  return t;
}

}  // namespace centaur::eval
