// Offline evaluation pipeline (paper S5.2).
//
// Mirrors the paper's measurement methodology on AS topologies:
//  1. derive the complete valley-free best-path set per node ("for each node
//     ... we first derive a complete path set reaching all other nodes");
//  2. build each node's local P-graph from its path set (BuildGraph);
//  3. read off P-graph structure (Table 4), the Permission-List entry
//     distribution (Table 5), and the immediate single-link-failure message
//     counts for BGP vs Centaur (Figure 5, no cascading).
//
// All-pairs over 20k+ nodes is quadratic, so statistics are taken over a
// deterministic sample of vantage nodes / failed links (sample sizes are
// reported by the benches); the destination dimension is always complete.
#pragma once

#include <cstddef>
#include <vector>

#include "centaur/pgraph.hpp"
#include "policy/valley_free.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace centaur::eval {

using topo::AsGraph;
using topo::LinkId;
using topo::NodeId;

/// Table 4 + Table 5 data over a vantage sample.
struct PGraphStats {
  std::size_t vantage_count = 0;
  /// Table 4 rows (averages per local P-graph).
  double avg_links = 0;
  double avg_plists = 0;
  /// Table 5: distribution of Permission-List entry counts over all active
  /// Permission Lists of all sampled P-graphs.
  std::size_t plists_total = 0;
  double frac_entries_1 = 0;
  double frac_entries_2 = 0;
  double frac_entries_3 = 0;
  double frac_entries_gt3 = 0;
  /// Extra diagnostics (not in the paper's tables but useful):
  util::Accumulator plist_bytes_raw;
  util::Accumulator plist_bytes_bloom;
  util::Accumulator path_length;
  std::size_t unreachable_pairs = 0;
  /// Path diversity read through the unified query API (core::query_k_paths
  /// / core::disjoint_path_count, DESIGN.md §14.3) over a deterministic
  /// destination sample per vantage P-graph: how many policy-compliant
  /// paths the P-graph encodes per destination (capped at 4) and how many
  /// of them are interior-node-disjoint (the serve-plane
  /// disjoint_path_count lower bound).
  util::Accumulator k_paths_per_dest;
  util::Accumulator disjoint_paths;
};

/// How each node's "complete path set" (S5.2) is derived.
///
/// kMultipath keeps, per destination, *every* maximally-preferred
/// valley-free path (all co-optimal next hops) — the reading of the
/// paper's "complete path set" that reproduces Table 4/5's shape: with any
/// single-path globally-consistent tie-break, P-graphs collapse to
/// near-trees and carry almost no Permission Lists, whereas the paper
/// reports ~1.5 links per node and 92% of lists with exactly two entries
/// (a destination-sentinel group plus one onward group per in-link of a
/// multi-homed node), which is exactly what co-optimal path sets produce.
///
/// kSinglePath keeps one best path per destination and is provided as an
/// ablation; its `tie_break` defaults to the per-destination-random mode
/// (real BGP breaks ties by effectively arbitrary per-prefix criteria —
/// route age, IGP cost, router id).
enum class PathSetMode { kSinglePath, kMultipath };

/// Which Permission-List placement is counted.
///
/// kPerLink is Table 2 taken literally (every in-link of a multi-homed
/// node carries a list).  kMinimal is the paper's Figure 4(c) placement —
/// the dominant in-link stays unlisted as the default — and is what the
/// paper's Table 4 count (#Permission Lists ~ #extra in-links) and Table 5
/// entry distribution reflect.
enum class PlistScheme { kPerLink, kMinimal };

/// Runs steps 1-3 for `vantage_count` deterministically sampled nodes.
PGraphStats compute_pgraph_stats(
    const AsGraph& g, std::size_t vantage_count, util::Rng& rng,
    PathSetMode mode = PathSetMode::kMultipath,
    PlistScheme scheme = PlistScheme::kMinimal,
    policy::TieBreak tie_break = policy::TieBreak::kPerDestRandom);

/// Builds the local P-graph of a single node from the static valley-free
/// solution (used by examples and tests; compute_pgraph_stats uses the
/// batched per-destination formulation internally).
core::PGraph build_node_pgraph(
    const AsGraph& g, NodeId vantage,
    policy::TieBreak tie_break = policy::TieBreak::kLowestNextHop,
    std::uint64_t tie_seed = 0);

/// Figure 5: immediate update messages caused by one link failure, with no
/// cascading — only what the two endpoint nodes emit.
/// BGP: one per-destination withdrawal per neighbor the route had been
/// exported to.  Centaur: one link withdrawal per neighbor whose exported
/// view contained the failed link.
struct FailureOverhead {
  util::Accumulator bgp_messages;      // one sample per failed link
  util::Accumulator centaur_messages;  // one sample per failed link
  std::size_t links_sampled = 0;
};

FailureOverhead immediate_failure_overhead(
    const AsGraph& g, std::size_t link_sample, util::Rng& rng,
    policy::TieBreak tie_break = policy::TieBreak::kPerDestRandom);

/// S7 extension study: cost of disseminating one node's *complete*
/// co-optimal path set (all maximally-preferred paths per destination).
///
/// Path vector must announce each path separately; Centaur announces the
/// union DAG as links (each link once, plus Permission Lists on multi-homed
/// heads).  The paper anticipates Centaur "can propagate multiple paths for
/// a destination in a more compact and scalable way" — this quantifies it.
struct MultipathDissemination {
  std::size_t destinations = 0;
  double total_paths = 0;          ///< sum over dests of co-optimal paths
  double max_paths_per_dest = 0;   ///< worst-case fan-out
  double path_vector_bytes = 0;    ///< one announcement per path
  std::size_t centaur_links = 0;   ///< links in the union DAG
  std::size_t centaur_bytes = 0;   ///< full-view announcement of the DAG
};

MultipathDissemination multipath_dissemination_cost(const AsGraph& g,
                                                    NodeId vantage);

}  // namespace centaur::eval
