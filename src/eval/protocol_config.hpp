// Protocol selection and per-run options, shared by every experiment
// entry point.
//
// These types used to live inside eval/experiments.hpp; they are split out
// so the ScenarioSpec API (src/faults/scenario.hpp) can aggregate
// "topology + protocol + RunOptions + fault script" without pulling in the
// whole link-flip harness.  experiments.hpp re-exports them, so existing
// callers compile unchanged.
#pragma once

#include <memory>
#include <string>

#include "sim/network.hpp"
#include "topology/as_graph.hpp"

namespace centaur::eval {

enum class Protocol { kBgp, kBgpRcn, kCentaur, kOspf };

const char* to_string(Protocol p);

/// Parses "bgp" / "bgp-rcn" / "centaur" / "ospf" (the CLI and scenario-file
/// spellings).  Throws std::invalid_argument on anything else.
Protocol protocol_from_string(const std::string& name);

/// All four protocols in a fixed, reportable order (campaign sweeps).
inline constexpr Protocol kAllProtocols[] = {
    Protocol::kBgp, Protocol::kBgpRcn, Protocol::kCentaur, Protocol::kOspf};

/// Invariant analysis while a run executes (src/check).
enum class AnalysisMode {
  kOff,      ///< no checking (measurement runs; checks distort nothing but
             ///< cost time)
  kCollect,  ///< record violations into the run's AnalysisReport
  kAssert,   ///< like kCollect, but throw std::logic_error at the first
             ///< quiescence sweep that finds the report non-clean
};

/// Analysis mode requested via the CENTAUR_CHECK environment variable at
/// *runtime* (any build type): unset/"0"/"off" -> `fallback`, "1"/"collect"
/// -> kCollect, "assert" -> kAssert.  Lets release-build benches and the
/// parallel trial driver run with the invariant checker attached.
AnalysisMode analysis_from_env(AnalysisMode fallback = AnalysisMode::kOff);

/// Per-run protocol options.
struct RunOptions {
  /// BGP Minimum Route Advertisement Interval, seconds.  The paper's
  /// DistComm prototype sits on the SSFNet code base, whose BGP uses the
  /// standard 30 s eBGP MRAI — the dominant term in its Fig 6 convergence
  /// times.  0 disables batching (propagation-limited BGP).
  sim::Time bgp_mrai = 0.0;
  /// When non-zero, only nodes with id < origin_limit originate their
  /// prefix (destination-limited workload for 100k+-node scale runs —
  /// full-mesh origination is quadratic in routes).  Applied uniformly to
  /// Centaur and BGP so cross-protocol numbers stay comparable; OSPF
  /// ignores it (its LSDB is already per-link, but that also makes it
  /// infeasible at this scale — see bench_fig8_large).
  topo::NodeId origin_limit = 0;
  /// Invariant analysis mode.  kOff is upgraded to kAssert for Centaur runs
  /// in CENTAUR_CHECK (Debug) builds, so every tier-1 simulation doubles as
  /// an invariant test.
  AnalysisMode analysis = AnalysisMode::kOff;
};

/// Builds one protocol instance for a topology node.  This is the single
/// node factory every harness uses — ProtocolRun's initial attach, crash
/// /restart replacement in the campaign engine (src/faults/campaign.cpp),
/// and ProtocolRun::reset().
std::unique_ptr<sim::Node> make_protocol_node(Protocol p,
                                              const topo::AsGraph& graph,
                                              const RunOptions& options);

}  // namespace centaur::eval
