// Protocol selection and per-run options, shared by every experiment
// entry point.
//
// These types used to live inside eval/experiments.hpp; they are split out
// so the ScenarioSpec API (src/faults/scenario.hpp) can aggregate
// "topology + protocol + RunOptions + fault script" without pulling in the
// whole link-flip harness.  experiments.hpp re-exports them, so existing
// callers compile unchanged.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "centaur/query.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"

namespace centaur::eval {

enum class Protocol { kBgp, kBgpRcn, kCentaur, kOspf };

const char* to_string(Protocol p);

/// Parses "bgp" / "bgp-rcn" / "centaur" / "ospf" (the CLI and scenario-file
/// spellings).  Throws std::invalid_argument on anything else.
Protocol protocol_from_string(const std::string& name);

/// All four protocols in a fixed, reportable order (campaign sweeps).
inline constexpr Protocol kAllProtocols[] = {
    Protocol::kBgp, Protocol::kBgpRcn, Protocol::kCentaur, Protocol::kOspf};

/// Invariant analysis while a run executes (src/check).
enum class AnalysisMode {
  kOff,      ///< no checking (measurement runs; checks distort nothing but
             ///< cost time)
  kCollect,  ///< record violations into the run's AnalysisReport
  kAssert,   ///< like kCollect, but throw std::logic_error at the first
             ///< quiescence sweep that finds the report non-clean
};

/// Analysis mode requested via the CENTAUR_CHECK environment variable at
/// *runtime* (any build type): unset/"0"/"off" -> `fallback`, "1"/"collect"
/// -> kCollect, "assert" -> kAssert.  Lets release-build benches and the
/// parallel trial driver run with the invariant checker attached.
AnalysisMode analysis_from_env(AnalysisMode fallback = AnalysisMode::kOff);

/// Per-run protocol options.
struct RunOptions {
  /// BGP Minimum Route Advertisement Interval, seconds.  The paper's
  /// DistComm prototype sits on the SSFNet code base, whose BGP uses the
  /// standard 30 s eBGP MRAI — the dominant term in its Fig 6 convergence
  /// times.  0 disables batching (propagation-limited BGP).
  sim::Time bgp_mrai = 0.0;
  /// When non-zero, only nodes with id < origin_limit originate their
  /// prefix (destination-limited workload for 100k+-node scale runs —
  /// full-mesh origination is quadratic in routes).  Applied uniformly to
  /// Centaur and BGP so cross-protocol numbers stay comparable; OSPF
  /// ignores it (its LSDB is already per-link, but that also makes it
  /// infeasible at this scale — see bench_fig8_large).
  topo::NodeId origin_limit = 0;
  /// Invariant analysis mode.  kOff is upgraded to kAssert for Centaur runs
  /// in CENTAUR_CHECK (Debug) builds, so every tier-1 simulation doubles as
  /// an invariant test.
  AnalysisMode analysis = AnalysisMode::kOff;
  /// Serving-plane snapshot export hook, forwarded to CentaurNode::Config
  /// (src/serve attaches its QueryEngine here; null for every measurement
  /// run that does not serve queries).  Centaur-only: the other protocols
  /// have no P-graph to snapshot and ignore it.
  core::SnapshotSink centaur_snapshot_sink;
};

/// How the serving plane publishes snapshots (DESIGN.md §14.2).
enum class SnapshotPolicy {
  kDelta,  ///< copy-on-publish of the dirty adjacency only: each snapshot
           ///< overlays its predecessor and the chain is collapsed
           ///< geometrically, so publish cost is amortised-proportional to
           ///< the delta, not the graph
  kFull,   ///< every publish materialises the complete adjacency (the
           ///< ablation reference: O(graph) per publish, depth-1 lookups)
};

const char* to_string(SnapshotPolicy p);

/// Query-plane knobs, split out of RunOptions: they configure how converged
/// state is *served*, not how the protocol runs, so protocol equivalence
/// and bit-identity contracts never depend on them.
struct ServeOptions {
  /// Paths enumerated per (src, dst) query (CENTAUR_QUERY_K).
  std::size_t query_k = 4;
  /// Query worker threads for serve/querybench (CENTAUR_SERVE_THREADS).
  /// Results are bit-identical for any value; only throughput changes.
  std::size_t query_threads = 4;
  /// Snapshot publish mode (CENTAUR_SNAPSHOT_POLICY = "delta" | "full").
  SnapshotPolicy snapshot_policy = SnapshotPolicy::kDelta;
};

/// ServeOptions from the environment via the strict util/env parsers:
/// CENTAUR_QUERY_K and CENTAUR_SERVE_THREADS (integers >= 1; garbage warns
/// once and keeps the default), CENTAUR_SNAPSHOT_POLICY ("delta"/"full",
/// exact match; anything else warns once and keeps "delta").
ServeOptions serve_options_from_env();

/// Builds one protocol instance for a topology node.  This is the single
/// node factory every harness uses — ProtocolRun's initial attach, crash
/// /restart replacement in the campaign engine (src/faults/campaign.cpp),
/// and ProtocolRun::reset().
std::unique_ptr<sim::Node> make_protocol_node(Protocol p,
                                              const topo::AsGraph& graph,
                                              const RunOptions& options);

}  // namespace centaur::eval
