#include "runner/parallel.hpp"

#include "util/env.hpp"

namespace centaur::runner {

std::size_t threads_from_env() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw > 0 ? hw : 1;
  return util::env_size_t("CENTAUR_THREADS", fallback, /*min_value=*/1);
}

std::size_t intra_threads_from_env() {
  return util::env_size_t("CENTAUR_INTRA_THREADS", /*fallback=*/1,
                          /*min_value=*/1);
}

std::size_t shards_from_env() {
  return util::env_size_t("CENTAUR_SHARDS", /*fallback=*/1, /*min_value=*/1);
}

WorkerPool::WorkerPool(std::size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run_body(std::size_t index) {
  try {
    (*body_)(index);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!error_ || index < error_index_) {
      error_ = std::current_exception();
      error_index_ = index;
    }
    failed_.store(true, std::memory_order_relaxed);
  }
}

void WorkerPool::drain() {
  while (!failed_.load(std::memory_order_relaxed)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    run_body(i);
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::parallel_for_deterministic(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    error_index_ = 0;
    active_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  drain();  // the calling thread is a lane too
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }
}

}  // namespace centaur::runner
