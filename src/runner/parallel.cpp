#include "runner/parallel.hpp"

#include <cstdlib>
#include <string>

namespace centaur::runner {

std::size_t threads_from_env() {
  if (const char* env = std::getenv("CENTAUR_THREADS")) {
    try {
      const unsigned long v = std::stoul(env);
      if (v >= 1) return static_cast<std::size_t>(v);
    } catch (...) {
      // fall through to the hardware default
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace centaur::runner
