// Machine-readable bench results (DESIGN.md §5.4).
//
// Every bench binary can emit a JSON report next to its human-readable
// tables: per-trial wall time, simulator event count, message/byte totals,
// plus bench-specific named metrics, and whole-process peak RSS.  The file
// is the perf baseline CI archives and diffs (see tools/bench_json_schema.py
// for the schema validator).
//
// Activation (either; --json wins):
//   * `--json <path>` on the bench command line,
//   * CENTAUR_BENCH_JSON=<path or directory> in the environment — a
//     directory (trailing '/' or an existing dir) receives
//     `BENCH_<name>.json`.
//
// Schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "scale": "smoke|default|large",
//     "threads": <N>,
//     "notes": ["..."],            // optional, free-form provenance notes
//     "peak_rss_kb": <N>,
//     "trials": [
//       {"name": "...", "wall_time_s": <f>, "events": <N>,
//        "messages": <N>, "bytes": <N>,
//        "peak_rss_delta_kb": <N>,     // optional, present when non-zero
//        "metrics": {"<k>": <f>, ...}},
//       ...
//     ],
//     "totals": {"wall_time_s": <f>, "events": <N>,
//                "messages": <N>, "bytes": <N>}
//   }
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace centaur::runner {

/// One measured trial (a protocol run, a topology size, a micro-bench case).
struct TrialResult {
  std::string name;
  double wall_time_s = 0;
  std::uint64_t events = 0;    ///< simulator events executed (0 if no sim)
  std::uint64_t messages = 0;  ///< protocol messages sent
  std::uint64_t bytes = 0;     ///< protocol bytes sent
  /// Growth of the process peak-RSS high-water mark across this trial, KiB
  /// (peak_rss_kb() after minus before).  0 — unmeasured, or the trial fit
  /// inside an earlier trial's footprint: the kernel counter only ever
  /// rises, so deltas under-report once a bigger trial has run.  Emitted in
  /// the JSON only when non-zero; never gated (machine-dependent).
  std::uint64_t peak_rss_delta_kb = 0;
  /// Bench-specific named metrics (e.g. median convergence in ms).
  std::vector<std::pair<std::string, double>> metrics;
};

/// Wall-clock stopwatch for trial timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process peak resident set size in KiB (getrusage; 0 if unavailable).
/// Note: a process-wide high-water mark, not per-trial.
std::uint64_t peak_rss_kb();

/// Collects trials and writes the JSON report.
class BenchReport {
 public:
  /// `bench` is the logical name ("fig6_convergence_time"); `scale` the
  /// active CENTAUR_SCALE string; `threads` the worker count trials ran on.
  BenchReport(std::string bench, std::string scale, std::size_t threads);

  /// Resolves the output path from `--json <path>` (consumed from argv) or
  /// CENTAUR_BENCH_JSON.  Empty string means reporting is off.
  static std::string resolve_path(int* argc, char** argv,
                                  const std::string& bench);

  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  void add(TrialResult trial) { trials_.push_back(std::move(trial)); }

  /// Free-form provenance note emitted in the report's "notes" array (e.g.
  /// "byte counts use the exact wire codec").  Appended in call order.
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  /// Serializes the report (schema above).
  std::string to_json() const;

  /// Writes to the configured path; no-op when disabled.  Throws
  /// std::runtime_error if the file cannot be written.
  void write() const;

 private:
  std::string bench_;
  std::string scale_;
  std::size_t threads_;
  std::string path_;
  std::vector<std::string> notes_;
  std::vector<TrialResult> trials_;
};

}  // namespace centaur::runner
