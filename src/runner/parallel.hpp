// Parallel execution primitives (DESIGN.md §5.3, §8).
//
// Two layers of parallelism, both bit-identical to serial by construction:
//
//  * run_trials — benches fan independent trials (one protocol run, one
//    topology size, one ablation arm) across a transient thread pool.
//    Determinism contract: a trial's inputs may depend only on its index —
//    seed every trial with util::derive_seed(base, index), never from a
//    shared generator — and a trial must not print (the caller formats
//    results after the join).  Under that contract results are collected by
//    index and the output is bit-identical for any thread count, including 1.
//
//  * WorkerPool / parallel_for_deterministic — a persistent pool used
//    *inside* one trial by the simulator's same-instant batch executor
//    (sim::Simulator, DESIGN.md §8).  parallel_for_deterministic is a
//    barrier primitive: it distributes body(0..count-1) over the workers
//    plus the calling thread and returns only when every index completed,
//    with a full happens-before edge between the bodies and the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace centaur::runner {

/// Trial-driver worker count: CENTAUR_THREADS if set and valid (strict
/// parse, clamped to >= 1, garbage warns once and is ignored), else the
/// hardware concurrency, else 1.
std::size_t threads_from_env();

/// Intra-trial worker count for the simulator's same-instant batch executor:
/// CENTAUR_INTRA_THREADS if set and valid (strict parse, clamped to >= 1,
/// garbage warns once and is ignored), else 1.  Unlike CENTAUR_THREADS the
/// default is serial: intra-trial parallelism is opt-in because singleton
/// batches dominate small runs.
std::size_t intra_threads_from_env();

/// Topology shard count for the sharded event plane (DESIGN.md §13):
/// CENTAUR_SHARDS if set and valid (strict parse, clamped to >= 1, garbage
/// warns once and is ignored), else 1 (unsharded).  The Network constructor
/// samples it and partitions the AS graph into that many contiguous node
/// ranges; any value is bit-identical to the unsharded run.
std::size_t shards_from_env();

/// Thrown by run_trials when a trial fails.  Carries which trial threw
/// first (lowest index among trials that ran and failed — the index a
/// serial run would have thrown at, unless a later-index racing worker was
/// the only failure) and how many trials completed, so a caller that
/// catches it cannot mistake the default-constructed slots of unfinished
/// trials for real results (e.g. by serializing zeroed metrics into a
/// BENCH JSON report).  The original exception is preserved as the nested
/// exception (std::rethrow_if_nested).
class TrialFailure : public std::runtime_error {
 public:
  TrialFailure(std::size_t failed_index, std::size_t completed,
               std::size_t total, const std::string& what_original)
      : std::runtime_error("trial " + std::to_string(failed_index) +
                           " failed (" + std::to_string(completed) + "/" +
                           std::to_string(total) +
                           " trials completed; unfinished slots hold "
                           "default-constructed results): " + what_original),
        failed_index_(failed_index),
        completed_(completed) {}

  std::size_t failed_index() const { return failed_index_; }
  /// Trials that ran to completion (their result slots are valid).
  std::size_t completed() const { return completed_; }

 private:
  std::size_t failed_index_;
  std::size_t completed_;
};

/// Persistent worker pool for deterministic fork/join sections.
///
/// Construction spawns `threads - 1` workers (the calling thread is the
/// last worker of every parallel_for_deterministic call); `threads <= 1`
/// spawns nothing and parallel_for_deterministic degenerates to an inline
/// serial loop.  The pool is reusable across any number of sections but a
/// single section may be in flight at a time (one owner — the simulator
/// batch executor runs sections strictly sequentially).
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total execution lanes (spawned workers + the calling thread).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs body(0) .. body(count-1), distributed over the lanes via a shared
  /// claim counter, and blocks until all of them finished (the barrier).
  /// Determinism contract: bodies must be independent — no body may read
  /// state another body writes — so claim order cannot be observed.  If a
  /// body throws, remaining unclaimed indices are skipped and the exception
  /// of the lowest-index failed body that ran is rethrown at the barrier.
  void parallel_for_deterministic(std::size_t count,
                                  const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void run_body(std::size_t index);
  /// Claims and runs indices until exhausted or a failure is flagged.
  void drain();

  std::mutex mu_;
  std::condition_variable start_cv_;  // workers wait for a new section
  std::condition_variable done_cv_;   // the caller waits for the barrier
  std::uint64_t generation_ = 0;      // bumps once per section
  bool stop_ = false;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::size_t active_ = 0;  // workers still inside the current section
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::size_t error_index_ = 0;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

/// Runs `fn(0) .. fn(count-1)` on up to `threads` workers and returns the
/// results ordered by trial index.  `threads <= 1` runs inline on the
/// calling thread (the serial reference).  Workers claim indices from a
/// shared counter, so uneven trial durations load-balance.
///
/// Failure: if any trial throws, the remaining workers stop claiming new
/// trials and a TrialFailure is thrown after all workers join, nesting the
/// original exception.  Result slots of trials that never ran stay
/// default-constructed — they are unreachable through the normal return
/// (the throw replaces it), and TrialFailure::completed() tells a catching
/// caller how much of the vector would have been real.
template <typename Fn>
auto run_trials(std::size_t count, std::size_t threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "trial results are collected into a pre-sized vector");
  std::vector<Result> results(count);
  if (count == 0) return results;

  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        results[i] = fn(i);
      } catch (const std::exception& e) {
        std::throw_with_nested(TrialFailure(i, i, count, e.what()));
      } catch (...) {
        std::throw_with_nested(TrialFailure(i, i, count, "unknown error"));
      }
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::size_t error_index = 0;
  std::string error_what;
  std::mutex error_mu;
  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
        completed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        // Keep the lowest-index failure: that is the trial a serial run
        // would have thrown at (among the trials that ran).
        if (!error || i < error_index) {
          error = std::current_exception();
          error_index = i;
          try {
            throw;
          } catch (const std::exception& e) {
            error_what = e.what();
          } catch (...) {
            error_what = "unknown error";
          }
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t workers = threads < count ? threads : count;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (...) {
      std::throw_with_nested(TrialFailure(
          error_index, completed.load(std::memory_order_relaxed), count,
          error_what));
    }
  }
  return results;
}

/// Convenience overload using CENTAUR_THREADS / hardware concurrency.
template <typename Fn>
auto run_trials(std::size_t count, Fn&& fn) {
  return run_trials(count, threads_from_env(), std::forward<Fn>(fn));
}

}  // namespace centaur::runner
