// Parallel trial driver (DESIGN.md §5.3).
//
// Benches fan independent trials (one protocol run, one topology size, one
// ablation arm) across a thread pool.  Determinism contract: a trial's
// inputs may depend only on its index — seed every trial with
// util::derive_seed(base, index), never from a shared generator — and a
// trial must not print (the caller formats results after the join).  Under
// that contract results are collected by index and the output is
// bit-identical for any thread count, including 1.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace centaur::runner {

/// Worker count: CENTAUR_THREADS if set (>= 1), else the hardware
/// concurrency, else 1.
std::size_t threads_from_env();

/// Runs `fn(0) .. fn(count-1)` on up to `threads` workers and returns the
/// results ordered by trial index.  `threads <= 1` runs inline on the
/// calling thread (the serial reference).  Workers claim indices from a
/// shared counter, so uneven trial durations load-balance.  The first
/// exception thrown by any trial is rethrown here after all workers join
/// (remaining workers stop claiming new trials).
template <typename Fn>
auto run_trials(std::size_t count, std::size_t threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "trial results are collected into a pre-sized vector");
  std::vector<Result> results(count);
  if (count == 0) return results;

  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t workers = threads < count ? threads : count;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

/// Convenience overload using CENTAUR_THREADS / hardware concurrency.
template <typename Fn>
auto run_trials(std::size_t count, Fn&& fn) {
  return run_trials(count, threads_from_env(), std::forward<Fn>(fn));
}

}  // namespace centaur::runner
