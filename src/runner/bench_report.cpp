#include "runner/bench_report.hpp"

#include <sys/resource.h>
#include <sys/stat.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/env.hpp"

namespace centaur::runner {
namespace {

bool is_directory(const std::string& path) {
  if (!path.empty() && path.back() == '/') return true;
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_double(std::ostringstream& os, double v) {
  // Shortest round-trippable representation; JSON has no infinities.
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

}  // namespace

std::uint64_t peak_rss_kb() {
  struct rusage ru {};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KiB on Linux
}

BenchReport::BenchReport(std::string bench, std::string scale,
                         std::size_t threads)
    : bench_(std::move(bench)), scale_(std::move(scale)), threads_(threads) {}

std::string BenchReport::resolve_path(int* argc, char** argv,
                                      const std::string& bench) {
  std::string path;
  for (int i = 1; i + 1 < *argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      path = argv[i + 1];
      // Consume the two arguments so later flag parsers (e.g. google
      // benchmark's) never see them.
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      break;
    }
  }
  if (path.empty()) {
    if (const std::optional<std::string> env =
            util::env_string("CENTAUR_BENCH_JSON")) {
      path = *env;
    }
  }
  if (path.empty()) return path;
  if (is_directory(path)) {
    if (path.back() != '/') path += '/';
    path += "BENCH_" + bench + ".json";
  }
  return path;
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  double total_wall = 0;
  std::uint64_t total_events = 0, total_messages = 0, total_bytes = 0;

  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"bench\": \"" << json_escape(bench_) << "\",\n";
  os << "  \"scale\": \"" << json_escape(scale_) << "\",\n";
  os << "  \"threads\": " << threads_ << ",\n";
  if (!notes_.empty()) {
    os << "  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << json_escape(notes_[i]) << "\"";
    }
    os << "],\n";
  }
  os << "  \"peak_rss_kb\": " << peak_rss_kb() << ",\n";
  os << "  \"trials\": [";
  for (std::size_t i = 0; i < trials_.size(); ++i) {
    const TrialResult& t = trials_[i];
    total_wall += t.wall_time_s;
    total_events += t.events;
    total_messages += t.messages;
    total_bytes += t.bytes;
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": \"" << json_escape(t.name) << "\", "
       << "\"wall_time_s\": ";
    append_double(os, t.wall_time_s);
    os << ", \"events\": " << t.events << ", \"messages\": " << t.messages
       << ", \"bytes\": " << t.bytes;
    if (t.peak_rss_delta_kb != 0) {
      os << ", \"peak_rss_delta_kb\": " << t.peak_rss_delta_kb;
    }
    os << ", \"metrics\": {";
    for (std::size_t m = 0; m < t.metrics.size(); ++m) {
      if (m > 0) os << ", ";
      os << "\"" << json_escape(t.metrics[m].first) << "\": ";
      append_double(os, t.metrics[m].second);
    }
    os << "}}";
  }
  os << (trials_.empty() ? "],\n" : "\n  ],\n");
  os << "  \"totals\": {\"wall_time_s\": ";
  append_double(os, total_wall);
  os << ", \"events\": " << total_events
     << ", \"messages\": " << total_messages << ", \"bytes\": " << total_bytes
     << "}\n";
  os << "}\n";
  return os.str();
}

void BenchReport::write() const {
  if (path_.empty()) return;
  std::ofstream out(path_);
  if (!out) {
    throw std::runtime_error("BenchReport: cannot write " + path_);
  }
  out << to_json();
  if (!out.flush()) {
    throw std::runtime_error("BenchReport: write failed for " + path_);
  }
}

}  // namespace centaur::runner
