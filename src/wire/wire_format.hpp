// Binary wire codec for Centaur updates (paper §4.1, §4.3).
//
// GraphDelta is what crosses the wire in Step 5, so its serialized form is
// what Fig 7's convergence-load comparison actually measures.  The seed
// estimated sizes with a fixed-cost model ("16-byte header + 8 per link");
// this module replaces the estimate with a real encoder/decoder, and
// `GraphDelta::byte_size` now returns the exact encoded length.
//
// Layout (version 1, all multi-byte integers LEB128 varints unless noted):
//
//   u8       version            (kWireVersion)
//   u8       flags              bit0 = reset, bit1 = Bloom Permission Lists
//   varint   n_upserts, n_removes, n_dest_adds, n_dest_removes
//   upserts[n_upserts]          sorted ascending by packed (from,to) u64 key:
//     varint link key gap       (first absolute, then difference to previous)
//     plist                     see below
//   removes[n_removes]          sorted packed-u64 keys, gap-encoded
//   dest_adds[n_dest_adds]      sorted u32 node ids, gap-encoded
//   dest_removes[...]           sorted u32 node ids, gap-encoded
//
// Permission List, explicit encoding (per-dest-next, §4.1):
//   varint n_entries
//   per entry (ascending next hop; kNoNextHop = 0xFFFFFFFF sorts last):
//     varint next-hop gap
//     varint n_dests
//     varint dest gaps          (ascending, first absolute)
//
// Permission List, Bloom encoding (§4.1 destination-set compression):
//   varint n_entries
//   per entry:
//     varint next-hop gap
//     varint n_dests            (claimed cardinality; sizing + accounting)
//     varint n_words, varint n_hashes
//     u64 x n_words             filter bit array, little-endian words
//
// The encoder canonicalizes section order (stable sort by key), so
// encode(decode(encode(d))) is a fixed point and decode(encode(d)) == d for
// any delta whose sections are already sorted — which diff_views and
// PendingDelta::take() guarantee.  Bloom-encoded destination sets are lossy
// by construction; the decoder surfaces the reconstructed filters in a
// sidecar instead of fabricating destination ids (see Decoded).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "centaur/announce.hpp"
#include "util/bloom.hpp"

namespace centaur::wire {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint8_t kFlagReset = 0x01;
inline constexpr std::uint8_t kFlagBloom = 0x02;

/// First byte of a batch datagram (see encode_batch).  Distinct from
/// kWireVersion so the two framings can never be confused: decode() rejects
/// a batch buffer and decode_batch() rejects a single-delta buffer.
inline constexpr std::uint8_t kBatchVersion = 2;

enum class PlistEncoding : std::uint8_t { kExplicit = 0, kBloom = 1 };

/// Bytes needed by the LEB128 encoding of `v` (1..10).
std::size_t varint_size(std::uint64_t v);

/// Appends the LEB128 encoding of `v` to `out`.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Reads one varint from [*pos, end); advances *pos.  Throws DecodeError on
/// truncation or a value wider than 64 bits.
std::uint64_t get_varint(const std::uint8_t** pos, const std::uint8_t* end);

/// Malformed or truncated input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounds-checked read cursor over an encoded buffer — the only sanctioned
/// way to consume raw bytes in decode paths (centaur-lint rule W1, declared
/// in tools/lint/contexts.txt).  Every accessor validates against the
/// buffer end and throws DecodeError instead of reading past it, so decode
/// logic cannot introduce an out-of-bounds read by construction.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size);

  std::size_t remaining() const;
  std::size_t consumed() const;

  /// One byte; `what` names the field for the DecodeError message.
  std::uint8_t u8(const char* what);

  /// One LEB128 varint (same validation as get_varint).
  std::uint64_t varint();

  /// Eight bytes, little-endian.
  std::uint64_t le_u64(const char* what);

 private:
  const std::uint8_t* begin_;
  const std::uint8_t* pos_;
  const std::uint8_t* end_;
};

/// Serializes `delta`; byte-for-byte what byte_size() accounts.
std::vector<std::uint8_t> encode(const core::GraphDelta& delta,
                                 PlistEncoding encoding);

/// Exact length encode() would produce, without materializing the buffer
/// (Bloom filters are still sized, but their bits are not serialized).
std::size_t encoded_size(const core::GraphDelta& delta,
                         PlistEncoding encoding);

/// One Bloom-compressed Permission-List entry as reconstructed by decode().
struct BloomEntry {
  core::NodeId next_hop;
  std::uint32_t dest_count;  ///< sender-claimed destination cardinality
  util::BloomFilter filter;
};

/// decode() result.  With the explicit encoding `delta` is structurally
/// identical to what was encoded.  With the Bloom encoding the upserts carry
/// empty Permission Lists and `bloom_plists[i]` holds upsert i's entries
/// (bit-identical filters; destination ids are not recoverable).
struct Decoded {
  core::GraphDelta delta;
  PlistEncoding encoding = PlistEncoding::kExplicit;
  std::vector<std::vector<BloomEntry>> bloom_plists;
  std::size_t bytes_consumed = 0;
};

Decoded decode(const std::uint8_t* data, std::size_t size);

inline Decoded decode(const std::vector<std::uint8_t>& buf) {
  return decode(buf.data(), buf.size());
}

// Batch framing (§4.3 datagram coalescing): several deltas bound for the
// same neighbor share one datagram instead of one datagram each.
//
//   u8       version            (kBatchVersion)
//   u8       flags              bit1 = Bloom Permission Lists (whole batch)
//   varint   n_deltas
//   per delta:
//     u8     flags              bit0 = reset (per delta)
//     delta body                counts + sections, exactly as in version 1
//
// The per-datagram byte overhead is deliberately tiny (a batch of k deltas
// costs k-2 bytes less header than k separate datagrams plus the n_deltas
// varint); the point of batching is fewer datagrams, not fewer bytes —
// BM_EncodeBatch in bench_micro_centaur reports the exact byte delta.

/// Serializes `deltas` (all with `encoding`) into one batch datagram.
std::vector<std::uint8_t> encode_batch(
    const std::vector<const core::GraphDelta*>& deltas, PlistEncoding encoding);

/// Exact length encode_batch() would produce.
std::size_t encoded_batch_size(
    const std::vector<const core::GraphDelta*>& deltas, PlistEncoding encoding);

/// Parses a batch datagram; element i's `bytes_consumed` counts only delta
/// i's bytes (its flags byte plus body).  Throws DecodeError on a
/// non-batch version byte, malformed contents, or trailing bytes.
std::vector<Decoded> decode_batch(const std::uint8_t* data, std::size_t size);

inline std::vector<Decoded> decode_batch(const std::vector<std::uint8_t>& buf) {
  return decode_batch(buf.data(), buf.size());
}

}  // namespace centaur::wire
