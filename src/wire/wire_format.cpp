#include "wire/wire_format.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "centaur/pgraph.hpp"
#include "centaur/permission_list.hpp"

namespace centaur::wire {

using core::GraphDelta;
using core::NodeId;
using core::PermissionList;

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t** pos, const std::uint8_t* end) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (*pos == end) throw DecodeError("varint: truncated input");
    const std::uint8_t byte = *(*pos)++;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte & 0x7E) != 0) {
        throw DecodeError("varint: value wider than 64 bits");
      }
      return v;
    }
  }
  throw DecodeError("varint: value wider than 64 bits");
}

Cursor::Cursor(const std::uint8_t* data, std::size_t size)
    : begin_(data), pos_(data), end_(data + size) {}

std::size_t Cursor::remaining() const {
  return static_cast<std::size_t>(end_ - pos_);
}

std::size_t Cursor::consumed() const {
  return static_cast<std::size_t>(pos_ - begin_);
}

std::uint8_t Cursor::u8(const char* what) {
  if (pos_ == end_) {
    throw DecodeError(std::string(what) + ": truncated input");
  }
  return *pos_++;
}

std::uint64_t Cursor::varint() { return get_varint(&pos_, end_); }

std::uint64_t Cursor::le_u64(const char* what) {
  if (remaining() < 8) {
    throw DecodeError(std::string(what) + ": truncated input");
  }
  std::uint64_t word = 0;
  for (int b = 0; b < 8; ++b) {
    word |= static_cast<std::uint64_t>(*pos_++) << (8 * b);
  }
  return word;
}

namespace {

// The encoder runs twice through one code path: once against CountSink (the
// byte_size() query) and once against BufferSink (the actual serialization),
// so the two can never disagree.
struct CountSink {
  std::size_t bytes = 0;
  void byte(std::uint8_t) { ++bytes; }
  void varint(std::uint64_t v) { bytes += varint_size(v); }
  void words(const std::vector<std::uint64_t>& w) { bytes += 8 * w.size(); }
};

struct BufferSink {
  std::vector<std::uint8_t>& out;
  void byte(std::uint8_t b) { out.push_back(b); }
  void varint(std::uint64_t v) { put_varint(out, v); }
  void words(const std::vector<std::uint64_t>& w) {
    for (std::uint64_t word : w) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
      }
    }
  }
};

template <typename Sink>
void put_plist(Sink& sink, const PermissionList& plist,
               PlistEncoding encoding) {
  const std::vector<PermissionList::Entry> entries = plist.entries();
  sink.varint(entries.size());
  std::uint64_t prev_next = 0;
  for (const PermissionList::Entry& e : entries) {
    sink.varint(static_cast<std::uint64_t>(e.next_hop) - prev_next);
    prev_next = e.next_hop;
    sink.varint(e.dests.size());
    if (encoding == PlistEncoding::kExplicit) {
      std::uint64_t prev_dest = 0;
      for (const NodeId d : e.dests) {
        sink.varint(static_cast<std::uint64_t>(d) - prev_dest);
        prev_dest = d;
      }
    } else {
      const util::BloomFilter filter = PermissionList::compress_dests(e.dests);
      sink.varint(filter.words().size());
      sink.varint(filter.hash_count());
      sink.words(filter.words());
    }
  }
}

// Counts + sections — everything after the two header bytes.  Shared by the
// single-delta framing (version 1) and the batch framing, which writes one
// body per member delta.
template <typename Sink>
void put_delta_body(Sink& sink, const GraphDelta& delta,
                    PlistEncoding encoding) {
  sink.varint(delta.upserts.size());
  sink.varint(delta.removes.size());
  sink.varint(delta.dest_adds.size());
  sink.varint(delta.dest_removes.size());

  // Canonical section order: stable sort by packed key / node id.  Protocol
  // deltas (diff_views, PendingDelta::take) are already sorted — the hot
  // encode path must not allocate or sort for them — while hand-built ones
  // get canonicalized here so byte_size stays exact for them too.
  const auto upsert_key = [&](std::size_t i) {
    const core::DirectedLink& link = delta.upserts[i].first;
    return core::pack_link(link.from, link.to);
  };
  bool upserts_sorted = true;
  for (std::size_t i = 1; i < delta.upserts.size(); ++i) {
    if (upsert_key(i) < upsert_key(i - 1)) {
      upserts_sorted = false;
      break;
    }
  }
  std::uint64_t prev = 0;
  if (upserts_sorted) {
    for (const auto& [link, plist] : delta.upserts) {
      const std::uint64_t key = core::pack_link(link.from, link.to);
      sink.varint(key - prev);
      prev = key;
      put_plist(sink, plist, encoding);
    }
  } else {
    std::vector<std::uint32_t> order(delta.upserts.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return upsert_key(a) < upsert_key(b);
                     });
    for (const std::uint32_t i : order) {
      const auto& [link, plist] = delta.upserts[i];
      const std::uint64_t key = core::pack_link(link.from, link.to);
      sink.varint(key - prev);
      prev = key;
      put_plist(sink, plist, encoding);
    }
  }

  const auto remove_key = [&](std::size_t i) {
    return core::pack_link(delta.removes[i].from, delta.removes[i].to);
  };
  bool removes_sorted = true;
  for (std::size_t i = 1; i < delta.removes.size(); ++i) {
    if (remove_key(i) < remove_key(i - 1)) {
      removes_sorted = false;
      break;
    }
  }
  prev = 0;
  if (removes_sorted) {
    for (const core::DirectedLink& link : delta.removes) {
      const std::uint64_t key = core::pack_link(link.from, link.to);
      sink.varint(key - prev);
      prev = key;
    }
  } else {
    std::vector<std::uint64_t> removes;
    removes.reserve(delta.removes.size());
    for (const core::DirectedLink& link : delta.removes) {
      removes.push_back(core::pack_link(link.from, link.to));
    }
    std::sort(removes.begin(), removes.end());
    for (const std::uint64_t key : removes) {
      sink.varint(key - prev);
      prev = key;
    }
  }

  for (const std::vector<NodeId>* dests :
       {&delta.dest_adds, &delta.dest_removes}) {
    prev = 0;
    if (std::is_sorted(dests->begin(), dests->end())) {
      for (const NodeId d : *dests) {
        sink.varint(static_cast<std::uint64_t>(d) - prev);
        prev = d;
      }
    } else {
      std::vector<NodeId> sorted(*dests);
      std::sort(sorted.begin(), sorted.end());
      for (const NodeId d : sorted) {
        sink.varint(static_cast<std::uint64_t>(d) - prev);
        prev = d;
      }
    }
  }
}

template <typename Sink>
void put_delta(Sink& sink, const GraphDelta& delta, PlistEncoding encoding) {
  sink.byte(kWireVersion);
  std::uint8_t flags = 0;
  if (delta.reset) flags |= kFlagReset;
  if (encoding == PlistEncoding::kBloom) flags |= kFlagBloom;
  sink.byte(flags);
  put_delta_body(sink, delta, encoding);
}

template <typename Sink>
void put_batch(Sink& sink, const std::vector<const GraphDelta*>& deltas,
               PlistEncoding encoding) {
  sink.byte(kBatchVersion);
  // The Bloom flag is per batch: one sender flushes one encoding policy.
  sink.byte(encoding == PlistEncoding::kBloom ? kFlagBloom : std::uint8_t{0});
  sink.varint(deltas.size());
  for (const GraphDelta* delta : deltas) {
    sink.byte(delta->reset ? kFlagReset : std::uint8_t{0});
    put_delta_body(sink, *delta, encoding);
  }
}

NodeId checked_node(std::uint64_t v, const char* what) {
  if (v > 0xFFFFFFFFULL) throw DecodeError(std::string(what) + ": node id overflow");
  return static_cast<NodeId>(v);
}

}  // namespace

std::vector<std::uint8_t> encode(const GraphDelta& delta,
                                 PlistEncoding encoding) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(delta, encoding));
  BufferSink sink{out};
  put_delta(sink, delta, encoding);
  return out;
}

std::size_t encoded_size(const GraphDelta& delta, PlistEncoding encoding) {
  CountSink sink;
  put_delta(sink, delta, encoding);
  return sink.bytes;
}

namespace {

// Parses counts + sections into `out` (whose `delta.reset` and `encoding`
// the caller has already set from its framing's header bytes).
void get_delta_body(Cursor& cur, Decoded& out) {
  const std::uint64_t n_upserts = cur.varint();
  const std::uint64_t n_removes = cur.varint();
  const std::uint64_t n_dest_adds = cur.varint();
  const std::uint64_t n_dest_removes = cur.varint();
  // Every upsert/remove/dest costs at least one byte; reject counts the
  // buffer cannot possibly hold before sizing anything from them.
  for (const std::uint64_t n :
       {n_upserts, n_removes, n_dest_adds, n_dest_removes}) {
    if (n > cur.remaining()) {
      throw DecodeError("header: section counts exceed input size");
    }
  }

  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n_upserts; ++i) {
    const std::uint64_t key = prev + cur.varint();
    prev = key;
    PermissionList plist;
    std::vector<BloomEntry> bloom_entries;
    const std::uint64_t n_entries = cur.varint();
    std::uint64_t prev_next = 0;
    for (std::uint64_t j = 0; j < n_entries; ++j) {
      const NodeId next_hop =
          checked_node(prev_next + cur.varint(), "plist next hop");
      prev_next = next_hop;
      const std::uint64_t n_dests = cur.varint();
      if (n_dests > 0xFFFFFFFFULL) {
        throw DecodeError("plist entry: destination count overflow");
      }
      if (out.encoding == PlistEncoding::kExplicit) {
        std::uint64_t prev_dest = 0;
        for (std::uint64_t k = 0; k < n_dests; ++k) {
          const NodeId dest =
              checked_node(prev_dest + cur.varint(), "plist dest");
          prev_dest = dest;
          plist.add(dest, next_hop);
        }
      } else {
        const std::uint64_t n_words = cur.varint();
        const std::uint64_t n_hashes = cur.varint();
        if (n_words > cur.remaining() / 8) {
          throw DecodeError("bloom filter: truncated bit array");
        }
        std::vector<std::uint64_t> words(n_words, 0);
        for (std::uint64_t& word : words) {
          word = cur.le_u64("bloom filter");
        }
        bloom_entries.push_back(
            BloomEntry{next_hop, static_cast<std::uint32_t>(n_dests),
                       util::BloomFilter::from_words(
                           std::move(words), n_hashes,
                           static_cast<std::size_t>(n_dests))});
      }
    }
    out.delta.upserts.emplace_back(core::unpack_link(key), std::move(plist));
    if (out.encoding == PlistEncoding::kBloom) {
      out.bloom_plists.push_back(std::move(bloom_entries));
    }
  }

  prev = 0;
  for (std::uint64_t i = 0; i < n_removes; ++i) {
    const std::uint64_t key = prev + cur.varint();
    prev = key;
    out.delta.removes.push_back(core::unpack_link(key));
  }
  for (std::vector<NodeId>* dests :
       {&out.delta.dest_adds, &out.delta.dest_removes}) {
    const std::uint64_t n =
        dests == &out.delta.dest_adds ? n_dest_adds : n_dest_removes;
    prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const NodeId d = checked_node(prev + cur.varint(), "dest mark");
      prev = d;
      dests->push_back(d);
    }
  }
}

}  // namespace

Decoded decode(const std::uint8_t* data, std::size_t size) {
  Cursor cur(data, size);
  const std::uint8_t version = cur.u8("header");
  if (version != kWireVersion) {
    throw DecodeError("header: unknown version " + std::to_string(version));
  }
  const std::uint8_t flags = cur.u8("header");
  if ((flags & ~(kFlagReset | kFlagBloom)) != 0) {
    throw DecodeError("header: unknown flag bits");
  }

  Decoded out;
  out.delta.reset = (flags & kFlagReset) != 0;
  out.encoding = (flags & kFlagBloom) != 0 ? PlistEncoding::kBloom
                                           : PlistEncoding::kExplicit;
  get_delta_body(cur, out);
  out.bytes_consumed = cur.consumed();
  return out;
}

std::vector<std::uint8_t> encode_batch(
    const std::vector<const GraphDelta*>& deltas, PlistEncoding encoding) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_batch_size(deltas, encoding));
  BufferSink sink{out};
  put_batch(sink, deltas, encoding);
  return out;
}

std::size_t encoded_batch_size(const std::vector<const GraphDelta*>& deltas,
                               PlistEncoding encoding) {
  CountSink sink;
  put_batch(sink, deltas, encoding);
  return sink.bytes;
}

std::vector<Decoded> decode_batch(const std::uint8_t* data, std::size_t size) {
  Cursor cur(data, size);
  const std::uint8_t version = cur.u8("batch header");
  if (version != kBatchVersion) {
    throw DecodeError("batch header: unknown version " +
                      std::to_string(version));
  }
  const std::uint8_t flags = cur.u8("batch header");
  if ((flags & ~kFlagBloom) != 0) {
    throw DecodeError("batch header: unknown flag bits");
  }
  const PlistEncoding encoding = (flags & kFlagBloom) != 0
                                     ? PlistEncoding::kBloom
                                     : PlistEncoding::kExplicit;
  const std::uint64_t n_deltas = cur.varint();
  // Every member delta costs at least five bytes (flags + four counts);
  // reject counts the buffer cannot possibly hold before reserving.
  if (n_deltas > cur.remaining() / 5) {
    throw DecodeError("batch header: delta count exceeds input size");
  }

  std::vector<Decoded> out;
  out.reserve(n_deltas);
  for (std::uint64_t i = 0; i < n_deltas; ++i) {
    const std::size_t before = cur.consumed();
    Decoded d;
    const std::uint8_t delta_flags = cur.u8("batch delta flags");
    if ((delta_flags & ~kFlagReset) != 0) {
      throw DecodeError("batch delta flags: unknown flag bits");
    }
    d.delta.reset = (delta_flags & kFlagReset) != 0;
    d.encoding = encoding;
    get_delta_body(cur, d);
    d.bytes_consumed = cur.consumed() - before;
    out.push_back(std::move(d));
  }
  if (cur.remaining() != 0) {
    throw DecodeError("batch: trailing bytes after last delta");
  }
  return out;
}

}  // namespace centaur::wire

namespace centaur::core {

// Defined here (not announce.cpp) so the delta's size query and the codec
// share one implementation; wire_format.cpp is part of the centaur_core
// target.
std::size_t GraphDelta::byte_size(bool bloom_compressed) const {
  return wire::encoded_size(*this, bloom_compressed
                                       ? wire::PlistEncoding::kBloom
                                       : wire::PlistEncoding::kExplicit);
}

}  // namespace centaur::core
