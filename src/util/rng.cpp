#include "util/rng.hpp"

#include <algorithm>

#include "util/flat_map.hpp"

namespace centaur::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_u64: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return next();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t n = span + 1;
  const std::uint64_t limit = (~0ULL) - (~0ULL) % n;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + r % n;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  }
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + index(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    // Sparse case: rejection into a hash set.  (FlatSet's sentinel SIZE_MAX
    // is unreachable: v < n.)
    FlatSet<std::size_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      std::size_t v = index(n);
      if (seen.insert(v)) out.push_back(v);
    }
  }
  return out;
}

Rng Rng::split() { return Rng(next()); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  // Two SplitMix64 steps over the combined state: one mixes the base, the
  // second decorrelates consecutive indices.
  std::uint64_t x = base + 0x632be59bd9b4e019ULL * (index + 1);
  splitmix64(x);
  return splitmix64(x);
}

}  // namespace centaur::util
