#include "util/scale.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <string>

#include "util/env.hpp"

namespace centaur::util {

Scale scale_from_env() {
  const std::optional<std::string> raw = env_string("CENTAUR_SCALE");
  if (!raw) return Scale::kDefault;
  std::string v(*raw);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "smoke") return Scale::kSmoke;
  if (v == "large") return Scale::kLarge;
  if (v != "default") {
    // A typo like CENTAUR_SCALE=lrage silently running the default sizes
    // wastes a whole bench run; flag it once and fall back explicitly.
    warn_once("CENTAUR_SCALE", "CENTAUR_SCALE=\"" + *raw +
                                   "\" is not smoke|default|large; using "
                                   "default");
  }
  return Scale::kDefault;
}

const char* to_string(Scale s) {
  switch (s) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kDefault:
      return "default";
    case Scale::kLarge:
      return "large";
  }
  return "default";
}

ScaleParams params_for(Scale s) {
  switch (s) {
    case Scale::kSmoke:
      return ScaleParams{
          .caida_like_nodes = 600,
          .hetop_like_nodes = 500,
          .pgraph_vantage_sample = 30,
          .fig5_link_sample = 60,
          .proto_nodes = 60,
          .proto_flip_sample = 20,
          .fig8_min_nodes = 40,
          .fig8_max_nodes = 160,
          .fig8_steps = 3,
          .fig8_events_per_size = 10,
          .fig8_large_nodes = 1000,
          .fig8_large_origins = 16,
          .seed = 0xC3A7A0ULL,
      };
    case Scale::kLarge:
      return ScaleParams{
          .caida_like_nodes = 26022,
          .hetop_like_nodes = 19940,
          .pgraph_vantage_sample = 200,
          .fig5_link_sample = 400,
          .proto_nodes = 500,
          .proto_flip_sample = 150,
          .fig8_min_nodes = 100,
          .fig8_max_nodes = 500,
          .fig8_steps = 4,
          .fig8_events_per_size = 60,
          .fig8_large_nodes = 150000,
          .fig8_large_origins = 32,
          .seed = 0xC3A7A0ULL,
      };
    case Scale::kDefault:
      break;
  }
  return ScaleParams{
      .caida_like_nodes = 4000,
      .hetop_like_nodes = 3200,
      .pgraph_vantage_sample = 80,
      .fig5_link_sample = 150,
      .proto_nodes = 200,
      .proto_flip_sample = 60,
      .fig8_min_nodes = 50,
      .fig8_max_nodes = 300,
      .fig8_steps = 4,
      .fig8_events_per_size = 40,
      .fig8_large_nodes = 100000,
      .fig8_large_origins = 32,
      .seed = 0xC3A7A0ULL,
  };
}

ScaleParams params_from_env() { return params_for(scale_from_env()); }

}  // namespace centaur::util
