// Bloom filter over 32-bit identifiers.
//
// The paper (S4.1) proposes compressing the destination lists inside
// Permission Lists with Bloom filters.  This is the substrate for that
// optimisation: a compact, fixed-size approximate set with tunable false
// positive rate.  Sizing follows the standard formulas
//   m = -n ln(p) / (ln 2)^2,   k = (m/n) ln 2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace centaur::util {

/// Approximate membership set for 32-bit ids (e.g. AS numbers).
///
/// Supports insertion and membership queries; no deletion (rebuild instead,
/// which matches Permission-List lifecycle where lists are reconstructed by
/// BuildGraph).  False positives possible, false negatives impossible.
class BloomFilter {
 public:
  /// Builds a filter sized for `expected_items` insertions at false-positive
  /// probability `fp_rate` (clamped to [1e-9, 0.5]).
  BloomFilter(std::size_t expected_items, double fp_rate);

  /// Builds a filter with an explicit geometry (`bits` is rounded up to a
  /// multiple of 64; `hashes` clamped to [1, 16]).
  static BloomFilter with_geometry(std::size_t bits, std::size_t hashes);

  /// Reconstructs a filter from serialized state (the wire decoder's path);
  /// `inserted` restores the insert() counter the sender reported.
  static BloomFilter from_words(std::vector<std::uint64_t> words,
                                std::size_t hashes, std::size_t inserted);

  void insert(std::uint32_t id);

  /// True if `id` might be in the set (or definitely false).
  bool contains(std::uint32_t id) const;

  /// Number of bits in the filter.
  std::size_t bit_count() const { return words_.size() * 64; }

  /// Number of hash functions.
  std::size_t hash_count() const { return hashes_; }

  /// Serialized size in bytes (bit array only) — used for overhead accounting.
  std::size_t byte_size() const { return words_.size() * 8; }

  /// The raw bit array, 64-bit little-endian words (wire serialization).
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Number of insert() calls observed.
  std::size_t inserted_count() const { return inserted_; }

  /// Fraction of bits set; a saturation diagnostic.
  double fill_ratio() const;

  /// Predicted false-positive rate given the current fill.
  double estimated_fp_rate() const;

  void clear();

 private:
  BloomFilter() = default;

  std::vector<std::uint64_t> words_;
  std::size_t hashes_ = 1;
  std::size_t inserted_ = 0;
};

}  // namespace centaur::util
