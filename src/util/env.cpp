#include "util/env.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>

#include "util/log.hpp"

namespace centaur::util {

std::optional<long long> parse_int_strict(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t i = 0;
  bool negative = false;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i >= text.size()) return std::nullopt;
  long long value = 0;
  constexpr long long kMax = std::numeric_limits<long long>::max();
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    const int digit = c - '0';
    if (value > (kMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return negative ? -value : value;
}

namespace {

std::mutex& warn_mutex() {
  static std::mutex mu;
  return mu;
}

std::set<std::string>& warned_keys() {
  static std::set<std::string> keys;
  return keys;
}

}  // namespace

bool warn_once(const std::string& key, const std::string& message) {
  {
    const std::lock_guard<std::mutex> lock(warn_mutex());
    if (!warned_keys().insert(key).second) return false;
  }
  log_line(LogLevel::kWarn, message);
  return true;
}

void reset_warn_once_for_testing() {
  const std::lock_guard<std::mutex> lock(warn_mutex());
  warned_keys().clear();
}

std::size_t env_size_t(const char* name, std::size_t fallback,
                       std::size_t min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::optional<long long> parsed = parse_int_strict(raw);
  if (!parsed) {
    warn_once(name, std::string(name) + "='" + raw +
                        "' is not an integer; using default");
    return fallback;
  }
  if (*parsed < static_cast<long long>(min_value)) {
    warn_once(name, std::string(name) + "='" + raw + "' clamped to " +
                        std::to_string(min_value));
    return min_value;
  }
  return static_cast<std::size_t>(*parsed);
}

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  return std::string(raw);
}

std::string env_enum_strict(const char* name,
                            const std::vector<std::string>& allowed,
                            const std::string& fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  for (const std::string& a : allowed) {
    if (*raw == a) return a;
  }
  std::string spellings;
  for (const std::string& a : allowed) {
    if (!spellings.empty()) spellings += "|";
    spellings += a;
  }
  warn_once(name, std::string(name) + "='" + *raw + "' is not " + spellings +
                      "; using " + fallback);
  return fallback;
}

bool env_flag_strict(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::string v(raw);
  if (v.empty() || v == "0" || v == "off" || v == "false" || v == "no") {
    return false;
  }
  if (v == "1" || v == "on" || v == "true" || v == "yes") return true;
  warn_once(name, std::string(name) + "='" + v +
                      "' is not a recognised boolean (0/off/false/no or "
                      "1/on/true/yes); using default");
  return fallback;
}

}  // namespace centaur::util
