// Small-size-optimized vector for the protocol hot paths.
//
// P-graph adjacency lists are tiny almost everywhere (the vast majority of
// nodes have one parent; multi-homed nodes a handful), yet the seed stored
// them as std::vector values inside node-based maps — every list was a
// separate heap block.  SmallVec keeps up to N elements inline so the common
// case costs zero allocations and stays on the same cache lines as its owner,
// spilling to the heap only for the rare large list.
//
// Restricted to trivially copyable element types (NodeId and friends): that
// keeps growth/relocation a memcpy and the type layout-stable inside
// FlatMap slots.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace centaur::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialised for trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  // User-provided (not defaulted) so `static const SmallVec` default-
  // initializes; inline_ is deliberately left uninitialized.
  SmallVec() noexcept {}  // NOLINT(modernize-use-equals-default)

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVec(const SmallVec& other) { assign_from(other); }

  SmallVec(SmallVec&& other) noexcept { steal_from(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      release();
      assign_from(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  T* data() { return data_(); }
  const T* data() const { return data_(); }

  iterator begin() { return data_(); }
  iterator end() { return data_() + size_; }
  const_iterator begin() const { return data_(); }
  const_iterator end() const { return data_() + size_; }

  T& operator[](std::size_t i) { return data_()[i]; }
  const T& operator[](std::size_t i) const { return data_()[i]; }
  T& front() { return data_()[0]; }
  const T& front() const { return data_()[0]; }
  T& back() { return data_()[size_ - 1]; }
  const T& back() const { return data_()[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t want) {
    if (want > cap_) grow_to(want);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow_to(cap_ * 2);
    data_()[size_++] = v;
  }

  /// Inserts `v` before `pos`; returns the iterator at the inserted slot.
  iterator insert(iterator pos, const T& v) {
    const std::size_t at = static_cast<std::size_t>(pos - data_());
    if (size_ == cap_) grow_to(cap_ * 2);
    T* d = data_();
    std::memmove(d + at + 1, d + at, (size_ - at) * sizeof(T));
    d[at] = v;
    ++size_;
    return d + at;
  }

  iterator erase(iterator pos) {
    const std::size_t at = static_cast<std::size_t>(pos - data_());
    T* d = data_();
    std::memmove(d + at, d + at + 1, (size_ - at - 1) * sizeof(T));
    --size_;
    return d + at;
  }

  void pop_back() { --size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* data_() { return heap_ ? heap_ : inline_; }
  const T* data_() const { return heap_ ? heap_ : inline_; }

  void grow_to(std::size_t want) {
    const std::size_t cap = std::max<std::size_t>(want, cap_ * 2);
    T* fresh = new T[cap];
    std::memcpy(static_cast<void*>(fresh), data_(), size_ * sizeof(T));
    if (heap_) delete[] heap_;
    heap_ = fresh;
    cap_ = cap;
  }

  void assign_from(const SmallVec& other) {
    if (other.size_ > N) grow_to(other.size_);
    std::memcpy(static_cast<void*>(data_()), other.data_(),
                other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void steal_from(SmallVec& other) noexcept {
    if (other.heap_) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      other.heap_ = nullptr;
      other.cap_ = N;
    } else {
      std::memcpy(static_cast<void*>(inline_), other.inline_,
                  other.size_ * sizeof(T));
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void release() {
    delete[] heap_;
    heap_ = nullptr;
    cap_ = N;
    size_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

/// Sorted-ascending insert; returns false if `x` was already present.
template <typename Vec, typename T>
bool sorted_insert(Vec& v, const T& x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Sorted-ascending erase; returns false if `x` was absent.
template <typename Vec, typename T>
bool sorted_erase(Vec& v, const T& x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

/// Sorted-ascending membership test.
template <typename Vec, typename T>
bool sorted_contains(const Vec& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace centaur::util
