// Sorted flat map for ordered protocol node state.
//
// FlatMap (flat_map.hpp) is the right container when only lookups matter,
// but its iteration order is hash-layout order, which must never reach
// simulation output.  Node state that *is* iterated on the hot path — the
// per-neighbor RIB, the selected-path table, the selection-class cache —
// therefore stayed on node-based std::map, paying an allocation per entry
// and a pointer chase per step.  VecMap replaces those: one contiguous
// sorted vector of (key, value) pairs, binary-search lookups, and
// ascending-key iteration that is bit-identical to std::map's.
//
// Inserts and erases shift the tail (O(n) moves), which is the right trade
// for this state: tables are small-to-medium (neighbors, destinations), are
// scanned far more often than they are resized, and values are movable.
// Pointers into the map are invalidated by insert/erase, exactly like
// std::vector — callers must not hold references across a mutation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace centaur::util {

template <typename Key, typename V>
class VecMap {
 public:
  using value_type = std::pair<Key, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  VecMap() = default;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  V* find(Key k) {
    const auto it = lower_bound(k);
    return (it != items_.end() && it->first == k) ? &it->second : nullptr;
  }
  const V* find(Key k) const {
    const auto it = lower_bound(k);
    return (it != items_.end() && it->first == k) ? &it->second : nullptr;
  }

  std::size_t count(Key k) const { return find(k) == nullptr ? 0 : 1; }

  /// Returns the value for `k`, inserting a default-constructed one at the
  /// sorted position if absent; `inserted` reports which happened.
  V& ensure(Key k, bool& inserted) {
    auto it = lower_bound(k);
    if (it != items_.end() && it->first == k) {
      inserted = false;
      return it->second;
    }
    it = items_.emplace(it, k, V{});
    inserted = true;
    return it->second;
  }

  V& operator[](Key k) {
    bool inserted = false;
    return ensure(k, inserted);
  }

  /// Removes `k`.  Returns false if absent.
  bool erase(Key k) {
    const auto it = lower_bound(k);
    if (it == items_.end() || it->first != k) return false;
    items_.erase(it);
    return true;
  }

  bool operator==(const VecMap& other) const {
    return items_ == other.items_;
  }

 private:
  iterator lower_bound(Key k) {
    return std::lower_bound(
        items_.begin(), items_.end(), k,
        [](const value_type& item, Key key) { return item.first < key; });
  }
  const_iterator lower_bound(Key k) const {
    return std::lower_bound(
        items_.begin(), items_.end(), k,
        [](const value_type& item, Key key) { return item.first < key; });
  }

  std::vector<value_type> items_;  // sorted ascending by key
};

}  // namespace centaur::util
