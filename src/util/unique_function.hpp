// Move-only callable with inline storage, for the simulator event queue.
//
// std::function must be copyable, so capturing a shared_ptr message plus a
// couple of ids (as every Network::send event does) pushes it past the
// libstdc++ small-object buffer and costs one heap allocation per scheduled
// event.  UniqueFunction is move-only with a 48-byte inline slab: every
// event callback in this codebase fits, so scheduling allocates nothing.
// Larger callables still work — they spill to the heap transparently.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace centaur::util {

class UniqueFunction {
  // Three ops per callable type, stored as one static vtable pointer.
  struct VTable {
    void (*invoke)(void* storage);
    void (*move_to)(void* from, void* to);  // destroys the source
    void (*destroy)(void* storage);
  };

  template <typename F, bool Inline>
  struct Ops;

  // Inline: F lives directly in the slab.
  template <typename F>
  struct Ops<F, true> {
    static void invoke(void* s) { (*std::launder(static_cast<F*>(s)))(); }
    static void move_to(void* from, void* to) {
      F* f = std::launder(static_cast<F*>(from));
      ::new (to) F(std::move(*f));
      f->~F();
    }
    static void destroy(void* s) { std::launder(static_cast<F*>(s))->~F(); }
    static constexpr VTable vtable{&invoke, &move_to, &destroy};
  };

  // Spilled: the slab holds an owning F*.
  template <typename F>
  struct Ops<F, false> {
    static F*& ptr(void* s) { return *std::launder(static_cast<F**>(s)); }
    static void invoke(void* s) { (*ptr(s))(); }
    static void move_to(void* from, void* to) {
      ::new (to) F*(ptr(from));
    }
    static void destroy(void* s) { delete ptr(s); }
    static constexpr VTable vtable{&invoke, &move_to, &destroy};
  };

 public:
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    constexpr bool fits = sizeof(Fn) <= kInlineSize &&
                          alignof(Fn) <= alignof(std::max_align_t) &&
                          std::is_nothrow_move_constructible_v<Fn>;
    if constexpr (fits) {
      ::new (storage_) Fn(std::forward<F>(f));
      vtable_ = &Ops<Fn, true>::vtable;
    } else {
      ::new (storage_) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &Ops<Fn, false>::vtable;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

 private:
  void steal(UniqueFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->move_to(other.storage_, storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace centaur::util
