// Minimal strict JSON reader shared by every file-format entry point
// (scenario files, serve query files).
//
// The inputs are small and hand-written; this is a strict, stdlib-only
// reader for the JSON subset they need (objects, arrays, strings, numbers,
// booleans, null).  No dependency policy: the container ships no JSON
// library and we do not add one.  It grew up inside src/faults/scenario.cpp
// and moved here when the serve plane needed a second document format.
//
// Strictness contract (tested via the scenario and query-file suites):
// duplicate object keys are rejected, trailing characters after the
// document are rejected, and every parse error reports line/column plus the
// caller-supplied document name ("scenario JSON", "queries JSON", ...).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace centaur::util::json {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered map; the documents are tiny.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` as one JSON document.  `doc_name` prefixes every error
/// message ("scenario JSON", "queries JSON") so a failing file names its
/// format.  Throws std::runtime_error with line/column on malformed input.
JsonValue parse_json(const std::string& text, const std::string& doc_name);

}  // namespace centaur::util::json
