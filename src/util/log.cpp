#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <optional>

#include "util/env.hpp"

namespace centaur::util {
namespace {

LogLevel level_from_env() {
  const std::optional<std::string> raw = env_string("CENTAUR_LOG");
  if (!raw) return LogLevel::kWarn;
  const std::string& v = *raw;
  if (v == "error") return LogLevel::kError;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "info") return LogLevel::kInfo;
  if (v == "debug") return LogLevel::kDebug;
  // Runs during the static init of level_storage(), so this cannot go
  // through warn_once -> log_line -> log_level (re-entrant initialization);
  // the seed fell back silently, warn directly on stderr instead.
  std::cerr << "[warn ] CENTAUR_LOG='" << v
            << "' is not error|warn|info|debug; using warn\n";
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "[error] ";
    case LogLevel::kWarn:
      return "[warn ] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kDebug:
      return "[debug] ";
  }
  return "";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (level > log_level()) return;
  std::cerr << prefix(level) << msg << "\n";
}

}  // namespace centaur::util
