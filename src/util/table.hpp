// Plain-text table rendering for bench/experiment output.
//
// Every reproduction bench prints its table or figure series through this
// formatter so that the output of `for b in build/bench/*; do $b; done` is
// uniform and diff-able.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace centaur::util {

/// Column-aligned ASCII table with a title, header row, and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  TextTable& header(std::vector<std::string> cells);
  TextTable& row(std::vector<std::string> cells);

  /// Renders to `os`; pads each column to its widest cell.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt_double(double v, int digits = 2);

/// Formats a fraction as a percentage string, e.g. 0.919 -> "91.9%".
std::string fmt_percent(double fraction, int digits = 1);

/// Formats a count with thousands separators, e.g. 52691 -> "52,691".
std::string fmt_count(std::size_t v);

}  // namespace centaur::util
