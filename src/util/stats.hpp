// Descriptive statistics and empirical CDFs for experiment reporting.
//
// The paper reports CDFs (Figs 6, 7), averages (Fig 5, Table 4), and bucketed
// distributions (Table 5).  Accumulator and Cdf provide exactly those views.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace centaur::util {

/// Online accumulator for a stream of doubles.  Keeps all samples so that
/// exact quantiles are available (experiment sample counts are modest).
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Population standard deviation; 0 for fewer than 2 samples.
  double stddev() const;
  /// Exact quantile via linear interpolation, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// P[X <= x].
  double at(double x) const;

  /// Smallest sample value v with P[X <= v] >= q.
  double inverse(double q) const;

  std::size_t count() const { return sorted_.size(); }

  /// Evaluates the CDF at `points` evenly spaced sample quantiles, returning
  /// (value, cumulative probability) pairs — a plot-ready series.
  std::vector<std::pair<double, double>> series(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-boundary histogram; bucket i counts values in (bounds[i-1], bounds[i]]
/// with an implicit final overflow bucket.  Used for Table-5-style
/// "#entries = 1 / 2 / 3 / >3" breakdowns.
class BucketHistogram {
 public:
  explicit BucketHistogram(std::vector<double> upper_bounds);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  double fraction(std::size_t bucket) const;
  std::string label(std::size_t bucket) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;  // bounds_.size() + 1 entries
  std::size_t total_ = 0;
};

}  // namespace centaur::util
