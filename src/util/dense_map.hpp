// Flat map keyed by small dense unsigned ids (AS numbers are 0..n-1):
// a direct-indexed slot vector plus a present bitmap.  find/ensure/erase
// are single array hits — no hashing, no probing — and iteration walks keys
// ascending, so downstream consumers that need sorted order get it for
// free.  Grows to the largest inserted key + 1; intended for id spaces
// bounded by the network size.
//
// Values are constructed once per slot and RECYCLED: erase only clears the
// present bit, and re-inserting a key calls V::clear() on the old value
// instead of destroying it, so per-value heap buffers (vectors, small-vec
// spills) keep their capacity across erase/insert cycles on the hot path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace centaur::util {

template <typename V>
class DenseMap {
 public:
  V* find(std::uint32_t key) {
    return key < present_.size() && present_[key] != 0 ? &values_[key]
                                                       : nullptr;
  }
  const V* find(std::uint32_t key) const {
    return key < present_.size() && present_[key] != 0 ? &values_[key]
                                                       : nullptr;
  }
  std::size_t count(std::uint32_t key) const {
    return find(key) != nullptr ? 1 : 0;
  }

  /// Returns the value slot for `key`, creating it if absent (`inserted`
  /// reports which).  A recycled slot is reset via V::clear() first.
  V& ensure(std::uint32_t key, bool& inserted) {
    if (key >= present_.size()) grow(std::size_t{key} + 1);
    inserted = present_[key] == 0;
    if (inserted) {
      present_[key] = 1;
      ++size_;
      values_[key].clear();
    }
    return values_[key];
  }

  bool erase(std::uint32_t key) {
    if (key >= present_.size() || present_[key] == 0) return false;
    present_[key] = 0;
    --size_;
    return true;
  }

  /// Pre-sizes the slot arrays for keys < n.
  void reserve(std::size_t n) {
    if (present_.size() < n) grow(n);
  }

  /// Removes every entry; slots (and their value capacity) are kept.
  void clear() {
    std::fill(present_.begin(), present_.end(), std::uint8_t{0});
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Iteration item, `first`/`second` named for structured bindings like
  /// the map types this replaces.
  struct Item {
    std::uint32_t first;
    const V& second;
  };

  class const_iterator {
   public:
    const_iterator(const DenseMap* map, std::size_t pos)
        : map_(map), pos_(pos) {
      skip_absent();
    }
    Item operator*() const {
      return Item{static_cast<std::uint32_t>(pos_), map_->values_[pos_]};
    }
    const_iterator& operator++() {
      ++pos_;
      skip_absent();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    void skip_absent() {
      while (pos_ < map_->present_.size() && map_->present_[pos_] == 0) {
        ++pos_;
      }
    }
    const DenseMap* map_;
    std::size_t pos_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, present_.size()); }

 private:
  void grow(std::size_t n) {
    values_.resize(n);
    present_.resize(n, 0);
  }

  std::vector<V> values_;
  std::vector<std::uint8_t> present_;
  std::size_t size_ = 0;
};

}  // namespace centaur::util
