// Minimal leveled logging.
//
// Protocol nodes log decision traces at kDebug; experiment harnesses log
// progress at kInfo.  The level is process-global and settable from the
// CENTAUR_LOG environment variable (error|warn|info|debug); default is warn
// so tests and benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace centaur::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current process-wide level (initialised from CENTAUR_LOG on first use).
LogLevel log_level();

/// Overrides the process-wide level.
void set_log_level(LogLevel level);

/// Emits one line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

/// Stream-style builder: collects the message and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, ss_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail

}  // namespace centaur::util

#define CENTAUR_LOG(level)                                            \
  if (::centaur::util::log_level() >= ::centaur::util::LogLevel::level) \
  ::centaur::util::detail::LogMessage(::centaur::util::LogLevel::level)
