#include "util/bloom.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>

namespace centaur::util {
namespace {

// 64-bit finalizer (MurmurHash3 fmix64): good avalanche for double hashing.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BloomFilter::BloomFilter(std::size_t expected_items, double fp_rate) {
  fp_rate = std::clamp(fp_rate, 1e-9, 0.5);
  expected_items = std::max<std::size_t>(expected_items, 1);
  const double ln2 = std::numbers::ln2_v<double>;
  const double m =
      -static_cast<double>(expected_items) * std::log(fp_rate) / (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  const std::size_t bits = std::max<std::size_t>(64, static_cast<std::size_t>(m));
  words_.assign((bits + 63) / 64, 0);
  hashes_ = std::clamp<std::size_t>(static_cast<std::size_t>(std::lround(k)), 1, 16);
}

BloomFilter BloomFilter::with_geometry(std::size_t bits, std::size_t hashes) {
  BloomFilter f;
  bits = std::max<std::size_t>(bits, 64);
  f.words_.assign((bits + 63) / 64, 0);
  f.hashes_ = std::clamp<std::size_t>(hashes, 1, 16);
  return f;
}

BloomFilter BloomFilter::from_words(std::vector<std::uint64_t> words,
                                    std::size_t hashes, std::size_t inserted) {
  BloomFilter f;
  if (words.empty()) words.push_back(0);
  f.words_ = std::move(words);
  f.hashes_ = std::clamp<std::size_t>(hashes, 1, 16);
  f.inserted_ = inserted;
  return f;
}

void BloomFilter::insert(std::uint32_t id) {
  // Kirsch-Mitzenmacher double hashing: h_i = h1 + i * h2.
  const std::uint64_t h = mix64(0x5bf03635ULL ^ id);
  const std::uint64_t h1 = h;
  const std::uint64_t h2 = mix64(h) | 1;  // odd, so it cycles all positions
  const std::size_t nbits = bit_count();
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t pos = (h1 + i * h2) % nbits;
    words_[pos >> 6] |= (1ULL << (pos & 63));
  }
  ++inserted_;
}

bool BloomFilter::contains(std::uint32_t id) const {
  const std::uint64_t h = mix64(0x5bf03635ULL ^ id);
  const std::uint64_t h1 = h;
  const std::uint64_t h2 = mix64(h) | 1;
  const std::size_t nbits = bit_count();
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t pos = (h1 + i * h2) % nbits;
    if (!(words_[pos >> 6] & (1ULL << (pos & 63)))) return false;
  }
  return true;
}

double BloomFilter::fill_ratio() const {
  std::size_t set = 0;
  for (std::uint64_t w : words_) {
    set += static_cast<std::size_t>(std::popcount(w));
  }
  return static_cast<double>(set) / static_cast<double>(bit_count());
}

double BloomFilter::estimated_fp_rate() const {
  return std::pow(fill_ratio(), static_cast<double>(hashes_));
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  inserted_ = 0;
}

}  // namespace centaur::util
