// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng so that every test, bench,
// and example is reproducible from a single 64-bit seed.  The generator is
// xoshiro256**, seeded via SplitMix64 (the construction recommended by the
// xoshiro authors), which is far faster than std::mt19937_64 and has no
// observable bias for our use cases.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace centaur::util {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
///
/// The default-constructed generator uses a fixed seed so that code which
/// forgets to seed explicitly is still reproducible.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct values uniformly from [0, n) without replacement.
  /// Requires k <= n.  O(k) expected time for k << n, O(n) worst case.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Splits off an independent child generator (for per-trial streams).
  Rng split();

 private:
  std::uint64_t s_[4]{};
};

/// Derives an independent per-trial seed from a base seed and a trial index
/// (SplitMix64 over their combination).  Unlike Rng::split() this is a pure
/// function of (base, index) — trials seeded this way are reproducible
/// regardless of execution order, which is what makes the parallel trial
/// driver (src/runner) bit-identical to a serial run.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

}  // namespace centaur::util
