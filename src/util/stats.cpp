#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace centaur::util {

void Accumulator::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

double Accumulator::mean() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

void Accumulator::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Accumulator::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return sorted_.front();
}

double Accumulator::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return sorted_.back();
}

double Accumulator::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Accumulator::quantile(double q) const {
  if (samples_.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  ensure_sorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1 - frac) + sorted_[hi] * frac;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  if (sorted_.empty()) return 0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::inverse(double q) const {
  if (sorted_.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t idx = std::min(
      sorted_.size() - 1,
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted_.size())) -
                               (q > 0 ? 1 : 0)));
  return sorted_[idx];
}

std::vector<std::pair<double, double>> Cdf::series(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  points = std::min(points, sorted_.size());
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t idx =
        (points == 1) ? sorted_.size() - 1
                      : i * (sorted_.size() - 1) / (points - 1);
    out.emplace_back(sorted_[idx], static_cast<double>(idx + 1) /
                                       static_cast<double>(sorted_.size()));
  }
  return out;
}

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("BucketHistogram: bounds must be sorted");
  }
}

void BucketHistogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

double BucketHistogram::fraction(std::size_t bucket) const {
  if (total_ == 0) return 0;
  return static_cast<double>(count(bucket)) / static_cast<double>(total_);
}

std::string BucketHistogram::label(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("bucket");
  auto fmt = [](double v) {
    // Integral bounds print without decimals.
    if (v == static_cast<double>(static_cast<long long>(v))) {
      return std::to_string(static_cast<long long>(v));
    }
    return std::to_string(v);
  };
  if (bucket == counts_.size() - 1) return "> " + fmt(bounds_.back());
  if (bucket == 0) return "<= " + fmt(bounds_[0]);
  return "(" + fmt(bounds_[bucket - 1]) + ", " + fmt(bounds_[bucket]) + "]";
}

}  // namespace centaur::util
