#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace centaur::util {

TextTable& TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

TextTable& TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;
  if (total > 0) total -= 1;

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i])) << c;
      if (i + 1 < widths.size()) os << " | ";
    }
    os << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) print_row(r);
  os << "\n";
}

std::string fmt_double(double v, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << v;
  return ss.str();
}

std::string fmt_percent(double fraction, int digits) {
  return fmt_double(fraction * 100.0, digits) + "%";
}

std::string fmt_count(std::size_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  std::size_t lead = raw.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

}  // namespace centaur::util
