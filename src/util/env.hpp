// Strict environment-variable parsing, shared by every CENTAUR_* knob.
//
// The seed parsed env values ad hoc (std::stoul for CENTAUR_THREADS, "any
// unknown string is truthy" for CENTAUR_COALESCE, silent fallback for
// CENTAUR_SCALE), so a typo like CENTAUR_THREADS=4x or CENTAUR_COALESCE=onn
// silently changed behavior.  These helpers reject garbage instead: a value
// that does not parse (or an enum spelling that is not recognised) falls
// back to the caller's default and warns once per variable per process, so
// a misconfigured CI job is visible in its log instead of silently serial
// or silently coalescing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace centaur::util {

/// Strict base-10 integer parse of the *entire* string: optional sign,
/// digits, nothing else (no leading/trailing junk, no empty string).
/// Returns nullopt on anything else, including overflow.
std::optional<long long> parse_int_strict(const std::string& text);

/// Emits one kWarn log line per distinct `key` per process (thread-safe);
/// repeat calls with the same key are dropped.  Returns true if the message
/// was emitted (tests use this to observe the once-semantics).
bool warn_once(const std::string& key, const std::string& message);

/// Testing hook: forgets every warn_once key so a test can re-trigger
/// warnings deterministically.
void reset_warn_once_for_testing();

/// Integer env knob: unset -> fallback; non-numeric -> warn once, fallback;
/// numeric but < min_value -> warn once, clamp to min_value.
std::size_t env_size_t(const char* name, std::size_t fallback,
                       std::size_t min_value = 1);

/// Boolean env knob: unset -> fallback; "", "0", "off", "false", "no" ->
/// false; "1", "on", "true", "yes" -> true; anything else -> warn once,
/// fallback.  (The seed treated every unrecognised string as true.)
bool env_flag_strict(const char* name, bool fallback);

/// Raw string accessor: the ONLY sanctioned way to read an env var whose
/// value is a free-form string (a file path, a report destination).  Unset
/// -> nullopt; a set-but-empty variable returns "" and the caller decides.
/// Centralising the getenv call here is what lets centaur-lint rule E1
/// forbid getenv everywhere else.
std::optional<std::string> env_string(const char* name);

/// Enum env knob: unset -> fallback; an exact (case-sensitive) match with
/// an entry of `allowed` -> that entry; anything else -> warn once listing
/// the accepted spellings, fallback.  Returns the matched spelling so
/// callers can switch on string value without re-normalising.
std::string env_enum_strict(const char* name,
                            const std::vector<std::string>& allowed,
                            const std::string& fallback);

}  // namespace centaur::util
