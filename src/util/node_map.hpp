// Dual-mode node-indexed map for per-node protocol state.
//
// Protocol caches keyed by dense AS ids (P-graph adjacency, walk-chain
// indexes) want a direct-indexed array: one cache line, no hash probe.  But
// the array is sized by the *largest id touched*, and every node keeps such
// caches per neighbor — at 100k+ ASes an O(max-id) array per (node,
// neighbor) pair is hundreds of gigabytes while the actual content (nodes
// on paths toward the originated destinations) stays tiny.
//
// NodeMap resolves the tension by switching representation on scale:
//   * dense mode (default): std::vector<V> indexed by id, identical to the
//     plain vector it replaces — every topology below kNodeMapDenseLimit
//     stays on this path, so existing runs keep their exact allocation and
//     lookup behavior;
//   * sparse mode: a content-sized FlatMap<id, V>, entered lazily on the
//     first ensure()/reserve_ids() that reaches kNodeMapDenseLimit.  Lookup
//     pays a hash probe; memory is proportional to ids actually touched.
//
// The mode switch never leaks into simulation results: per-id lookup is
// order-free, and whole-map iteration (for_each) visits ids ascending in
// both modes.  Callers must treat an empty value exactly like an absent
// one — dense mode materializes default slots below the largest touched id,
// sparse mode does not, and conversion drops empty slots.
//
// V must be default-constructible and container-like: `empty()` (absence
// test, conversion filter) and `clear()` (clear_values) are required —
// SmallVec / std::vector values in practice.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/flat_map.hpp"

namespace centaur::util {

/// Node-id bound below which NodeMap keeps (or pre-sizes) the dense array.
/// Callers also use it as the "presize everything up front" threshold: below
/// it, O(n) reservations are cheap and buy rehash-free assembly; at or above
/// it, state must stay content-sized.
inline constexpr std::size_t kNodeMapDenseLimit = std::size_t{1} << 16;

template <typename V>
class NodeMap {
 public:
  using Key = std::uint32_t;

  NodeMap() = default;

  bool sparse() const { return sparse_; }

  /// Value for `id`, or nullptr when the slot was never materialized.  A
  /// non-null result may still be an empty V (dense slots below the largest
  /// touched id exist by construction) — treat empty as absent.
  const V* find(Key id) const {
    if (!sparse_) {
      return std::size_t{id} < dense_.size() ? &dense_[id] : nullptr;
    }
    return map_.find(id);
  }
  V* find(Key id) {
    return const_cast<V*>(std::as_const(*this).find(id));
  }

  /// Value for `id`, default-constructed if absent.  Growing past
  /// kNodeMapDenseLimit converts to sparse mode (empty slots are dropped).
  V& ensure(Key id) {
    if (!sparse_) {
      if (std::size_t{id} < kNodeMapDenseLimit) {
        if (dense_.size() <= std::size_t{id}) {
          dense_.resize(std::size_t{id} + 1);
        }
        return dense_[id];
      }
      convert_to_sparse();
    }
    bool inserted = false;
    return map_.ensure(id, inserted);
  }

  /// Pre-sizes for ids [0, count).  Below the dense limit this materializes
  /// the array (the classic reserve); at or above it the map switches to
  /// sparse mode instead, keeping memory proportional to content.
  void reserve_ids(std::size_t count) {
    if (sparse_) return;
    if (count <= kNodeMapDenseLimit) {
      if (dense_.size() < count) dense_.resize(count);
    } else {
      convert_to_sparse();
    }
  }

  /// Empties every value in place (dense mode keeps slot capacity, matching
  /// the plain-vector reset idiom this replaces).
  void clear_values() {
    if (!sparse_) {
      for (V& v : dense_) v.clear();
    } else {
      map_.clear();
    }
  }

  /// Visits (id, value) pairs in ascending id order — identical observable
  /// order in both modes, so checker/export sweeps stay deterministic.
  /// Dense mode also visits empty slots; treat them as absent.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!sparse_) {
      for (std::size_t id = 0; id < dense_.size(); ++id) {
        fn(static_cast<Key>(id), dense_[id]);
      }
      return;
    }
    std::vector<Key> keys;
    keys.reserve(map_.size());
    for (const auto& [k, v] : map_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    for (const Key k : keys) fn(k, *map_.find(k));
  }

 private:
  void convert_to_sparse() {
    std::size_t live = 0;
    for (const V& v : dense_) {
      if (!v.empty()) ++live;
    }
    map_.reserve(live);
    for (std::size_t id = 0; id < dense_.size(); ++id) {
      if (dense_[id].empty()) continue;
      bool inserted = false;
      map_.ensure(static_cast<Key>(id), inserted) = std::move(dense_[id]);
    }
    dense_.clear();
    dense_.shrink_to_fit();
    sparse_ = true;
  }

  bool sparse_ = false;
  std::vector<V> dense_;        // dense mode storage, indexed by id
  FlatMap<Key, V> map_;         // sparse mode storage, content-sized
};

}  // namespace centaur::util
