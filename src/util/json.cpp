#include "util/json.hpp"

#include <cctype>
#include <stdexcept>

namespace centaur::util::json {

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& doc_name)
      : text_(text), doc_name_(doc_name) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error(doc_name_ + ": " + what + " at line " +
                             std::to_string(line) + ", column " +
                             std::to_string(col));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = string();
      if (v.find(key) != nullptr) fail("duplicate key \"" + key + "\"");
      expect(':');
      v.object.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            out.push_back(e);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            fail("unsupported escape sequence");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      std::size_t used = 0;
      v.number = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) throw std::invalid_argument("junk");
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  const std::string& doc_name_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const std::string& doc_name) {
  return JsonParser(text, doc_name).parse();
}

}  // namespace centaur::util::json
