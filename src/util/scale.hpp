// Experiment scale selection.
//
// The paper's topologies (26k-node CAIDA, 20k-node HeTop) make all-pairs
// computations quadratic; like the paper we sample.  Every bench honours
// CENTAUR_SCALE={smoke,default,large} so CI stays fast while a large run
// approaches paper scale.  All knobs live here so benches stay declarative.
#pragma once

#include <cstddef>
#include <string>

namespace centaur::util {

enum class Scale { kSmoke, kDefault, kLarge };

/// Reads CENTAUR_SCALE from the environment ("smoke" / "default" / "large",
/// case-insensitive); anything else or unset maps to kDefault.
Scale scale_from_env();

const char* to_string(Scale s);

/// Per-scale experiment knobs.
struct ScaleParams {
  // Synthetic measured-topology sizes (Table 3/4/5, Fig 5).
  std::size_t caida_like_nodes;
  std::size_t hetop_like_nodes;
  // Vantage-node sample for P-graph statistics (Tables 4/5).
  std::size_t pgraph_vantage_sample;
  // Failed-link sample for Fig 5.
  std::size_t fig5_link_sample;
  // Event-driven prototype topology (Figs 6/7); paper uses 500 nodes.
  std::size_t proto_nodes;
  // Link flips measured in Figs 6/7.
  std::size_t proto_flip_sample;
  // Topology size sweep for Fig 8.
  std::size_t fig8_min_nodes;
  std::size_t fig8_max_nodes;
  std::size_t fig8_steps;
  std::size_t fig8_events_per_size;
  // Fig 8 large-scale arm (bench_fig8_large): single tiered topology run
  // to cold-start convergence under the sharded event plane.  Origination
  // is destination-limited to the lowest `fig8_large_origins` ids (the
  // generator's core tiers) — full-mesh origination is quadratic in routes
  // and infeasible at 100k nodes for every protocol.
  std::size_t fig8_large_nodes;
  std::size_t fig8_large_origins;
  // Base RNG seed for the whole experiment suite.
  std::uint64_t seed;
};

/// Parameter set for `s`.
ScaleParams params_for(Scale s);

/// Convenience: params for the environment-selected scale.
ScaleParams params_from_env();

}  // namespace centaur::util
