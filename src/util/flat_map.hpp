// Open-addressing hash map for the protocol hot paths.
//
// The seed kept P-graph links and adjacency in node-based std::map /
// std::unordered_map containers: every entry was its own heap allocation and
// every lookup a pointer chase.  FlatMap stores slots contiguously with
// linear probing (power-of-two capacity, 70% max load), deletes with
// Knuth's backward-shift compaction (Algorithm R) so no tombstones
// accumulate, and reserves one key value (all bits set) as the empty
// sentinel — which no caller can hit: packed DirectedLink keys would need a
// self-loop of kInvalidNode, and NodeId keys are always real node ids.
//
// Iteration yields entries in slot order.  That order is a deterministic
// function of the insert/erase sequence (no randomized seeds, no pointer
// values), which the simulator's reproducibility guarantee relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace centaur::util {

template <typename Key, typename V>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>, "FlatMap keys are unsigned integers");

 public:
  /// Reserved sentinel; never usable as a real key.
  static constexpr Key kEmptyKey = static_cast<Key>(-1);

  /// Iteration proxy (mirrors std::map's value_type shape so structured
  /// bindings `[key, value]` keep working at call sites).
  struct Item {
    Key first;
    const V& second;
  };

 private:
  struct Slot {
    Key key = kEmptyKey;
    V value{};
  };

 public:
  class const_iterator {
   public:
    const_iterator(const Slot* slot, const Slot* end) : slot_(slot), end_(end) {
      skip();
    }
    Item operator*() const { return Item{slot_->key, slot_->value}; }
    const_iterator& operator++() {
      ++slot_;
      skip();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return slot_ == o.slot_; }
    bool operator!=(const const_iterator& o) const { return slot_ != o.slot_; }

   private:
    void skip() {
      while (slot_ != end_ && slot_->key == kEmptyKey) ++slot_;
    }
    const Slot* slot_;
    const Slot* end_;
  };

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const_iterator begin() const {
    return const_iterator(slots_.data(), slots_.data() + slots_.size());
  }
  const_iterator end() const {
    const Slot* e = slots_.data() + slots_.size();
    return const_iterator(e, e);
  }

  void clear() {
    for (Slot& s : slots_) {
      s.key = kEmptyKey;
      s.value = V{};
    }
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without rehashing on the way there.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (n * 10 > cap * 7) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  V* find(Key k) {
    return const_cast<V*>(std::as_const(*this).find(k));
  }

  const V* find(Key k) const {
    if (size_ == 0) return nullptr;
    std::size_t i = mix(k) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == k) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  std::size_t count(Key k) const { return find(k) == nullptr ? 0 : 1; }

  /// Returns the value for `k`, inserting a default-constructed one if
  /// absent; `inserted` reports which happened.
  V& ensure(Key k, bool& inserted) {
    if ((size_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = mix(k) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == k) {
        inserted = false;
        return s.value;
      }
      if (s.key == kEmptyKey) {
        s.key = k;
        ++size_;
        inserted = true;
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  V& operator[](Key k) {
    bool inserted = false;
    return ensure(k, inserted);
  }

  /// Removes `k`; backward-shift compaction keeps probe chains intact
  /// without tombstones.  Returns false if absent.
  bool erase(Key k) {
    if (size_ == 0) return false;
    std::size_t hole = mix(k) & mask_;
    while (true) {
      if (slots_[hole].key == k) break;
      if (slots_[hole].key == kEmptyKey) return false;
      hole = (hole + 1) & mask_;
    }
    std::size_t j = hole;
    while (true) {
      j = (j + 1) & mask_;
      if (slots_[j].key == kEmptyKey) break;
      const std::size_t ideal = mix(slots_[j].key) & mask_;
      // Slot j may keep its place only if its ideal slot lies cyclically in
      // (hole, j]; otherwise its probe chain crosses the hole — move it back.
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole].key = slots_[j].key;
        slots_[hole].value = std::move(slots_[j].value);
        hole = j;
      }
    }
    slots_[hole].key = kEmptyKey;
    slots_[hole].value = V{};
    --size_;
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  static std::size_t mix(Key k) {
    std::uint64_t x = static_cast<std::uint64_t>(k);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = mix(s.key) & mask_;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Membership-only companion to FlatMap, for visited sets and rejection
/// sampling.  Deliberately offers no iteration: a caller whose results
/// depend on element *order* should keep a sorted SmallVec/vector instead,
/// so hash-layout order can never leak into simulation output.
template <typename Key>
class FlatSet {
 public:
  static constexpr Key kEmptyKey = FlatMap<Key, char>::kEmptyKey;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Returns true if `k` was newly inserted.
  bool insert(Key k) {
    bool inserted = false;
    map_.ensure(k, inserted);
    return inserted;
  }

  std::size_t count(Key k) const { return map_.count(k); }
  bool erase(Key k) { return map_.erase(k); }

 private:
  FlatMap<Key, char> map_;
};

}  // namespace centaur::util
