// Reader/writer for the CAIDA AS-relationship exchange format.
//
// The paper's measured topologies (CAIDA Sep'07, HeTop May'05) are published
// in the "serial-1" as-rel format:
//
//   # comment lines start with '#'
//   <as-a>|<as-b>|<relationship>
//
// where relationship -1 means "a is a provider of b" (i.e. b is a's
// customer), 0 means peering, and 2 means siblings.  AS numbers are sparse;
// we map them onto dense NodeIds and keep the mapping for round-tripping.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "topology/as_graph.hpp"
#include "util/flat_map.hpp"

namespace centaur::topo {

/// A parsed topology plus the AS-number <-> NodeId mapping.  AS number
/// 4294967295 (the FlatMap sentinel) is reserved by RFC 7300 and rejected
/// by the parser, so it can never collide with the empty-slot marker.
struct ParsedTopology {
  AsGraph graph;
  std::vector<std::uint32_t> node_to_as;  ///< NodeId -> AS number
  util::FlatMap<std::uint32_t, NodeId> as_to_node;

  /// Number of input lines skipped (comments / duplicates / self-loops).
  std::size_t skipped_lines = 0;
};

/// Parses an as-rel stream.  Throws std::runtime_error on malformed lines
/// (wrong field count, non-numeric AS, unknown relationship code).
/// Duplicate links and self-loops are counted in `skipped_lines` rather than
/// rejected, matching how published snapshots are usually cleaned.
ParsedTopology parse_as_rel(std::istream& in);

/// Convenience wrapper parsing from a string.
ParsedTopology parse_as_rel_text(const std::string& text);

/// Loads a topology from a file path.  Throws std::runtime_error if the file
/// cannot be opened.
ParsedTopology load_as_rel_file(const std::string& path);

/// Serialises `graph` to as-rel format.  If `node_to_as` is empty the NodeId
/// is used as the AS number.
void write_as_rel(std::ostream& out, const AsGraph& graph,
                  const std::vector<std::uint32_t>& node_to_as = {});

std::string write_as_rel_text(const AsGraph& graph,
                              const std::vector<std::uint32_t>& node_to_as = {});

}  // namespace centaur::topo
