#include "topology/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "util/flat_map.hpp"

namespace centaur::topo {

Components connected_components(const AsGraph& g) {
  Components c;
  c.label.assign(g.num_nodes(), static_cast<std::size_t>(-1));
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (c.label[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t id = c.count++;
    c.label[start] = id;
    queue.push_back(start);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const Neighbor& nb : g.neighbors(v)) {
        if (!g.link_up(nb.link)) continue;
        if (c.label[nb.node] == static_cast<std::size_t>(-1)) {
          c.label[nb.node] = id;
          queue.push_back(nb.node);
        }
      }
    }
  }
  return c;
}

bool is_connected(const AsGraph& g) {
  if (g.num_nodes() <= 1) return true;
  return connected_components(g).count == 1;
}

std::vector<std::size_t> bfs_distances(const AsGraph& g, NodeId src) {
  std::vector<std::size_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist.at(src) = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const Neighbor& nb : g.neighbors(v)) {
      if (!g.link_up(nb.link)) continue;
      if (dist[nb.node] == kUnreachable) {
        dist[nb.node] = dist[v] + 1;
        queue.push_back(nb.node);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> degrees(const AsGraph& g) {
  std::vector<std::size_t> d(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) d[v] = g.degree(v);
  return d;
}

std::vector<NodeId> nodes_by_degree(const AsGraph& g) {
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  return order;
}

bool is_valid_path(const AsGraph& g, const Path& path) {
  if (path.empty()) return false;
  util::FlatSet<NodeId> seen;
  seen.reserve(path.size());
  for (NodeId v : path) {
    if (v >= g.num_nodes()) return false;
    if (!seen.insert(v)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = g.find_link(path[i], path[i + 1]);
    if (!link || !g.link_up(*link)) return false;
  }
  return true;
}

Subgraph largest_component(const AsGraph& g) {
  const Components comps = connected_components(g);
  std::vector<std::size_t> size(comps.count, 0);
  for (std::size_t label : comps.label) ++size[label];
  const std::size_t best =
      comps.count == 0
          ? 0
          : static_cast<std::size_t>(
                std::max_element(size.begin(), size.end()) - size.begin());

  Subgraph out;
  out.old_to_new.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (comps.count != 0 && comps.label[v] == best) {
      out.old_to_new[v] = out.graph.add_node();
      out.new_to_old.push_back(v);
    }
  }
  for (LinkId id = 0; id < g.num_links(); ++id) {
    const Link& l = g.link(id);
    const NodeId na = out.old_to_new[l.a];
    const NodeId nb = out.old_to_new[l.b];
    if (na != kInvalidNode && nb != kInvalidNode) {
      const LinkId nl = out.graph.add_link(na, nb, l.rel_ab);
      out.graph.set_link_up(nl, l.up);
    }
  }
  return out;
}

}  // namespace centaur::topo
