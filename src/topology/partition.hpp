// Deterministic edge-cut partitioning of an AS graph into contiguous node
// ranges — the shard map for the simulator's sharded event plane
// (DESIGN.md §13).
//
// Nodes are dense ids, and both generators and measured tables emit them in
// a locality-friendly order (tier-1 core first, customers attached after
// their providers), so contiguous ranges are a natural edge-cut heuristic:
// most provider/customer links connect nearby ids.  Cut points are chosen
// on the prefix sums of per-node weights (1 + degree, an estimate of the
// node's event-processing share), so shards carry comparable expected load
// even when degree is heavily skewed.  The result is a pure function of the
// graph and the shard count — no RNG, no iteration-order dependence — which
// the sharded bit-identity contract relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/as_graph.hpp"

namespace centaur::topo {

/// A contiguous-range shard map plus the boundary-link index.
struct Partition {
  /// Actual shard count (requested count clamped to [1, num_nodes]).
  std::size_t num_shards = 1;
  /// shard_of_node[n] = owning shard; size == num_nodes.
  std::vector<std::uint32_t> shard_of_node;
  /// Half-open owned range [first, second) per shard; ranges are
  /// ascending, disjoint, non-empty, and cover [0, num_nodes).
  std::vector<std::pair<NodeId, NodeId>> ranges;
  /// Links whose endpoints live in different shards, ascending by LinkId —
  /// exactly the links whose deliveries cross a shard channel.
  std::vector<LinkId> boundary_links;

  std::uint32_t shard_of(NodeId n) const { return shard_of_node.at(n); }
  /// Links fully inside one shard.
  std::size_t internal_links() const { return total_links - boundary_links.size(); }
  std::size_t total_links = 0;
};

/// Partitions `g` into `shards` contiguous ranges with balanced total
/// (1 + degree) weight.  `shards` is clamped to [1, num_nodes]; a graph
/// with zero nodes yields one empty shard.
Partition partition_contiguous(const AsGraph& g, std::size_t shards);

}  // namespace centaur::topo
