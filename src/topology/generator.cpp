#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "topology/algorithms.hpp"
#include "util/small_vec.hpp"

namespace centaur::topo {
namespace {

/// Degree-proportional sampling: picks an endpoint of a uniformly random
/// link-slot.  `slots` holds one entry per link endpoint.
NodeId pick_by_degree(const std::vector<NodeId>& slots, util::Rng& rng) {
  return slots[rng.index(slots.size())];
}

/// Sorted-insert for the small distinct-target sets below.  Keeping the set
/// ordered (instead of hashed) means the links derived from it are added in
/// ascending-neighbor order — a deterministic function of the rng draws
/// alone, not of any container's hash layout.
bool insert_sorted(util::SmallVec<NodeId, 8>& set, NodeId v) {
  NodeId* it = std::lower_bound(set.begin(), set.end(), v);
  if (it != set.end() && *it == v) return false;
  set.insert(it, v);
  return true;
}

}  // namespace

AsGraph barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng) {
  if (m < 1) throw std::invalid_argument("barabasi_albert: m < 1");
  if (n < m + 1) throw std::invalid_argument("barabasi_albert: n < m + 1");

  AsGraph g(n);
  g.reserve_links(n * m + m * m);
  std::vector<NodeId> slots;  // endpoint multiset for degree-biased choice
  slots.reserve(2 * n * m);

  // Seed clique of m + 1 nodes.
  for (NodeId a = 0; a + 1 <= m; ++a) {
    for (NodeId b = a + 1; b <= m; ++b) {
      g.add_link(a, b, Relationship::kPeer);
      slots.push_back(a);
      slots.push_back(b);
    }
  }

  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    util::SmallVec<NodeId, 8> targets;
    while (targets.size() < m) {
      insert_sorted(targets, pick_by_degree(slots, rng));
    }
    for (NodeId t : targets) {
      g.add_link(v, t, Relationship::kPeer);
      slots.push_back(v);
      slots.push_back(t);
    }
  }
  return g;
}

AsGraph waxman(std::size_t n, double alpha, double beta, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("waxman: n == 0");
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.uniform01(), rng.uniform01()};

  AsGraph g(n);
  const double max_dist = std::sqrt(2.0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double dx = pos[a].first - pos[b].first;
      const double dy = pos[a].second - pos[b].second;
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double p = alpha * std::exp(-dist / (beta * max_dist));
      if (rng.chance(p)) g.add_link(a, b, Relationship::kPeer);
    }
  }
  return largest_component(g).graph;
}

AsGraph tiered_internet(const TieredParams& params, util::Rng& rng) {
  const std::size_t n = params.nodes;
  const std::size_t t1 = std::min(params.tier1_count, n);
  if (n < 3 || t1 < 2) {
    throw std::invalid_argument("tiered_internet: need nodes >= 3, tier1 >= 2");
  }

  AsGraph g(n);
  // Scale audit (100k-1M nodes): every loop below is linear in nodes or
  // links — the only super-linear piece is the t1 peer mesh, and tier1_count
  // grows as nodes/~2000, so the mesh stays negligible (45^2/2 links at
  // 100k).  The duplicate checks in add_link / has_link scan the
  // smaller-degree endpoint's adjacency, which the degree-biased draws keep
  // small on at least one side.  What *was* measurable at 100k+ is
  // reallocation churn of the big flat vectors, so they are reserved up
  // front: the link table (~(1 + avg_provider_links + peering) per node) and
  // the degree-biased slot multiset (one entry per link endpoint drawn).
  const std::size_t expected_links = static_cast<std::size_t>(
      static_cast<double>(n) * (params.avg_provider_links + 0.5)) +
      t1 * t1 / 2 + 16;
  g.reserve_links(expected_links);
  // Nodes [0, t1) are tier 1; a full peer mesh.
  for (NodeId a = 0; a < t1; ++a) {
    for (NodeId b = a + 1; b < t1; ++b) {
      g.add_link(a, b, Relationship::kPeer);
    }
  }

  // Provider hierarchy: each node v >= t1 multi-homes into providers drawn
  // degree-biased from the nodes before it.  Early nodes accumulate
  // customers and become transit; late nodes stay stubs; hierarchy depth
  // varies organically (1..~5 levels) like measured AS graphs — the
  // variable depth plus the peering below is what makes nodes multi-homed
  // in P-graphs (paper S3.2.4).
  std::vector<NodeId> provider_slots;  // degree-biased customer-attraction
  provider_slots.reserve(n + expected_links);
  for (NodeId v = 0; v < t1; ++v) provider_slots.push_back(v);

  const double extra_mean = std::max(0.0, params.avg_provider_links - 1.0);
  auto provider_count = [&]() {
    // 1 + geometric-ish extra with the requested mean.
    std::size_t k = 1;
    const double p = extra_mean / (1.0 + extra_mean);
    while (rng.chance(p) && k < 6) ++k;
    return k;
  };

  for (NodeId v = static_cast<NodeId>(t1); v < n; ++v) {
    const std::size_t want = provider_count();
    util::SmallVec<NodeId, 8> chosen;
    std::size_t attempts = 0;
    while (chosen.size() < want && attempts < want * 20 + 20) {
      ++attempts;
      const NodeId p = pick_by_degree(provider_slots, rng);
      if (p >= v || g.has_link(v, p)) continue;  // providers precede v
      insert_sorted(chosen, p);
    }
    if (chosen.empty()) {
      // Guarantee a provider for connectivity: first core node not yet
      // linked (the core mesh is small, v has at most a few links here).
      for (NodeId p = 0; p < t1; ++p) {
        if (!g.has_link(v, p)) {
          chosen.push_back(p);
          break;
        }
      }
    }
    for (NodeId p : chosen) {
      g.add_link(v, p, Relationship::kProvider);  // p is v's provider
      provider_slots.push_back(p);
    }
    // v itself becomes eligible as a provider, but with low initial weight.
    provider_slots.push_back(v);
  }

  // Add same-tier peering links until the target fraction is met.
  const double base_links = static_cast<double>(g.num_links());
  const double denom = 1.0 - params.peer_fraction - params.sibling_fraction;
  const std::size_t target_total =
      denom > 0 ? static_cast<std::size_t>(base_links / denom)
                : g.num_links();
  const std::size_t peer_target = static_cast<std::size_t>(
      params.peer_fraction * static_cast<double>(target_total));
  const std::size_t sibling_target = static_cast<std::size_t>(
      params.sibling_fraction * static_cast<double>(target_total));

  // Peering links: degree-biased on one endpoint (transit nodes peer a
  // lot) and free on the other, so peering crosses hierarchy levels — as in
  // measured topologies, where regional ISPs peer with Tier-1s and stubs
  // peer with transit.  Cross-level peering is what makes nodes multi-homed
  // in P-graphs (paper S3.2.4): a node is then traversed both on ascending
  // provider segments and on descending peer-class segments of different
  // selected paths.
  {
    std::size_t added = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = peer_target * 50 + 100;
    while (added < peer_target && attempts < max_attempts) {
      ++attempts;
      const NodeId a = pick_by_degree(provider_slots, rng);
      const NodeId b = rng.chance(0.5)
                           ? pick_by_degree(provider_slots, rng)
                           : static_cast<NodeId>(rng.index(n));
      if (a == b || g.has_link(a, b)) continue;
      g.add_link(a, b, Relationship::kPeer);
      ++added;
    }
  }
  // A sprinkle of sibling links.
  {
    std::size_t added = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = sibling_target * 50 + 100;
    while (added < sibling_target && attempts < max_attempts) {
      ++attempts;
      const NodeId a = static_cast<NodeId>(rng.index(n));
      const NodeId b = static_cast<NodeId>(rng.index(n));
      if (a == b || g.has_link(a, b)) continue;
      g.add_link(a, b, Relationship::kSibling);
      ++added;
    }
  }
  return g;
}

TieredParams caida_like_params(std::size_t nodes) {
  TieredParams p;
  p.nodes = nodes;
  p.tier1_count = std::max<std::size_t>(4, nodes / 2200);
  p.avg_provider_links = 1.87;
  p.peer_fraction = 0.076;
  p.sibling_fraction = 0.0044;
  return p;
}

TieredParams hetop_like_params(std::size_t nodes) {
  TieredParams p;
  p.nodes = nodes;
  p.tier1_count = std::max<std::size_t>(4, nodes / 1800);
  p.avg_provider_links = 1.93;
  p.peer_fraction = 0.352;
  p.sibling_fraction = 0.0044;
  return p;
}

InferenceResult infer_relationships_by_degree(const AsGraph& plain,
                                              std::size_t tier1_count,
                                              util::Rng& rng) {
  const std::size_t n = plain.num_nodes();
  tier1_count = std::clamp<std::size_t>(tier1_count, 1, std::max<std::size_t>(n, 1));

  const std::vector<NodeId> order = nodes_by_degree(plain);
  InferenceResult out;
  out.tier.assign(n, 2);

  // Degree-quantile tiering: top `tier1_count` nodes are Tier-1, the next
  // 15% Tier-2, the rest Tier-3 (the paper: "nodes with largest degrees to
  // be Tier-1 provider, the nodes below them to be Tier-2 and so forth").
  const std::size_t tier2_cut =
      tier1_count + std::max<std::size_t>(1, (n - tier1_count) * 15 / 100);
  for (std::size_t i = 0; i < n; ++i) {
    out.tier[order[i]] = i < tier1_count ? 0 : (i < tier2_cut ? 1 : 2);
  }

  out.graph = AsGraph(n);
  auto customer_of = [&](NodeId a, NodeId b) {
    // True if a should be b's customer.
    if (out.tier[a] != out.tier[b]) return out.tier[a] > out.tier[b];
    if (plain.degree(a) != plain.degree(b)) {
      return plain.degree(a) < plain.degree(b);
    }
    return a > b;
  };
  for (LinkId id = 0; id < plain.num_links(); ++id) {
    const Link& l = plain.link(id);
    Relationship rel_ab;
    if (out.tier[l.a] == 0 && out.tier[l.b] == 0) {
      rel_ab = Relationship::kPeer;
    } else if (customer_of(l.a, l.b)) {
      rel_ab = Relationship::kProvider;  // b is a's provider
    } else {
      rel_ab = Relationship::kCustomer;
    }
    const LinkId nid = out.graph.add_link(l.a, l.b, rel_ab);
    out.graph.set_link_up(nid, l.up);
  }

  // Repair pass (keeps valley-free reachability; see header).
  std::vector<NodeId> tier1_nodes;
  for (std::size_t i = 0; i < tier1_count && i < n; ++i) {
    tier1_nodes.push_back(order[i]);
  }
  for (std::size_t i = 0; i < tier1_nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1_nodes.size(); ++j) {
      if (!out.graph.has_link(tier1_nodes[i], tier1_nodes[j])) {
        out.graph.add_link(tier1_nodes[i], tier1_nodes[j], Relationship::kPeer);
        ++out.added_links;
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (out.tier[v] == 0) continue;
    bool has_provider = false;
    for (const Neighbor& nb : out.graph.neighbors(v)) {
      if (nb.rel == Relationship::kProvider || nb.rel == Relationship::kSibling) {
        has_provider = true;
        break;
      }
    }
    if (!has_provider) {
      NodeId p = tier1_nodes[rng.index(tier1_nodes.size())];
      if (!out.graph.has_link(v, p)) {
        out.graph.add_link(v, p, Relationship::kProvider);
        ++out.added_links;
      } else {
        // Already linked to that Tier-1 node as something else is impossible
        // here (v would have had a provider); try any Tier-1 node.
        for (NodeId q : tier1_nodes) {
          if (!out.graph.has_link(v, q)) {
            out.graph.add_link(v, q, Relationship::kProvider);
            ++out.added_links;
            break;
          }
        }
      }
    }
  }
  return out;
}

AsGraph brite_like(std::size_t n, std::size_t m, std::size_t tier1_count,
                   util::Rng& rng) {
  const AsGraph plain = barabasi_albert(n, m, rng);
  return infer_relationships_by_degree(plain, tier1_count, rng).graph;
}

}  // namespace centaur::topo
