// AS-level topology: an undirected multigraph-free graph whose links are
// annotated with business relationships and an up/down state.
//
// This is the shared substrate for the static policy solver, the protocol
// simulators (BGP / OSPF / Centaur), and the experiment harnesses.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "topology/types.hpp"

namespace centaur::topo {

/// One endpoint's view of an incident link.
struct Neighbor {
  NodeId node;       ///< the other endpoint
  Relationship rel;  ///< role of `node` relative to the owner of this entry
  LinkId link;       ///< index into AsGraph::link()
};

/// An undirected relationship-annotated link.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  /// Role of `b` relative to `a` (so rel(b, a) == invert(rel_ab)).
  Relationship rel_ab = Relationship::kPeer;
  bool up = true;

  /// Given one endpoint, returns the other. Precondition: n is an endpoint.
  NodeId other(NodeId n) const { return n == a ? b : a; }
};

/// Relationship-annotated AS graph.
///
/// Nodes are dense ids [0, num_nodes()); at most one link per node pair;
/// self-loops are rejected.  Links carry an `up` flag so failure experiments
/// can flip state without rebuilding adjacency.
class AsGraph {
 public:
  AsGraph() = default;
  explicit AsGraph(std::size_t node_count) : adj_(node_count) {}

  NodeId add_node();

  /// Pre-sizes the link table (generators at 100k+ nodes add hundreds of
  /// thousands of links; reserving once avoids growth reallocations of the
  /// ~24-byte Link records mid-build).  Adjacency lists stay on-demand —
  /// they are small and per-node.
  void reserve_links(std::size_t links) { links_.reserve(links); }

  /// Adds link a<->b where `rel_of_b_to_a` is b's role relative to a.
  /// Throws std::invalid_argument on self-loops, unknown nodes, or
  /// duplicate links.
  LinkId add_link(NodeId a, NodeId b, Relationship rel_of_b_to_a);

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_links() const { return links_.size(); }

  /// All incident links of `n` (including ones currently down).
  std::span<const Neighbor> neighbors(NodeId n) const {
    return {adj_.at(n).data(), adj_.at(n).size()};
  }

  std::size_t degree(NodeId n) const { return adj_.at(n).size(); }

  const Link& link(LinkId id) const { return links_.at(id); }

  /// The link between a and b, if any.
  std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  bool has_link(NodeId a, NodeId b) const {
    return find_link(a, b).has_value();
  }

  /// Role of `b` relative to `a`.  Throws std::out_of_range if no link.
  Relationship rel(NodeId a, NodeId b) const;

  /// Role of `b` relative to `a`, or nullopt if the nodes are not adjacent
  /// (or out of range).  Lets policy code classify paths that contain
  /// fabricated hops (interception) without aborting the run.
  std::optional<Relationship> maybe_rel(NodeId a, NodeId b) const;

  /// Rewires an existing link's business relationship in place (provider
  /// switches, peering upgrades).  Updates both endpoints' adjacency views;
  /// the up/down state is untouched.
  void set_rel(LinkId id, Relationship rel_of_b_to_a);

  void set_link_up(LinkId id, bool up) { links_.at(id).up = up; }
  bool link_up(LinkId id) const { return links_.at(id).up; }

  /// Counts of undirected links by category.  A customer-provider link is
  /// counted once as "provider" (matching how CAIDA tables report them).
  struct LinkCounts {
    std::size_t peering = 0;
    std::size_t provider = 0;
    std::size_t sibling = 0;
  };
  LinkCounts count_links() const;

 private:
  std::vector<std::vector<Neighbor>> adj_;
  std::vector<Link> links_;
};

}  // namespace centaur::topo
