#include "topology/types.hpp"

namespace centaur::topo {

const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kProvider:
      return "provider";
    case Relationship::kPeer:
      return "peer";
    case Relationship::kSibling:
      return "sibling";
  }
  return "?";
}

std::string to_string(const Path& path) {
  std::string out = "<";
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(path[i]);
  }
  out += ">";
  return out;
}

}  // namespace centaur::topo
