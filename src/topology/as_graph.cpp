#include "topology/as_graph.hpp"

#include <stdexcept>

namespace centaur::topo {

NodeId AsGraph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

LinkId AsGraph::add_link(NodeId a, NodeId b, Relationship rel_of_b_to_a) {
  if (a == b) throw std::invalid_argument("AsGraph::add_link: self-loop");
  if (a >= adj_.size() || b >= adj_.size()) {
    throw std::invalid_argument("AsGraph::add_link: unknown node");
  }
  if (has_link(a, b)) {
    throw std::invalid_argument("AsGraph::add_link: duplicate link");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, rel_of_b_to_a, /*up=*/true});
  adj_[a].push_back(Neighbor{b, rel_of_b_to_a, id});
  adj_[b].push_back(Neighbor{a, invert(rel_of_b_to_a), id});
  return id;
}

std::optional<LinkId> AsGraph::find_link(NodeId a, NodeId b) const {
  if (a >= adj_.size() || b >= adj_.size()) return std::nullopt;
  // Scan the smaller adjacency list.
  const NodeId probe = adj_[a].size() <= adj_[b].size() ? a : b;
  const NodeId target = probe == a ? b : a;
  for (const Neighbor& nb : adj_[probe]) {
    if (nb.node == target) return nb.link;
  }
  return std::nullopt;
}

Relationship AsGraph::rel(NodeId a, NodeId b) const {
  for (const Neighbor& nb : adj_.at(a)) {
    if (nb.node == b) return nb.rel;
  }
  throw std::out_of_range("AsGraph::rel: no link between nodes");
}

std::optional<Relationship> AsGraph::maybe_rel(NodeId a, NodeId b) const {
  if (a >= adj_.size() || b >= adj_.size()) return std::nullopt;
  for (const Neighbor& nb : adj_[a]) {
    if (nb.node == b) return nb.rel;
  }
  return std::nullopt;
}

void AsGraph::set_rel(LinkId id, Relationship rel_of_b_to_a) {
  Link& lk = links_.at(id);
  lk.rel_ab = rel_of_b_to_a;
  for (Neighbor& nb : adj_[lk.a]) {
    if (nb.node == lk.b) nb.rel = rel_of_b_to_a;
  }
  for (Neighbor& nb : adj_[lk.b]) {
    if (nb.node == lk.a) nb.rel = invert(rel_of_b_to_a);
  }
}

AsGraph::LinkCounts AsGraph::count_links() const {
  LinkCounts c;
  for (const Link& l : links_) {
    switch (l.rel_ab) {
      case Relationship::kPeer:
        ++c.peering;
        break;
      case Relationship::kSibling:
        ++c.sibling;
        break;
      case Relationship::kCustomer:
      case Relationship::kProvider:
        ++c.provider;
        break;
    }
  }
  return c;
}

}  // namespace centaur::topo
