#include "topology/partition.hpp"

namespace centaur::topo {

Partition partition_contiguous(const AsGraph& g, std::size_t shards) {
  const std::size_t n = g.num_nodes();
  Partition out;
  out.total_links = g.num_links();
  out.num_shards = shards < 1 ? 1 : shards;
  if (out.num_shards > n) out.num_shards = n < 1 ? 1 : n;
  out.shard_of_node.assign(n, 0);
  if (out.num_shards <= 1) {
    out.ranges.emplace_back(0, static_cast<NodeId>(n));
    return out;
  }

  // Greedy quantile walk over the weight prefix sum: close shard k at the
  // first node whose cumulative weight reaches (k+1)/S of the total, but
  // never let fewer nodes remain than shards still to fill (every shard
  // must own at least one node).
  std::uint64_t total_weight = 0;
  for (NodeId v = 0; v < n; ++v) {
    total_weight += 1 + static_cast<std::uint64_t>(g.degree(v));
  }
  const std::size_t s_count = out.num_shards;
  std::uint64_t cum = 0;
  NodeId first = 0;
  std::uint32_t shard = 0;
  for (NodeId v = 0; v < n; ++v) {
    out.shard_of_node[v] = shard;
    cum += 1 + static_cast<std::uint64_t>(g.degree(v));
    const bool last_shard = shard + 1 == s_count;
    if (last_shard) continue;
    // Remaining shards each need one of the remaining nodes.
    const std::size_t nodes_left = n - (v + 1);
    const std::size_t shards_left = s_count - (shard + 1);
    const bool quota_met =
        cum * s_count >= total_weight * (static_cast<std::uint64_t>(shard) + 1);
    if (quota_met || nodes_left <= shards_left) {
      out.ranges.emplace_back(first, v + 1);
      first = v + 1;
      ++shard;
    }
  }
  out.ranges.emplace_back(first, static_cast<NodeId>(n));

  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (out.shard_of_node[link.a] != out.shard_of_node[link.b]) {
      out.boundary_links.push_back(l);
    }
  }
  return out;
}

}  // namespace centaur::topo
