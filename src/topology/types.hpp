// Fundamental identifiers and business-relationship types for AS topologies.
//
// Centaur (S1) models each AS as one node; links between nodes carry the
// standard "customer / provider / peering" (plus sibling) business
// relationships that the policy layer (Gao-Rexford rules) interprets.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace centaur::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

/// Role of a neighbor B *relative to* a node A.
///
/// rel(A, B) == kProvider means B is A's provider (A pays B for transit);
/// rel(A, B) == kCustomer means B is A's customer; kPeer is settlement-free
/// peering; kSibling links ASes under common administration (they exchange
/// all routes, like an internal link).
enum class Relationship : std::uint8_t {
  kCustomer = 0,
  kProvider = 1,
  kPeer = 2,
  kSibling = 3,
};

/// The same link seen from the other endpoint: customer <-> provider,
/// peer and sibling are symmetric.
constexpr Relationship invert(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return Relationship::kProvider;
    case Relationship::kProvider:
      return Relationship::kCustomer;
    case Relationship::kPeer:
    case Relationship::kSibling:
      break;
  }
  return r;
}

const char* to_string(Relationship r);

/// A loop-free node sequence source..destination (inclusive).
using Path = std::vector<NodeId>;

/// Renders "<A, B, C>" for diagnostics and test failure messages.
std::string to_string(const Path& path);

}  // namespace centaur::topo
