#include "topology/parser.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace centaur::topo {
namespace {

std::uint32_t parse_u32(std::string_view field, std::size_t line_no) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    throw std::runtime_error("as-rel parse error at line " +
                             std::to_string(line_no) + ": bad AS number '" +
                             std::string(field) + "'");
  }
  if (value == 0xFFFFFFFFu) {
    // RFC 7300 reserves the last AS number; it also doubles as the
    // as_to_node FlatMap's empty-slot sentinel.
    throw std::runtime_error("as-rel parse error at line " +
                             std::to_string(line_no) +
                             ": reserved AS number 4294967295");
  }
  return value;
}

NodeId intern(ParsedTopology& topo, std::uint32_t as) {
  bool inserted = false;
  NodeId& id = topo.as_to_node.ensure(as, inserted);
  if (inserted) {
    id = static_cast<NodeId>(topo.node_to_as.size());
    topo.node_to_as.push_back(as);
    topo.graph.add_node();
  }
  return id;
}

}  // namespace

ParsedTopology parse_as_rel(std::istream& in) {
  ParsedTopology topo;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      ++topo.skipped_lines;
      continue;
    }
    // Split on '|': exactly three fields expected.
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = p1 == std::string::npos ? std::string::npos
                                                   : line.find('|', p1 + 1);
    if (p1 == std::string::npos || p2 == std::string::npos ||
        line.find('|', p2 + 1) != std::string::npos) {
      throw std::runtime_error("as-rel parse error at line " +
                               std::to_string(line_no) +
                               ": expected 'a|b|rel'");
    }
    const std::string_view sv(line);
    const std::uint32_t as_a = parse_u32(sv.substr(0, p1), line_no);
    const std::uint32_t as_b = parse_u32(sv.substr(p1 + 1, p2 - p1 - 1), line_no);
    const std::string_view rel_field = sv.substr(p2 + 1);

    Relationship rel_of_b_to_a;
    if (rel_field == "-1") {
      // a is a provider of b: b is a's customer.
      rel_of_b_to_a = Relationship::kCustomer;
    } else if (rel_field == "0") {
      rel_of_b_to_a = Relationship::kPeer;
    } else if (rel_field == "2") {
      rel_of_b_to_a = Relationship::kSibling;
    } else {
      throw std::runtime_error("as-rel parse error at line " +
                               std::to_string(line_no) +
                               ": unknown relationship '" +
                               std::string(rel_field) + "'");
    }

    if (as_a == as_b) {
      ++topo.skipped_lines;
      continue;
    }
    const NodeId a = intern(topo, as_a);
    const NodeId b = intern(topo, as_b);
    if (topo.graph.has_link(a, b)) {
      ++topo.skipped_lines;
      continue;
    }
    topo.graph.add_link(a, b, rel_of_b_to_a);
  }
  return topo;
}

ParsedTopology parse_as_rel_text(const std::string& text) {
  std::istringstream in(text);
  return parse_as_rel(in);
}

ParsedTopology load_as_rel_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open as-rel file: " + path);
  }
  return parse_as_rel(in);
}

void write_as_rel(std::ostream& out, const AsGraph& graph,
                  const std::vector<std::uint32_t>& node_to_as) {
  auto as_of = [&](NodeId n) -> std::uint32_t {
    return node_to_as.empty() ? n : node_to_as.at(n);
  };
  out << "# centaur as-rel export: " << graph.num_nodes() << " nodes, "
      << graph.num_links() << " links\n";
  for (LinkId id = 0; id < graph.num_links(); ++id) {
    const Link& l = graph.link(id);
    switch (l.rel_ab) {
      case Relationship::kCustomer:
        // b is a's customer => a provides for b.
        out << as_of(l.a) << '|' << as_of(l.b) << "|-1\n";
        break;
      case Relationship::kProvider:
        out << as_of(l.b) << '|' << as_of(l.a) << "|-1\n";
        break;
      case Relationship::kPeer:
        out << as_of(l.a) << '|' << as_of(l.b) << "|0\n";
        break;
      case Relationship::kSibling:
        out << as_of(l.a) << '|' << as_of(l.b) << "|2\n";
        break;
    }
  }
}

std::string write_as_rel_text(const AsGraph& graph,
                              const std::vector<std::uint32_t>& node_to_as) {
  std::ostringstream out;
  write_as_rel(out, graph, node_to_as);
  return out.str();
}

}  // namespace centaur::topo
