// Topology characterisation (Table 3 of the paper).
#pragma once

#include <iosfwd>
#include <string>

#include "topology/as_graph.hpp"

namespace centaur::topo {

/// Summary row matching the paper's Table 3 plus degree diagnostics.
struct TopologyStats {
  std::string name;
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t peering = 0;
  std::size_t provider = 0;  ///< customer-provider links, counted once
  std::size_t sibling = 0;
  double avg_degree = 0;
  std::size_t max_degree = 0;
  bool connected = false;
};

TopologyStats compute_stats(const AsGraph& g, std::string name);

std::ostream& operator<<(std::ostream& os, const TopologyStats& s);

}  // namespace centaur::topo
