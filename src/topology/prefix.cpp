#include "topology/prefix.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <stdexcept>

namespace centaur::topo {

Ipv4Prefix Ipv4Prefix::of(std::uint32_t addr, std::uint8_t len) {
  if (len > 32) throw std::invalid_argument("Ipv4Prefix: len > 32");
  Ipv4Prefix p;
  p.len = len;
  p.addr = len == 0 ? 0 : (addr & (~std::uint32_t{0} << (32 - len)));
  return p;
}

Ipv4Prefix Ipv4Prefix::parse(const std::string& text) {
  std::uint32_t addr = 0;
  const char* cur = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(cur, end, value);
    if (ec != std::errc() || value > 255) {
      throw std::invalid_argument("Ipv4Prefix::parse: bad octet in " + text);
    }
    addr = (addr << 8) | value;
    cur = ptr;
    const char expect = octet < 3 ? '.' : '/';
    if (cur == end || *cur != expect) {
      throw std::invalid_argument("Ipv4Prefix::parse: malformed " + text);
    }
    ++cur;
  }
  unsigned len = 0;
  const auto [ptr, ec] = std::from_chars(cur, end, len);
  if (ec != std::errc() || ptr != end || len > 32) {
    throw std::invalid_argument("Ipv4Prefix::parse: bad length in " + text);
  }
  return of(addr, static_cast<std::uint8_t>(len));
}

std::string Ipv4Prefix::to_string() const {
  return std::to_string((addr >> 24) & 0xff) + "." +
         std::to_string((addr >> 16) & 0xff) + "." +
         std::to_string((addr >> 8) & 0xff) + "." +
         std::to_string(addr & 0xff) + "/" + std::to_string(len);
}

std::pair<Ipv4Prefix, Ipv4Prefix> Ipv4Prefix::split() const {
  if (len >= 32) throw std::invalid_argument("Ipv4Prefix::split: /32");
  const auto child_len = static_cast<std::uint8_t>(len + 1);
  const std::uint32_t bit = std::uint32_t{1} << (32 - child_len);
  return {of(addr, child_len), of(addr | bit, child_len)};
}

Ipv4Prefix Ipv4Prefix::parent() const {
  if (len == 0) throw std::invalid_argument("Ipv4Prefix::parent: /0");
  return of(addr, static_cast<std::uint8_t>(len - 1));
}

bool Ipv4Prefix::buddies(const Ipv4Prefix& a, const Ipv4Prefix& b) {
  return a.len == b.len && a.len > 0 && a != b && a.parent() == b.parent();
}

// ----------------------------------------------------------- PrefixTable --

struct PrefixTable::Node {
  Node* child[2] = {nullptr, nullptr};
  std::optional<NodeId> origin;

  ~Node() {
    delete child[0];
    delete child[1];
  }
};

PrefixTable::PrefixTable() : root_(new Node) {}
PrefixTable::~PrefixTable() { delete root_; }

PrefixTable::PrefixTable(PrefixTable&& other) noexcept
    : root_(other.root_), size_(other.size_) {
  other.root_ = new Node;
  other.size_ = 0;
}

PrefixTable& PrefixTable::operator=(PrefixTable&& other) noexcept {
  if (this != &other) {
    delete root_;
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = new Node;
    other.size_ = 0;
  }
  return *this;
}

namespace {

int bit_at(std::uint32_t addr, int depth) {
  return (addr >> (31 - depth)) & 1;
}

}  // namespace

bool PrefixTable::insert(const Ipv4Prefix& prefix, NodeId origin) {
  Node* cur = root_;
  for (int depth = 0; depth < prefix.len; ++depth) {
    Node*& next = cur->child[bit_at(prefix.addr, depth)];
    if (next == nullptr) next = new Node;
    cur = next;
  }
  const bool inserted = !cur->origin.has_value();
  cur->origin = origin;
  if (inserted) ++size_;
  return inserted;
}

bool PrefixTable::erase(const Ipv4Prefix& prefix) {
  Node* cur = root_;
  for (int depth = 0; depth < prefix.len && cur != nullptr; ++depth) {
    cur = cur->child[bit_at(prefix.addr, depth)];
  }
  if (cur == nullptr || !cur->origin.has_value()) return false;
  cur->origin.reset();
  --size_;
  return true;  // nodes are kept; tables are small and rebuilt rarely
}

std::optional<PrefixRoute> PrefixTable::lookup(std::uint32_t ip) const {
  const Node* cur = root_;
  std::optional<PrefixRoute> best;
  for (int depth = 0; cur != nullptr; ++depth) {
    if (cur->origin) {
      best = PrefixRoute{
          Ipv4Prefix::of(ip, static_cast<std::uint8_t>(depth)), *cur->origin};
    }
    if (depth == 32) break;
    cur = cur->child[bit_at(ip, depth)];
  }
  return best;
}

std::optional<NodeId> PrefixTable::find(const Ipv4Prefix& prefix) const {
  const Node* cur = root_;
  for (int depth = 0; depth < prefix.len && cur != nullptr; ++depth) {
    cur = cur->child[bit_at(prefix.addr, depth)];
  }
  if (cur == nullptr) return std::nullopt;
  return cur->origin;
}

std::vector<PrefixRoute> PrefixTable::routes() const {
  std::vector<PrefixRoute> out;
  // Depth-first walk tracking the path bits.
  struct Frame {
    const Node* node;
    std::uint32_t addr;
    std::uint8_t len;
  };
  std::vector<Frame> stack{{root_, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node->origin) {
      out.push_back(PrefixRoute{Ipv4Prefix::of(f.addr, f.len), *f.node->origin});
    }
    if (f.len < 32) {
      const std::uint32_t bit = std::uint32_t{1} << (31 - f.len);
      if (f.node->child[1]) {
        stack.push_back(
            {f.node->child[1], f.addr | bit, static_cast<std::uint8_t>(f.len + 1)});
      }
      if (f.node->child[0]) {
        stack.push_back(
            {f.node->child[0], f.addr, static_cast<std::uint8_t>(f.len + 1)});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ----------------------------------------------------------- aggregation --

std::vector<PrefixRoute> aggregate(std::vector<PrefixRoute> routes) {
  // Iterate to a fixed point: each pass merges buddy pairs with a common
  // origin into their parent and drops duplicates.
  std::sort(routes.begin(), routes.end());
  routes.erase(std::unique(routes.begin(), routes.end()), routes.end());
  bool merged = true;
  while (merged) {
    merged = false;
    // Group by (len, parent) via a map pass; small inputs, clarity first.
    std::map<std::pair<Ipv4Prefix, NodeId>, int> halves;
    for (const PrefixRoute& r : routes) {
      if (r.prefix.len == 0) continue;
      halves[{r.prefix.parent(), r.origin}] += 1;
    }
    std::vector<PrefixRoute> next;
    std::vector<PrefixRoute> parents;
    for (const PrefixRoute& r : routes) {
      if (r.prefix.len > 0 &&
          halves[{r.prefix.parent(), r.origin}] == 2) {
        parents.push_back(PrefixRoute{r.prefix.parent(), r.origin});
      } else {
        next.push_back(r);
      }
    }
    if (!parents.empty()) {
      merged = true;
      std::sort(parents.begin(), parents.end());
      parents.erase(std::unique(parents.begin(), parents.end()),
                    parents.end());
      next.insert(next.end(), parents.begin(), parents.end());
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
    }
    routes = std::move(next);
  }
  return routes;
}

std::vector<PrefixRoute> deaggregate(const PrefixRoute& route,
                                     std::uint8_t target_len) {
  if (target_len < route.prefix.len) {
    throw std::invalid_argument("deaggregate: target shorter than prefix");
  }
  const unsigned extra = target_len - route.prefix.len;
  if (extra > 20) {
    throw std::invalid_argument("deaggregate: expansion too large");
  }
  std::vector<PrefixRoute> out;
  out.reserve(std::size_t{1} << extra);
  const std::uint32_t count = std::uint32_t{1} << extra;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t addr =
        route.prefix.addr | (extra == 0 ? 0 : i << (32 - target_len));
    out.push_back(PrefixRoute{Ipv4Prefix::of(addr, target_len), route.origin});
  }
  return out;
}

}  // namespace centaur::topo
