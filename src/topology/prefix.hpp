// IPv4 prefixes, longest-prefix matching, and (de)aggregation.
//
// The paper's S6.4: Centaur disseminates routing updates for destinations
// at whatever prefix granularity the owner chooses — a node can announce
// one aggregate for its whole domain or split it into finer prefixes
// (logically splitting itself into several "nodes"), achieving update
// isolation exactly as BGP does.  This module supplies the machinery:
// prefix arithmetic, a binary-trie forwarding table with longest-prefix
// match, and aggregation/de-aggregation transforms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topology/types.hpp"

namespace centaur::topo {

/// An IPv4 prefix (address/length), canonicalised: host bits are zero.
struct Ipv4Prefix {
  std::uint32_t addr = 0;  ///< network byte order as a host integer
  std::uint8_t len = 0;    ///< 0..32

  /// Canonicalising constructor helper: masks host bits.
  static Ipv4Prefix of(std::uint32_t addr, std::uint8_t len);

  /// Parses dotted-quad "a.b.c.d/len".  Throws std::invalid_argument on
  /// malformed input (bad octets, len > 32, junk).
  static Ipv4Prefix parse(const std::string& text);

  std::string to_string() const;

  std::uint32_t mask() const {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }

  bool contains(std::uint32_t ip) const {
    return (ip & mask()) == addr;
  }
  /// True if `other` is equal to or more specific than this prefix.
  bool contains(const Ipv4Prefix& other) const {
    return other.len >= len && contains(other.addr);
  }

  /// The two /(len+1) halves.  Precondition: len < 32.
  std::pair<Ipv4Prefix, Ipv4Prefix> split() const;

  /// The enclosing /(len-1).  Precondition: len > 0.
  Ipv4Prefix parent() const;

  /// True if `a` and `b` are the two halves of the same parent.
  static bool buddies(const Ipv4Prefix& a, const Ipv4Prefix& b);

  auto operator<=>(const Ipv4Prefix&) const = default;
};

/// A prefix announced by an AS (who owns/originates it).
struct PrefixRoute {
  Ipv4Prefix prefix;
  NodeId origin = kInvalidNode;

  auto operator<=>(const PrefixRoute&) const = default;
};

/// Binary-trie forwarding table: longest-prefix match over announced
/// prefixes.  Insertion replaces any previous origin for the same prefix.
class PrefixTable {
 public:
  PrefixTable();
  ~PrefixTable();
  PrefixTable(PrefixTable&&) noexcept;
  PrefixTable& operator=(PrefixTable&&) noexcept;
  PrefixTable(const PrefixTable&) = delete;
  PrefixTable& operator=(const PrefixTable&) = delete;

  /// Returns true if the prefix was new (false: origin replaced).
  bool insert(const Ipv4Prefix& prefix, NodeId origin);

  /// Removes the exact prefix.  Returns true if it was present.
  bool erase(const Ipv4Prefix& prefix);

  /// Longest-prefix match for `ip`.
  std::optional<PrefixRoute> lookup(std::uint32_t ip) const;

  /// Exact-match origin for `prefix`, if announced.
  std::optional<NodeId> find(const Ipv4Prefix& prefix) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// All announced routes in ascending prefix order.
  std::vector<PrefixRoute> routes() const;

 private:
  struct Node;
  Node* root_;
  std::size_t size_ = 0;
};

/// Merges same-origin buddy prefixes bottom-up until a fixed point: the
/// minimal route set covering exactly the same address space with the same
/// origins (classic CIDR aggregation).  Input order is irrelevant;
/// duplicates collapse.  Overlapping prefixes with different origins are
/// kept as-is (longest-prefix match preserves semantics).
std::vector<PrefixRoute> aggregate(std::vector<PrefixRoute> routes);

/// Splits `route` into all /(target_len) sub-prefixes (same origin).
/// Throws std::invalid_argument if target_len < route.prefix.len or the
/// expansion exceeds 2^20 prefixes.
std::vector<PrefixRoute> deaggregate(const PrefixRoute& route,
                                     std::uint8_t target_len);

}  // namespace centaur::topo
