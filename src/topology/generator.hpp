// Synthetic AS-topology generation.
//
// The paper uses (i) measured CAIDA / HeTop snapshots and (ii) BRITE-generated
// topologies with degree-based relationship inference (S5.3).  Neither the
// snapshots nor BRITE are redistributable here, so this module provides:
//
//  * barabasi_albert / waxman — BRITE's two generation modes, producing
//    plain (relationship-free) graphs;
//  * tiered_internet — a direct generator of relationship-annotated,
//    Internet-like topologies whose link-category mix is parameterised to
//    match the Table 3 shape of CAIDA (sparse peering) and HeTop (rich
//    peering);
//  * caida_like / hetop_like presets.
//
// All generators are deterministic given the Rng and produce connected
// graphs (see each function's contract).
#pragma once

#include <cstddef>

#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace centaur::topo {

/// Barabasi-Albert preferential attachment (BRITE's BA mode).
///
/// Starts from an (m+1)-clique; each subsequent node attaches to m distinct
/// existing nodes chosen proportionally to degree.  Links carry kPeer as a
/// placeholder relationship — run relationship inference afterwards.
/// Result is connected.  Requires n >= m + 1 and m >= 1.
AsGraph barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng);

/// Waxman random geometric graph (BRITE's Waxman mode): nodes uniform in the
/// unit square, link probability alpha * exp(-dist / (beta * sqrt(2))).
/// Relationships are kPeer placeholders.  The returned graph is the largest
/// connected component, so the node count can be slightly below n.
AsGraph waxman(std::size_t n, double alpha, double beta, util::Rng& rng);

/// Parameters for the tiered Internet-like generator.
struct TieredParams {
  std::size_t nodes = 1000;
  std::size_t tier1_count = 10;      ///< fully peer-meshed core
  double avg_provider_links = 1.9;   ///< mean provider links per non-core node
  double peer_fraction = 0.08;       ///< target fraction of peering links
  double sibling_fraction = 0.004;   ///< target fraction of sibling links
};

/// Generates a connected, relationship-annotated AS topology: a tier-1 peer
/// mesh, a variable-depth provider hierarchy (each node multi-homes into
/// degree-biased earlier nodes, so transit roles emerge organically), and
/// cross-level peering plus a sprinkle of sibling links.  Every node has a
/// provider chain into tier 1, so every node pair is valley-free reachable,
/// and the provider digraph is acyclic, so Gao-Rexford routing is stable.
AsGraph tiered_internet(const TieredParams& params, util::Rng& rng);

/// Preset matching the CAIDA Sep'07 shape (Table 3): ~92% provider links,
/// ~7.6% peering, ~0.4% sibling, average degree ~4.
TieredParams caida_like_params(std::size_t nodes);

/// Preset matching the HeTop May'05 shape (Table 3): ~64% provider links,
/// ~35% peering (HeTop finds far more peering), average degree ~6.
TieredParams hetop_like_params(std::size_t nodes);

/// Degree-based relationship inference, as the paper applies to BRITE
/// topologies (S5.3): the largest-degree nodes become Tier-1 providers, the
/// nodes below them Tier-2, and so forth.  Tier-1 pairs peer; across tiers
/// the lower-tier node is the customer; within a non-core tier the
/// lower-degree endpoint is the customer (ties by id).
///
/// To guarantee valley-free reachability the pass then (a) peers the Tier-1
/// nodes pairwise (adding links where absent) and (b) gives any provider-less
/// non-core node a provider link to a random Tier-1 node.  `added_links`
/// reports how many links this repair added (0 for typical BA graphs).
struct InferenceResult {
  AsGraph graph;
  std::vector<std::size_t> tier;  ///< 0-based tier per node (0 = Tier-1)
  std::size_t added_links = 0;
};
InferenceResult infer_relationships_by_degree(const AsGraph& plain,
                                              std::size_t tier1_count,
                                              util::Rng& rng);

/// One-call BRITE-equivalent pipeline: barabasi_albert + degree inference.
/// This is the topology used by the prototype experiments (Figs 6-8).
AsGraph brite_like(std::size_t n, std::size_t m, std::size_t tier1_count,
                   util::Rng& rng);

}  // namespace centaur::topo
