#include "topology/stats.hpp"

#include <algorithm>
#include <ostream>

#include "topology/algorithms.hpp"

namespace centaur::topo {

TopologyStats compute_stats(const AsGraph& g, std::string name) {
  TopologyStats s;
  s.name = std::move(name);
  s.nodes = g.num_nodes();
  s.links = g.num_links();
  const auto counts = g.count_links();
  s.peering = counts.peering;
  s.provider = counts.provider;
  s.sibling = counts.sibling;
  s.avg_degree = s.nodes == 0 ? 0
                              : 2.0 * static_cast<double>(s.links) /
                                    static_cast<double>(s.nodes);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    s.max_degree = std::max(s.max_degree, g.degree(v));
  }
  s.connected = is_connected(g);
  return s;
}

std::ostream& operator<<(std::ostream& os, const TopologyStats& s) {
  os << s.name << ": " << s.nodes << " nodes / " << s.links << " links"
     << " (peering " << s.peering << ", provider " << s.provider
     << ", sibling " << s.sibling << "), avg degree " << s.avg_degree
     << ", max degree " << s.max_degree
     << (s.connected ? ", connected" : ", NOT connected");
  return os;
}

}  // namespace centaur::topo
