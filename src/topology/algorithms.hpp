// Relationship-agnostic graph algorithms used across the library:
// connectivity, BFS distances, degree statistics, and path validation.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/as_graph.hpp"

namespace centaur::topo {

/// Component label per node (labels are dense, 0-based) plus component count.
struct Components {
  std::vector<std::size_t> label;
  std::size_t count = 0;
};

/// Connected components over links that are currently up.
Components connected_components(const AsGraph& g);

bool is_connected(const AsGraph& g);

/// BFS hop distances from `src` over up links; kUnreachable for unreached.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
std::vector<std::size_t> bfs_distances(const AsGraph& g, NodeId src);

/// Degrees of all nodes (counting down links too — structural degree).
std::vector<std::size_t> degrees(const AsGraph& g);

/// Node ids sorted by decreasing degree (stable: ties by ascending id).
std::vector<NodeId> nodes_by_degree(const AsGraph& g);

/// True if `path` is non-empty, loop-free, and every consecutive pair is
/// connected by an up link in `g`.
bool is_valid_path(const AsGraph& g, const Path& path);

/// Extracts the largest connected component as a standalone graph.
/// `old_to_new[v]` maps an original node to its id in the result
/// (kInvalidNode if v was dropped).
struct Subgraph {
  AsGraph graph;
  std::vector<NodeId> old_to_new;
  std::vector<NodeId> new_to_old;
};
Subgraph largest_component(const AsGraph& g);

}  // namespace centaur::topo
