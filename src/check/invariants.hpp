// Protocol invariant checker (analysis layer).
//
// Centaur's correctness rests on structural invariants the paper states but
// the protocol code never re-verifies: per-link counters equal the number of
// selected paths traversing the link (S4.3.2), Permission Lists are active
// exactly on links whose head is multi-homed (S4.1/S4.3.2), every selected
// and derived path is loop-free so DerivePath (Table 1) terminates, and the
// selected table stays consistent with the per-neighbor derived caches.
// This module checks those properties on demand — over a bare PGraph or over a
// full CentaurNode (local P-graph, per-neighbor RIB graphs, derived-path
// caches) — and reports every breach as a typed Violation.
//
// The checkers are pure observers: they never mutate the graphs they
// inspect and are safe to run at any event boundary.  analyzer.hpp wires
// them into the simulator's "analysis mode".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "centaur/pgraph.hpp"

namespace centaur::check {

using core::PGraph;
using topo::NodeId;
using topo::Path;

/// Identifies which invariant a Violation breaches.
enum class Invariant {
  kRootValid,        ///< non-empty graph must have a valid root
  kRootNoParents,    ///< no link may point at the P-graph root
  kAdjacency,        ///< links() and parent/child maps must agree exactly
  kAdjacencySorted,  ///< adjacency vectors sorted ascending, duplicate-free
  kAcyclic,          ///< P-graph must be a DAG (DerivePath termination)
  kRootReachable,    ///< every node must reach the root via parent links
  kPlistActivation,  ///< plist only on links whose head is multi-homed
  kCounter,          ///< link counters == selected paths traversing the link
  kDestinationMark,  ///< destination marks == selected path endpoints
  kLoopFree,         ///< selected/derived paths must not revisit a node
  kLocalRebuild,     ///< local P-graph == BuildGraph(selected path set)
  kNeighborRoot,     ///< RIB P-graph for neighbor B must be rooted at B
  kDerivedCache,     ///< cached derived paths == fresh DerivePath results
  kSelection,        ///< selected paths extend the first hop's derived path
  // Route-audit classes (DESIGN.md §15): breaches of the *policy* contract
  // against the ground-truth AS graph, reported by the analyzer's route
  // audit rather than the structural node checks above.
  kLeakedRoute,       ///< selected path violates valley-freeness
  kInterceptedRoute,  ///< selected path crosses a fabricated adjacency
};

const char* to_string(Invariant inv);

/// One invariant breach, with a human-readable detail naming the offending
/// nodes/links.
struct Violation {
  Invariant invariant;
  std::string detail;
};

/// Tuning for check_pgraph.  The defaults fit a *local* P-graph built by
/// BuildGraph from a selected path set.  Per-neighbor graphs assembled from
/// announcements are weaker in three documented ways (see
/// neighbor_graph_options below), so they use a relaxed preset.
struct PGraphCheckOptions {
  /// Require the graph to be a DAG.  On by default for bare graphs, but
  /// check_centaur_node disables it for protocol P-graphs: a union of
  /// per-destination policy paths may legitimately order two nodes both
  /// ways (destination X routed ...A,B... while destination Y routes
  /// ...B,A...), even at convergence — the equivalence tests show such
  /// states matching the static valley-free solver exactly.  The paper's
  /// acyclicity holds *per destination*: each selected/derived path is
  /// loop-free (kLoopFree) and DerivePath's visited guard bounds every
  /// backtracking walk (kDerivedCache reports walks that trip it).
  bool require_acyclic = true;
  /// Require every node to reach the root via parent links.  Always true
  /// for local graphs (unions of root-anchored paths).  False for received
  /// graphs: loop elimination (announce.hpp apply_delta Step 2) drops links
  /// pointing at the importer, which may orphan a downstream fragment.
  bool require_root_reachable = true;
  /// Require counter >= 1 on every stored link (S4.3.2: a link is withdrawn
  /// exactly when its counter drops to zero).  False for received graphs —
  /// counters are local bookkeeping and never cross the wire.
  bool require_positive_counters = true;
  /// Forbid a non-empty Permission List on a link whose head is
  /// single-homed — the wire-form rule (S4.1: lists exist only at
  /// multi-homed nodes).  False by default: BuildGraph deliberately keeps
  /// inactive entries on every local link, and import filtering can reduce
  /// a head's in-degree after its list was (correctly) announced.
  bool plists_imply_multihomed = false;
  /// Require every marked destination to appear in the graph.  True for
  /// local graphs (each mark comes from a selected path ending there);
  /// false for received graphs (import filters can drop a destination's
  /// links but not its mark).
  bool destinations_in_graph = true;
};

/// Preset for P-graphs assembled from a neighbor's announcements.
inline PGraphCheckOptions neighbor_graph_options() {
  PGraphCheckOptions o;
  o.require_root_reachable = false;
  o.require_positive_counters = false;
  o.plists_imply_multihomed = false;
  o.destinations_in_graph = false;
  return o;
}

/// Preset for the strict wire form (exported views, corrupted-graph tests):
/// local defaults plus the plist-activation rule.
inline PGraphCheckOptions wire_form_options() {
  PGraphCheckOptions o;
  o.plists_imply_multihomed = true;
  return o;
}

/// Checks one P-graph's structural invariants: links_ <-> parents_/children_
/// consistency, sorted duplicate-free adjacency vectors, acyclicity
/// (iterative DFS), root reachability, plist activation, and positive
/// counters (the last four per `options`).  Returns every breach found.
std::vector<Violation> check_pgraph(const PGraph& g,
                                    const PGraphCheckOptions& options = {});

/// Checks that `g`'s per-link counters equal the number of paths in
/// `selected` traversing each link (S4.3.2), that no stored link is unused
/// by every selected path, that destination marks match the selected path
/// endpoints exactly, and that every selected path is loop-free.
/// `selected` is any (destination, path) pair container with count();
/// instantiated in invariants.cpp for std::map and util::VecMap (the node's
/// own selected-path storage).
template <typename SelectedPaths>
std::vector<Violation> check_counters_against(const PGraph& g,
                                              const SelectedPaths& selected);

/// Full node-level check, valid at every event boundary: the local P-graph
/// (structure, counters, marks, loop-free paths) against the selected path
/// set, a BuildGraph-rebuild equivalence check, selection consistency
/// (every selected path extends its first-hop neighbor's derived path), and
/// for every RIB neighbor B: the graph is rooted at B, passes the relaxed
/// structural checks, and its derived-path cache matches fresh DerivePath
/// results for every marked destination.
std::vector<Violation> check_centaur_node(const core::CentaurNode& node);

}  // namespace centaur::check
