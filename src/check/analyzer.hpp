// Analysis mode: invariant checking wired into the event-driven simulator.
//
// An Analyzer attaches to a sim::Network and re-validates protocol
// invariants while a simulation runs: after every delivered message or
// link-change notification it checks the touched node (opt-out), and
// check_all() sweeps every node — callers invoke it at quiescence points
// (post-convergence).  Non-Centaur nodes are skipped, so the analyzer is
// harmless on BGP/OSPF runs.
//
// Violations are recorded with their event context (simulated time, node)
// into an AnalysisReport.  Debug builds (CENTAUR_CHECK) run the tier-1
// protocol tests and examples with an analyzer attached and assert a clean
// report via expect_clean(); `centaur simulate --check 1` collects and
// prints the report instead.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "check/invariants.hpp"
#include "sim/network.hpp"

namespace centaur::check {

struct AnalysisOptions {
  /// Check the touched node after every message delivery / link change.
  /// Disable for large runs where only quiescence sweeps are affordable.
  bool check_on_events = true;
  /// Recording cap: past this many entries, violations are still counted
  /// (violations_seen) but their details are dropped.
  std::size_t max_entries = 64;
};

/// One recorded violation with its event context.
struct AnalysisEntry {
  sim::Time at = 0;
  topo::NodeId node = topo::kInvalidNode;
  Violation violation;
};

/// Route-audit configuration (DESIGN.md §15): when enabled, every node
/// check also audits the node's selected routes (via policy::RouteView)
/// against the ground-truth AS graph, flagging valley violations
/// (kLeakedRoute) and fabricated/mis-terminated paths (kInterceptedRoute).
/// Known adversary nodes are excluded from all checks — their local state
/// is deliberately inconsistent; the audit measures the *spread* of their
/// misbehavior through honest nodes.
struct RouteAuditConfig {
  bool enabled = false;
  std::vector<topo::NodeId> adversaries;  ///< sorted ascending
};

/// Route-audit results for the current audit window.  Everything here is a
/// pure function of the deterministic event stream: `events_observed`
/// counts analyzer node-checks (one per hook replay / sweep entry), which
/// are replayed in event order under intra-trial parallelism — unlike the
/// simulator's raw event counter, which advances batch-at-once.
struct RouteAuditReport {
  std::size_t routes_checked = 0;
  std::size_t leaked = 0;       ///< valley-violating selected routes seen
  std::size_t intercepted = 0;  ///< fabricated/mis-terminated routes seen
  std::size_t events_observed = 0;  ///< node-checks run this window
  bool detected = false;
  std::size_t first_events = 0;  ///< events_observed at the first flag
  sim::Time first_time = 0;      ///< virtual time at the first flag
  std::vector<topo::NodeId> flagged;  ///< distinct flagged nodes, ascending
  /// Detail entries (capped like AnalysisReport): kept separate from the
  /// structural report so CENTAUR_CHECK=assert stays clean on adversarial
  /// runs — the audit flags *are* the measurement, not a test failure.
  std::vector<AnalysisEntry> entries;
};

struct AnalysisReport {
  std::vector<AnalysisEntry> entries;
  std::size_t checks_run = 0;       ///< node-level checks executed
  std::size_t violations_seen = 0;  ///< >= entries.size() once truncated
  bool clean() const { return violations_seen == 0; }
  void print(std::ostream& os) const;
};

class Analyzer {
 public:
  explicit Analyzer(sim::Network& net, AnalysisOptions options = {});
  ~Analyzer();  // detaches the event hook
  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Checks one node now; returns the number of violations found.  The
  /// checked contract is valid at every event boundary, not just at
  /// quiescence (see check_centaur_node).
  std::size_t check_node(topo::NodeId id);

  /// Checks every node; callers invoke it at convergence points.  Returns
  /// violations found.
  std::size_t check_all();

  const AnalysisReport& report() const { return report_; }

  /// Enables (or reconfigures) the route audit.  `adversaries` need not be
  /// sorted; it is normalized here.
  void set_route_audit(RouteAuditConfig config);
  /// Resets the audit counters/flags for a new measurement window (the
  /// campaign engine calls this per phase).
  void begin_audit_window();
  const RouteAuditReport& audit_report() const { return audit_report_; }

  /// Throws std::logic_error carrying the printed report if any violation
  /// has been recorded — the CENTAUR_CHECK assert mode.
  void expect_clean() const;

 private:
  /// Audits `node`'s selected routes against the AS graph; records flags
  /// into audit_report_ (never into the structural report).
  void audit_routes(topo::NodeId id);

  sim::Network& net_;
  AnalysisOptions options_;
  AnalysisReport report_;
  RouteAuditConfig audit_;
  RouteAuditReport audit_report_;
};

}  // namespace centaur::check
