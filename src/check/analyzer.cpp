#include "check/analyzer.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "centaur/centaur_node.hpp"

namespace centaur::check {

void AnalysisReport::print(std::ostream& os) const {
  os << "invariant analysis: " << checks_run << " node check(s), "
     << violations_seen << " violation(s)\n";
  for (const AnalysisEntry& e : entries) {
    os << "  t=" << e.at << " node=" << e.node << " ["
       << to_string(e.violation.invariant) << "] " << e.violation.detail
       << "\n";
  }
  if (violations_seen > entries.size()) {
    os << "  ... " << (violations_seen - entries.size())
       << " further violation(s) not recorded\n";
  }
}

Analyzer::Analyzer(sim::Network& net, AnalysisOptions options)
    : net_(net), options_(options) {
  if (options_.check_on_events) {
    net_.set_event_hook([this](topo::NodeId id) { check_node(id); });
  }
}

Analyzer::~Analyzer() { net_.set_event_hook(nullptr); }

std::size_t Analyzer::check_node(topo::NodeId id) {
  const auto* node = dynamic_cast<const core::CentaurNode*>(&net_.node(id));
  if (node == nullptr) return 0;  // analysis covers Centaur nodes only
  ++report_.checks_run;
  std::vector<Violation> violations = check_centaur_node(*node);
  report_.violations_seen += violations.size();
  for (Violation& v : violations) {
    if (report_.entries.size() >= options_.max_entries) break;
    report_.entries.push_back(
        AnalysisEntry{net_.simulator().now(), id, std::move(v)});
  }
  return violations.size();
}

std::size_t Analyzer::check_all() {
  std::size_t found = 0;
  for (topo::NodeId id = 0; id < net_.graph().num_nodes(); ++id) {
    found += check_node(id);
  }
  return found;
}

void Analyzer::expect_clean() const {
  if (report_.clean()) return;
  std::ostringstream os;
  report_.print(os);
  throw std::logic_error(os.str());
}

}  // namespace centaur::check
