#include "check/analyzer.hpp"

#include <algorithm>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "centaur/centaur_node.hpp"
#include "policy/route_view.hpp"
#include "policy/valley_free.hpp"

namespace centaur::check {

void AnalysisReport::print(std::ostream& os) const {
  os << "invariant analysis: " << checks_run << " node check(s), "
     << violations_seen << " violation(s)\n";
  for (const AnalysisEntry& e : entries) {
    os << "  t=" << e.at << " node=" << e.node << " ["
       << to_string(e.violation.invariant) << "] " << e.violation.detail
       << "\n";
  }
  if (violations_seen > entries.size()) {
    os << "  ... " << (violations_seen - entries.size())
       << " further violation(s) not recorded\n";
  }
}

Analyzer::Analyzer(sim::Network& net, AnalysisOptions options)
    : net_(net), options_(options) {
  if (options_.check_on_events) {
    net_.set_event_hook([this](topo::NodeId id) { check_node(id); });
  }
}

Analyzer::~Analyzer() { net_.set_event_hook(nullptr); }

std::size_t Analyzer::check_node(topo::NodeId id) {
  if (audit_.enabled) {
    ++audit_report_.events_observed;
    // Adversary nodes are excluded entirely: their local state is
    // deliberately inconsistent (fabricated routes, bypassed export rules);
    // the audit measures the spread of their misbehavior through honest
    // nodes.
    if (std::binary_search(audit_.adversaries.begin(),
                           audit_.adversaries.end(), id)) {
      return 0;
    }
  }
  std::size_t found = 0;
  const auto* node = dynamic_cast<const core::CentaurNode*>(&net_.node(id));
  if (node != nullptr) {  // structural analysis covers Centaur nodes only
    ++report_.checks_run;
    std::vector<Violation> violations = check_centaur_node(*node);
    report_.violations_seen += violations.size();
    for (Violation& v : violations) {
      if (report_.entries.size() >= options_.max_entries) break;
      report_.entries.push_back(
          AnalysisEntry{net_.simulator().now(), id, std::move(v)});
    }
    found = violations.size();
  }
  if (audit_.enabled) audit_routes(id);
  return found;
}

void Analyzer::set_route_audit(RouteAuditConfig config) {
  audit_ = std::move(config);
  std::sort(audit_.adversaries.begin(), audit_.adversaries.end());
  audit_.adversaries.erase(
      std::unique(audit_.adversaries.begin(), audit_.adversaries.end()),
      audit_.adversaries.end());
  begin_audit_window();
}

void Analyzer::begin_audit_window() { audit_report_ = RouteAuditReport{}; }

void Analyzer::audit_routes(topo::NodeId id) {
  const auto* view = dynamic_cast<const policy::RouteView*>(&net_.node(id));
  if (view == nullptr) return;  // OSPF keeps next hops only — not auditable
  const topo::AsGraph& graph = net_.graph();
  bool flagged_any = false;
  view->for_each_selected_route([&](topo::NodeId dest, const Path& path) {
    ++audit_report_.routes_checked;
    std::optional<Violation> violation;
    // Adjacency/endpoint checks first, so the valley test below never has
    // to reason about fabricated pairs.
    if (path.empty() || path.front() != id || path.back() != dest) {
      violation = Violation{Invariant::kInterceptedRoute,
                            "route to " + std::to_string(dest) +
                                " does not run self..dest"};
    } else {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (!graph.has_link(path[i], path[i + 1])) {
          violation = Violation{
              Invariant::kInterceptedRoute,
              "route to " + std::to_string(dest) + " crosses fabricated hop " +
                  std::to_string(path[i]) + "->" + std::to_string(path[i + 1])};
          break;
        }
      }
      if (!violation && !policy::is_valley_free(graph, path)) {
        violation = Violation{Invariant::kLeakedRoute,
                              "route to " + std::to_string(dest) +
                                  " violates valley-freeness"};
      }
    }
    if (!violation) return;
    if (violation->invariant == Invariant::kInterceptedRoute) {
      ++audit_report_.intercepted;
    } else {
      ++audit_report_.leaked;
    }
    flagged_any = true;
    if (audit_report_.entries.size() < options_.max_entries) {
      audit_report_.entries.push_back(AnalysisEntry{
          net_.simulator().now(), id, std::move(*violation)});
    }
  });
  if (!flagged_any) return;
  if (!audit_report_.detected) {
    audit_report_.detected = true;
    audit_report_.first_events = audit_report_.events_observed;
    audit_report_.first_time = net_.simulator().now();
  }
  auto& flagged = audit_report_.flagged;
  const auto it = std::lower_bound(flagged.begin(), flagged.end(), id);
  if (it == flagged.end() || *it != id) flagged.insert(it, id);
}

std::size_t Analyzer::check_all() {
  std::size_t found = 0;
  for (topo::NodeId id = 0; id < net_.graph().num_nodes(); ++id) {
    found += check_node(id);
  }
  return found;
}

void Analyzer::expect_clean() const {
  if (report_.clean()) return;
  std::ostringstream os;
  report_.print(os);
  throw std::logic_error(os.str());
}

}  // namespace centaur::check
