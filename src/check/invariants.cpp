#include "check/invariants.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "centaur/build_graph.hpp"
#include "centaur/query.hpp"
#include "util/flat_map.hpp"
#include "util/vec_map.hpp"

namespace centaur::check {

using core::DirectedLink;

const char* to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kRootValid:
      return "root-valid";
    case Invariant::kRootNoParents:
      return "root-no-parents";
    case Invariant::kAdjacency:
      return "adjacency-consistent";
    case Invariant::kAdjacencySorted:
      return "adjacency-sorted";
    case Invariant::kAcyclic:
      return "acyclic";
    case Invariant::kRootReachable:
      return "root-reachable";
    case Invariant::kPlistActivation:
      return "plist-activation";
    case Invariant::kCounter:
      return "counter";
    case Invariant::kDestinationMark:
      return "destination-mark";
    case Invariant::kLoopFree:
      return "loop-free";
    case Invariant::kLocalRebuild:
      return "local-rebuild";
    case Invariant::kNeighborRoot:
      return "neighbor-root";
    case Invariant::kDerivedCache:
      return "derived-cache";
    case Invariant::kSelection:
      return "selection-consistent";
    case Invariant::kLeakedRoute:
      return "leaked-route";
    case Invariant::kInterceptedRoute:
      return "intercepted-route";
  }
  return "?";
}

namespace {

std::string link_str(NodeId from, NodeId to) {
  return std::to_string(from) + "->" + std::to_string(to);
}

std::string path_str(const Path& p) {
  std::string out;
  for (const NodeId n : p) {
    if (!out.empty()) out += ',';
    out += std::to_string(n);
  }
  return "<" + out + ">";
}

/// Appends a violation to `out`.
void report(std::vector<Violation>& out, Invariant inv, std::string detail) {
  out.push_back(Violation{inv, std::move(detail)});
}

bool revisits_a_node(const Path& p) {
  const std::set<NodeId> unique(p.begin(), p.end());
  return unique.size() != p.size();
}

/// Every node the graph mentions: root, link endpoints, adjacency keys.
std::set<NodeId> all_nodes(const PGraph& g) {
  std::set<NodeId> nodes;
  if (g.root() != topo::kInvalidNode) nodes.insert(g.root());
  for (const auto& [link, data] : g.links()) {
    nodes.insert(link.from);
    nodes.insert(link.to);
  }
  const auto collect = [&nodes](NodeId n, const PGraph::AdjList& adj) {
    if (adj.empty()) return;
    nodes.insert(n);
    nodes.insert(adj.begin(), adj.end());
  };
  g.parent_map().for_each(collect);
  g.child_map().for_each(collect);
  return nodes;
}

void check_adjacency_map(const PGraph::AdjVec& map, const PGraph& g,
                         bool map_is_parents, std::vector<Violation>& out) {
  const char* name = map_is_parents ? "parents" : "children";
  map.for_each([&](NodeId n, const PGraph::AdjList& adj) {
    // Empty slots are legal in the dense representation: they are nodes with
    // no neighbors on this side (possibly never touched at all).
    if (adj.empty()) return;
    if (!std::is_sorted(adj.begin(), adj.end()) ||
        std::adjacent_find(adj.begin(), adj.end()) != adj.end()) {
      report(out, Invariant::kAdjacencySorted,
             std::string(name) + "[" + std::to_string(n) +
                 "] is not sorted/duplicate-free");
    }
    for (const NodeId other : adj) {
      const NodeId from = map_is_parents ? other : n;
      const NodeId to = map_is_parents ? n : other;
      if (!g.has_link(from, to)) {
        report(out, Invariant::kAdjacency,
               std::string(name) + "[" + std::to_string(n) +
                   "] lists dangling link " + link_str(from, to));
      }
    }
  });
}

/// Iterative three-color DFS over child links; reports one witness link per
/// detected cycle entry point.
void check_acyclic(const PGraph& g, std::vector<Violation>& out) {
  enum : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  util::FlatMap<NodeId, std::uint8_t> color;
  struct Frame {
    NodeId node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  for (const NodeId start : all_nodes(g)) {
    if (color[start] != kWhite) continue;
    stack.push_back(Frame{start});
    color[start] = kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const PGraph::AdjList& kids = g.children(frame.node);
      if (frame.next_child >= kids.size()) {
        color[frame.node] = kBlack;
        stack.pop_back();
        continue;
      }
      const NodeId child = kids[frame.next_child++];
      const std::uint8_t c = color[child];
      if (c == kGray) {
        report(out, Invariant::kAcyclic,
               "cycle through link " + link_str(frame.node, child));
        return;  // one witness is enough; a cycle poisons everything below
      }
      if (c == kWhite) {
        color[child] = kGray;
        stack.push_back(Frame{child});
      }
    }
  }
}

void check_root_reachable(const PGraph& g, std::vector<Violation>& out) {
  // n reaches the root via parent links iff the root reaches n via child
  // links (same edges, reversed) — so one forward BFS from the root covers
  // every node.
  util::FlatSet<NodeId> seen;
  seen.insert(g.root());
  std::vector<NodeId> frontier{g.root()};
  while (!frontier.empty()) {
    const NodeId n = frontier.back();
    frontier.pop_back();
    for (const NodeId child : g.children(n)) {
      if (seen.insert(child)) frontier.push_back(child);
    }
  }
  for (const NodeId n : all_nodes(g)) {
    if (!seen.count(n)) {
      report(out, Invariant::kRootReachable,
             "node " + std::to_string(n) +
                 " cannot reach the root through parent links");
    }
  }
}

}  // namespace

std::vector<Violation> check_pgraph(const PGraph& g,
                                    const PGraphCheckOptions& options) {
  std::vector<Violation> out;
  if (g.root() == topo::kInvalidNode) {
    if (g.num_links() > 0 || !g.destinations().empty()) {
      report(out, Invariant::kRootValid,
             "graph has links/destinations but no root");
    }
    return out;  // nothing else is meaningful without a root
  }

  if (g.in_degree(g.root()) > 0) {
    report(out, Invariant::kRootNoParents,
           "root " + std::to_string(g.root()) + " has " +
               std::to_string(g.in_degree(g.root())) + " parent link(s)");
  }

  // links_ -> adjacency direction.
  for (const auto& [link, data] : g.links()) {
    const PGraph::AdjList& ps = g.parents(link.to);
    if (!std::binary_search(ps.begin(), ps.end(), link.from)) {
      report(out, Invariant::kAdjacency,
             "link " + link_str(link.from, link.to) + " missing from parents[" +
                 std::to_string(link.to) + "]");
    }
    const PGraph::AdjList& cs = g.children(link.from);
    if (!std::binary_search(cs.begin(), cs.end(), link.to)) {
      report(out, Invariant::kAdjacency,
             "link " + link_str(link.from, link.to) +
                 " missing from children[" + std::to_string(link.from) + "]");
    }
    if (options.require_positive_counters && data.counter == 0) {
      report(out, Invariant::kCounter,
             "stored link " + link_str(link.from, link.to) +
                 " has counter 0 (should have been withdrawn)");
    }
    if (options.plists_imply_multihomed && !data.plist.empty() &&
        !g.multi_homed(link.to)) {
      report(out, Invariant::kPlistActivation,
             "link " + link_str(link.from, link.to) +
                 " carries a Permission List but head " +
                 std::to_string(link.to) + " is single-homed");
    }
  }

  // Adjacency -> links_ direction (dangling entries), plus sortedness.
  check_adjacency_map(g.parent_map(), g, /*map_is_parents=*/true, out);
  check_adjacency_map(g.child_map(), g, /*map_is_parents=*/false, out);

  if (options.require_acyclic) check_acyclic(g, out);
  if (options.require_root_reachable) check_root_reachable(g, out);

  if (options.destinations_in_graph) {
    for (const NodeId d : g.destinations()) {
      if (!g.contains(d)) {
        report(out, Invariant::kDestinationMark,
               "destination " + std::to_string(d) +
                   " is marked but absent from the graph");
      }
    }
  }
  return out;
}

template <typename SelectedPaths>
std::vector<Violation> check_counters_against(const PGraph& g,
                                              const SelectedPaths& selected) {
  std::vector<Violation> out;

  // Expected per-link traversal counts — the multiset of links over the
  // selected path set (S4.3.2).
  std::map<DirectedLink, std::uint32_t> expected;
  for (const auto& [dest, path] : selected) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      ++expected[DirectedLink{path[i], path[i + 1]}];
    }
  }
  for (const auto& [link, count] : expected) {
    const core::LinkData* data = g.find_link_data(link.from, link.to);
    if (data == nullptr) {
      report(out, Invariant::kCounter,
             "selected paths traverse " + link_str(link.from, link.to) +
                 " but the link is not in the P-graph");
      continue;
    }
    const std::uint32_t stored = data->counter;
    if (stored != count) {
      report(out, Invariant::kCounter,
             "link " + link_str(link.from, link.to) + " counter is " +
                 std::to_string(stored) + ", " + std::to_string(count) +
                 " selected path(s) traverse it");
    }
  }
  for (const auto& [link, data] : g.links()) {
    if (!expected.count(link)) {
      report(out, Invariant::kCounter,
             "link " + link_str(link.from, link.to) + " (counter " +
                 std::to_string(data.counter) +
                 ") is traversed by no selected path");
    }
  }

  // Destination marks must be exactly the selected endpoints, and every
  // selected path must be loop-free (the per-destination face of the
  // paper's acyclicity property — the union graph itself may cycle).
  for (const auto& [dest, path] : selected) {
    if (!g.is_destination(dest)) {
      report(out, Invariant::kDestinationMark,
             "selected destination " + std::to_string(dest) + " is unmarked");
    }
    if (path.empty() || path.back() != dest) {
      report(out, Invariant::kLoopFree,
             "selected path " + path_str(path) + " does not end at destination " +
                 std::to_string(dest));
    } else if (revisits_a_node(path)) {
      report(out, Invariant::kLoopFree,
             "selected path " + path_str(path) + " revisits a node");
    }
  }
  for (const NodeId d : g.destinations()) {
    if (!selected.count(d)) {
      report(out, Invariant::kDestinationMark,
             "destination " + std::to_string(d) +
                 " is marked but has no selected path");
    }
  }
  return out;
}

template std::vector<Violation> check_counters_against(
    const PGraph& g, const std::map<NodeId, Path>& selected);
template std::vector<Violation> check_counters_against(
    const PGraph& g, const util::VecMap<NodeId, Path>& selected);

namespace {

/// Prefixes every violation in `sub` with `scope` and appends to `out`.
void merge_scoped(std::vector<Violation>& out, std::vector<Violation> sub,
                  const std::string& scope) {
  for (Violation& v : sub) {
    v.detail = scope + v.detail;
    out.push_back(std::move(v));
  }
}

}  // namespace

std::vector<Violation> check_centaur_node(const core::CentaurNode& node) {
  std::vector<Violation> out;
  const PGraph& local = node.local_pgraph();
  const util::VecMap<NodeId, Path>& selected = node.selected_paths();
  if (local.root() == topo::kInvalidNode && selected.empty()) {
    return out;  // node not started yet
  }

  // Whole-graph acyclicity is deliberately off: a union of per-destination
  // policy paths may order two nodes both ways even at convergence (see
  // PGraphCheckOptions::require_acyclic).  Loop-freedom is enforced per
  // path by check_counters_against / the derived-cache loop below.
  PGraphCheckOptions local_options;
  local_options.require_acyclic = false;
  merge_scoped(out, check_pgraph(local, local_options), "local P-graph: ");
  merge_scoped(out, check_counters_against(local, selected),
               "local P-graph: ");

  // Selection consistency: every selected path starts at this node and its
  // tail is exactly what the first-hop neighbor's graph currently derives
  // for that destination — reselect() always adopts `self + derived`.
  for (const auto& [dest, path] : selected) {
    if (path.empty()) continue;  // already reported by kLoopFree above
    if (path.front() != local.root()) {
      report(out, Invariant::kSelection,
             "selected path " + path_str(path) + " does not start at " +
                 std::to_string(local.root()));
      continue;
    }
    if (path.size() < 2) continue;  // the fixed origin route
    const NodeId first_hop = path[1];
    const core::CentaurNode::DestCache* derived =
        node.neighbor_derived(first_hop);
    if (derived == nullptr) {
      report(out, Invariant::kSelection,
             "selected path " + path_str(path) + " uses first hop " +
                 std::to_string(first_hop) + " but no RIB entry exists");
      continue;
    }
    const core::CentaurNode::DestState* cached = derived->find(dest);
    if (cached == nullptr || cached->path.empty()) {
      report(out, Invariant::kSelection,
             "selected path " + path_str(path) + " has no derived path in G[" +
                 std::to_string(first_hop) + "]");
    } else if (!std::equal(path.begin() + 1, path.end(), cached->path.begin(),
                           cached->path.end())) {
      report(out, Invariant::kSelection,
             "selected path " + path_str(path) + " diverges from G[" +
                 std::to_string(first_hop) + "]'s derived path " +
                 path_str(cached->path));
    }
  }

  // BuildGraph-rebuild equivalence: the incrementally maintained local
  // P-graph must match a from-scratch BuildGraph over the same path set
  // (structure, destination marks, Permission Lists; counters are covered
  // by check_counters_against above).
  try {
    const PGraph rebuilt = core::build_local_pgraph(local.root(), selected);
    if (!(rebuilt == local)) {
      report(out, Invariant::kLocalRebuild,
             "local P-graph diverges from BuildGraph(selected paths): " +
                 std::to_string(local.num_links()) + " links vs " +
                 std::to_string(rebuilt.num_links()) + " rebuilt");
    }
  } catch (const std::exception& e) {
    report(out, Invariant::kLocalRebuild,
           std::string("BuildGraph over the selected path set failed: ") +
               e.what());
  }

  for (const NodeId nbr : node.rib_neighbors()) {
    const PGraph* g = node.neighbor_pgraph(nbr);
    const core::CentaurNode::DestCache* derived = node.neighbor_derived(nbr);
    const std::string scope = "G[" + std::to_string(nbr) + "]: ";
    if (g == nullptr || derived == nullptr) continue;  // unreachable
    if (g->root() != nbr) {
      report(out, Invariant::kNeighborRoot,
             scope + "rooted at " + std::to_string(g->root()) +
                 " instead of the neighbor");
    }
    PGraphCheckOptions nbr_options = neighbor_graph_options();
    nbr_options.require_acyclic = false;  // see check above for rationale
    merge_scoped(out, check_pgraph(*g, nbr_options), scope);

    // Derived-path cache consistency: for every marked destination the
    // cache must hold exactly what DerivePath returns today (via the
    // unified query API, centaur/query.hpp).
    for (const NodeId dest : g->destinations()) {
      core::PathResult fresh;
      try {
        fresh = core::query_path(*g, core::PathQuery{dest});
      } catch (const std::exception& e) {
        report(out, Invariant::kDerivedCache,
               scope + "DerivePath(" + std::to_string(dest) +
                   ") threw: " + e.what());
        continue;
      }
      const core::CentaurNode::DestState* cached = derived->find(dest);
      const bool has_cached = cached != nullptr && !cached->path.empty();
      if (fresh) {
        if (!has_cached) {
          report(out, Invariant::kDerivedCache,
                 scope + "destination " + std::to_string(dest) +
                     " derives to " + path_str(fresh.path) +
                     " but the cache has no entry");
        } else if (cached->path != fresh.path) {
          report(out, Invariant::kDerivedCache,
                 scope + "destination " + std::to_string(dest) + " caches " +
                     path_str(cached->path) + " but derives to " +
                     path_str(fresh.path));
        }
      } else if (has_cached) {
        report(out, Invariant::kDerivedCache,
               scope + "destination " + std::to_string(dest) +
                   " is underivable but the cache holds " +
                   path_str(cached->path));
      }
    }
    for (const auto& [dest, state] : *derived) {
      if (state.path.empty()) continue;  // underivable: walk index only
      if (!g->is_destination(dest)) {
        report(out, Invariant::kDerivedCache,
               scope + "cache entry for unmarked destination " +
                   std::to_string(dest));
      }
      if (revisits_a_node(state.path)) {
        report(out, Invariant::kLoopFree,
               scope + "derived path " + path_str(state.path) +
                   " revisits a node");
      }
    }
  }
  return out;
}

}  // namespace centaur::check
