#include "faults/scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "topology/generator.hpp"
#include "topology/parser.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace centaur::faults {

topo::AsGraph TopologySpec::build() const {
  if (!file.empty()) return topo::load_as_rel_file(file).graph;
  util::Rng rng(seed);
  if (style == "brite") {
    return topo::brite_like(nodes, 2, std::max<std::size_t>(4, nodes / 40),
                            rng);
  }
  if (style == "caida") {
    return topo::tiered_internet(topo::caida_like_params(nodes), rng);
  }
  if (style == "hetop") {
    return topo::tiered_internet(topo::hetop_like_params(nodes), rng);
  }
  throw std::invalid_argument("TopologySpec: unknown style '" + style +
                              "' (want caida|hetop|brite)");
}

// ------------------------------------------------- spec extraction -------

namespace {

using util::json::JsonValue;

[[noreturn]] void spec_fail(const std::string& where, const std::string& what) {
  throw std::runtime_error("scenario \"" + where + "\": " + what);
}

void reject_unknown_keys(const JsonValue& obj, const std::string& where,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.object) {
    (void)value;
    if (std::find_if(allowed.begin(), allowed.end(), [&](const char* a) {
          return key == a;
        }) == allowed.end()) {
      spec_fail(where, "unknown key \"" + key + "\"");
    }
  }
}

double get_number(const JsonValue& obj, const std::string& where,
                  const char* key, double fallback, bool required = false) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) spec_fail(where, std::string("missing \"") + key + "\"");
    return fallback;
  }
  if (v->type != JsonValue::Type::kNumber) {
    spec_fail(where, std::string("\"") + key + "\" must be a number");
  }
  return v->number;
}

std::uint64_t get_u64(const JsonValue& obj, const std::string& where,
                      const char* key, std::uint64_t fallback,
                      bool required = false) {
  const double d = get_number(obj, where, key, static_cast<double>(fallback),
                              required);
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    spec_fail(where, std::string("\"") + key +
                         "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

std::string get_string(const JsonValue& obj, const std::string& where,
                       const char* key, const std::string& fallback,
                       bool required = false) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) spec_fail(where, std::string("missing \"") + key + "\"");
    return fallback;
  }
  if (v->type != JsonValue::Type::kString) {
    spec_fail(where, std::string("\"") + key + "\" must be a string");
  }
  return v->string;
}

template <typename Id>
std::vector<Id> id_array(const JsonValue& v, const std::string& where) {
  if (v.type != JsonValue::Type::kArray) spec_fail(where, "must be an array");
  std::vector<Id> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    if (e.type != JsonValue::Type::kNumber || e.number < 0 ||
        e.number != static_cast<double>(static_cast<std::uint64_t>(e.number))) {
      spec_fail(where, "entries must be non-negative integers");
    }
    out.push_back(static_cast<Id>(e.number));
  }
  return out;
}

topo::Relationship parse_rel(const JsonValue& obj, const std::string& where) {
  const std::string rel = get_string(obj, where, "rel", "", true);
  if (rel == "customer") return topo::Relationship::kCustomer;
  if (rel == "provider") return topo::Relationship::kProvider;
  if (rel == "peer") return topo::Relationship::kPeer;
  spec_fail(where,
            "\"rel\" must be customer|provider|peer, got \"" + rel + "\"");
}

FaultAction parse_action(const JsonValue& obj, const std::string& where) {
  if (obj.type != JsonValue::Type::kObject) {
    spec_fail(where, "action must be an object");
  }
  reject_unknown_keys(obj, where,
                      {"do", "at", "link", "node", "group", "cycles",
                       "period", "target", "rel"});
  const std::string kind = get_string(obj, where, "do", "", true);
  const double at_raw = get_number(obj, where, "at", 0);
  if (at_raw < 0) spec_fail(where, "\"at\" must be >= 0");
  const auto at = static_cast<sim::Time>(at_raw);
  const auto link =
      static_cast<topo::LinkId>(get_u64(obj, where, "link", 0));
  const auto node =
      static_cast<topo::NodeId>(get_u64(obj, where, "node", 0));
  const auto group =
      static_cast<std::size_t>(get_u64(obj, where, "group", 0));
  if (kind == "link_down") return FaultAction::link_down(link, at);
  if (kind == "link_up") return FaultAction::link_up(link, at);
  if (kind == "srlg_down") return FaultAction::srlg_down(group, at);
  if (kind == "srlg_up") return FaultAction::srlg_up(group, at);
  if (kind == "node_crash") return FaultAction::node_crash(node, at);
  if (kind == "node_restart") return FaultAction::node_restart(node, at);
  if (kind == "partition") return FaultAction::partition(group, at);
  if (kind == "heal") return FaultAction::heal(group, at);
  if (kind == "flap_storm") {
    const auto cycles =
        static_cast<std::uint32_t>(get_u64(obj, where, "cycles", 0, true));
    const auto period =
        static_cast<sim::Time>(get_number(obj, where, "period", 0, true));
    return FaultAction::flap_storm(link, cycles, period, at);
  }
  if (kind == "route_leak") return FaultAction::route_leak(node, at);
  if (kind == "route_leak_stop") {
    return FaultAction::route_leak_stop(node, at);
  }
  if (kind == "intercept" || kind == "intercept_stop") {
    const auto target =
        static_cast<topo::NodeId>(get_u64(obj, where, "target", 0, true));
    return kind == "intercept"
               ? FaultAction::intercept(node, target, at)
               : FaultAction::intercept_stop(node, target, at);
  }
  if (kind == "local_pref_flip") return FaultAction::local_pref_flip(node, at);
  if (kind == "local_pref_restore") {
    return FaultAction::local_pref_restore(node, at);
  }
  if (kind == "rel_change") {
    return FaultAction::rel_change(link, parse_rel(obj, where), at);
  }
  spec_fail(where, "unknown action \"" + kind + "\"");
}

}  // namespace

ScenarioSpec parse_scenario_json(const std::string& text) {
  const JsonValue doc = util::json::parse_json(text, "scenario JSON");
  if (doc.type != JsonValue::Type::kObject) {
    spec_fail("top level", "must be an object");
  }
  reject_unknown_keys(doc, "top level",
                      {"name", "topology", "protocol", "seed", "mrai",
                       "check", "srlgs", "partitions", "phases"});

  ScenarioSpec spec;
  spec.name = get_string(doc, "top level", "name", spec.name);

  if (const JsonValue* topo_v = doc.find("topology")) {
    if (topo_v->type != JsonValue::Type::kObject) {
      spec_fail("topology", "must be an object");
    }
    reject_unknown_keys(*topo_v, "topology",
                        {"file", "style", "nodes", "seed"});
    spec.topology.file = get_string(*topo_v, "topology", "file", "");
    spec.topology.style =
        get_string(*topo_v, "topology", "style", spec.topology.style);
    spec.topology.nodes = static_cast<std::size_t>(
        get_u64(*topo_v, "topology", "nodes", spec.topology.nodes));
    spec.topology.seed =
        get_u64(*topo_v, "topology", "seed", spec.topology.seed);
  }

  const std::string proto =
      get_string(doc, "top level", "protocol", "centaur");
  try {
    spec.protocol = eval::protocol_from_string(proto);
  } catch (const std::invalid_argument& e) {
    spec_fail("protocol", e.what());
  }

  spec.seed = get_u64(doc, "top level", "seed", spec.seed);
  spec.options.bgp_mrai =
      static_cast<sim::Time>(get_number(doc, "top level", "mrai", 0));
  const std::string check = get_string(doc, "top level", "check", "off");
  if (check == "off") {
    spec.options.analysis = eval::AnalysisMode::kOff;
  } else if (check == "collect") {
    spec.options.analysis = eval::AnalysisMode::kCollect;
  } else if (check == "assert") {
    spec.options.analysis = eval::AnalysisMode::kAssert;
  } else {
    spec_fail("check", "want off|collect|assert, got \"" + check + "\"");
  }

  if (const JsonValue* srlgs = doc.find("srlgs")) {
    if (srlgs->type != JsonValue::Type::kArray) {
      spec_fail("srlgs", "must be an array of link-id arrays");
    }
    for (std::size_t i = 0; i < srlgs->array.size(); ++i) {
      spec.script.srlgs.push_back(id_array<topo::LinkId>(
          srlgs->array[i], "srlgs[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* parts = doc.find("partitions")) {
    if (parts->type != JsonValue::Type::kArray) {
      spec_fail("partitions", "must be an array of node-id arrays");
    }
    for (std::size_t i = 0; i < parts->array.size(); ++i) {
      spec.script.partitions.push_back(id_array<topo::NodeId>(
          parts->array[i], "partitions[" + std::to_string(i) + "]"));
    }
  }

  const JsonValue* phases = doc.find("phases");
  if (phases == nullptr || phases->type != JsonValue::Type::kArray ||
      phases->array.empty()) {
    spec_fail("phases", "must be a non-empty array");
  }
  for (std::size_t i = 0; i < phases->array.size(); ++i) {
    const JsonValue& pv = phases->array[i];
    const std::string where = "phases[" + std::to_string(i) + "]";
    if (pv.type != JsonValue::Type::kObject) {
      spec_fail(where, "must be an object");
    }
    reject_unknown_keys(pv, where, {"name", "actions"});
    FaultPhase phase;
    phase.name = get_string(pv, where, "name", "phase" + std::to_string(i));
    const JsonValue* actions = pv.find("actions");
    if (actions == nullptr || actions->type != JsonValue::Type::kArray ||
        actions->array.empty()) {
      spec_fail(where, "\"actions\" must be a non-empty array");
    }
    for (std::size_t a = 0; a < actions->array.size(); ++a) {
      phase.actions.push_back(parse_action(
          actions->array[a], where + ".actions[" + std::to_string(a) + "]"));
    }
    spec.script.phases.push_back(std::move(phase));
  }
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_json(buf.str());
}

// --------------------------------------------- canonical campaign --------

FaultScript make_reliability_script(const topo::AsGraph& graph,
                                    std::uint64_t seed) {
  if (graph.num_nodes() < 4 || graph.num_links() < 4) {
    throw std::invalid_argument(
        "make_reliability_script: topology too small (need >= 4 nodes and "
        "links)");
  }
  util::Rng rng(seed);
  FaultScript script;

  // Shared-risk group: the first <= 3 links of the highest-degree node — a
  // line-card/conduit failure taking correlated links out the same instant.
  topo::NodeId hub = 0;
  for (topo::NodeId v = 1; v < graph.num_nodes(); ++v) {
    if (graph.degree(v) > graph.degree(hub)) hub = v;
  }
  std::vector<topo::LinkId> srlg;
  for (const topo::Neighbor& nb : graph.neighbors(hub)) {
    srlg.push_back(nb.link);
    if (srlg.size() == 3) break;
  }
  script.srlgs.push_back(std::move(srlg));

  // Crash target: a deterministic multi-homed node other than the hub (a
  // hub crash can disconnect smoke-scale graphs, which is a different
  // scenario than crash/recover).
  std::vector<topo::NodeId> candidates;
  for (topo::NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v != hub && graph.degree(v) >= 2) candidates.push_back(v);
  }
  const topo::NodeId crash_node =
      candidates.empty() ? (hub == 0 ? 1 : 0)
                         : candidates[rng.index(candidates.size())];

  // Flap target: any link not incident to the hub (so the storm composes
  // with a later SRLG phase if scripts are extended) — fall back to link 0.
  topo::LinkId flap_link = 0;
  std::vector<topo::LinkId> flap_candidates;
  for (topo::LinkId l = 0; l < graph.num_links(); ++l) {
    const topo::Link& lk = graph.link(l);
    if (lk.a != hub && lk.b != hub) flap_candidates.push_back(l);
  }
  if (!flap_candidates.empty()) {
    flap_link = flap_candidates[rng.index(flap_candidates.size())];
  }

  // Partition side: BFS from a random start until half the nodes are in.
  const auto start = static_cast<topo::NodeId>(rng.index(graph.num_nodes()));
  std::vector<bool> in_side(graph.num_nodes(), false);
  std::vector<topo::NodeId> side;
  std::deque<topo::NodeId> frontier{start};
  in_side[start] = true;
  const std::size_t side_target = std::max<std::size_t>(1, graph.num_nodes() / 2);
  while (!frontier.empty() && side.size() < side_target) {
    const topo::NodeId v = frontier.front();
    frontier.pop_front();
    side.push_back(v);
    for (const topo::Neighbor& nb : graph.neighbors(v)) {
      if (!in_side[nb.node]) {
        in_side[nb.node] = true;
        frontier.push_back(nb.node);
      }
    }
  }
  script.partitions.push_back(std::move(side));

  script.phases.push_back(
      {"srlg_burst", {FaultAction::srlg_down(0)}});
  script.phases.push_back({"srlg_heal", {FaultAction::srlg_up(0)}});
  script.phases.push_back(
      {"crash_" + std::to_string(crash_node),
       {FaultAction::node_crash(crash_node)}});
  script.phases.push_back(
      {"restart_" + std::to_string(crash_node),
       {FaultAction::node_restart(crash_node)}});
  // 3 cycles x 2 ms: transitions land inside the 0-5 ms delay band, so
  // updates from one transition are still in flight when the next fires.
  script.phases.push_back(
      {"flap_storm", {FaultAction::flap_storm(flap_link, 3, 0.002)}});
  script.phases.push_back({"partition", {FaultAction::partition(0)}});
  script.phases.push_back({"heal", {FaultAction::heal(0)}});
  script.validate(graph);
  return script;
}

ScenarioSpec reliability_scenario(std::size_t nodes, std::uint64_t base_seed) {
  ScenarioSpec spec;
  spec.name = "reliability";
  spec.topology.style = "brite";
  spec.topology.nodes = nodes;
  spec.topology.seed = base_seed ^ 0xF160;  // the bench_fig6 construction
  spec.seed = base_seed;
  spec.script = make_reliability_script(spec.topology.build(),
                                        base_seed ^ 0xFA017);
  return spec;
}

// --------------------------------------------- adversarial packs ---------

namespace {

ScenarioSpec adversarial_base(const char* name, std::size_t nodes,
                              std::uint64_t base_seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.topology.style = "brite";
  spec.topology.nodes = nodes;
  spec.topology.seed = base_seed ^ 0xF160;  // the bench_fig6 construction
  spec.seed = base_seed;
  // The packs exist to be measured: route audits need an analyzer.
  spec.options.analysis = eval::AnalysisMode::kCollect;
  return spec;
}

/// Peer+provider session count at `v` — the sessions a route leak
/// mis-exports across.
std::size_t transit_degree(const topo::AsGraph& g, topo::NodeId v) {
  std::size_t n = 0;
  for (const topo::Neighbor& nb : g.neighbors(v)) {
    if (nb.rel == topo::Relationship::kPeer ||
        nb.rel == topo::Relationship::kProvider) {
      ++n;
    }
  }
  return n;
}

std::size_t provider_count(const topo::AsGraph& g, topo::NodeId v) {
  std::size_t n = 0;
  for (const topo::Neighbor& nb : g.neighbors(v)) {
    if (nb.rel == topo::Relationship::kProvider) ++n;
  }
  return n;
}

topo::NodeId max_transit_node(const topo::AsGraph& g) {
  topo::NodeId best = 0;
  for (topo::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (transit_degree(g, v) > transit_degree(g, best)) best = v;
  }
  return best;
}

}  // namespace

ScenarioSpec route_leak_scenario(std::size_t nodes, std::uint64_t base_seed) {
  ScenarioSpec spec = adversarial_base("route_leak", nodes, base_seed);
  const topo::AsGraph g = spec.topology.build();
  // Leaker: the classic leak is a multi-homed customer re-exporting one
  // provider's routes to its other providers, who each see an attractive
  // customer-class path straight into a valley.  Pick the node with the
  // most provider sessions (ties to the best-connected one, whose leak
  // also carries the largest table); a tier-1 node would be the *worst*
  // pick — nothing above it to leak.
  topo::NodeId leaker = 0;
  for (topo::NodeId v = 1; v < g.num_nodes(); ++v) {
    const auto score = [&g](topo::NodeId n) {
      return std::make_pair(provider_count(g, n), g.degree(n));
    };
    if (score(v) > score(leaker)) leaker = v;
  }
  spec.script.phases.push_back(
      {"leak_start", {FaultAction::route_leak(leaker)}});
  spec.script.phases.push_back(
      {"leak_stop", {FaultAction::route_leak_stop(leaker)}});
  spec.script.validate(g);
  return spec;
}

ScenarioSpec interception_scenario(std::size_t nodes,
                                   std::uint64_t base_seed) {
  ScenarioSpec spec = adversarial_base("interception", nodes, base_seed);
  const topo::AsGraph g = spec.topology.build();
  // Hijacker: the best-connected node — a fabricated customer route is
  // exportable to every session, so degree bounds the spread.
  topo::NodeId hijacker = 0;
  for (topo::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(hijacker)) hijacker = v;
  }
  // Victim: the lowest-id node with no real adjacency to the hijacker, so
  // the fabricated edge cannot be mistaken for a legitimate session.
  topo::NodeId victim = hijacker == 0 ? 1 : 0;
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != hijacker && !g.maybe_rel(hijacker, v).has_value()) {
      victim = v;
      break;
    }
  }
  spec.script.phases.push_back(
      {"hijack", {FaultAction::intercept(hijacker, victim)}});
  spec.script.phases.push_back(
      {"withdraw", {FaultAction::intercept_stop(hijacker, victim)}});
  spec.script.validate(g);
  return spec;
}

ScenarioSpec policy_churn_scenario(std::size_t nodes,
                                   std::uint64_t base_seed) {
  ScenarioSpec spec = adversarial_base("policy_churn", nodes, base_seed);
  const topo::AsGraph g = spec.topology.build();
  // Churn node: the best-connected multi-homed customer (most provider
  // sessions, ties to degree).  The phases compose: first the node flips
  // its peer/provider preference classes (a latent policy change — tiered
  // topologies give a node either peers or providers, not both), then a
  // provider switch rewires one of its provider links into a peering.
  // While the peering holds, the flipped ranking actually reorders the
  // node's candidates (its new peer routes now rank below its remaining
  // provider routes), and the switch-back + restore unwind both.
  topo::NodeId churn = 0;
  for (topo::NodeId v = 1; v < g.num_nodes(); ++v) {
    const auto score = [&g](topo::NodeId n) {
      return std::make_pair(provider_count(g, n), g.degree(n));
    };
    if (score(v) > score(churn)) churn = v;
  }
  // The switch target: the churn node's first provider session.
  topo::LinkId switch_link = 0;
  topo::Relationship original = g.link(0).rel_ab;
  for (const topo::Neighbor& nb : g.neighbors(churn)) {
    if (nb.rel == topo::Relationship::kProvider) {
      switch_link = nb.link;
      original = g.link(nb.link).rel_ab;
      break;
    }
  }
  spec.script.phases.push_back(
      {"pref_flip", {FaultAction::local_pref_flip(churn)}});
  spec.script.phases.push_back(
      {"provider_switch",
       {FaultAction::rel_change(switch_link, topo::Relationship::kPeer)}});
  spec.script.phases.push_back(
      {"switch_back", {FaultAction::rel_change(switch_link, original)}});
  spec.script.phases.push_back(
      {"pref_restore", {FaultAction::local_pref_restore(churn)}});
  spec.script.validate(g);
  return spec;
}

}  // namespace centaur::faults
