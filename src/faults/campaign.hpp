// Fault-injection campaign engine.
//
// Drives a FaultScript against a live ProtocolRun: each phase applies its
// actions at deterministic simulated offsets, runs the network to
// quiescence, sweeps the invariant analyzer (src/check), and is measured as
// one convergence window.  The engine is the single execution path for
// every event-driven experiment — the legacy link-flip series
// (eval::run_link_flips) is a campaign of one-action phases.
//
// Determinism contract: a campaign result is a pure function of
// (topology, protocol, RunOptions, run seed, script).  The engine draws no
// randomness, keeps no global state, and schedules all actions relative to
// the phase-start instant, so campaigns fan across runner::run_trials and
// stay bit-identical to a serial run for any CENTAUR_THREADS.
//
// Crash/restart model: a crash replaces the instance with an inert stub
// *before* its links go down (a crashed router does not react to its own
// failure), so neighbors observe ordinary session resets while the crashed
// node stays silent.  Restart attaches a fresh instance, start()s it while
// its links are still down (nothing is sent on a down link), then raises
// exactly the links the crash took down; both sides re-learn through the
// normal session-establishment exchange (BGP full-table push, Centaur
// baseline P-graph snapshot, OSPF database exchange).  If a heal would
// raise a link whose endpoint is currently crashed, the link is deferred to
// that node's restart instead — a dead router cannot bring a session up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/analyzer.hpp"
#include "eval/experiments.hpp"
#include "faults/fault_script.hpp"
#include "faults/scenario.hpp"

namespace centaur::faults {

/// One phase's measured convergence window.
///
/// The adversarial metrics (DESIGN.md §15) are filled only when the script
/// contains adversarial actions: `audit_routes_flagged` counts selected
/// routes the per-event route audit flagged this phase, `detection_events`
/// / `detection_time` report how long the misbehavior ran before the first
/// flag (analyzer node-checks observed, and virtual seconds from the phase
/// start; -1 when nothing was flagged), and `blast_radius` counts the
/// quiescent non-adversary nodes whose selected path transits a misbehaving
/// AS.  All four are deterministic counters, inside the bit-identity
/// contract and the default equality.
struct PhaseReport {
  std::string name;
  std::size_t actions = 0;
  std::size_t messages = 0;        ///< sent in the window
  std::size_t bytes = 0;
  std::size_t dropped = 0;         ///< sends lost to down links
  sim::Time convergence_time = 0;  ///< last delivery - phase start
  std::uint64_t events = 0;        ///< simulator events this phase
  std::size_t violations = 0;      ///< analyzer violations this phase
  std::size_t audit_routes_flagged = 0;  ///< leaked+intercepted flags
  std::int64_t detection_events = -1;    ///< node-checks to first flag
  sim::Time detection_time = -1;         ///< virtual s to first flag
  std::size_t blast_radius = 0;          ///< nodes transiting an adversary

  friend bool operator==(const PhaseReport&, const PhaseReport&) = default;
};

/// A whole campaign: the cold start plus every scripted phase.
struct CampaignResult {
  std::string scenario;
  eval::Protocol protocol = eval::Protocol::kCentaur;
  PhaseReport cold_start;
  std::vector<PhaseReport> phases;
  /// Lifetime totals over cold start + campaign (the bench JSON counters).
  std::uint64_t total_events = 0;
  std::size_t total_messages = 0;
  std::size_t total_bytes = 0;
  /// Final analyzer report (empty/clean when analysis is off).
  check::AnalysisReport analysis;
  /// Host wall time per scripted phase (parallel to `phases`), plus the
  /// cold start when run_scenario built the run itself.  Diagnostic only:
  /// machine-dependent, so excluded from PhaseReport equality and from the
  /// bit-identity contract (DESIGN.md §8); the campaign bench uses it to
  /// report serial-vs-parallel speedup per phase.
  double cold_start_wall_s = 0;
  std::vector<double> phase_wall_s;

  bool clean() const { return analysis.violations_seen == 0; }
  sim::Time max_phase_convergence() const;
  sim::Time mean_phase_convergence() const;
};

/// Replays scripts against a ProtocolRun it does not own.  The engine keeps
/// crash and partition bookkeeping between phases, so one engine must see a
/// script from start to finish; run() is the usual entry point,
/// run_phase()/result() exist for harnesses that interleave their own
/// assertions between phases (tests do).
class CampaignEngine {
 public:
  explicit CampaignEngine(eval::ProtocolRun& run);

  /// Validates `script` against the run's topology and executes every
  /// phase.  Throws std::invalid_argument on malformed scripts and
  /// std::logic_error when analysis is kAssert and a sweep finds
  /// violations.
  CampaignResult run(const FaultScript& script);

  /// Executes one phase of `script` (which must outlive the call).
  PhaseReport run_phase(const FaultScript& script, const FaultPhase& phase);

  /// Report over the phases executed so far.
  CampaignResult result() const;

 private:
  void apply(const FaultScript& script, const FaultAction& action);
  void crash(topo::NodeId node);
  void restart(topo::NodeId node);
  /// Raises `link`, unless an endpoint is crashed — then the link is moved
  /// to that node's restart list (a dead router cannot open a session) —
  /// or it crosses a still-active partition cut — then it is moved to that
  /// cut's heal list (a restart may not resurrect a partitioned session).
  void raise_link(topo::LinkId link);
  /// Prescans `script` for adversarial actions (idempotent): collects the
  /// route-audit skip set (leak/intercept nodes) and the blast-radius
  /// target set, and arms the analyzer's route audit.
  void configure_adversarial(const FaultScript& script);
  std::size_t violations_now() const;

  eval::ProtocolRun& run_;
  CampaignResult result_;
  std::uint64_t events_seen_ = 0;  ///< lifetime events through last phase
  std::map<topo::NodeId, std::vector<topo::LinkId>> crashed_;
  std::map<std::size_t, std::vector<topo::LinkId>> cuts_;
  /// Side membership of each *active* partition cut (kPartition fills,
  /// kHeal erases) — raise_link consults it so restarts defer to heals.
  std::map<std::size_t, std::vector<bool>> cut_sides_;
  bool adversarial_checked_ = false;  ///< configure_adversarial ran
  bool adversarial_ = false;          ///< script has adversarial actions
  std::vector<topo::NodeId> blast_targets_;  ///< sorted ascending
};

/// Builds the topology and run from `spec` and replays its script.
CampaignResult run_scenario(const ScenarioSpec& spec);

/// Same, over a pre-built graph (callers sharing one topology across
/// protocol arms, or printing stats before the run).
CampaignResult run_scenario(const topo::AsGraph& graph,
                            const ScenarioSpec& spec);

}  // namespace centaur::faults
