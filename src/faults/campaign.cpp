#include "faults/campaign.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "eval/adversary.hpp"
#include "runner/bench_report.hpp"
#include "util/rng.hpp"

namespace centaur::faults {

namespace {

/// What a crashed router is: attached in place of the real instance, it
/// absorbs link-change notifications and any stray deliveries silently.
class DeadNode final : public sim::Node {
 public:
  void start() override {}
  void on_message(topo::NodeId, const sim::MessagePtr&) override {}
  void on_link_change(topo::NodeId, bool) override {}
};

}  // namespace

sim::Time CampaignResult::max_phase_convergence() const {
  sim::Time worst = 0;
  for (const PhaseReport& p : phases) {
    worst = std::max(worst, p.convergence_time);
  }
  return worst;
}

sim::Time CampaignResult::mean_phase_convergence() const {
  if (phases.empty()) return 0;
  sim::Time sum = 0;
  for (const PhaseReport& p : phases) sum += p.convergence_time;
  return sum / static_cast<sim::Time>(phases.size());
}

CampaignEngine::CampaignEngine(eval::ProtocolRun& run) : run_(run) {
  events_seen_ = run_.network().events_executed();
  result_.protocol = run_.protocol();
  result_.cold_start.name = "cold_start";
  result_.cold_start.messages = run_.cold_start().messages_sent;
  result_.cold_start.bytes = run_.cold_start().bytes_sent;
  result_.cold_start.dropped = run_.cold_start().messages_dropped;
  result_.cold_start.convergence_time = run_.cold_start_time();
  result_.cold_start.events = events_seen_;
  result_.cold_start.violations = violations_now();
}

std::size_t CampaignEngine::violations_now() const {
  const check::Analyzer* analyzer = run_.analyzer();
  return analyzer ? analyzer->report().violations_seen : 0;
}

CampaignResult CampaignEngine::run(const FaultScript& script) {
  script.validate(run_.graph());
  configure_adversarial(script);
  for (const FaultPhase& phase : script.phases) run_phase(script, phase);
  return result();
}

void CampaignEngine::configure_adversarial(const FaultScript& script) {
  if (adversarial_checked_) return;
  adversarial_checked_ = true;
  // The route audit must skip the misbehaving nodes themselves: a leaker's
  // or hijacker's local state is inconsistent by construction, and the
  // flags exist to measure how far the damage *spreads*.
  std::vector<topo::NodeId> adversaries;
  for (const FaultPhase& phase : script.phases) {
    for (const FaultAction& a : phase.actions) {
      switch (a.kind) {
        case ActionKind::kRouteLeak:
        case ActionKind::kRouteLeakStop:
        case ActionKind::kIntercept:
        case ActionKind::kInterceptStop:
          adversaries.push_back(a.node);
          blast_targets_.push_back(a.node);
          adversarial_ = true;
          break;
        case ActionKind::kLocalPrefFlip:
        case ActionKind::kLocalPrefRestore:
          blast_targets_.push_back(a.node);
          adversarial_ = true;
          break;
        case ActionKind::kRelChange: {
          const topo::Link& lk = run_.graph().link(a.link);
          blast_targets_.push_back(lk.a);
          blast_targets_.push_back(lk.b);
          adversarial_ = true;
          break;
        }
        default:
          break;
      }
    }
  }
  if (!adversarial_) return;
  std::sort(blast_targets_.begin(), blast_targets_.end());
  blast_targets_.erase(
      std::unique(blast_targets_.begin(), blast_targets_.end()),
      blast_targets_.end());
  if (check::Analyzer* analyzer = run_.analyzer()) {
    analyzer->set_route_audit({true, std::move(adversaries)});
  }
}

PhaseReport CampaignEngine::run_phase(const FaultScript& script,
                                      const FaultPhase& phase) {
  configure_adversarial(script);
  sim::Network& net = run_.network();
  check::Analyzer* analyzer = run_.analyzer();
  const std::size_t violations_before = violations_now();
  const runner::Stopwatch wall;
  net.mark();
  if (adversarial_ && analyzer != nullptr) analyzer->begin_audit_window();
  const sim::Time start = net.simulator().now();
  for (const FaultAction& action : phase.actions) {
    if (action.at <= 0) {
      apply(script, action);
    } else {
      // Deferred actions re-enter apply() at their offset; &script stays
      // valid because the phase converges inside this call.
      net.simulator().schedule_at(
          start + action.at,
          [this, &script, action] { apply(script, action); });
    }
  }
  net.run_to_convergence();
  run_.analyze_quiescent();

  PhaseReport report;
  report.name = phase.name;
  report.actions = phase.actions.size();
  report.messages = net.window().messages_sent;
  report.bytes = net.window().bytes_sent;
  report.dropped = net.window().messages_dropped;
  report.convergence_time = net.window_convergence_time();
  report.events = net.events_executed() - events_seen_;
  report.violations = violations_now() - violations_before;
  if (adversarial_) {
    if (analyzer != nullptr) {
      const check::RouteAuditReport& audit = analyzer->audit_report();
      report.audit_routes_flagged = audit.leaked + audit.intercepted;
      if (audit.detected) {
        report.detection_events =
            static_cast<std::int64_t>(audit.first_events);
        report.detection_time = audit.first_time - start;
      }
    }
    report.blast_radius = eval::blast_radius(net, run_.graph().num_nodes(),
                                             blast_targets_);
  }
  events_seen_ = net.events_executed();
  result_.phases.push_back(report);
  result_.phase_wall_s.push_back(wall.seconds());
  return report;
}

CampaignResult CampaignEngine::result() const {
  CampaignResult out = result_;
  // Lifetime counters are never reset, so they cover cold start + phases.
  out.total_events = run_.network().events_executed();
  out.total_messages = run_.network().total_messages();
  out.total_bytes = run_.network().total_bytes();
  if (const check::Analyzer* analyzer = run_.analyzer()) {
    out.analysis = analyzer->report();
  }
  return out;
}

void CampaignEngine::apply(const FaultScript& script,
                           const FaultAction& action) {
  sim::Network& net = run_.network();
  switch (action.kind) {
    case ActionKind::kLinkDown:
      net.set_link_state(action.link, false);
      return;
    case ActionKind::kLinkUp:
      raise_link(action.link);
      return;
    case ActionKind::kSrlgDown:
      for (const topo::LinkId l : script.srlgs.at(action.group)) {
        net.set_link_state(l, false);
      }
      return;
    case ActionKind::kSrlgUp:
      for (const topo::LinkId l : script.srlgs.at(action.group)) {
        raise_link(l);
      }
      return;
    case ActionKind::kNodeCrash:
      crash(action.node);
      return;
    case ActionKind::kNodeRestart:
      restart(action.node);
      return;
    case ActionKind::kPartition: {
      const std::vector<topo::NodeId>& side =
          script.partitions.at(action.group);
      std::vector<bool> in_side(run_.graph().num_nodes(), false);
      for (const topo::NodeId v : side) in_side[v] = true;
      std::vector<topo::LinkId>& cut = cuts_[action.group];
      for (topo::LinkId l = 0; l < run_.graph().num_links(); ++l) {
        const topo::Link& lk = run_.graph().link(l);
        if (in_side[lk.a] != in_side[lk.b] && run_.graph().link_up(l)) {
          cut.push_back(l);
          net.set_link_state(l, false);
        }
      }
      // Remember the side membership while the cut is active: raise_link
      // consults it so a restart cannot resurrect a partitioned session.
      cut_sides_[action.group] = std::move(in_side);
      return;
    }
    case ActionKind::kHeal: {
      const auto it = cuts_.find(action.group);
      if (it == cuts_.end()) return;  // validate() precludes this
      // Retire the side membership first, or raise_link would defer the
      // cut's own links right back onto this heal.
      cut_sides_.erase(action.group);
      for (const topo::LinkId l : it->second) raise_link(l);
      cuts_.erase(it);
      return;
    }
    case ActionKind::kFlapStorm: {
      const sim::Time now = net.simulator().now();
      for (std::uint32_t k = 0; k < action.cycles; ++k) {
        const sim::Time down_at =
            static_cast<sim::Time>(2 * k) * action.period;
        const sim::Time up_at = down_at + action.period;
        if (down_at <= 0) {
          net.set_link_state(action.link, false);
        } else {
          net.simulator().schedule_at(now + down_at, [&net, l = action.link] {
            net.set_link_state(l, false);
          });
        }
        net.simulator().schedule_at(now + up_at, [&net, l = action.link] {
          net.set_link_state(l, true);
        });
      }
      return;
    }
    case ActionKind::kRouteLeak:
      eval::set_route_leak(net.node(action.node), true);
      return;
    case ActionKind::kRouteLeakStop:
      eval::set_route_leak(net.node(action.node), false);
      return;
    case ActionKind::kIntercept:
      eval::set_intercept(net.node(action.node), action.target, true);
      return;
    case ActionKind::kInterceptStop:
      eval::set_intercept(net.node(action.node), action.target, false);
      return;
    case ActionKind::kLocalPrefFlip:
      eval::set_local_pref_flip(net.node(action.node), true);
      return;
    case ActionKind::kLocalPrefRestore:
      eval::set_local_pref_flip(net.node(action.node), false);
      return;
    case ActionKind::kRelChange:
      // Operator-plane provider switch: rewire the shared graph, then tell
      // every node in ascending id order (deterministic fan-out).
      run_.graph().set_rel(action.link, action.rel);
      eval::relationships_changed_all(net, run_.graph().num_nodes());
      return;
  }
}

void CampaignEngine::crash(topo::NodeId node) {
  sim::Network& net = run_.network();
  // Stop the instance before its links drop: a crashed router does not
  // react to — or announce — its own failure.
  net.attach(node, std::make_unique<DeadNode>());
  std::vector<topo::LinkId>& downed = crashed_[node];
  for (const topo::Neighbor& nb : run_.graph().neighbors(node)) {
    if (run_.graph().link_up(nb.link)) {
      downed.push_back(nb.link);
      net.set_link_state(nb.link, false);
    }
  }
}

void CampaignEngine::restart(topo::NodeId node) {
  const auto it = crashed_.find(node);
  if (it == crashed_.end()) return;  // validate() precludes this
  const std::vector<topo::LinkId> downed = std::move(it->second);
  crashed_.erase(it);
  sim::Network& net = run_.network();
  net.attach(node, eval::make_protocol_node(run_.protocol(), run_.graph(),
                                            run_.options()));
  // start() while the links are still down: the fresh instance originates
  // its own state but sends nothing (no up session).  The link raises then
  // trigger the ordinary session-establishment exchanges on both sides.
  net.node(node).start();
  for (const topo::LinkId l : downed) raise_link(l);
}

void CampaignEngine::raise_link(topo::LinkId link) {
  const topo::Link& lk = run_.graph().link(link);
  for (const topo::NodeId end : {lk.a, lk.b}) {
    const auto it = crashed_.find(end);
    if (it == crashed_.end()) continue;
    // A dead router cannot open a session; hand the link to its restart.
    // With both endpoints crashed this defers twice — the first restart
    // re-enters here and hands the link on to the survivor, so it only
    // comes up after the *last* endpoint is back.
    if (std::find(it->second.begin(), it->second.end(), link) ==
        it->second.end()) {
      it->second.push_back(link);
    }
    return;
  }
  // A link crossing a still-active partition cut may not come back up
  // either (a crash can pre-empt the partition's claim on the link, and
  // the restart would otherwise resurrect a session across the cut); hand
  // it to that cut's heal.
  for (auto& [group, in_side] : cut_sides_) {
    if (in_side[lk.a] != in_side[lk.b]) {
      std::vector<topo::LinkId>& cut = cuts_[group];
      if (std::find(cut.begin(), cut.end(), link) == cut.end()) {
        cut.push_back(link);
      }
      return;
    }
  }
  run_.network().set_link_state(link, true);
}

CampaignResult run_scenario(const ScenarioSpec& spec) {
  const topo::AsGraph graph = spec.topology.build();
  return run_scenario(graph, spec);
}

CampaignResult run_scenario(const topo::AsGraph& graph,
                            const ScenarioSpec& spec) {
  util::Rng rng(spec.seed);
  const runner::Stopwatch cold_wall;
  eval::ProtocolRun run(graph, spec.protocol, rng, spec.options);
  const double cold_wall_s = cold_wall.seconds();
  CampaignEngine engine(run);
  CampaignResult result = engine.run(spec.script);
  result.scenario = spec.name;
  result.cold_start_wall_s = cold_wall_s;
  return result;
}

}  // namespace centaur::faults

// ------------------------------------------------------------------------
// Deprecated wrapper (declared in eval/experiments.hpp): the sequential
// link-flip experiment expressed as a campaign of one-action phases, so the
// scripted engine is the only event-driven execution path.

namespace centaur::eval {

FlipSeries run_link_flips(const topo::AsGraph& graph, Protocol protocol,
                          std::size_t flip_sample, util::Rng rng,
                          const RunOptions& options) {
  ProtocolRun run(graph, protocol, rng, options);

  flip_sample = std::min<std::size_t>(flip_sample, graph.num_links());
  const std::vector<std::size_t> links =
      rng.sample_without_replacement(graph.num_links(), flip_sample);

  faults::FaultScript script;
  for (const std::size_t raw : links) {
    const auto link = static_cast<topo::LinkId>(raw);
    const std::string stem = "link_" + std::to_string(link);
    script.phases.push_back(
        {stem + "_down", {faults::FaultAction::link_down(link)}});
    script.phases.push_back(
        {stem + "_up", {faults::FaultAction::link_up(link)}});
  }

  faults::CampaignEngine engine(run);
  const faults::CampaignResult result = engine.run(script);

  FlipSeries series;
  series.cold_start = run.cold_start();
  series.cold_start_time = run.cold_start_time();
  for (const faults::PhaseReport& phase : result.phases) {
    series.convergence_times.push_back(phase.convergence_time);
    series.message_counts.push_back(static_cast<double>(phase.messages));
  }
  series.events = result.total_events;
  series.total_messages = result.total_messages;
  series.total_bytes = result.total_bytes;
  series.analysis = result.analysis;
  return series;
}

}  // namespace centaur::eval
