// ScenarioSpec — the unified experiment description.
//
// One value describes a whole reliability experiment: the topology (loaded
// or generated), the protocol under test, its RunOptions, the run seed, and
// the fault script.  It replaces the ad-hoc per-experiment entry points
// (bench mains wiring topology + protocol + flips by hand): everything the
// campaign engine needs is in the spec, so a scenario can come from C++
// code, from the `centaur campaign` CLI, or from a small JSON description:
//
//   {
//     "name": "reliability_smoke",
//     "topology": {"style": "brite", "nodes": 60, "seed": 7},
//     "protocol": "centaur",            // centaur|bgp|bgp-rcn|ospf
//     "seed": 1,                        // run seed (per-link delays)
//     "mrai": 0,                        // BGP MRAI seconds (optional)
//     "check": "collect",               // off|collect|assert (optional)
//     "srlgs": [[0, 1, 2]],             // shared-risk link groups
//     "partitions": [[0, 1, 2, 3]],     // partition side-A node sets
//     "phases": [
//       {"name": "burst", "actions": [{"do": "srlg_down", "group": 0}]},
//       {"name": "mend",  "actions": [{"do": "srlg_up",   "group": 0}]},
//       {"name": "storm", "actions": [
//           {"do": "flap_storm", "link": 3, "cycles": 3, "period": 0.002}]}
//     ]
//   }
//
// A topology may instead be {"file": "topo.txt"} (CAIDA as-rel format).
// Action objects take: "do" (an ActionKind spelling from fault_script.hpp),
// optional "at" offset seconds, and the kind's operand — "link", "node",
// "group", plus "cycles"/"period" for flap storms, "target" for
// interceptions, and "rel" (customer|provider|peer — the new role of the
// link's b endpoint relative to a) for rel_change.  The parser rejects
// unknown keys so typos fail loudly instead of silently no-opping, and
// rejects negative "at" offsets at parse time with the offending position.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "eval/protocol_config.hpp"
#include "faults/fault_script.hpp"
#include "topology/as_graph.hpp"

namespace centaur::faults {

/// Where the AS graph comes from.  `file` wins when non-empty; otherwise a
/// synthetic topology is generated (style x nodes x seed, the same
/// constructions `centaur generate` uses — "brite" matches the Fig 6/8
/// prototype topology formula exactly).
struct TopologySpec {
  std::string file;
  std::string style = "brite";  ///< caida | hetop | brite
  std::size_t nodes = 100;
  std::uint64_t seed = 1;

  /// Builds the graph; throws std::invalid_argument on unknown style and
  /// std::runtime_error on unreadable files.
  topo::AsGraph build() const;
};

/// The unified experiment description (see file header).
struct ScenarioSpec {
  std::string name = "scenario";
  TopologySpec topology;
  eval::Protocol protocol = eval::Protocol::kCentaur;
  eval::RunOptions options;
  std::uint64_t seed = 1;  ///< run seed: per-link delay draws
  FaultScript script;
};

/// Parses the JSON scenario description.  Throws std::runtime_error with
/// the offending key/position on malformed input.  The result's script is
/// *not* yet validated against a topology (run_scenario / the engine does
/// that once the graph exists).
ScenarioSpec parse_scenario_json(const std::string& text);

/// parse_scenario_json over a file's contents.
ScenarioSpec load_scenario_file(const std::string& path);

/// The canonical reliability campaign over an existing graph, derived
/// deterministically from `seed`: an SRLG burst at the highest-degree node
/// (correlated failure of its first <= 3 links) + heal, a crash/restart of
/// a multi-homed node, a 3-cycle flap storm (2 ms period, inside the 0-5 ms
/// delay band so transitions overlap in flight and MRAI batching engages),
/// and a partition/heal cycle across a BFS-grown half cut.
FaultScript make_reliability_script(const topo::AsGraph& graph,
                                    std::uint64_t seed);

/// Full spec for the canonical campaign on the Fig 6 prototype topology
/// (BRITE-style, `nodes` nodes, topology seed `base_seed ^ 0xF160` — the
/// exact bench_fig6 construction).
ScenarioSpec reliability_scenario(std::size_t nodes, std::uint64_t base_seed);

// ------------------------------------------- adversarial packs -----------
//
// The three builtin adversarial scenario packs (DESIGN.md §15).  Each picks
// its adversary/victim deterministically from the generated topology (by
// degree rank, so the choice is stable under the fixed topology seed), runs
// an adversary-on phase followed by an adversary-off phase, and validates
// the script before returning.  `scenarios/*.json` commit the same packs
// for the CLI; these builders are what the tests and bench harness use.

/// Route-leak pack: a mid-degree node starts re-exporting its full table to
/// peers and providers (valley-freeness violation), then stops.
ScenarioSpec route_leak_scenario(std::size_t nodes, std::uint64_t base_seed);

/// Interception pack: a node claims a fabricated customer route to a victim
/// it has no business with, blackholing the traffic, then withdraws it.
ScenarioSpec interception_scenario(std::size_t nodes,
                                   std::uint64_t base_seed);

/// Policy-churn pack: a node flips its peer/provider preference classes,
/// then a provider switch rewires a link's relationship there and back,
/// and finally the preference flip is restored.
ScenarioSpec policy_churn_scenario(std::size_t nodes,
                                   std::uint64_t base_seed);

}  // namespace centaur::faults
