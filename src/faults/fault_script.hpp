// Fault-event taxonomy: a deterministic, schedulable stream of fault events.
//
// A FaultScript is pure data — no simulator or protocol dependencies — so it
// can be built programmatically, parsed from a scenario file
// (src/faults/scenario.hpp), validated against a topology, and replayed
// bit-identically by the campaign engine (src/faults/campaign.hpp).
//
// Structure: a script is an ordered list of *phases*.  Each phase applies
// its actions (at deterministic offsets from the phase start), runs the
// simulation to quiescence, triggers an invariant-analyzer sweep, and is
// measured as one convergence window — the unit the per-phase reports and
// the paper's "wait till the routing protocol converges" methodology use.
//
// Event kinds (ROADMAP "failure-injection campaigns"):
//   * single link down/up — the classic sequential flip,
//   * shared-risk link group (SRLG) down/up — correlated failures: every
//     link in the group transitions in the same simulated instant,
//   * node crash/restart — the instance stops abruptly (it does not react
//     to its own links going down), neighbors see session resets; restart
//     attaches a fresh instance that re-learns its P-graph/RIB through the
//     normal session-establishment exchange,
//   * partition/heal — every link crossing a node-set cut goes down, and
//     the heal restores exactly the links the partition took down,
//   * flap storm — a link cycles down/up at a fixed period without waiting
//     for convergence between transitions (interacts with BGP MRAI).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "topology/as_graph.hpp"

namespace centaur::faults {

enum class ActionKind {
  kLinkDown,
  kLinkUp,
  kSrlgDown,     ///< every link of srlgs[group] down, same instant
  kSrlgUp,       ///< every link of srlgs[group] up, same instant
  kNodeCrash,    ///< wipe the instance, take its up links down
  kNodeRestart,  ///< fresh instance, restore the links the crash took down
  kPartition,    ///< down every up link crossing partitions[group]'s cut
  kHeal,         ///< restore the links the matching kPartition took down
  kFlapStorm,    ///< `cycles` down/up cycles on `link`, one transition per
                 ///< `period` seconds, no convergence wait in between
};

const char* to_string(ActionKind k);

/// One scheduled fault.  Which fields are meaningful depends on `kind`;
/// FaultScript::validate() enforces it.
struct FaultAction {
  ActionKind kind = ActionKind::kLinkDown;
  /// Offset from the phase start, seconds (>= 0).  Actions at offset 0 are
  /// applied synchronously in script order before the phase runs; later
  /// offsets are scheduled on the simulator.
  sim::Time at = 0;
  topo::LinkId link = 0;      ///< kLinkDown/kLinkUp/kFlapStorm
  topo::NodeId node = 0;      ///< kNodeCrash/kNodeRestart
  std::size_t group = 0;      ///< kSrlgDown/kSrlgUp -> srlgs index;
                              ///< kPartition/kHeal -> partitions index
  std::uint32_t cycles = 0;   ///< kFlapStorm: down+up cycles (>= 1)
  sim::Time period = 0;       ///< kFlapStorm: seconds between transitions

  static FaultAction link_down(topo::LinkId l, sim::Time at = 0);
  static FaultAction link_up(topo::LinkId l, sim::Time at = 0);
  static FaultAction srlg_down(std::size_t group, sim::Time at = 0);
  static FaultAction srlg_up(std::size_t group, sim::Time at = 0);
  static FaultAction node_crash(topo::NodeId n, sim::Time at = 0);
  static FaultAction node_restart(topo::NodeId n, sim::Time at = 0);
  static FaultAction partition(std::size_t group, sim::Time at = 0);
  static FaultAction heal(std::size_t group, sim::Time at = 0);
  static FaultAction flap_storm(topo::LinkId l, std::uint32_t cycles,
                                sim::Time period, sim::Time at = 0);
};

/// One measured campaign step: apply actions, converge, sweep invariants.
struct FaultPhase {
  std::string name;
  std::vector<FaultAction> actions;
};

/// A full campaign: shared-risk/partition group tables plus the phases.
struct FaultScript {
  /// Shared-risk link groups, referenced by kSrlgDown/kSrlgUp `group`.
  std::vector<std::vector<topo::LinkId>> srlgs;
  /// Partition side-A node sets, referenced by kPartition/kHeal `group`.
  /// The cut is every link with exactly one endpoint in the set.
  std::vector<std::vector<topo::NodeId>> partitions;
  std::vector<FaultPhase> phases;

  std::size_t total_actions() const;

  /// Structural validation against a topology: ids in range, SRLGs and
  /// partition sides non-empty (and sides a strict subset of the nodes),
  /// flap storms with cycles >= 1 and period > 0, offsets >= 0, and
  /// crash/restart well-paired in script order (no restart without a crash,
  /// no double crash, no link/SRLG/flap action naming a link incident to a
  /// node while it is crashed).  Throws std::invalid_argument with context.
  void validate(const topo::AsGraph& graph) const;
};

}  // namespace centaur::faults
