// Fault-event taxonomy: a deterministic, schedulable stream of fault events.
//
// A FaultScript is pure data — no simulator or protocol dependencies — so it
// can be built programmatically, parsed from a scenario file
// (src/faults/scenario.hpp), validated against a topology, and replayed
// bit-identically by the campaign engine (src/faults/campaign.hpp).
//
// Structure: a script is an ordered list of *phases*.  Each phase applies
// its actions (at deterministic offsets from the phase start), runs the
// simulation to quiescence, triggers an invariant-analyzer sweep, and is
// measured as one convergence window — the unit the per-phase reports and
// the paper's "wait till the routing protocol converges" methodology use.
//
// Event kinds (ROADMAP "failure-injection campaigns"):
//   * single link down/up — the classic sequential flip,
//   * shared-risk link group (SRLG) down/up — correlated failures: every
//     link in the group transitions in the same simulated instant,
//   * node crash/restart — the instance stops abruptly (it does not react
//     to its own links going down), neighbors see session resets; restart
//     attaches a fresh instance that re-learns its P-graph/RIB through the
//     normal session-establishment exchange,
//   * partition/heal — every link crossing a node-set cut goes down, and
//     the heal restores exactly the links the partition took down,
//   * flap storm — a link cycles down/up at a fixed period without waiting
//     for convergence between transitions (interacts with BGP MRAI).
//
// Adversarial kinds (DESIGN.md §15; ROADMAP "adversarial & policy-churn
// scenario packs"):
//   * route leak / stop — a node mis-exports provider/peer routes to other
//     providers/peers, violating Gao-Rexford valley-freeness,
//   * intercept / stop — a node announces a fabricated direct route to a
//     destination it does not own (`target`) and blackholes the traffic,
//   * local-pref flip / restore — runtime policy churn: a node swaps its
//     peer/provider preference classes,
//   * rel change — the operator-plane provider switch: rewires a link's
//     business relationship (`rel`) and notifies every node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "topology/as_graph.hpp"

namespace centaur::faults {

enum class ActionKind {
  kLinkDown,
  kLinkUp,
  kSrlgDown,     ///< every link of srlgs[group] down, same instant
  kSrlgUp,       ///< every link of srlgs[group] up, same instant
  kNodeCrash,    ///< wipe the instance, take its up links down
  kNodeRestart,  ///< fresh instance, restore the links the crash took down
  kPartition,    ///< down every up link crossing partitions[group]'s cut
  kHeal,         ///< restore the links the matching kPartition took down
  kFlapStorm,    ///< `cycles` down/up cycles on `link`, one transition per
                 ///< `period` seconds, no convergence wait in between
  kRouteLeak,        ///< `node` starts mis-exporting its full route table
  kRouteLeakStop,    ///< `node` stops leaking (sessions re-baseline)
  kIntercept,        ///< `node` claims `target` as a fabricated customer
  kInterceptStop,    ///< `node` withdraws the interception of `target`
  kLocalPrefFlip,    ///< `node` swaps peer/provider preference classes
  kLocalPrefRestore, ///< `node` reverts to the standard ranking
  kRelChange,        ///< rewire `link`'s business relationship to `rel`
};

const char* to_string(ActionKind k);

/// One scheduled fault.  Which fields are meaningful depends on `kind`;
/// FaultScript::validate() enforces it.
struct FaultAction {
  ActionKind kind = ActionKind::kLinkDown;
  /// Offset from the phase start, seconds (>= 0).  Actions at offset 0 are
  /// applied synchronously in script order before the phase runs; later
  /// offsets are scheduled on the simulator.
  sim::Time at = 0;
  topo::LinkId link = 0;      ///< kLinkDown/kLinkUp/kFlapStorm/kRelChange
  topo::NodeId node = 0;      ///< kNodeCrash/kNodeRestart and the
                              ///< adversarial kinds (the misbehaving AS)
  std::size_t group = 0;      ///< kSrlgDown/kSrlgUp -> srlgs index;
                              ///< kPartition/kHeal -> partitions index
  std::uint32_t cycles = 0;   ///< kFlapStorm: down+up cycles (>= 1)
  sim::Time period = 0;       ///< kFlapStorm: seconds between transitions
  topo::NodeId target = 0;    ///< kIntercept/kInterceptStop: the victim
  /// kRelChange: the new role of link.b relative to link.a.
  topo::Relationship rel = topo::Relationship::kPeer;

  static FaultAction link_down(topo::LinkId l, sim::Time at = 0);
  static FaultAction link_up(topo::LinkId l, sim::Time at = 0);
  static FaultAction srlg_down(std::size_t group, sim::Time at = 0);
  static FaultAction srlg_up(std::size_t group, sim::Time at = 0);
  static FaultAction node_crash(topo::NodeId n, sim::Time at = 0);
  static FaultAction node_restart(topo::NodeId n, sim::Time at = 0);
  static FaultAction partition(std::size_t group, sim::Time at = 0);
  static FaultAction heal(std::size_t group, sim::Time at = 0);
  static FaultAction flap_storm(topo::LinkId l, std::uint32_t cycles,
                                sim::Time period, sim::Time at = 0);
  static FaultAction route_leak(topo::NodeId n, sim::Time at = 0);
  static FaultAction route_leak_stop(topo::NodeId n, sim::Time at = 0);
  static FaultAction intercept(topo::NodeId n, topo::NodeId victim,
                               sim::Time at = 0);
  static FaultAction intercept_stop(topo::NodeId n, topo::NodeId victim,
                                    sim::Time at = 0);
  static FaultAction local_pref_flip(topo::NodeId n, sim::Time at = 0);
  static FaultAction local_pref_restore(topo::NodeId n, sim::Time at = 0);
  static FaultAction rel_change(topo::LinkId l, topo::Relationship rel,
                                sim::Time at = 0);
};

/// One measured campaign step: apply actions, converge, sweep invariants.
struct FaultPhase {
  std::string name;
  std::vector<FaultAction> actions;
};

/// A full campaign: shared-risk/partition group tables plus the phases.
struct FaultScript {
  /// Shared-risk link groups, referenced by kSrlgDown/kSrlgUp `group`.
  std::vector<std::vector<topo::LinkId>> srlgs;
  /// Partition side-A node sets, referenced by kPartition/kHeal `group`.
  /// The cut is every link with exactly one endpoint in the set.
  std::vector<std::vector<topo::NodeId>> partitions;
  std::vector<FaultPhase> phases;

  std::size_t total_actions() const;

  /// Structural validation against a topology: ids in range, SRLGs and
  /// partition sides non-empty (and sides a strict subset of the nodes),
  /// flap storms with cycles >= 1 and period > 0, offsets >= 0, and
  /// crash/restart well-paired in script order (no restart without a crash,
  /// no double crash, no link/SRLG/flap action naming a link incident to a
  /// node while it is crashed).  Explicit link downs/ups must pair too: no
  /// double-down (including overlapping SRLGs), no up of a link that is not
  /// explicitly down, no flap storm on a downed link.  Adversarial kinds
  /// pair start/stop per node, reject self-interception, reject sibling
  /// rewires, and may not name crashed nodes — nor may a node crash while
  /// its adversarial state is active (a restart would silently drop it).
  /// Throws std::invalid_argument with context.
  void validate(const topo::AsGraph& graph) const;
};

}  // namespace centaur::faults
