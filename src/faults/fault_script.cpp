#include "faults/fault_script.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <string>

namespace centaur::faults {

const char* to_string(ActionKind k) {
  switch (k) {
    case ActionKind::kLinkDown:
      return "link_down";
    case ActionKind::kLinkUp:
      return "link_up";
    case ActionKind::kSrlgDown:
      return "srlg_down";
    case ActionKind::kSrlgUp:
      return "srlg_up";
    case ActionKind::kNodeCrash:
      return "node_crash";
    case ActionKind::kNodeRestart:
      return "node_restart";
    case ActionKind::kPartition:
      return "partition";
    case ActionKind::kHeal:
      return "heal";
    case ActionKind::kFlapStorm:
      return "flap_storm";
    case ActionKind::kRouteLeak:
      return "route_leak";
    case ActionKind::kRouteLeakStop:
      return "route_leak_stop";
    case ActionKind::kIntercept:
      return "intercept";
    case ActionKind::kInterceptStop:
      return "intercept_stop";
    case ActionKind::kLocalPrefFlip:
      return "local_pref_flip";
    case ActionKind::kLocalPrefRestore:
      return "local_pref_restore";
    case ActionKind::kRelChange:
      return "rel_change";
  }
  return "?";
}

FaultAction FaultAction::link_down(topo::LinkId l, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kLinkDown;
  a.link = l;
  a.at = at;
  return a;
}

FaultAction FaultAction::link_up(topo::LinkId l, sim::Time at) {
  FaultAction a = link_down(l, at);
  a.kind = ActionKind::kLinkUp;
  return a;
}

FaultAction FaultAction::srlg_down(std::size_t group, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kSrlgDown;
  a.group = group;
  a.at = at;
  return a;
}

FaultAction FaultAction::srlg_up(std::size_t group, sim::Time at) {
  FaultAction a = srlg_down(group, at);
  a.kind = ActionKind::kSrlgUp;
  return a;
}

FaultAction FaultAction::node_crash(topo::NodeId n, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kNodeCrash;
  a.node = n;
  a.at = at;
  return a;
}

FaultAction FaultAction::node_restart(topo::NodeId n, sim::Time at) {
  FaultAction a = node_crash(n, at);
  a.kind = ActionKind::kNodeRestart;
  return a;
}

FaultAction FaultAction::partition(std::size_t group, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kPartition;
  a.group = group;
  a.at = at;
  return a;
}

FaultAction FaultAction::heal(std::size_t group, sim::Time at) {
  FaultAction a = partition(group, at);
  a.kind = ActionKind::kHeal;
  return a;
}

FaultAction FaultAction::flap_storm(topo::LinkId l, std::uint32_t cycles,
                                    sim::Time period, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kFlapStorm;
  a.link = l;
  a.cycles = cycles;
  a.period = period;
  a.at = at;
  return a;
}

FaultAction FaultAction::route_leak(topo::NodeId n, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kRouteLeak;
  a.node = n;
  a.at = at;
  return a;
}

FaultAction FaultAction::route_leak_stop(topo::NodeId n, sim::Time at) {
  FaultAction a = route_leak(n, at);
  a.kind = ActionKind::kRouteLeakStop;
  return a;
}

FaultAction FaultAction::intercept(topo::NodeId n, topo::NodeId victim,
                                   sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kIntercept;
  a.node = n;
  a.target = victim;
  a.at = at;
  return a;
}

FaultAction FaultAction::intercept_stop(topo::NodeId n, topo::NodeId victim,
                                        sim::Time at) {
  FaultAction a = intercept(n, victim, at);
  a.kind = ActionKind::kInterceptStop;
  return a;
}

FaultAction FaultAction::local_pref_flip(topo::NodeId n, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kLocalPrefFlip;
  a.node = n;
  a.at = at;
  return a;
}

FaultAction FaultAction::local_pref_restore(topo::NodeId n, sim::Time at) {
  FaultAction a = local_pref_flip(n, at);
  a.kind = ActionKind::kLocalPrefRestore;
  return a;
}

FaultAction FaultAction::rel_change(topo::LinkId l, topo::Relationship rel,
                                    sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kRelChange;
  a.link = l;
  a.rel = rel;
  a.at = at;
  return a;
}

std::size_t FaultScript::total_actions() const {
  std::size_t n = 0;
  for (const FaultPhase& p : phases) n += p.actions.size();
  return n;
}

namespace {

[[noreturn]] void invalid(const std::string& where, const std::string& what) {
  throw std::invalid_argument("fault script: " + where + ": " + what);
}

void check_link(const topo::AsGraph& graph, const std::set<topo::NodeId>& dead,
                topo::LinkId l, const std::string& where) {
  if (l >= graph.num_links()) {
    invalid(where, "link " + std::to_string(l) + " out of range");
  }
  const topo::Link& lk = graph.link(l);
  for (const topo::NodeId end : {lk.a, lk.b}) {
    if (dead.count(end)) {
      invalid(where, "link " + std::to_string(l) +
                         " touches crashed node " + std::to_string(end));
    }
  }
}

}  // namespace

void FaultScript::validate(const topo::AsGraph& graph) const {
  for (std::size_t g = 0; g < srlgs.size(); ++g) {
    if (srlgs[g].empty()) invalid("srlgs[" + std::to_string(g) + "]", "empty");
    for (const topo::LinkId l : srlgs[g]) {
      if (l >= graph.num_links()) {
        invalid("srlgs[" + std::to_string(g) + "]",
                "link " + std::to_string(l) + " out of range");
      }
    }
  }
  for (std::size_t g = 0; g < partitions.size(); ++g) {
    const std::string where = "partitions[" + std::to_string(g) + "]";
    if (partitions[g].empty()) invalid(where, "empty side");
    if (partitions[g].size() >= graph.num_nodes()) {
      invalid(where, "side must be a strict subset of the nodes");
    }
    for (const topo::NodeId n : partitions[g]) {
      if (n >= graph.num_nodes()) {
        invalid(where, "node " + std::to_string(n) + " out of range");
      }
    }
  }

  // Walk the script in execution order, tracking crashed nodes, active
  // partitions, explicit link downs, and adversarial state so pairing
  // errors (double-down, heal-less up, stop-less start, crash of an active
  // adversary) are caught before a campaign starts.
  std::set<topo::NodeId> dead;
  std::set<std::size_t> cut_active;
  std::set<topo::LinkId> link_down_active;
  std::set<topo::NodeId> leaking;
  std::set<topo::NodeId> pref_flipped;
  std::map<topo::NodeId, topo::NodeId> intercepting;  // node -> victim
  const auto check_live_node = [&](topo::NodeId n, const std::string& where) {
    if (n >= graph.num_nodes()) invalid(where, "node out of range");
    if (dead.count(n)) {
      invalid(where, "node " + std::to_string(n) + " is crashed");
    }
  };
  for (std::size_t pi = 0; pi < phases.size(); ++pi) {
    const FaultPhase& phase = phases[pi];
    if (phase.name.empty()) {
      invalid("phases[" + std::to_string(pi) + "]", "unnamed phase");
    }
    for (std::size_t ai = 0; ai < phase.actions.size(); ++ai) {
      const FaultAction& a = phase.actions[ai];
      const std::string where =
          phase.name + "/actions[" + std::to_string(ai) + "] (" +
          to_string(a.kind) + ")";
      if (a.at < 0) invalid(where, "negative offset");
      switch (a.kind) {
        case ActionKind::kLinkDown:
          check_link(graph, dead, a.link, where);
          if (!link_down_active.insert(a.link).second) {
            invalid(where, "link " + std::to_string(a.link) +
                               " is already down (overlapping down)");
          }
          break;
        case ActionKind::kLinkUp:
          check_link(graph, dead, a.link, where);
          if (link_down_active.erase(a.link) == 0) {
            invalid(where,
                    "link " + std::to_string(a.link) + " is not down");
          }
          break;
        case ActionKind::kFlapStorm:
          check_link(graph, dead, a.link, where);
          if (link_down_active.count(a.link)) {
            invalid(where, "link " + std::to_string(a.link) +
                               " is down (storm starts with a down)");
          }
          if (a.cycles == 0) invalid(where, "cycles must be >= 1");
          if (a.period <= 0) invalid(where, "period must be > 0");
          break;
        case ActionKind::kSrlgDown:
          if (a.group >= srlgs.size()) invalid(where, "no such SRLG");
          for (const topo::LinkId l : srlgs[a.group]) {
            check_link(graph, dead, l, where);
            if (!link_down_active.insert(l).second) {
              invalid(where, "link " + std::to_string(l) +
                                 " is already down (overlapping down)");
            }
          }
          break;
        case ActionKind::kSrlgUp:
          if (a.group >= srlgs.size()) invalid(where, "no such SRLG");
          for (const topo::LinkId l : srlgs[a.group]) {
            check_link(graph, dead, l, where);
            if (link_down_active.erase(l) == 0) {
              invalid(where, "link " + std::to_string(l) + " is not down");
            }
          }
          break;
        case ActionKind::kNodeCrash:
          if (a.node >= graph.num_nodes()) invalid(where, "node out of range");
          if (leaking.count(a.node) || pref_flipped.count(a.node) ||
              intercepting.count(a.node)) {
            invalid(where, "node " + std::to_string(a.node) +
                               " has active adversarial state (a restart "
                               "would silently drop it)");
          }
          if (!dead.insert(a.node).second) invalid(where, "already crashed");
          break;
        case ActionKind::kNodeRestart:
          if (a.node >= graph.num_nodes()) invalid(where, "node out of range");
          if (dead.erase(a.node) == 0) invalid(where, "node is not crashed");
          break;
        case ActionKind::kPartition:
          if (a.group >= partitions.size()) invalid(where, "no such partition");
          if (!cut_active.insert(a.group).second) {
            invalid(where, "partition already active");
          }
          break;
        case ActionKind::kHeal:
          if (a.group >= partitions.size()) invalid(where, "no such partition");
          if (cut_active.erase(a.group) == 0) {
            invalid(where, "partition is not active");
          }
          break;
        case ActionKind::kRouteLeak:
          check_live_node(a.node, where);
          if (!leaking.insert(a.node).second) {
            invalid(where, "node is already leaking");
          }
          break;
        case ActionKind::kRouteLeakStop:
          check_live_node(a.node, where);
          if (leaking.erase(a.node) == 0) {
            invalid(where, "node is not leaking");
          }
          break;
        case ActionKind::kIntercept: {
          check_live_node(a.node, where);
          if (a.target >= graph.num_nodes()) {
            invalid(where, "target out of range");
          }
          if (a.target == a.node) invalid(where, "cannot intercept self");
          if (!intercepting.emplace(a.node, a.target).second) {
            invalid(where, "node is already intercepting");
          }
          break;
        }
        case ActionKind::kInterceptStop: {
          check_live_node(a.node, where);
          const auto it = intercepting.find(a.node);
          if (it == intercepting.end()) {
            invalid(where, "node is not intercepting");
          }
          if (it->second != a.target) {
            invalid(where, "target does not match the active interception");
          }
          intercepting.erase(it);
          break;
        }
        case ActionKind::kLocalPrefFlip:
          check_live_node(a.node, where);
          if (!pref_flipped.insert(a.node).second) {
            invalid(where, "ranking is already flipped");
          }
          break;
        case ActionKind::kLocalPrefRestore:
          check_live_node(a.node, where);
          if (pref_flipped.erase(a.node) == 0) {
            invalid(where, "ranking is not flipped");
          }
          break;
        case ActionKind::kRelChange:
          check_link(graph, dead, a.link, where);
          if (a.rel == topo::Relationship::kSibling) {
            invalid(where, "sibling rewires are not supported");
          }
          break;
      }
    }
  }
}

}  // namespace centaur::faults
