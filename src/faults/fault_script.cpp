#include "faults/fault_script.hpp"

#include <set>
#include <stdexcept>
#include <string>

namespace centaur::faults {

const char* to_string(ActionKind k) {
  switch (k) {
    case ActionKind::kLinkDown:
      return "link_down";
    case ActionKind::kLinkUp:
      return "link_up";
    case ActionKind::kSrlgDown:
      return "srlg_down";
    case ActionKind::kSrlgUp:
      return "srlg_up";
    case ActionKind::kNodeCrash:
      return "node_crash";
    case ActionKind::kNodeRestart:
      return "node_restart";
    case ActionKind::kPartition:
      return "partition";
    case ActionKind::kHeal:
      return "heal";
    case ActionKind::kFlapStorm:
      return "flap_storm";
  }
  return "?";
}

FaultAction FaultAction::link_down(topo::LinkId l, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kLinkDown;
  a.link = l;
  a.at = at;
  return a;
}

FaultAction FaultAction::link_up(topo::LinkId l, sim::Time at) {
  FaultAction a = link_down(l, at);
  a.kind = ActionKind::kLinkUp;
  return a;
}

FaultAction FaultAction::srlg_down(std::size_t group, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kSrlgDown;
  a.group = group;
  a.at = at;
  return a;
}

FaultAction FaultAction::srlg_up(std::size_t group, sim::Time at) {
  FaultAction a = srlg_down(group, at);
  a.kind = ActionKind::kSrlgUp;
  return a;
}

FaultAction FaultAction::node_crash(topo::NodeId n, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kNodeCrash;
  a.node = n;
  a.at = at;
  return a;
}

FaultAction FaultAction::node_restart(topo::NodeId n, sim::Time at) {
  FaultAction a = node_crash(n, at);
  a.kind = ActionKind::kNodeRestart;
  return a;
}

FaultAction FaultAction::partition(std::size_t group, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kPartition;
  a.group = group;
  a.at = at;
  return a;
}

FaultAction FaultAction::heal(std::size_t group, sim::Time at) {
  FaultAction a = partition(group, at);
  a.kind = ActionKind::kHeal;
  return a;
}

FaultAction FaultAction::flap_storm(topo::LinkId l, std::uint32_t cycles,
                                    sim::Time period, sim::Time at) {
  FaultAction a;
  a.kind = ActionKind::kFlapStorm;
  a.link = l;
  a.cycles = cycles;
  a.period = period;
  a.at = at;
  return a;
}

std::size_t FaultScript::total_actions() const {
  std::size_t n = 0;
  for (const FaultPhase& p : phases) n += p.actions.size();
  return n;
}

namespace {

[[noreturn]] void invalid(const std::string& where, const std::string& what) {
  throw std::invalid_argument("fault script: " + where + ": " + what);
}

void check_link(const topo::AsGraph& graph, const std::set<topo::NodeId>& dead,
                topo::LinkId l, const std::string& where) {
  if (l >= graph.num_links()) {
    invalid(where, "link " + std::to_string(l) + " out of range");
  }
  const topo::Link& lk = graph.link(l);
  for (const topo::NodeId end : {lk.a, lk.b}) {
    if (dead.count(end)) {
      invalid(where, "link " + std::to_string(l) +
                         " touches crashed node " + std::to_string(end));
    }
  }
}

}  // namespace

void FaultScript::validate(const topo::AsGraph& graph) const {
  for (std::size_t g = 0; g < srlgs.size(); ++g) {
    if (srlgs[g].empty()) invalid("srlgs[" + std::to_string(g) + "]", "empty");
    for (const topo::LinkId l : srlgs[g]) {
      if (l >= graph.num_links()) {
        invalid("srlgs[" + std::to_string(g) + "]",
                "link " + std::to_string(l) + " out of range");
      }
    }
  }
  for (std::size_t g = 0; g < partitions.size(); ++g) {
    const std::string where = "partitions[" + std::to_string(g) + "]";
    if (partitions[g].empty()) invalid(where, "empty side");
    if (partitions[g].size() >= graph.num_nodes()) {
      invalid(where, "side must be a strict subset of the nodes");
    }
    for (const topo::NodeId n : partitions[g]) {
      if (n >= graph.num_nodes()) {
        invalid(where, "node " + std::to_string(n) + " out of range");
      }
    }
  }

  // Walk the script in execution order, tracking crashed nodes and active
  // partitions so pairing errors are caught before a campaign starts.
  std::set<topo::NodeId> dead;
  std::set<std::size_t> cut_active;
  for (std::size_t pi = 0; pi < phases.size(); ++pi) {
    const FaultPhase& phase = phases[pi];
    if (phase.name.empty()) {
      invalid("phases[" + std::to_string(pi) + "]", "unnamed phase");
    }
    for (std::size_t ai = 0; ai < phase.actions.size(); ++ai) {
      const FaultAction& a = phase.actions[ai];
      const std::string where =
          phase.name + "/actions[" + std::to_string(ai) + "] (" +
          to_string(a.kind) + ")";
      if (a.at < 0) invalid(where, "negative offset");
      switch (a.kind) {
        case ActionKind::kLinkDown:
        case ActionKind::kLinkUp:
          check_link(graph, dead, a.link, where);
          break;
        case ActionKind::kFlapStorm:
          check_link(graph, dead, a.link, where);
          if (a.cycles == 0) invalid(where, "cycles must be >= 1");
          if (a.period <= 0) invalid(where, "period must be > 0");
          break;
        case ActionKind::kSrlgDown:
        case ActionKind::kSrlgUp:
          if (a.group >= srlgs.size()) invalid(where, "no such SRLG");
          for (const topo::LinkId l : srlgs[a.group]) {
            check_link(graph, dead, l, where);
          }
          break;
        case ActionKind::kNodeCrash:
          if (a.node >= graph.num_nodes()) invalid(where, "node out of range");
          if (!dead.insert(a.node).second) invalid(where, "already crashed");
          break;
        case ActionKind::kNodeRestart:
          if (a.node >= graph.num_nodes()) invalid(where, "node out of range");
          if (dead.erase(a.node) == 0) invalid(where, "node is not crashed");
          break;
        case ActionKind::kPartition:
          if (a.group >= partitions.size()) invalid(where, "no such partition");
          if (!cut_active.insert(a.group).second) {
            invalid(where, "partition already active");
          }
          break;
        case ActionKind::kHeal:
          if (a.group >= partitions.size()) invalid(where, "no such partition");
          if (cut_active.erase(a.group) == 0) {
            invalid(where, "partition is not active");
          }
          break;
      }
    }
  }
}

}  // namespace centaur::faults
