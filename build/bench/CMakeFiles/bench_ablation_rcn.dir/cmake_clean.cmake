file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rcn.dir/bench_ablation_rcn.cpp.o"
  "CMakeFiles/bench_ablation_rcn.dir/bench_ablation_rcn.cpp.o.d"
  "bench_ablation_rcn"
  "bench_ablation_rcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
