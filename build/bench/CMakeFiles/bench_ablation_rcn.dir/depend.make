# Empty dependencies file for bench_ablation_rcn.
# This may be replaced when dependencies are built.
