file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_permlists.dir/bench_table5_permlists.cpp.o"
  "CMakeFiles/bench_table5_permlists.dir/bench_table5_permlists.cpp.o.d"
  "bench_table5_permlists"
  "bench_table5_permlists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_permlists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
