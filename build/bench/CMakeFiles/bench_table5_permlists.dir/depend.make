# Empty dependencies file for bench_table5_permlists.
# This may be replaced when dependencies are built.
