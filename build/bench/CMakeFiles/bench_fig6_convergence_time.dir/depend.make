# Empty dependencies file for bench_fig6_convergence_time.
# This may be replaced when dependencies are built.
