# Empty compiler generated dependencies file for bench_fig5_failure_overhead.
# This may be replaced when dependencies are built.
