# Empty compiler generated dependencies file for bench_fig7_convergence_load.
# This may be replaced when dependencies are built.
