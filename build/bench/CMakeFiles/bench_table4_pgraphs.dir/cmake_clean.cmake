file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_pgraphs.dir/bench_table4_pgraphs.cpp.o"
  "CMakeFiles/bench_table4_pgraphs.dir/bench_table4_pgraphs.cpp.o.d"
  "bench_table4_pgraphs"
  "bench_table4_pgraphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_pgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
