file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_centaur.dir/bench_micro_centaur.cpp.o"
  "CMakeFiles/bench_micro_centaur.dir/bench_micro_centaur.cpp.o.d"
  "bench_micro_centaur"
  "bench_micro_centaur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_centaur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
