# Empty compiler generated dependencies file for bench_micro_centaur.
# This may be replaced when dependencies are built.
