file(REMOVE_RECURSE
  "CMakeFiles/centaur_bgp.dir/bgp_node.cpp.o"
  "CMakeFiles/centaur_bgp.dir/bgp_node.cpp.o.d"
  "libcentaur_bgp.a"
  "libcentaur_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
