# Empty compiler generated dependencies file for centaur_bgp.
# This may be replaced when dependencies are built.
