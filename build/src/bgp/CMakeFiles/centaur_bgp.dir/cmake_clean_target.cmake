file(REMOVE_RECURSE
  "libcentaur_bgp.a"
)
