file(REMOVE_RECURSE
  "libcentaur_topology.a"
)
