# Empty compiler generated dependencies file for centaur_topology.
# This may be replaced when dependencies are built.
