file(REMOVE_RECURSE
  "CMakeFiles/centaur_topology.dir/algorithms.cpp.o"
  "CMakeFiles/centaur_topology.dir/algorithms.cpp.o.d"
  "CMakeFiles/centaur_topology.dir/as_graph.cpp.o"
  "CMakeFiles/centaur_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/centaur_topology.dir/generator.cpp.o"
  "CMakeFiles/centaur_topology.dir/generator.cpp.o.d"
  "CMakeFiles/centaur_topology.dir/parser.cpp.o"
  "CMakeFiles/centaur_topology.dir/parser.cpp.o.d"
  "CMakeFiles/centaur_topology.dir/prefix.cpp.o"
  "CMakeFiles/centaur_topology.dir/prefix.cpp.o.d"
  "CMakeFiles/centaur_topology.dir/stats.cpp.o"
  "CMakeFiles/centaur_topology.dir/stats.cpp.o.d"
  "CMakeFiles/centaur_topology.dir/types.cpp.o"
  "CMakeFiles/centaur_topology.dir/types.cpp.o.d"
  "libcentaur_topology.a"
  "libcentaur_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
