
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/algorithms.cpp" "src/topology/CMakeFiles/centaur_topology.dir/algorithms.cpp.o" "gcc" "src/topology/CMakeFiles/centaur_topology.dir/algorithms.cpp.o.d"
  "/root/repo/src/topology/as_graph.cpp" "src/topology/CMakeFiles/centaur_topology.dir/as_graph.cpp.o" "gcc" "src/topology/CMakeFiles/centaur_topology.dir/as_graph.cpp.o.d"
  "/root/repo/src/topology/generator.cpp" "src/topology/CMakeFiles/centaur_topology.dir/generator.cpp.o" "gcc" "src/topology/CMakeFiles/centaur_topology.dir/generator.cpp.o.d"
  "/root/repo/src/topology/parser.cpp" "src/topology/CMakeFiles/centaur_topology.dir/parser.cpp.o" "gcc" "src/topology/CMakeFiles/centaur_topology.dir/parser.cpp.o.d"
  "/root/repo/src/topology/prefix.cpp" "src/topology/CMakeFiles/centaur_topology.dir/prefix.cpp.o" "gcc" "src/topology/CMakeFiles/centaur_topology.dir/prefix.cpp.o.d"
  "/root/repo/src/topology/stats.cpp" "src/topology/CMakeFiles/centaur_topology.dir/stats.cpp.o" "gcc" "src/topology/CMakeFiles/centaur_topology.dir/stats.cpp.o.d"
  "/root/repo/src/topology/types.cpp" "src/topology/CMakeFiles/centaur_topology.dir/types.cpp.o" "gcc" "src/topology/CMakeFiles/centaur_topology.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/centaur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
