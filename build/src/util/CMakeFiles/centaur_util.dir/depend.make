# Empty dependencies file for centaur_util.
# This may be replaced when dependencies are built.
