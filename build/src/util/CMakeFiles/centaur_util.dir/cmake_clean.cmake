file(REMOVE_RECURSE
  "CMakeFiles/centaur_util.dir/bloom.cpp.o"
  "CMakeFiles/centaur_util.dir/bloom.cpp.o.d"
  "CMakeFiles/centaur_util.dir/log.cpp.o"
  "CMakeFiles/centaur_util.dir/log.cpp.o.d"
  "CMakeFiles/centaur_util.dir/rng.cpp.o"
  "CMakeFiles/centaur_util.dir/rng.cpp.o.d"
  "CMakeFiles/centaur_util.dir/scale.cpp.o"
  "CMakeFiles/centaur_util.dir/scale.cpp.o.d"
  "CMakeFiles/centaur_util.dir/stats.cpp.o"
  "CMakeFiles/centaur_util.dir/stats.cpp.o.d"
  "CMakeFiles/centaur_util.dir/table.cpp.o"
  "CMakeFiles/centaur_util.dir/table.cpp.o.d"
  "libcentaur_util.a"
  "libcentaur_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
