file(REMOVE_RECURSE
  "libcentaur_util.a"
)
