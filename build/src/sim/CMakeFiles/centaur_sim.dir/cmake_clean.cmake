file(REMOVE_RECURSE
  "CMakeFiles/centaur_sim.dir/network.cpp.o"
  "CMakeFiles/centaur_sim.dir/network.cpp.o.d"
  "CMakeFiles/centaur_sim.dir/simulator.cpp.o"
  "CMakeFiles/centaur_sim.dir/simulator.cpp.o.d"
  "libcentaur_sim.a"
  "libcentaur_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
