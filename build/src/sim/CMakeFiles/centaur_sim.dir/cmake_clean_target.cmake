file(REMOVE_RECURSE
  "libcentaur_sim.a"
)
