# Empty compiler generated dependencies file for centaur_sim.
# This may be replaced when dependencies are built.
