# Empty dependencies file for centaur_linkstate.
# This may be replaced when dependencies are built.
