file(REMOVE_RECURSE
  "libcentaur_linkstate.a"
)
