file(REMOVE_RECURSE
  "CMakeFiles/centaur_linkstate.dir/ospf_node.cpp.o"
  "CMakeFiles/centaur_linkstate.dir/ospf_node.cpp.o.d"
  "libcentaur_linkstate.a"
  "libcentaur_linkstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_linkstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
