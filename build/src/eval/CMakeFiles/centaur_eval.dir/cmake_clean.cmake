file(REMOVE_RECURSE
  "CMakeFiles/centaur_eval.dir/experiments.cpp.o"
  "CMakeFiles/centaur_eval.dir/experiments.cpp.o.d"
  "CMakeFiles/centaur_eval.dir/static_eval.cpp.o"
  "CMakeFiles/centaur_eval.dir/static_eval.cpp.o.d"
  "libcentaur_eval.a"
  "libcentaur_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
