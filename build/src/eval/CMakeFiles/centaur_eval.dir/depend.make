# Empty dependencies file for centaur_eval.
# This may be replaced when dependencies are built.
