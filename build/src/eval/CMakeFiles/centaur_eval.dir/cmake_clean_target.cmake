file(REMOVE_RECURSE
  "libcentaur_eval.a"
)
