file(REMOVE_RECURSE
  "libcentaur_core.a"
)
