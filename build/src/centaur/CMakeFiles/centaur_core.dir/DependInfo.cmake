
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/centaur/announce.cpp" "src/centaur/CMakeFiles/centaur_core.dir/announce.cpp.o" "gcc" "src/centaur/CMakeFiles/centaur_core.dir/announce.cpp.o.d"
  "/root/repo/src/centaur/build_graph.cpp" "src/centaur/CMakeFiles/centaur_core.dir/build_graph.cpp.o" "gcc" "src/centaur/CMakeFiles/centaur_core.dir/build_graph.cpp.o.d"
  "/root/repo/src/centaur/centaur_node.cpp" "src/centaur/CMakeFiles/centaur_core.dir/centaur_node.cpp.o" "gcc" "src/centaur/CMakeFiles/centaur_core.dir/centaur_node.cpp.o.d"
  "/root/repo/src/centaur/permission_list.cpp" "src/centaur/CMakeFiles/centaur_core.dir/permission_list.cpp.o" "gcc" "src/centaur/CMakeFiles/centaur_core.dir/permission_list.cpp.o.d"
  "/root/repo/src/centaur/pgraph.cpp" "src/centaur/CMakeFiles/centaur_core.dir/pgraph.cpp.o" "gcc" "src/centaur/CMakeFiles/centaur_core.dir/pgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policy/CMakeFiles/centaur_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/centaur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/centaur_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/centaur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
