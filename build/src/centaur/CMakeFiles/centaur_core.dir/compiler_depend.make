# Empty compiler generated dependencies file for centaur_core.
# This may be replaced when dependencies are built.
