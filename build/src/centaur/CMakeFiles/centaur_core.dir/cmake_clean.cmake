file(REMOVE_RECURSE
  "CMakeFiles/centaur_core.dir/announce.cpp.o"
  "CMakeFiles/centaur_core.dir/announce.cpp.o.d"
  "CMakeFiles/centaur_core.dir/build_graph.cpp.o"
  "CMakeFiles/centaur_core.dir/build_graph.cpp.o.d"
  "CMakeFiles/centaur_core.dir/centaur_node.cpp.o"
  "CMakeFiles/centaur_core.dir/centaur_node.cpp.o.d"
  "CMakeFiles/centaur_core.dir/permission_list.cpp.o"
  "CMakeFiles/centaur_core.dir/permission_list.cpp.o.d"
  "CMakeFiles/centaur_core.dir/pgraph.cpp.o"
  "CMakeFiles/centaur_core.dir/pgraph.cpp.o.d"
  "libcentaur_core.a"
  "libcentaur_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
