file(REMOVE_RECURSE
  "libcentaur_policy.a"
)
