# Empty dependencies file for centaur_policy.
# This may be replaced when dependencies are built.
