file(REMOVE_RECURSE
  "CMakeFiles/centaur_policy.dir/policy.cpp.o"
  "CMakeFiles/centaur_policy.dir/policy.cpp.o.d"
  "CMakeFiles/centaur_policy.dir/valley_free.cpp.o"
  "CMakeFiles/centaur_policy.dir/valley_free.cpp.o.d"
  "libcentaur_policy.a"
  "libcentaur_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
