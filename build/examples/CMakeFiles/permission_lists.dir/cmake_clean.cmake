file(REMOVE_RECURSE
  "CMakeFiles/permission_lists.dir/permission_lists.cpp.o"
  "CMakeFiles/permission_lists.dir/permission_lists.cpp.o.d"
  "permission_lists"
  "permission_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permission_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
