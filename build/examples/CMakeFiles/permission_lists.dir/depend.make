# Empty dependencies file for permission_lists.
# This may be replaced when dependencies are built.
