file(REMOVE_RECURSE
  "CMakeFiles/policy_hiding.dir/policy_hiding.cpp.o"
  "CMakeFiles/policy_hiding.dir/policy_hiding.cpp.o.d"
  "policy_hiding"
  "policy_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
