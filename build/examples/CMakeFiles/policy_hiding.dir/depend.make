# Empty dependencies file for policy_hiding.
# This may be replaced when dependencies are built.
