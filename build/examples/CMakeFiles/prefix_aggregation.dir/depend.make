# Empty dependencies file for prefix_aggregation.
# This may be replaced when dependencies are built.
