file(REMOVE_RECURSE
  "CMakeFiles/prefix_aggregation.dir/prefix_aggregation.cpp.o"
  "CMakeFiles/prefix_aggregation.dir/prefix_aggregation.cpp.o.d"
  "prefix_aggregation"
  "prefix_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
