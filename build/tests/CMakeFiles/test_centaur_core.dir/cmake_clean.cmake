file(REMOVE_RECURSE
  "CMakeFiles/test_centaur_core.dir/announce_test.cpp.o"
  "CMakeFiles/test_centaur_core.dir/announce_test.cpp.o.d"
  "CMakeFiles/test_centaur_core.dir/build_graph_test.cpp.o"
  "CMakeFiles/test_centaur_core.dir/build_graph_test.cpp.o.d"
  "CMakeFiles/test_centaur_core.dir/permission_list_test.cpp.o"
  "CMakeFiles/test_centaur_core.dir/permission_list_test.cpp.o.d"
  "CMakeFiles/test_centaur_core.dir/pgraph_test.cpp.o"
  "CMakeFiles/test_centaur_core.dir/pgraph_test.cpp.o.d"
  "test_centaur_core"
  "test_centaur_core.pdb"
  "test_centaur_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_centaur_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
