# Empty compiler generated dependencies file for test_centaur_core.
# This may be replaced when dependencies are built.
