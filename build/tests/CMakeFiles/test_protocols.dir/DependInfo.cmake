
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp_node_test.cpp" "tests/CMakeFiles/test_protocols.dir/bgp_node_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/bgp_node_test.cpp.o.d"
  "/root/repo/tests/centaur_node_test.cpp" "tests/CMakeFiles/test_protocols.dir/centaur_node_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/centaur_node_test.cpp.o.d"
  "/root/repo/tests/equivalence_test.cpp" "tests/CMakeFiles/test_protocols.dir/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/equivalence_test.cpp.o.d"
  "/root/repo/tests/failure_test.cpp" "tests/CMakeFiles/test_protocols.dir/failure_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/failure_test.cpp.o.d"
  "/root/repo/tests/ospf_node_test.cpp" "tests/CMakeFiles/test_protocols.dir/ospf_node_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/ospf_node_test.cpp.o.d"
  "/root/repo/tests/protocol_edge_test.cpp" "tests/CMakeFiles/test_protocols.dir/protocol_edge_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocol_edge_test.cpp.o.d"
  "/root/repo/tests/static_eval_test.cpp" "tests/CMakeFiles/test_protocols.dir/static_eval_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/static_eval_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/centaur_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/centaur/CMakeFiles/centaur_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/centaur_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/linkstate/CMakeFiles/centaur_linkstate.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/centaur_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/centaur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/centaur_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/centaur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
