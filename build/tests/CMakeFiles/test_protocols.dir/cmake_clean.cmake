file(REMOVE_RECURSE
  "CMakeFiles/test_protocols.dir/bgp_node_test.cpp.o"
  "CMakeFiles/test_protocols.dir/bgp_node_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/centaur_node_test.cpp.o"
  "CMakeFiles/test_protocols.dir/centaur_node_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/equivalence_test.cpp.o"
  "CMakeFiles/test_protocols.dir/equivalence_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/failure_test.cpp.o"
  "CMakeFiles/test_protocols.dir/failure_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/ospf_node_test.cpp.o"
  "CMakeFiles/test_protocols.dir/ospf_node_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocol_edge_test.cpp.o"
  "CMakeFiles/test_protocols.dir/protocol_edge_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/static_eval_test.cpp.o"
  "CMakeFiles/test_protocols.dir/static_eval_test.cpp.o.d"
  "test_protocols"
  "test_protocols.pdb"
  "test_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
