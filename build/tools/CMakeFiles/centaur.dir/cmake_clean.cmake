file(REMOVE_RECURSE
  "CMakeFiles/centaur.dir/centaur_cli.cpp.o"
  "CMakeFiles/centaur.dir/centaur_cli.cpp.o.d"
  "centaur"
  "centaur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centaur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
