# Empty compiler generated dependencies file for centaur.
# This may be replaced when dependencies are built.
