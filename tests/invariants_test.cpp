// Tests for the protocol invariant checker (src/check).
//
// The structural tests hand-corrupt P-graphs — through the public API where
// it permits the breakage, through the PGraphCorruptor backdoor where it
// does not — and assert the checker reports the exact invariant seeded.
// The sim-level tests run full init + failure scenarios and assert a clean
// report, independent of build type (the analyzer is attached explicitly).
#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "centaur/build_graph.hpp"
#include "centaur/centaur_node.hpp"
#include "centaur/pgraph.hpp"
#include "check/analyzer.hpp"
#include "check/invariants.hpp"
#include "sim/network.hpp"
#include "test_helpers.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace centaur::core {

// Seeds the structural corruption the public PGraph API refuses to produce
// (see the friend declaration in pgraph.hpp).
struct PGraphCorruptor {
  /// Records `from` as a parent of `to` without storing the link.
  static void add_dangling_parent(PGraph& g, NodeId from, NodeId to) {
    PGraph::AdjList& ps = g.parents_.ensure(to);
    ps.insert(std::upper_bound(ps.begin(), ps.end(), from), from);
  }
  /// Destroys the sorted-ascending ordering of children[of].
  static void unsort_children(PGraph& g, NodeId of) {
    PGraph::AdjList& cs = g.children_.ensure(of);
    std::reverse(cs.begin(), cs.end());
  }
};

}  // namespace centaur::core

namespace centaur::check {
namespace {

using core::PGraph;
using core::PGraphCorruptor;
using topo::NodeId;
using topo::Path;

bool has(const std::vector<Violation>& vs, Invariant inv) {
  return std::any_of(vs.begin(), vs.end(),
                     [inv](const Violation& v) { return v.invariant == inv; });
}

std::map<NodeId, Path> two_paths() {
  return {{1, Path{0, 1}}, {2, Path{0, 1, 2}}};
}

TEST(CheckPGraph, CleanLocalGraphPasses) {
  const PGraph g = core::build_local_pgraph(0, two_paths());
  EXPECT_TRUE(check_pgraph(g).empty());
  EXPECT_TRUE(check_counters_against(g, two_paths()).empty());
}

TEST(CheckPGraph, EmptyGraphPasses) {
  EXPECT_TRUE(check_pgraph(PGraph{}).empty());
}

TEST(CheckPGraph, CycleIsDetected) {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 1);  // 1 -> 2 -> 1
  g.link_data(0, 1).counter = 1;
  g.link_data(1, 2).counter = 1;
  g.link_data(2, 1).counter = 1;
  const auto vs = check_pgraph(g);
  EXPECT_TRUE(has(vs, Invariant::kAcyclic));

  PGraphCheckOptions relaxed;
  relaxed.require_acyclic = false;
  EXPECT_FALSE(has(check_pgraph(g, relaxed), Invariant::kAcyclic));
}

TEST(CheckPGraph, DanglingParentEntryIsDetected) {
  PGraph g(0);
  g.add_link(0, 1);
  g.link_data(0, 1).counter = 1;
  PGraphCorruptor::add_dangling_parent(g, 5, 1);  // parents[1] lists 5->1
  const auto vs = check_pgraph(g);
  ASSERT_TRUE(has(vs, Invariant::kAdjacency));
  // The report names the phantom link.
  const auto it = std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
    return v.invariant == Invariant::kAdjacency;
  });
  EXPECT_NE(it->detail.find("5->1"), std::string::npos) << it->detail;
}

TEST(CheckPGraph, UnsortedAdjacencyIsDetected) {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.link_data(0, 1).counter = 1;
  g.link_data(0, 2).counter = 1;
  PGraphCorruptor::unsort_children(g, 0);
  EXPECT_TRUE(has(check_pgraph(g), Invariant::kAdjacencySorted));
}

TEST(CheckPGraph, RootWithParentIsDetected) {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(1, 0);  // nothing may point at the root
  g.link_data(0, 1).counter = 1;
  g.link_data(1, 0).counter = 1;
  EXPECT_TRUE(has(check_pgraph(g), Invariant::kRootNoParents));
}

TEST(CheckPGraph, RootUnreachableNodeIsDetected) {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(2, 3);  // island: 2 and 3 never reach the root
  g.link_data(0, 1).counter = 1;
  g.link_data(2, 3).counter = 1;
  const auto vs = check_pgraph(g);
  EXPECT_TRUE(has(vs, Invariant::kRootReachable));

  PGraphCheckOptions relaxed = neighbor_graph_options();
  EXPECT_FALSE(has(check_pgraph(g, relaxed), Invariant::kRootReachable));
}

TEST(CheckPGraph, ZeroCounterOnStoredLinkIsDetected) {
  PGraph g = core::build_local_pgraph(0, two_paths());
  g.link_data(1, 2).counter = 0;  // should have been withdrawn
  EXPECT_TRUE(has(check_pgraph(g), Invariant::kCounter));
}

TEST(CheckPGraph, StaleCounterIsDetected) {
  PGraph g = core::build_local_pgraph(0, two_paths());
  g.link_data(0, 1).counter = 7;  // two selected paths traverse 0->1
  const auto vs = check_counters_against(g, two_paths());
  ASSERT_TRUE(has(vs, Invariant::kCounter));
  const auto it = std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
    return v.invariant == Invariant::kCounter;
  });
  EXPECT_NE(it->detail.find("0->1"), std::string::npos) << it->detail;
}

TEST(CheckPGraph, UntraversedLinkIsDetected) {
  PGraph g = core::build_local_pgraph(0, two_paths());
  g.add_link(1, 3);  // no selected path uses it
  g.link_data(1, 3).counter = 1;
  EXPECT_TRUE(has(check_counters_against(g, two_paths()), Invariant::kCounter));
}

TEST(CheckPGraph, PlistOnSingleHomedHeadFailsWireForm) {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.link_data(0, 1).counter = 1;
  g.link_data(1, 2).counter = 1;
  g.link_data(1, 2).plist.add(2, core::kNoNextHop);  // head 2 is single-homed
  EXPECT_TRUE(has(check_pgraph(g, wire_form_options()),
                  Invariant::kPlistActivation));
  // The default (BuildGraph) contract keeps inactive entries everywhere.
  EXPECT_FALSE(has(check_pgraph(g), Invariant::kPlistActivation));
}

TEST(CheckPGraph, MissingDestinationMarkIsDetected) {
  PGraph g = core::build_local_pgraph(0, two_paths());
  g.unmark_destination(2);
  EXPECT_TRUE(has(check_counters_against(g, two_paths()),
                  Invariant::kDestinationMark));
}

TEST(CheckPGraph, MarkedButAbsentDestinationIsDetected) {
  PGraph g = core::build_local_pgraph(0, two_paths());
  g.mark_destination(9);  // 9 appears nowhere in the graph
  EXPECT_TRUE(has(check_pgraph(g), Invariant::kDestinationMark));
}

TEST(CheckPGraph, LoopingSelectedPathIsDetected) {
  const PGraph g = core::build_local_pgraph(0, two_paths());
  std::map<NodeId, Path> looping = two_paths();
  looping[2] = Path{0, 1, 0, 2};  // revisits 0
  EXPECT_TRUE(has(check_counters_against(g, looping), Invariant::kLoopFree));
}

// ---------------------------------------------------------------- sim level

// Full protocol runs on the Figure 4 topology must produce a clean report:
// the analyzer re-checks every touched node after each event and every node
// at each quiescence sweep.
TEST(AnalyzerSim, InitAndFailureRunReportZeroViolations) {
  topo::AsGraph g = testing::fig4_topology();
  util::Rng rng(7);
  sim::Network net(g, rng);
  Analyzer analyzer(net);
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.attach(v, std::make_unique<core::CentaurNode>(g));
  }
  net.mark();
  net.start_all_and_converge();
  analyzer.check_all();

  const auto bd = g.find_link(1, 3);  // fail B-D, reroute via C
  ASSERT_TRUE(bd.has_value());
  net.mark();
  net.set_link_state(*bd, false);
  net.run_to_convergence();
  analyzer.check_all();

  net.mark();
  net.set_link_state(*bd, true);  // and recover
  net.run_to_convergence();
  analyzer.check_all();

  EXPECT_GT(analyzer.report().checks_run, 0u);
  EXPECT_TRUE(analyzer.report().clean()) << [&] {
    std::ostringstream os;
    analyzer.report().print(os);
    return os.str();
  }();
}

// The event hook detaches with the analyzer: a second analyzer attached
// after the first is destroyed keeps working.
TEST(AnalyzerSim, DetachesOnDestruction) {
  topo::AsGraph g = testing::square_topology();
  util::Rng rng(3);
  sim::Network net(g, rng);
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.attach(v, std::make_unique<core::CentaurNode>(g));
  }
  { Analyzer scoped(net); }  // attach + detach before any event
  Analyzer analyzer(net);
  net.mark();
  net.start_all_and_converge();
  analyzer.check_all();
  EXPECT_TRUE(analyzer.report().clean());
  EXPECT_GT(analyzer.report().checks_run, 0u);
}

}  // namespace
}  // namespace centaur::check
