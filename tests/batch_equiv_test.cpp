// Equivalence proof for datagram batching (CENTAUR_BATCH_DATAGRAMS).
//
// Batching coalesces every update bound for the same neighbor within one
// simulated instant into a single batch datagram.  It may change how many
// datagrams cross the wire (that is the point) and how deliveries
// interleave within an instant, but never what the network computes: the
// converged routing state — selected paths, the local P-graph, every
// assembled neighbor P-graph — must be identical with the flag on or off.
// And when nothing coalesces (the default flush already emits at most one
// update per neighbor per instant), the wire traffic itself must be
// byte-identical: a lone queued update keeps the single-delta framing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "centaur/pgraph.hpp"
#include "eval/experiments.hpp"
#include "topology/generator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

/// Sets one environment variable for the duration of a scope (node configs
/// sample the environment at construction), restoring the prior value.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const std::optional<std::string> prev = util::env_string(name_);
    if (prev) saved_ = *prev;
    had_prev_ = prev.has_value();
    EXPECT_EQ(setenv(name_, value.c_str(), 1), 0);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string saved_;
};

using PathMap = std::map<topo::NodeId, topo::Path>;

/// Full converged routing state plus wire counters for one run.
struct RunState {
  std::vector<PathMap> selected;
  std::vector<core::PGraph> locals;
  std::vector<std::vector<std::pair<topo::NodeId, core::PGraph>>> ribs;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// A few links sharing one endpoint (the highest-degree node): flipping
/// them in the same instant makes that node flood several times per
/// instant, and same-link deliveries tie on arrival — the structure
/// datagram batching exists for.
std::vector<topo::LinkId> hub_burst(const topo::AsGraph& g) {
  topo::NodeId hub = 0;
  for (topo::NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.neighbors(v).size() > g.neighbors(hub).size()) hub = v;
  }
  std::vector<topo::LinkId> burst;
  for (const topo::Neighbor& nb : g.neighbors(hub)) {
    burst.push_back(nb.link);
    if (burst.size() == 3) break;
  }
  return burst;
}

RunState run_cold_start_and_flip(const topo::AsGraph& g, std::uint64_t seed) {
  util::Rng rng(seed);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
  // Same-instant down burst, converge, same-instant up burst: exercises the
  // steady-phase send paths (incremental floods and session-restart
  // snapshots) with real same-instant multiplicity, not just Step 1-4.
  const std::vector<topo::LinkId> burst = hub_burst(g);
  for (const topo::LinkId l : burst) run.network().set_link_state(l, false);
  run.network().run_to_convergence();
  for (const topo::LinkId l : burst) run.network().set_link_state(l, true);
  run.network().run_to_convergence();
  RunState out;
  out.messages = run.network().total_messages();
  out.bytes = run.network().total_bytes();
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto* node =
        dynamic_cast<const core::CentaurNode*>(&run.network().node(v));
    if (node == nullptr) throw std::logic_error("expected CentaurNode");
    out.selected.emplace_back(node->selected_paths().begin(),
                              node->selected_paths().end());
    out.locals.push_back(node->local_pgraph());
    std::vector<std::pair<topo::NodeId, core::PGraph>> rib;
    for (const topo::NodeId nbr : node->rib_neighbors()) {
      rib.emplace_back(nbr, *node->neighbor_pgraph(nbr));
    }
    out.ribs.push_back(std::move(rib));
  }
  return out;
}

void expect_same_routing_state(const RunState& a, const RunState& b,
                               const std::string& ctx) {
  EXPECT_EQ(a.selected, b.selected) << ctx;
  ASSERT_EQ(a.locals.size(), b.locals.size()) << ctx;
  for (std::size_t v = 0; v < a.locals.size(); ++v) {
    EXPECT_TRUE(a.locals[v] == b.locals[v]) << ctx << " local of node " << v;
    ASSERT_EQ(a.ribs[v].size(), b.ribs[v].size()) << ctx << " node " << v;
    for (std::size_t i = 0; i < a.ribs[v].size(); ++i) {
      EXPECT_EQ(a.ribs[v][i].first, b.ribs[v][i].first) << ctx;
      EXPECT_TRUE(a.ribs[v][i].second == b.ribs[v][i].second)
          << ctx << " node " << v << " view from " << a.ribs[v][i].first;
    }
  }
}

TEST(BatchEquiv, InlineSendsBatchAndConvergeIdentically) {
  // With coalescing off, every flood emits inline — several datagrams per
  // neighbor per instant — so batching has real work to do.
  for (const std::uint64_t seed : {0xBA7C1ull, 0xBA7C2ull}) {
    util::Rng topo_rng(seed);
    const topo::AsGraph g = topo::brite_like(40, 2, 4, topo_rng);
    ScopedEnv coalesce("CENTAUR_COALESCE", "0");
    const auto run_with = [&](bool batch) {
      ScopedEnv scoped("CENTAUR_BATCH_DATAGRAMS", batch ? "1" : "0");
      return run_cold_start_and_flip(g, seed ^ 7);
    };
    const RunState unbatched = run_with(false);
    const RunState batched = run_with(true);
    const std::string ctx = "seed=" + std::to_string(seed);
    expect_same_routing_state(unbatched, batched, ctx);
    // The point of batching: strictly fewer datagrams on a workload that
    // floods repeatedly within an instant.
    EXPECT_LT(batched.messages, unbatched.messages) << ctx;
  }
}

TEST(BatchEquiv, SingletonOutboxKeepsWireTrafficByteIdentical) {
  // With coalescing on (the default), the flush already sends at most one
  // update per neighbor per instant, so every outbox slot holds a single
  // update — which must keep the plain single-delta framing: message and
  // byte counters are identical, batching costs nothing.
  util::Rng topo_rng(0xBA7C3);
  const topo::AsGraph g = topo::brite_like(40, 2, 4, topo_rng);
  const auto run_with = [&](bool batch) {
    ScopedEnv scoped("CENTAUR_BATCH_DATAGRAMS", batch ? "1" : "0");
    return run_cold_start_and_flip(g, 0xBA7C3 ^ 7);
  };
  const RunState unbatched = run_with(false);
  const RunState batched = run_with(true);
  expect_same_routing_state(unbatched, batched, "coalesce-on");
  EXPECT_EQ(batched.messages, unbatched.messages);
  EXPECT_EQ(batched.bytes, unbatched.bytes);
}

}  // namespace
}  // namespace centaur
