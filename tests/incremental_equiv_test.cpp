// Bit-identity proof for the incremental recompute plane (DESIGN.md §12).
//
// CENTAUR_INCREMENTAL must be purely a wall-clock knob: with the plane off,
// every delta re-derives all destinations, every reselect re-classifies
// every candidate from scratch, and every flood rebuilds + diffs the full
// category export views — and every observable of a run must still equal
// the incremental run bit for bit: convergence times, message/byte/event
// counters, per-node selected paths, and the exported views as received
// (each RIB P-graph is exactly the sender's export view after import
// filtering).  These tests re-run the tier-1 smoke analogues of the figure
// experiments (fig 6/7 link flips, fig 8 sweep sizes) and the builtin
// reliability campaign with the toggle on vs off, serial and at 4 worker
// lanes, and compare everything.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "centaur/pgraph.hpp"
#include "eval/experiments.hpp"
#include "faults/campaign.hpp"
#include "faults/scenario.hpp"
#include "topology/generator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

/// Sets one environment variable for the duration of a scope (node configs
/// sample the environment at construction), restoring the prior value.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const std::optional<std::string> prev = util::env_string(name_);
    if (prev) saved_ = *prev;
    had_prev_ = prev.has_value();
    EXPECT_EQ(setenv(name_, value.c_str(), 1), 0);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string saved_;
};

void expect_flip_series_eq(const eval::FlipSeries& reference,
                           const eval::FlipSeries& scratch,
                           const std::string& context) {
  EXPECT_EQ(reference.convergence_times, scratch.convergence_times) << context;
  EXPECT_EQ(reference.message_counts, scratch.message_counts) << context;
  EXPECT_EQ(reference.cold_start.messages_sent,
            scratch.cold_start.messages_sent)
      << context;
  EXPECT_EQ(reference.cold_start.bytes_sent, scratch.cold_start.bytes_sent)
      << context;
  EXPECT_DOUBLE_EQ(reference.cold_start_time, scratch.cold_start_time)
      << context;
  EXPECT_EQ(reference.events, scratch.events) << context;
  EXPECT_EQ(reference.total_messages, scratch.total_messages) << context;
  EXPECT_EQ(reference.total_bytes, scratch.total_bytes) << context;
  EXPECT_EQ(reference.analysis.checks_run, scratch.analysis.checks_run)
      << context;
  EXPECT_EQ(reference.analysis.violations_seen,
            scratch.analysis.violations_seen)
      << context;
}

// ----------------------------------------------- fig 6/7 smoke analogue ---

TEST(IncrementalEquiv, LinkFlipSeriesBitIdenticalAcrossToggle) {
  // The fig 6 (convergence time) and fig 7 (load) experiments share
  // run_link_flips.  Randomized over topology seeds; the analyzer runs in
  // collect mode so its per-event checks are part of the comparison.
  for (const std::uint64_t seed : {0x1ACEull, 0xBEE5ull}) {
    util::Rng topo_rng(seed);
    const topo::AsGraph g = topo::brite_like(40, 2, 4, topo_rng);
    eval::RunOptions opts;
    opts.analysis = eval::AnalysisMode::kCollect;
    const auto run_with = [&](bool incremental) {
      ScopedEnv scoped("CENTAUR_INCREMENTAL", incremental ? "1" : "0");
      return eval::run_link_flips(g, eval::Protocol::kCentaur, 4,
                                  util::Rng(seed ^ 7), opts);
    };
    const eval::FlipSeries incremental = run_with(true);
    const eval::FlipSeries scratch = run_with(false);
    expect_flip_series_eq(incremental, scratch,
                          "seed=" + std::to_string(seed));
  }
}

// ------------------------------------------------- fig 8 smoke analogue ---

TEST(IncrementalEquiv, ScalabilitySweepStateBitIdenticalAcrossToggleAndLanes) {
  // The fig 8 sweep varies topology size.  Beyond the series numbers this
  // compares the full per-node routing state — selected paths, the local
  // P-graph, and every received (= exported, post import filter) neighbor
  // P-graph — across the 2x2 matrix {incremental, scratch} x {1 lane, 4
  // lanes}.  All four cells must be identical.
  for (const std::size_t nodes : {20u, 45u}) {
    util::Rng topo_rng(0x19C + nodes);
    const topo::AsGraph g = topo::brite_like(nodes, 2, 4, topo_rng);
    using PathMap = std::map<topo::NodeId, topo::Path>;
    struct Outcome {
      std::vector<PathMap> selected;
      std::size_t cold_messages = 0;
      std::uint64_t events = 0;
      std::uint64_t messages = 0;
      std::uint64_t bytes = 0;
      bool operator==(const Outcome& o) const {
        return selected == o.selected && cold_messages == o.cold_messages &&
               events == o.events && messages == o.messages &&
               bytes == o.bytes;
      }
    };
    // The P-graphs live per run, so compare them inside the run via a
    // canonical serialization the == of which is graph equality.
    struct Cell {
      Outcome outcome;
      std::vector<std::vector<std::pair<topo::NodeId, core::PGraph>>> ribs;
      std::vector<core::PGraph> locals;
    };
    const auto run_with = [&](bool incremental, std::size_t lanes) {
      ScopedEnv inc("CENTAUR_INCREMENTAL", incremental ? "1" : "0");
      ScopedEnv intra("CENTAUR_INTRA_THREADS", std::to_string(lanes));
      util::Rng rng(util::derive_seed(0x19C, nodes));
      eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
      // A down/up flip after cold start exercises the steady-phase deltas.
      run.flip(0, false);
      run.flip(0, true);
      Cell cell;
      cell.outcome.cold_messages = run.cold_start().messages_sent;
      cell.outcome.events = run.network().events_executed();
      cell.outcome.messages = run.network().total_messages();
      cell.outcome.bytes = run.network().total_bytes();
      for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto* node =
            dynamic_cast<const core::CentaurNode*>(&run.network().node(v));
        if (node == nullptr) throw std::logic_error("expected CentaurNode");
        cell.outcome.selected.emplace_back(node->selected_paths().begin(),
                                           node->selected_paths().end());
        cell.locals.push_back(node->local_pgraph());
        std::vector<std::pair<topo::NodeId, core::PGraph>> rib;
        for (const topo::NodeId nbr : node->rib_neighbors()) {
          rib.emplace_back(nbr, *node->neighbor_pgraph(nbr));
        }
        cell.ribs.push_back(std::move(rib));
      }
      return cell;
    };
    const Cell reference = run_with(true, 1);
    for (const auto& [incremental, lanes] :
         {std::pair<bool, std::size_t>{false, 1}, {true, 4}, {false, 4}}) {
      const Cell cell = run_with(incremental, lanes);
      const std::string ctx = "nodes=" + std::to_string(nodes) +
                              " incremental=" + std::to_string(incremental) +
                              " lanes=" + std::to_string(lanes);
      EXPECT_TRUE(reference.outcome == cell.outcome) << ctx;
      ASSERT_EQ(reference.locals.size(), cell.locals.size()) << ctx;
      for (std::size_t v = 0; v < reference.locals.size(); ++v) {
        EXPECT_TRUE(reference.locals[v] == cell.locals[v])
            << ctx << " local pgraph of node " << v;
        ASSERT_EQ(reference.ribs[v].size(), cell.ribs[v].size())
            << ctx << " rib of node " << v;
        for (std::size_t i = 0; i < reference.ribs[v].size(); ++i) {
          EXPECT_EQ(reference.ribs[v][i].first, cell.ribs[v][i].first) << ctx;
          EXPECT_TRUE(reference.ribs[v][i].second == cell.ribs[v][i].second)
              << ctx << " node " << v << " view from neighbor "
              << reference.ribs[v][i].first;
        }
      }
    }
  }
}

// ------------------------------------------- builtin reliability campaign --

TEST(IncrementalEquiv, ReliabilityCampaignBitIdenticalAcrossToggle) {
  // The canonical campaign covers the fault shapes the dirty-set machinery
  // must survive: SRLG bursts, crash/restart (session resets), flap storms,
  // and partition/heal cuts.
  faults::ScenarioSpec spec = faults::reliability_scenario(40, 0x1CE);
  spec.options.analysis = eval::AnalysisMode::kCollect;
  const auto run_with = [&](bool incremental) {
    ScopedEnv scoped("CENTAUR_INCREMENTAL", incremental ? "1" : "0");
    return faults::run_scenario(spec);
  };
  const faults::CampaignResult incremental = run_with(true);
  const faults::CampaignResult scratch = run_with(false);

  EXPECT_EQ(incremental.cold_start, scratch.cold_start);
  ASSERT_EQ(incremental.phases.size(), scratch.phases.size());
  for (std::size_t i = 0; i < incremental.phases.size(); ++i) {
    EXPECT_EQ(incremental.phases[i], scratch.phases[i])
        << "phase " << incremental.phases[i].name;
  }
  EXPECT_EQ(incremental.total_events, scratch.total_events);
  EXPECT_EQ(incremental.total_messages, scratch.total_messages);
  EXPECT_EQ(incremental.total_bytes, scratch.total_bytes);
  EXPECT_EQ(incremental.analysis.checks_run, scratch.analysis.checks_run);
  EXPECT_EQ(incremental.analysis.violations_seen,
            scratch.analysis.violations_seen);
  EXPECT_TRUE(scratch.clean());
}

}  // namespace
}  // namespace centaur
